// tool_sweep — run a scenario expression across a parameter grid, in
// parallel, and emit machine-readable CSV + JSON summaries.
//
//   tool_sweep --scenario flash_crowd --grid channels=4,8 --grid mode=cs,p2p
//              --threads 8 --hours 6 --warmup 1 --seed 42 --out results/sweep
//
// Scenarios compose with '+': `--scenario flash_crowd+churn_heavy` applies
// flash_crowd's ops, then churn_heavy's, left to right (order matters where
// parts touch the same config field). A part may carry an `@time` fire-time
// suffix (`regional_outage@6h+recovery@18h`): its ops then fire mid-run at
// the first provisioning-interval boundary >= that simulated time instead
// of reshaping the config before t=0. The composite expression is recorded
// in canonical form in the CSV/JSON scenario column.
//
// Output is byte-identical for any --threads value: every run owns its own
// Simulator + StreamingSystem, and its seed depends only on the base seed
// and the workload-shaping grid coordinates.
//
// Flags: --scenario=baseline_diurnal (a name or a+b composite)
//        --grid name=v1,v2 (repeatable)
//        --set name=value (repeatable; pin a registry parameter for every
//                          cell — applied after the scenario, before the
//                          grid point, e.g. --set engine=cohort)
//        --threads=<hardware> --hours=6 --warmup=1 --seed=42
//        --shard=k/N (run only this process's slice of the grid)
//        --out=results/sweep (writes <out>.csv and <out>.json, plus the
//                             streamed <out>.jsonl / <out>.stream.csv;
//                             missing parent directories are created)
//        --profile=<file.json> (load a declarative experiment profile —
//                               see src/profile/profile.h for the schema;
//                               other flags apply on top: profile < flags)
//        --dump-profile (print the effective profile as canonical JSON and
//                        exit without running; --profile x --dump-profile
//                        round-trips a canonical file byte-identically,
//                        which CI checks for every golden preset)
//        --golden=<preset> (run a frozen golden preset; grid/scenario/seed/
//                           horizon come from its profiles/<name>.json,
//                           --threads still applies — output must not
//                           depend on it)
//        --list (print scenarios with their ops, grid parameters, golden
//                presets and exit)
//        --list-goldens (print one golden preset name per line, for scripts)
//
// Unknown flags are rejected with a did-you-mean suggestion (so
// --serie-stride teaches instead of being ignored). Precedence, weakest
// to strongest: profile file < --scenario/--grid/--set < --seed/--warmup/
// --hours/--threads/--series-stride/--shard.
//
// Every figure and ablation of the paper's evaluation is a golden preset
// (fig04_provisioning ... ablation_prediction, see --list); CI and
// scripts/verify.sh --golden replay all of them on 1 thread and on all
// cores and diff against the goldens/ snapshots on every commit.
//
// Diff mode — compare two sweep JSON files (same grid + seed, different
// commits) and report per-cell metric deltas:
//
//   tool_sweep --diff a.json b.json [--tol=0] [--out=report.json]
//
// Exits 0 when identical within --tol, 1 when any cell differs (CI runs
// this against the checked-in goldens/ snapshots).
//
// Distributed sweeps — split one grid across processes/machines and
// stitch the outputs back together, byte-identically:
//
//   tool_sweep --golden=sweep_demo --shard=0/2 --out=a   # machine 1
//   tool_sweep --golden=sweep_demo --shard=1/2 --out=b   # machine 2
//   tool_sweep --merge merged a.json b.json              # anywhere
//
// --shard=k/N runs only the cells with global index ≡ k (mod N); the
// output JSON carries a shard header (k/N, total cells, spec hash).
// --merge validates that the inputs are the complete shard set of one
// sweep (same scenario, seed, grid, spec hash; every k exactly once) and
// writes <out>.csv/<out>.json byte-identical to the unsharded run. Every
// sweep additionally streams rows through the results store as they
// complete: <out>.jsonl + <out>.stream.csv appear in completion order
// while the run is still going (and survive an interrupted sweep).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "expr/flags.h"
#include "profile/profile.h"
#include "store/results_store.h"
#include "store/shard_merge.h"
#include "sweep/goldens.h"
#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_diff.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"

using namespace cloudmedia;

namespace {

void print_listing() {
  std::printf("scenarios (compose with '+', ops apply left to right,\n");
  std::printf("           parts take an optional @fire-time —\n");
  std::printf("           e.g. --scenario flash_crowd+churn_heavy,\n");
  std::printf("                --scenario regional_outage@6h+recovery@18h):\n");
  const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global();
  for (const std::string& name : catalog.names()) {
    const sweep::Scenario& scenario = catalog.at(name);
    std::printf("  %-18s %s\n", name.c_str(), scenario.description.c_str());
    for (const sweep::ScenarioOp& op : scenario.ops) {
      std::string tag = op.workload_shaping ? "workload" : "system";
      if (op.fire_time > 0.0) {
        tag += " @" + sweep::format_fire_time(op.fire_time);
      }
      std::printf("    - %-28s [%s] %s\n", op.name.c_str(), tag.c_str(),
                  op.description.c_str());
    }
    if (scenario.ops.empty()) {
      std::printf("    (no ops: the identity — paper defaults)\n");
    }
  }
  std::printf("\ngrid parameters (--grid name=v1,v2,...):\n");
  for (const std::string& name : sweep::known_parameters()) {
    std::printf("  %s%s\n", name.c_str(),
                sweep::parameter_affects_workload(name)
                    ? "  (workload-shaping: feeds the per-run seed)"
                    : "");
  }
  std::printf("\ngolden presets (--golden name; snapshots in goldens/):\n");
  for (const sweep::GoldenPreset& preset : sweep::golden_presets()) {
    std::printf("  %-20s %s\n", preset.name.c_str(),
                preset.description.c_str());
  }
}

int run_diff(int argc, char** argv) {
  // Strip the --diff token so the two file paths parse as positionals.
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--diff") rest.push_back(argv[i]);
  }
  const expr::Flags flags(static_cast<int>(rest.size()), rest.data(),
                          /*allow_positionals=*/true);
  flags.require_known({"tol", "out"});
  if (flags.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: tool_sweep --diff a.json b.json [--tol=0] "
                 "[--out=report.json]\n");
    return 2;
  }
  const double tolerance = flags.get("tol", 0.0);
  const sweep::SweepDiff diff = sweep::diff_sweep_files(
      flags.positionals()[0], flags.positionals()[1], tolerance);
  std::fputs(diff.report().c_str(), stdout);
  if (flags.has("out")) {
    const std::string out = flags.get("out", std::string());
    const std::size_t slash = out.find_last_of('/');
    if (slash != std::string::npos) {
      util::ensure_directory(out.substr(0, slash));
    }
    util::write_json_file(out, diff.to_json());
    std::printf("[json] %s\n", out.c_str());
  }
  return diff.identical() ? 0 : 1;
}

int run_merge(int argc, char** argv) {
  // Strip the --merge token so the output stem and the shard files parse
  // as positionals.
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--merge") rest.push_back(argv[i]);
  }
  const expr::Flags flags(static_cast<int>(rest.size()), rest.data(),
                          /*allow_positionals=*/true);
  flags.require_known({});
  if (flags.positionals().size() < 3) {
    std::fprintf(stderr,
                 "usage: tool_sweep --merge <out> shard0.json shard1.json "
                 "...\n       (one JSON per shard of a --shard=k/N split; "
                 "writes <out>.csv and <out>.json)\n");
    return 2;
  }
  std::string out = flags.positionals().front();
  // Accept `--merge merged.json ...` too: strip the extension so the pair
  // of outputs lands where the name says.
  if (out.size() > 5 && out.substr(out.size() - 5) == ".json") {
    out = out.substr(0, out.size() - 5);
  }
  const std::vector<std::string> inputs(flags.positionals().begin() + 1,
                                        flags.positionals().end());
  const sweep::SweepResult merged = store::merge_shard_files(inputs);
  merged.write(out);
  std::printf("merged %zu shards, %zu cells\n[csv]  %s.csv\n[json] %s.json\n",
              inputs.size(), merged.runs.size(), out.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--diff") return run_diff(argc, argv);
    if (std::string_view(argv[i]) == "--merge") return run_merge(argc, argv);
  }

  const expr::Flags flags(argc, argv);
  flags.require_known({"list", "help", "list-goldens", "golden", "profile",
                       "dump-profile", "set", "scenario", "grid", "seed",
                       "threads", "hours", "warmup", "series-stride", "shard",
                       "out"});
  if (flags.has("list") || flags.has("help")) {
    print_listing();
    return 0;
  }
  if (flags.has("list-goldens")) {
    for (const sweep::GoldenPreset& preset : sweep::golden_presets()) {
      std::printf("%s\n", preset.name.c_str());
    }
    return 0;
  }

  // Every mode goes through one declarative Profile: golden preset,
  // --profile file, or flag-built — then SweepSpec::from_profile is the
  // single spec constructor and --dump-profile can print any of them.
  profile::Profile prof;
  std::string default_out = "results/sweep";
  if (flags.has("golden")) {
    const sweep::GoldenPreset& preset =
        sweep::golden_preset(flags.get("golden", std::string()));
    prof = preset.profile;
    default_out = "results/" + preset.name;
    // Only the schedule-neutral knobs are tunable: the preset's profile
    // defines the snapshot. Rejecting the rest beats silently running
    // something other than what the flags claim. --shard is
    // schedule-neutral by construction (it picks which cells run here,
    // never what they compute), which is exactly what lets CI split a
    // golden preset across shards and cmp the merge against the
    // committed snapshot.
    for (const char* frozen :
         {"scenario", "grid", "set", "profile", "seed", "hours", "warmup"}) {
      if (flags.has(frozen)) {
        throw util::PreconditionError(
            std::string("--") + frozen +
            " conflicts with --golden: the preset's profile freezes it "
            "(only --threads, --shard, --out and --dump-profile apply)");
      }
    }
  } else {
    if (flags.has("profile")) {
      prof = profile::Profile::load(flags.get("profile", std::string()));
      if (!prof.name.empty()) default_out = "results/" + prof.name;
    }
    // Declarative flags fold INTO the profile (profile < flags), so
    // --dump-profile prints what would actually run: --scenario and
    // --grid replace their fields, --set pins registry parameters
    // (last occurrence of a name wins).
    if (flags.has("scenario")) {
      prof.scenario = flags.get("scenario", prof.scenario);
    }
    if (flags.has("grid")) {
      prof.grid = sweep::ParamGrid::parse(flags.get_all("grid"));
    }
    for (const std::string& assignment : flags.get_all("set")) {
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw util::PreconditionError(
            "--set takes name=value with a registry parameter name "
            "(e.g. --set engine=cohort; see --list), got '" + assignment +
            "'");
      }
      const std::string name = assignment.substr(0, eq);
      const std::string value = assignment.substr(eq + 1);
      bool replaced = false;
      for (auto& [existing, existing_value] : prof.overrides) {
        if (existing == name) {
          existing_value = value;
          replaced = true;
          break;
        }
      }
      if (!replaced) prof.overrides.emplace_back(name, value);
    }
  }

  if (flags.has("dump-profile")) {
    // Canonical round trip, deliberately THROUGH the spec: JSON ->
    // Profile -> SweepSpec -> Profile -> JSON. cmp'ing the output
    // against a committed profiles/<name>.json proves the spec layer
    // loses nothing.
    const sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
    const profile::Profile round =
        profile::Profile::from_spec(spec, prof.name, prof.description);
    std::fputs((round.to_json().dump(2) + "\n").c_str(), stdout);
    return 0;
  }

  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  if (flags.has("golden")) {
    std::printf("golden %s: %s\n", prof.name.c_str(),
                prof.description.c_str());
    const long long requested = flags.get_ll("threads", 0);
    if (requested < 0 || requested > 1024) {
      throw util::PreconditionError(
          "--threads must be in [0, 1024] (0 = hardware)");
    }
    spec.threads = static_cast<unsigned>(requested);
    if (flags.has("shard")) {
      spec.shard = sweep::ShardSpec::parse(flags.get("shard", std::string()));
    }
  } else {
    // Schedule flags override the profile (profile < flags).
    spec.apply_flags(flags);
  }

  if (!spec.shard.whole()) {
    default_out += "_shard" + std::to_string(spec.shard.index) + "of" +
                   std::to_string(spec.shard.count);
  }
  const std::string out = flags.get("out", default_out);
  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();

  const std::size_t owned_cells =
      sweep::SweepRunner::shard_cells(spec.grid.num_points(), spec.shard)
          .size();
  std::printf("sweep: scenario=%s grid=%zu runs threads=%u horizon=%.2f+%.2f h "
              "seed=%llu shard=%s (%zu cells here)\n",
              spec.scenario.c_str(), spec.grid.num_points(), threads,
              spec.warmup_hours, spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed),
              spec.shard.label().c_str(), owned_cells);

  // Stream rows through the results store as they complete: the sweep
  // never holds the whole result resident, and <out>.jsonl survives an
  // interrupted run. finalize() reassembles the deterministic grid-order
  // result the CSV/JSON outputs (and the golden gate) expect.
  store::StoreOptions store_options;
  store_options.base = out;
  store::ResultsStore results_store(store_options, spec);
  sweep::SweepSpec streaming = spec;
  streaming.sink = results_store.sink();
  const auto t0 = std::chrono::steady_clock::now();
  (void)sweep::SweepRunner::run(streaming);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const sweep::SweepResult result = results_store.finalize();

  std::printf("\n%-32s %12s %8s %9s %9s %9s %8s\n", "point", "seed", "quality",
              "reserved", "used", "peer", "$/h");
  for (const sweep::RunSummary& run : result.runs) {
    const std::string label =
        run.point.coords.empty() ? "(single run)" : run.point.label();
    std::printf("%-32s %12llu %8.3f %9.1f %9.1f %9.1f %8.2f\n", label.c_str(),
                static_cast<unsigned long long>(run.seed), run.mean_quality,
                run.mean_reserved_mbps, run.mean_used_cloud_mbps,
                run.mean_used_peer_mbps, run.cost_per_hour);
  }

  // Aggregate engine throughput across every cell of the sweep — the
  // sibling of bench_discrete_smoke's single-run figure, measured on
  // whatever grid the user actually ran.
  std::uint64_t total_events = 0;
  for (const sweep::RunSummary& run : result.runs) {
    total_events += run.sim_events;
  }
  std::printf("\n%zu runs, %llu sim events in %.2f s wall (%.3g events/s "
              "aggregate, %u threads)\n",
              result.runs.size(),
              static_cast<unsigned long long>(total_events), wall,
              wall > 0.0 ? static_cast<double>(total_events) / wall : 0.0,
              threads);

  result.write(out);
  std::printf("\n[csv]    %s.csv\n[json]   %s.json\n[jsonl]  %s (streamed)\n",
              out.c_str(), out.c_str(), results_store.jsonl_path().c_str());
  return 0;
}
