// tool_sweep — run a named scenario across a parameter grid, in parallel,
// and emit machine-readable CSV + JSON summaries.
//
//   tool_sweep --scenario flash_crowd --grid channels=4,8 --grid mode=cs,p2p
//              --threads 8 --hours 6 --warmup 1 --seed 42 --out results/sweep
//
// Output is byte-identical for any --threads value: every run owns its own
// Simulator + StreamingSystem, and its seed depends only on the base seed
// and the workload-shaping grid coordinates.
//
// Flags: --scenario=baseline_diurnal --grid name=v1,v2 (repeatable)
//        --threads=<hardware> --hours=6 --warmup=1 --seed=42
//        --out=results/sweep (writes <out>.csv and <out>.json)
//        --list (print scenarios + grid parameters and exit)

#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"

using namespace cloudmedia;

namespace {

void print_listing() {
  std::printf("scenarios:\n");
  const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global();
  for (const std::string& name : catalog.names()) {
    std::printf("  %-18s %s\n", name.c_str(),
                catalog.at(name).description.c_str());
  }
  std::printf("\ngrid parameters (--grid name=v1,v2,...):\n");
  for (const std::string& name : sweep::known_parameters()) {
    std::printf("  %s%s\n", name.c_str(),
                sweep::parameter_affects_workload(name)
                    ? "  (workload-shaping: feeds the per-run seed)"
                    : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  if (flags.has("list") || flags.has("help")) {
    print_listing();
    return 0;
  }

  sweep::SweepSpec spec;
  spec.scenario = flags.get("scenario", std::string("baseline_diurnal"));
  spec.grid = sweep::ParamGrid::parse(flags.get_all("grid"));
  spec.threads = 0;  // default to hardware
  spec.warmup_hours = 1.0;
  spec.measure_hours = 6.0;
  spec.apply_flags(flags);

  const std::string out = flags.get("out", std::string("results/sweep"));
  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();

  std::printf("sweep: scenario=%s grid=%zu runs threads=%u horizon=%.2f+%.2f h "
              "seed=%llu\n",
              spec.scenario.c_str(), spec.grid.num_points(), threads,
              spec.warmup_hours, spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);

  std::printf("\n%-32s %12s %8s %9s %9s %9s %8s\n", "point", "seed", "quality",
              "reserved", "used", "peer", "$/h");
  for (const sweep::RunSummary& run : result.runs) {
    const std::string label =
        run.point.coords.empty() ? "(single run)" : run.point.label();
    std::printf("%-32s %12llu %8.3f %9.1f %9.1f %9.1f %8.2f\n", label.c_str(),
                static_cast<unsigned long long>(run.seed), run.mean_quality,
                run.mean_reserved_mbps, run.mean_used_cloud_mbps,
                run.mean_used_peer_mbps, run.cost_per_hour);
  }

  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
