// tool_sweep — run a scenario expression across a parameter grid, in
// parallel, and emit machine-readable CSV + JSON summaries.
//
//   tool_sweep --scenario flash_crowd --grid channels=4,8 --grid mode=cs,p2p
//              --threads 8 --hours 6 --warmup 1 --seed 42 --out results/sweep
//
// Scenarios compose with '+': `--scenario flash_crowd+churn_heavy` applies
// flash_crowd's ops, then churn_heavy's, left to right (order matters where
// parts touch the same config field). A part may carry an `@time` fire-time
// suffix (`regional_outage@6h+recovery@18h`): its ops then fire mid-run at
// the first provisioning-interval boundary >= that simulated time instead
// of reshaping the config before t=0. The composite expression is recorded
// in canonical form in the CSV/JSON scenario column.
//
// Output is byte-identical for any --threads value: every run owns its own
// Simulator + StreamingSystem, and its seed depends only on the base seed
// and the workload-shaping grid coordinates.
//
// Flags: --scenario=baseline_diurnal (a name or a+b composite)
//        --grid name=v1,v2 (repeatable)
//        --threads=<hardware> --hours=6 --warmup=1 --seed=42
//        --out=results/sweep (writes <out>.csv and <out>.json)
//        --golden=<preset> (run a frozen golden preset; grid/scenario/seed/
//                           horizon come from the preset, --threads still
//                           applies — output must not depend on it)
//        --list (print scenarios with their ops, grid parameters, golden
//                presets and exit)
//        --list-goldens (print one golden preset name per line, for scripts)
//
// Every figure and ablation of the paper's evaluation is a golden preset
// (fig04_provisioning ... ablation_prediction, see --list); CI and
// scripts/verify.sh --golden replay all of them on 1 thread and on all
// cores and diff against the goldens/ snapshots on every commit.
//
// Diff mode — compare two sweep JSON files (same grid + seed, different
// commits) and report per-cell metric deltas:
//
//   tool_sweep --diff a.json b.json [--tol=0] [--out=report.json]
//
// Exits 0 when identical within --tol, 1 when any cell differs (CI runs
// this against the checked-in goldens/ snapshots).

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "expr/flags.h"
#include "sweep/goldens.h"
#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_diff.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"

using namespace cloudmedia;

namespace {

void print_listing() {
  std::printf("scenarios (compose with '+', ops apply left to right,\n");
  std::printf("           parts take an optional @fire-time —\n");
  std::printf("           e.g. --scenario flash_crowd+churn_heavy,\n");
  std::printf("                --scenario regional_outage@6h+recovery@18h):\n");
  const sweep::ScenarioCatalog& catalog = sweep::ScenarioCatalog::global();
  for (const std::string& name : catalog.names()) {
    const sweep::Scenario& scenario = catalog.at(name);
    std::printf("  %-18s %s\n", name.c_str(), scenario.description.c_str());
    for (const sweep::ScenarioOp& op : scenario.ops) {
      std::string tag = op.workload_shaping ? "workload" : "system";
      if (op.fire_time > 0.0) {
        tag += " @" + sweep::format_fire_time(op.fire_time);
      }
      std::printf("    - %-28s [%s] %s\n", op.name.c_str(), tag.c_str(),
                  op.description.c_str());
    }
    if (scenario.ops.empty()) {
      std::printf("    (no ops: the identity — paper defaults)\n");
    }
  }
  std::printf("\ngrid parameters (--grid name=v1,v2,...):\n");
  for (const std::string& name : sweep::known_parameters()) {
    std::printf("  %s%s\n", name.c_str(),
                sweep::parameter_affects_workload(name)
                    ? "  (workload-shaping: feeds the per-run seed)"
                    : "");
  }
  std::printf("\ngolden presets (--golden name; snapshots in goldens/):\n");
  for (const sweep::GoldenPreset& preset : sweep::golden_presets()) {
    std::printf("  %-20s %s\n", preset.name.c_str(),
                preset.description.c_str());
  }
}

int run_diff(int argc, char** argv) {
  // Strip the --diff token so the two file paths parse as positionals.
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--diff") rest.push_back(argv[i]);
  }
  const expr::Flags flags(static_cast<int>(rest.size()), rest.data(),
                          /*allow_positionals=*/true);
  if (flags.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: tool_sweep --diff a.json b.json [--tol=0] "
                 "[--out=report.json]\n");
    return 2;
  }
  const double tolerance = flags.get("tol", 0.0);
  const sweep::SweepDiff diff = sweep::diff_sweep_files(
      flags.positionals()[0], flags.positionals()[1], tolerance);
  std::fputs(diff.report().c_str(), stdout);
  if (flags.has("out")) {
    const std::string out = flags.get("out", std::string());
    const std::size_t slash = out.find_last_of('/');
    if (slash != std::string::npos) {
      util::ensure_directory(out.substr(0, slash));
    }
    util::write_json_file(out, diff.to_json());
    std::printf("[json] %s\n", out.c_str());
  }
  return diff.identical() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--diff") return run_diff(argc, argv);
  }

  const expr::Flags flags(argc, argv);
  if (flags.has("list") || flags.has("help")) {
    print_listing();
    return 0;
  }
  if (flags.has("list-goldens")) {
    for (const sweep::GoldenPreset& preset : sweep::golden_presets()) {
      std::printf("%s\n", preset.name.c_str());
    }
    return 0;
  }

  sweep::SweepSpec spec;
  std::string default_out = "results/sweep";
  if (flags.has("golden")) {
    const sweep::GoldenPreset& preset =
        sweep::golden_preset(flags.get("golden", std::string()));
    spec = preset.spec;
    default_out = "results/" + preset.name;
    std::printf("golden %s: %s\n", preset.name.c_str(),
                preset.description.c_str());
    // Only the schedule-neutral knob is tunable: the preset's grid, seed,
    // and horizon define the snapshot. Rejecting the rest beats silently
    // running something other than what the flags claim.
    for (const char* frozen : {"scenario", "grid", "seed", "hours", "warmup"}) {
      if (flags.has(frozen)) {
        throw util::PreconditionError(
            std::string("--") + frozen +
            " conflicts with --golden: the preset freezes it (only "
            "--threads and --out apply)");
      }
    }
    const long long requested = flags.get_ll("threads", 0);
    if (requested < 0 || requested > 1024) {
      throw util::PreconditionError(
          "--threads must be in [0, 1024] (0 = hardware)");
    }
    spec.threads = static_cast<unsigned>(requested);
  } else {
    spec.scenario = flags.get("scenario", std::string("baseline_diurnal"));
    spec.grid = sweep::ParamGrid::parse(flags.get_all("grid"));
    spec.threads = 0;  // default to hardware
    spec.warmup_hours = 1.0;
    spec.measure_hours = 6.0;
    spec.apply_flags(flags);
  }

  const std::string out = flags.get("out", default_out);
  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();

  std::printf("sweep: scenario=%s grid=%zu runs threads=%u horizon=%.2f+%.2f h "
              "seed=%llu\n",
              spec.scenario.c_str(), spec.grid.num_points(), threads,
              spec.warmup_hours, spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);

  std::printf("\n%-32s %12s %8s %9s %9s %9s %8s\n", "point", "seed", "quality",
              "reserved", "used", "peer", "$/h");
  for (const sweep::RunSummary& run : result.runs) {
    const std::string label =
        run.point.coords.empty() ? "(single run)" : run.point.label();
    std::printf("%-32s %12llu %8.3f %9.1f %9.1f %9.1f %8.2f\n", label.c_str(),
                static_cast<unsigned long long>(run.seed), run.mean_quality,
                run.mean_reserved_mbps, run.mean_used_cloud_mbps,
                run.mean_used_peer_mbps, run.cost_per_hour);
  }

  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
