// Diagnostic: step the full paper-scale simulation hour by hour and print
// wall time, population, pending events, and processed events per simulated
// hour — used to localize super-linear slowdowns.

#include <chrono>
#include <cstdio>
#include <memory>

#include "cloud/cloud_service.h"
#include "expr/config.h"
#include "expr/flags.h"
#include "sim/simulator.h"
#include "vod/streaming_system.h"
#include "workload/scenario.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 48.0);
  const bool p2p = flags.get("p2p", false);
  expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(
      p2p ? core::StreamingMode::kP2p : core::StreamingMode::kClientServer);
  cfg.seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  sim::Simulator simulator;
  const workload::Workload workload(cfg.workload, cfg.seed);
  cloud::CloudConfig cloud_config;
  cloud_config.sla = cloud::SlaTerms{cfg.vm_budget_per_hour,
                                     cfg.storage_budget_per_hour,
                                     cfg.vm_clusters, cfg.nfs_clusters};
  cloud_config.vm =
      cloud::VmSchedulerConfig{cfg.vm_boot_delay, cfg.vod.vm_bandwidth};
  cloud::CloudService cloud(simulator, cloud_config);
  core::ControllerConfig controller_config{cfg.vm_clusters, cfg.nfs_clusters,
                                           cfg.vm_budget_per_hour,
                                           cfg.storage_budget_per_hour};
  core::DemandEstimatorConfig estimator;
  estimator.mode = cfg.mode;
  auto controller = std::make_unique<core::Controller>(
      cfg.vod, controller_config,
      std::make_unique<core::ModelBasedPolicy>(cfg.vod, estimator));
  vod::StreamingOptions options = cfg.streaming;
  options.mode = cfg.mode;
  vod::StreamingSystem system(simulator, workload, cfg.vod, cloud,
                              std::move(controller), options);
  system.start();

  const double step = flags.get("step", 3600.0);
  const double from = flags.get("from", 0.0) * 3600.0;
  if (from > 0.0) {
    std::printf("fast-forwarding to %.1f h...\n", from / 3600.0);
    std::fflush(stdout);
    simulator.run_until(from);
  }

  std::printf("%9s %10s %10s %12s %12s %10s\n", "time(h)", "wall(s)", "users",
              "events", "pending", "quality");
  std::uint64_t prev_events = simulator.events_processed();
  for (double t = from + step; t <= hours * 3600.0 + 1e-9; t += step) {
    const auto t0 = std::chrono::steady_clock::now();
    simulator.run_until(t);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    std::printf("%9.3f %10.2f %10zu %12llu %12zu %10.3f\n", t / 3600.0, wall,
                system.current_users(),
                static_cast<unsigned long long>(simulator.events_processed() -
                                                prev_events),
                simulator.pending(), system.system_quality_now());
    std::fflush(stdout);
    prev_events = simulator.events_processed();
  }
  return 0;
}
