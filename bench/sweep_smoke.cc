// Sweep-engine throughput tracker: runs a fixed 3x3 grid through
// SweepRunner and emits BENCH_sweep.json (runs/sec, events/sec) so the
// engine's perf trajectory is visible across PRs.
//
// The grid is deliberately frozen — 3 arrival rates x 3 channel counts on
// baseline_diurnal — so the numbers stay comparable; change it and the
// history resets.
//
// Flags: --hours=1 --warmup=0.25 --threads=<hardware> --seed=42
//        --out=BENCH_sweep.json

#include <chrono>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/csv.h"
#include "util/json.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  sweep::SweepSpec spec;
  spec.scenario = "baseline_diurnal";
  spec.grid.add_axis("arrival", {"0.4", "0.8", "1.1"});
  spec.grid.add_axis("channels", {"8", "12", "16"});
  spec.threads = 0;  // default to hardware
  spec.warmup_hours = 0.25;
  spec.measure_hours = 1.0;
  spec.apply_flags(flags);

  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();
  std::printf("sweep_smoke: 3x3 grid, %.2f+%.2f h per run, %u threads\n",
              spec.warmup_hours, spec.measure_hours, threads);

  const auto t0 = std::chrono::steady_clock::now();
  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t events = 0;
  for (const sweep::RunSummary& run : result.runs) events += run.sim_events;

  const double runs_per_sec = static_cast<double>(result.runs.size()) / wall;
  const double events_per_sec = static_cast<double>(events) / wall;
  std::printf("  %zu runs in %.2f s  |  %.2f runs/s  |  %.0f events/s\n",
              result.runs.size(), wall, runs_per_sec, events_per_sec);

  util::JsonValue bench = util::JsonValue::object();
  bench["bench"] = "sweep_smoke";
  bench["grid_runs"] = static_cast<double>(result.runs.size());
  bench["threads"] = static_cast<double>(threads);
  bench["warmup_hours"] = spec.warmup_hours;
  bench["measure_hours"] = spec.measure_hours;
  bench["wall_seconds"] = wall;
  bench["runs_per_sec"] = runs_per_sec;
  bench["events_total"] = static_cast<double>(events);
  bench["events_per_sec"] = events_per_sec;
  const std::string out = flags.get("out", std::string("BENCH_sweep.json"));
  const std::size_t slash = out.find_last_of('/');
  if (slash != std::string::npos) util::ensure_directory(out.substr(0, slash));
  util::write_json_file(out, bench);
  std::printf("[json] %s\n", out.c_str());
  return 0;
}
