// Sweep-engine throughput tracker: runs a fixed 3x3 grid through
// SweepRunner and emits BENCH_sweep.json (runs/sec, events/sec) so the
// engine's perf trajectory is visible across PRs.
//
// The grid is deliberately frozen — 3 arrival rates x 3 channel counts on
// baseline_diurnal — so the numbers stay comparable; change it and the
// history resets.
//
// A second phase replays the grid with keep_results at series_stride 1 vs
// 8 and *asserts* the downsampled retention shrinks the resident series
// (the ROADMAP memory item): retained samples must drop at least 2x, or
// the smoke run fails. Peak RSS (getrusage) is reported alongside.
//
// Flags: --hours=1 --warmup=0.25 --threads=<hardware> --seed=42
//        --out=BENCH_sweep.json

#include <chrono>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "profile/profile.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rss.h"

using namespace cloudmedia;

namespace {

std::size_t retained_samples(const sweep::SweepResult& result) {
  std::size_t n = 0;
  for (const expr::ExperimentResult& run : result.results) {
    n += run.metrics.total_samples();
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof;
  prof.scenario = "baseline_diurnal";
  prof.grid.add_axis("arrival", {"0.4", "0.8", "1.1"});
  prof.grid.add_axis("channels", {"8", "12", "16"});
  prof.warmup_hours = 0.25;
  prof.measure_hours = 1.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();
  std::printf("sweep_smoke: 3x3 grid, %.2f+%.2f h per run, %u threads\n",
              spec.warmup_hours, spec.measure_hours, threads);

  const auto t0 = std::chrono::steady_clock::now();
  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t events = 0;
  for (const sweep::RunSummary& run : result.runs) events += run.sim_events;

  const double runs_per_sec = static_cast<double>(result.runs.size()) / wall;
  const double events_per_sec = static_cast<double>(events) / wall;
  std::printf("  %zu runs in %.2f s  |  %.2f runs/s  |  %.0f events/s\n",
              result.runs.size(), wall, runs_per_sec, events_per_sec);

  // Retention phase: the same grid with keep_results, full resolution vs
  // series_stride 8. The stride must shrink what stays resident — this is
  // the big-grid memory valve, smoke-asserted here so a regression in the
  // downsampling path fails CI, not a production sweep.
  sweep::SweepSpec retain = spec;
  retain.keep_results = true;
  retain.series_stride = 1;
  const std::size_t full_samples =
      retained_samples(sweep::SweepRunner::run(retain));
  retain.series_stride = 8;
  const std::size_t strided_samples =
      retained_samples(sweep::SweepRunner::run(retain));
  const double rss_mb = util::peak_rss_mb();
  std::printf(
      "  retention: %zu samples at stride 1 -> %zu at stride 8 "
      "(peak rss %.1f MB)\n",
      full_samples, strided_samples, rss_mb);
  CM_ENSURES(strided_samples > 0);
  // 2x, not stride/2: sparse per-channel series (1-3 samples) shrink by
  // ceil-division only, so the aggregate ratio sits well under the stride
  // on short smoke horizons. 2x still proves the downsampling path works.
  CM_ENSURES(strided_samples * 2 <= full_samples);

  util::JsonValue bench = util::JsonValue::object();
  bench["bench"] = "sweep_smoke";
  bench["grid_runs"] = static_cast<double>(result.runs.size());
  bench["threads"] = static_cast<double>(threads);
  bench["warmup_hours"] = spec.warmup_hours;
  bench["measure_hours"] = spec.measure_hours;
  bench["wall_seconds"] = wall;
  bench["runs_per_sec"] = runs_per_sec;
  bench["events_total"] = static_cast<double>(events);
  bench["events_per_sec"] = events_per_sec;
  bench["retained_samples_full"] = static_cast<double>(full_samples);
  bench["retained_samples_stride8"] = static_cast<double>(strided_samples);
  bench["peak_rss_mb"] = rss_mb;
  const std::string out = flags.get("out", std::string("BENCH_sweep.json"));
  const std::size_t slash = out.find_last_of('/');
  if (slash != std::string::npos) util::ensure_directory(out.substr(0, slash));
  util::write_json_file(out, bench);
  std::printf("[json] %s\n", out.c_str());
  return 0;
}
