// Microbenchmarks (google-benchmark) for the algorithms on the controller's
// hourly critical path: Erlang sizing, traffic equations, Proposition-1
// availability, Eqn.-(5) supply, both Sec.-V heuristics + instance packing,
// the processor-sharing pool, and a full controller planning cycle at
// paper scale (20 channels x 20 chunks).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/capacity.h"
#include "core/controller.h"
#include "core/erlang.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "sim/callback.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "vod/service_pool.h"
#include "workload/viewing.h"

using namespace cloudmedia;

namespace {

const core::VodParameters kParams;

util::Matrix paper_transfer() {
  return workload::ViewingBehavior{}.transfer_matrix(kParams.chunks_per_video);
}

std::vector<double> paper_lambdas(double rate) {
  const workload::ViewingBehavior behavior;
  return core::solve_traffic_equations(
      paper_transfer(), behavior.entry_distribution(kParams.chunks_per_video),
      rate);
}

void BM_ErlangC(benchmark::State& state) {
  const double a = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::erlang_c(state.range(0) + 2, a));
  }
}
BENCHMARK(BM_ErlangC)->Arg(4)->Arg(32)->Arg(256);

void BM_MinServers(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0)) / 100.0;
  const double mu = kParams.service_rate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::min_servers(lambda, mu, lambda * kParams.chunk_duration));
  }
}
BENCHMARK(BM_MinServers)->Arg(5)->Arg(50)->Arg(500);

void BM_TrafficEquations(benchmark::State& state) {
  const util::Matrix transfer = paper_transfer();
  const std::vector<double> entry =
      workload::ViewingBehavior{}.entry_distribution(kParams.chunks_per_video);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_traffic_equations(transfer, entry, 0.2));
  }
}
BENCHMARK(BM_TrafficEquations);

void BM_ChunkAvailability(benchmark::State& state) {
  const util::Matrix transfer = paper_transfer();
  std::vector<double> population(kParams.chunks_per_video, 12.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_chunk_availability(transfer, population));
  }
}
BENCHMARK(BM_ChunkAvailability);

void BM_P2pSupply(benchmark::State& state) {
  const util::Matrix transfer = paper_transfer();
  const std::vector<double> lambdas = paper_lambdas(0.2);
  const core::ChannelCapacityPlan capacity =
      core::CapacityPlanner(kParams, core::CapacityModel::kChannelPooled)
          .plan(lambdas);
  std::vector<double> population(lambdas.size());
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    population[i] = lambdas[i] * kParams.chunk_duration;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_p2p_supply(
        transfer, capacity, population, 50'000.0, kParams.streaming_rate));
  }
}
BENCHMARK(BM_P2pSupply);

core::TrackerReport paper_report(int channels) {
  const workload::ViewingBehavior behavior;
  core::TrackerReport report;
  report.interval_length = 3600.0;
  for (int c = 0; c < channels; ++c) {
    core::ChannelObservation obs;
    obs.arrival_rate = 0.3 / (c + 1);
    obs.transfer = behavior.transfer_matrix(kParams.chunks_per_video);
    obs.entry = behavior.entry_distribution(kParams.chunks_per_video);
    obs.occupancy.assign(kParams.chunks_per_video, 5.0);
    obs.served_cloud_bandwidth.assign(kParams.chunks_per_video, 1e6);
    obs.mean_peer_uplink = 50'000.0;
    report.channels.push_back(std::move(obs));
  }
  return report;
}

void BM_StorageGreedy400Chunks(benchmark::State& state) {
  core::StorageProblem p;
  p.clusters = core::paper_nfs_clusters();
  p.chunk_bytes = kParams.chunk_bytes();
  p.budget_per_hour = 1.0;
  for (int c = 0; c < 20; ++c) {
    for (int i = 0; i < 20; ++i) {
      p.chunks.push_back({{c, i}, 1e6 / (c + 1)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_storage_greedy(p));
  }
}
BENCHMARK(BM_StorageGreedy400Chunks);

void BM_VmGreedy400Chunks(benchmark::State& state) {
  core::VmProblem p;
  p.clusters = core::paper_vm_clusters();
  p.vm_bandwidth = kParams.vm_bandwidth;
  p.budget_per_hour = 100.0;
  for (int c = 0; c < 20; ++c) {
    for (int i = 0; i < 20; ++i) {
      p.chunks.push_back({{c, i}, 3e5 / (c + 1)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_vm_greedy(p));
  }
}
BENCHMARK(BM_VmGreedy400Chunks);

void BM_PackInstances(benchmark::State& state) {
  core::VmProblem p;
  p.clusters = core::paper_vm_clusters();
  p.vm_bandwidth = kParams.vm_bandwidth;
  p.budget_per_hour = 100.0;
  for (int c = 0; c < 20; ++c) {
    for (int i = 0; i < 20; ++i) {
      p.chunks.push_back({{c, i}, 3e5 / (c + 1)});
    }
  }
  const core::VmAllocation allocation = core::solve_vm_greedy(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::pack_instances(p, allocation));
  }
}
BENCHMARK(BM_PackInstances);

void BM_ControllerFullPlan(benchmark::State& state) {
  core::DemandEstimatorConfig est;
  est.mode = core::StreamingMode::kP2p;
  core::Controller controller(
      kParams,
      core::ControllerConfig{core::paper_vm_clusters(),
                             core::paper_nfs_clusters(), 100.0, 1.0},
      std::make_unique<core::ModelBasedPolicy>(kParams, est));
  const core::TrackerReport report = paper_report(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.plan(report));
  }
}
BENCHMARK(BM_ControllerFullPlan)->Unit(benchmark::kMillisecond);

// Simulator event engine: the hot schedule→pop→run path and tombstone
// cancellation. The callback-slot window (dense id-indexed deque +
// trivially-movable heap entries) replaced a per-event unordered_map;
// measured on the reference container that roughly tripled throughput:
// schedule+run 0.52 → 1.5 M events/s, 50%-cancelled 0.75 → 1.45 M events/s.
void BM_SimulatorScheduleRun(benchmark::State& state) {
  const long n = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    long fired = 0;
    for (long i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919L) % 100000L),
                      [&fired] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1 << 10)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatorCancelHalf(benchmark::State& state) {
  const long n = state.range(0);
  std::vector<sim::EventId> ids;
  for (auto _ : state) {
    sim::Simulator sim;
    long fired = 0;
    ids.clear();
    ids.reserve(static_cast<std::size_t>(n));
    for (long i = 0; i < n; ++i) {
      ids.push_back(sim.schedule_at(static_cast<double>((i * 7919L) % 100000L),
                                    [&fired] { ++fired; }));
    }
    for (long i = 0; i < n; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorCancelHalf)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

// sim::Callback (48-byte small-buffer type erasure) vs the std::function it
// replaced in the event ring. The capture below is 40 bytes — typical of
// the simulator's real events (this + a handle + a couple of doubles) —
// which fits sim::Callback inline but exceeds std::function's small-object
// buffer, so the Std variant pays one heap allocation per event. The cycle
// measured is exactly what schedule_at does: construct from a lambda, move
// into a slot, invoke, destroy.

void BM_CallbackSBOLifecycle(benchmark::State& state) {
  double sink = 0.0;
  const double a = 1.0, b = 2.0, c = 3.0, d = 4.0;
  for (auto _ : state) {
    sim::Callback cb([&sink, a, b, c, d] { sink += a + b + c + d; });
    sim::Callback slot = std::move(cb);  // relocate into the ring
    slot();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_CallbackSBOLifecycle);

void BM_CallbackSBOLifecycleStd(benchmark::State& state) {
  double sink = 0.0;
  const double a = 1.0, b = 2.0, c = 3.0, d = 4.0;
  for (auto _ : state) {
    std::function<void()> cb([&sink, a, b, c, d] { sink += a + b + c + d; });
    std::function<void()> slot = std::move(cb);
    slot();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_CallbackSBOLifecycleStd);

// Peer storage: the generation-guarded slab StreamingSystem now uses vs
// the unordered_map<id, Peer> it replaced. The workload mirrors the
// discrete engine's churn — a stable population where every event resolves
// its peer by handle/id and each arrival recycles a departed peer's
// storage. Items processed = peer resolutions.

struct BenchPeer {
  std::uint64_t id = 0;
  std::uint32_t generation = 0;
  bool live = false;
  double payload[6] = {};
};

void BM_PeerSlabChurn(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  std::vector<BenchPeer> slab;
  std::vector<std::uint32_t> free_slots;
  std::vector<std::uint64_t> handles;
  std::uint64_t next_id = 1;
  const auto arrive = [&] {
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slab.size());
      slab.emplace_back();
    }
    BenchPeer& peer = slab[slot];
    peer.id = next_id++;
    peer.live = true;
    peer.payload[0] = static_cast<double>(peer.id);
    return (static_cast<std::uint64_t>(peer.generation) << 32) | slot;
  };
  handles.reserve(population);
  for (std::size_t i = 0; i < population; ++i) handles.push_back(arrive());
  double acc = 0.0;
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (const std::uint64_t handle : handles) {
      const auto slot = static_cast<std::uint32_t>(handle & 0xffffffffull);
      const BenchPeer& peer = slab[slot];
      if (peer.live &&
          ((static_cast<std::uint64_t>(peer.generation) << 32) | slot) ==
              handle) {
        acc += peer.payload[0];
      }
    }
    const auto slot = static_cast<std::uint32_t>(handles[cursor] & 0xffffffffull);
    slab[slot].live = false;
    ++slab[slot].generation;
    free_slots.push_back(slot);
    handles[cursor] = arrive();
    cursor = (cursor + 1) % handles.size();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PeerSlabChurn)->Arg(1 << 10)->Arg(1 << 14);

void BM_PeerSlabChurnMap(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::uint64_t, BenchPeer> peers;
  std::vector<std::uint64_t> ids;
  std::uint64_t next_id = 1;
  const auto arrive = [&] {
    BenchPeer peer;
    peer.id = next_id++;
    peer.live = true;
    peer.payload[0] = static_cast<double>(peer.id);
    peers.emplace(peer.id, peer);
    return peer.id;
  };
  ids.reserve(population);
  for (std::size_t i = 0; i < population; ++i) ids.push_back(arrive());
  double acc = 0.0;
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (const std::uint64_t id : ids) {
      const auto it = peers.find(id);
      if (it != peers.end()) acc += it->second.payload[0];
    }
    peers.erase(ids[cursor]);
    ids[cursor] = arrive();
    cursor = (cursor + 1) % ids.size();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PeerSlabChurnMap)->Arg(1 << 10)->Arg(1 << 14);

// util::Rng sampler cost, new (owned xoshiro256** + specified samplers)
// vs old (std::mt19937_64 + std::*_distribution, kept here as the
// reference). The swap bought cross-toolchain byte-stable streams; these
// benches keep its hot-path cost visible — workload generation draws one
// exponential per arrival and one uniform per chunk hop.

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RngUniformStd(benchmark::State& state) {
  std::mt19937_64 engine(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(dist(engine));
}
BENCHMARK(BM_RngUniformStd);

void BM_RngUniformInt(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(0, 19));
}
BENCHMARK(BM_RngUniformInt);

void BM_RngUniformIntStd(benchmark::State& state) {
  std::mt19937_64 engine(42);
  std::uniform_int_distribution<int> dist(0, 19);
  for (auto _ : state) benchmark::DoNotOptimize(dist(engine));
}
BENCHMARK(BM_RngUniformIntStd);

void BM_RngExponential(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(4.0));
}
BENCHMARK(BM_RngExponential);

void BM_RngExponentialStd(benchmark::State& state) {
  std::mt19937_64 engine(42);
  std::exponential_distribution<double> dist(0.25);
  for (auto _ : state) benchmark::DoNotOptimize(dist(engine));
}
BENCHMARK(BM_RngExponentialStd);

void BM_RngNormal(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
}
BENCHMARK(BM_RngNormal);

void BM_RngNormalStd(benchmark::State& state) {
  std::mt19937_64 engine(42);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(dist(engine));
}
BENCHMARK(BM_RngNormalStd);

void BM_RngWeightedIndex(benchmark::State& state) {
  util::Rng rng(42);
  const std::vector<double> weights{1.0, 3.0, 6.0, 2.0, 8.0};
  for (auto _ : state) benchmark::DoNotOptimize(rng.weighted_index(weights));
}
BENCHMARK(BM_RngWeightedIndex);

void BM_RngDerive(benchmark::State& state) {
  const util::Rng root(42);
  std::uint64_t id = 0;
  for (auto _ : state) {
    util::Rng derived = root.derive(7, id++);
    benchmark::DoNotOptimize(derived.next_u64());
  }
}
BENCHMARK(BM_RngDerive);

void BM_ServicePoolChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long completions = 0;
    vod::ServicePool pool(sim, 1'250'000.0,
                          [&](const vod::ServicePool::Completion&) {
                            ++completions;
                          });
    pool.set_capacity(5e6, 5e6);
    for (int i = 0; i < 200; ++i) {
      pool.add_job(15e6, static_cast<std::uint64_t>(i));
    }
    sim.run_all();
    benchmark::DoNotOptimize(completions);
  }
}
BENCHMARK(BM_ServicePoolChurn)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
