// Ablation: heterogeneous peer upload classes — the paper's Sec. IV-C
// extension ("the analysis can be readily extended to cases with
// heterogeneous bandwidths"), quantified.
//
// Questions answered analytically (no simulation):
//   1. How much does discretizing the paper's Pareto uplink into G classes
//      change predicted peer supply vs the homogeneous mean-field (G = 1)?
//   2. Does *inequality* (same mean, more spread) change how much the cloud
//      must provision — and if not, what does it change?
// Plus end to end on the sweep engine (part 3): the ablation_hetero golden
// preset's uplink_shape axis varies the Pareto tail at fixed mean through
// full simulations. `tool_sweep --golden=ablation_hetero` replays the
// downsized grid.
//
// Flags: --rate=0.1 --chunks=20 --classes=8 --e2e=true
//        --hours=12 --warmup=2 --seed=42 --threads=<hardware>
//        --out=results/ablation_hetero

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/hetero.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "core/params.h"
#include "expr/flags.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

using namespace cloudmedia;

namespace {

struct Channel {
  util::Matrix transfer;
  core::ChannelCapacityPlan capacity;
  std::vector<double> population;
};

Channel make_channel(const core::VodParameters& params, double arrival_rate) {
  const workload::ViewingBehavior behavior;
  Channel ch;
  ch.transfer = behavior.transfer_matrix(params.chunks_per_video);
  const std::vector<double> lambda = core::solve_traffic_equations(
      ch.transfer, behavior.entry_distribution(params.chunks_per_video),
      arrival_rate);
  ch.capacity =
      core::CapacityPlanner(params, core::CapacityModel::kChannelPooled)
          .plan(lambda);
  ch.population.resize(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    ch.population[i] = lambda[i] * params.chunk_duration;
  }
  return ch;
}

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double rate = flags.get("rate", 0.1);
  const int max_classes = flags.get("classes", 8);

  core::VodParameters params;
  params.chunks_per_video = flags.get("chunks", 20);
  const Channel ch = make_channel(params, rate);
  const double requirement = ch.capacity.total_bandwidth / 1e6 * 8.0;

  // The paper's Pareto uplink, rescaled to mean = streaming rate (the
  // Fig.-11 midpoint; see DESIGN.md).
  const workload::BoundedPareto pareto =
      workload::BoundedPareto(22'500.0, 1'250'000.0, 3.0)
          .scaled_to_mean(params.streaming_rate);

  std::printf("Ablation: heterogeneous peer classes (channel rate %.3f/s, "
              "requirement %.1f Mbps, Pareto uplink mean = r)\n\n",
              rate, requirement);

  // --- part 1: class-count convergence ------------------------------------
  std::printf("Part 1: Pareto uplink discretized into G quantile classes\n");
  std::printf("%8s %14s %14s %12s\n", "G", "peer (Mbps)", "cloud (Mbps)",
              "vs G=1");
  double mean_field_supply = 0.0;
  for (int g = 1; g <= max_classes; g *= 2) {
    const auto classes = core::classes_from_quantiles(
        [&](double u) { return pareto.quantile(u); }, g, 256);
    const auto out = core::solve_hetero_p2p_supply(
        ch.transfer, ch.capacity, ch.population, classes,
        params.streaming_rate);
    const double supply = total(out.peer_supply) / 1e6 * 8.0;
    const double residual = total(out.cloud_residual) / 1e6 * 8.0;
    if (g == 1) mean_field_supply = supply;
    std::printf("%8d %14.1f %14.1f %+11.1f%%\n", g, supply, residual,
                mean_field_supply > 0.0
                    ? 100.0 * (supply / mean_field_supply - 1.0)
                    : 0.0);
  }
  std::printf("(G = 1 is the paper's homogeneous mean-field; growing G "
              "converges to the true Pareto mix)\n\n");

  // --- part 2: inequality at constant mean ---------------------------------
  std::printf("Part 2: two classes, mean fixed at r, spread varied\n");
  std::printf("%26s %14s %14s %10s\n", "mix (share@upload)", "peer (Mbps)",
              "cloud (Mbps)", "fast-share");
  const double r = params.streaming_rate;
  struct Mix {
    double slow_share, slow_upload;
  };
  for (const Mix mix : {Mix{0.0, r}, Mix{0.5, 0.6 * r}, Mix{0.7, 0.5 * r},
                        Mix{0.9, 0.4 * r}, Mix{0.95, 0.2 * r}}) {
    std::vector<core::PeerClass> classes;
    double fast_upload = r;
    if (mix.slow_share <= 0.0) {
      classes = {{"all", r, 1.0}};
    } else {
      fast_upload =
          (r - mix.slow_share * mix.slow_upload) / (1.0 - mix.slow_share);
      classes = {{"slow", mix.slow_upload, mix.slow_share},
                 {"fast", fast_upload, 1.0 - mix.slow_share}};
    }
    const auto out = core::solve_hetero_p2p_supply(
        ch.transfer, ch.capacity, ch.population, classes,
        params.streaming_rate);
    double fast_share = 0.0;
    if (classes.size() == 2 && total(out.peer_supply) > 0.0) {
      double fast_total = 0.0;
      for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
        fast_total += out.class_supply(1, i);
      }
      fast_share = fast_total / total(out.peer_supply);
    }
    std::printf("  %4.0f%%@%.1fr + %4.0f%%@%.1fr %14.1f %14.1f %9.2f\n",
                100.0 * mix.slow_share, mix.slow_upload / r,
                100.0 * (1.0 - mix.slow_share), fast_upload / r,
                total(out.peer_supply) / 1e6 * 8.0,
                total(out.cloud_residual) / 1e6 * 8.0, fast_share);
  }

  std::printf(
      "\nreading: aggregate peer supply is INVARIANT to spread at fixed "
      "mean — under the equal-utilization allocation all classes drain at "
      "the same fractional rate, so only the population-weighted mean "
      "enters the totals. The paper's homogeneous Eqn. (5) is therefore "
      "exact on cloud residuals even for Pareto uplinks (part 1 confirms "
      "numerically). What heterogeneity changes is the *composition*: the "
      "fast-share column shows a shrinking minority of peers carrying a "
      "growing share of the upload — the accounting a provider needs for "
      "per-class incentives or quotas, invisible to the mean-field.\n");

  if (!flags.get("e2e", true)) return 0;

  // --- part 3: end to end on the sweep engine ------------------------------
  profile::Profile prof = sweep::golden_preset("ablation_hetero").profile;
  prof.warmup_hours = 2.0;
  prof.measure_hours = 12.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  std::printf("\nPart 3: full simulations, Pareto tail varied at fixed mean "
              "(P2P, %.0f h per point, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));
  std::printf("%14s %12s %12s %12s %9s\n", "Pareto shape", "reserved",
              "cloud used", "peer used", "quality");

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  for (const sweep::RunSummary& run : result.runs) {
    std::printf("%14s %12.1f %12.1f %12.1f %9.3f\n",
                run.point.coords.back().second.c_str(),
                run.mean_reserved_mbps, run.mean_used_cloud_mbps,
                run.mean_used_peer_mbps, run.mean_quality);
  }
  std::printf("(each shape draws a different peer population — rows are "
              "independently seeded — but cloud bandwidth should stay in "
              "the same band: the mean, not the spread, is what the cloud "
              "sees)\n");

  const std::string out =
      flags.get("out", std::string("results/ablation_hetero"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
