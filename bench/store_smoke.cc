// Streaming results-store gate: runs a ~10k-cell grid through SweepRunner
// twice — once streaming rows through store::ResultsStore, once buffered
// with keep_results — and emits BENCH_store.json (cells/s and peak RSS for
// both) so the store's perf trajectory is visible across PRs.
//
// Two assertions make this a gate rather than a report:
//   1. Flatness: a small warm-up grid runs first; streaming the full grid
//      (16x more cells) must not grow peak RSS past kFlatFactor of the
//      warm-up's — the bounded buffer, not the grid, sets the footprint.
//   2. Separation: the buffered keep_results replay must peak at least
//      kBufferedFactor above the streaming run — if it doesn't, either
//      keep_results stopped retaining or the streaming path started
//      buffering, and both are regressions worth failing on.
// Peak RSS (getrusage) is monotonic, so phase order is load-bearing:
// small streaming, full streaming, then buffered last.
//
// Under ASan/UBSan the asserts are skipped (shadow memory distorts RSS);
// the sanitize job still exercises the store's threading end to end.
//
// Flags: --cells=10000 --hours=0.25 --warmup=0 --threads=<hardware>
//        --seed=42 --out=BENCH_store.json --store-out=results/store_smoke

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "profile/profile.h"
#include "store/results_store.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rss.h"

using namespace cloudmedia;

namespace {

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

constexpr double kFlatFactor = 2.0;      // full/small streaming peak bound
constexpr double kBufferedFactor = 4.0;  // buffered/streaming peak floor

/// An `arrival x channels` grid of about `cells` cells. The arrival axis is
/// workload-shaping, so every cell simulates a distinct viewer population —
/// no cell is a cached replay of another.
sweep::ParamGrid make_grid(std::size_t cells) {
  const std::vector<std::string> channel_values = {"4", "8"};
  const std::size_t arrivals =
      std::max<std::size_t>(1, cells / channel_values.size());
  std::vector<std::string> arrival_values;
  arrival_values.reserve(arrivals);
  for (std::size_t i = 0; i < arrivals; ++i) {
    const double rate =
        0.3 + 0.4 * static_cast<double>(i) /
                  static_cast<double>(std::max<std::size_t>(1, arrivals - 1));
    arrival_values.push_back(util::format_number(rate));
  }
  sweep::ParamGrid grid;
  grid.add_axis("arrival", std::move(arrival_values));
  grid.add_axis("channels", channel_values);
  return grid;
}

struct PhaseResult {
  double wall_seconds = 0.0;
  double cells_per_sec = 0.0;
  double peak_rss_mb = 0.0;  // process high-water *after* the phase
};

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  const long long cells_flag = flags.get_ll("cells", 10000);
  if (cells_flag < 32) {
    throw util::PreconditionError("--cells must be >= 32");
  }
  const auto cells = static_cast<std::size_t>(cells_flag);

  profile::Profile prof;
  prof.scenario = "baseline_diurnal";
  prof.warmup_hours = 0.0;
  prof.measure_hours = 0.25;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);
  // Densify the series so the buffered run's footprint reflects what
  // keep_results actually costs at scale (60 s sampling on a 15-minute
  // horizon would retain almost nothing).
  spec.customize = [](expr::ExperimentConfig& config) {
    config.streaming.sample_interval = 30.0;
  };

  const unsigned threads =
      spec.threads ? spec.threads : sweep::ThreadPool::default_threads();
  const std::string store_out =
      flags.get("store-out", std::string("results/store_smoke"));

  const auto run_streaming = [&](std::size_t n,
                                 const std::string& base) -> PhaseResult {
    sweep::SweepSpec streaming = spec;
    streaming.grid = make_grid(n);
    store::StoreOptions options;
    options.base = base;
    store::ResultsStore results_store(options, streaming);
    streaming.sink = results_store.sink();
    const auto t0 = std::chrono::steady_clock::now();
    (void)sweep::SweepRunner::run(streaming);
    results_store.finish();
    PhaseResult phase;
    phase.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Measure before finalize(): while the sweep runs, only the bounded
    // buffer is resident — finalize()'s grid-order reassembly is the one
    // step that holds all (scalar) rows, and it is excluded from the
    // flatness claim on purpose.
    phase.peak_rss_mb = util::peak_rss_mb();
    const sweep::SweepResult result = results_store.finalize();
    CM_ENSURES(result.runs.size() == streaming.grid.num_points());
    CM_ENSURES(results_store.rows_written() == result.runs.size());
    phase.cells_per_sec =
        static_cast<double>(result.runs.size()) / phase.wall_seconds;
    return phase;
  };

  // Phase 1 — small streaming grid: allocator/thread-pool warm-up and the
  // flatness baseline.
  const std::size_t small_cells = std::max<std::size_t>(16, cells / 16);
  const PhaseResult small = run_streaming(small_cells, store_out + "_small");
  std::printf("store_smoke: warm-up %zu cells | %.0f cells/s | peak rss %.1f MB\n",
              small_cells, small.cells_per_sec, small.peak_rss_mb);

  // Phase 2 — the full grid, streaming.
  const PhaseResult streaming = run_streaming(cells, store_out);
  std::printf("  streaming %zu cells: %.2f s | %.0f cells/s | peak rss %.1f MB\n",
              cells, streaming.wall_seconds, streaming.cells_per_sec,
              streaming.peak_rss_mb);

  // Phase 3 — the same grid, buffered with keep_results (the old
  // small-grid figure-bench mode), holding every run's series resident.
  sweep::SweepSpec buffered = spec;
  buffered.grid = make_grid(cells);
  buffered.keep_results = true;
  PhaseResult buffered_phase;
  std::size_t retained_samples = 0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const sweep::SweepResult result = sweep::SweepRunner::run(buffered);
    buffered_phase.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    buffered_phase.cells_per_sec =
        static_cast<double>(result.runs.size()) / buffered_phase.wall_seconds;
    buffered_phase.peak_rss_mb = util::peak_rss_mb();  // result still live
    for (const expr::ExperimentResult& run : result.results) {
      retained_samples += run.metrics.total_samples();
    }
  }
  std::printf(
      "  buffered  %zu cells: %.2f s | %.0f cells/s | peak rss %.1f MB | "
      "%zu retained samples\n",
      cells, buffered_phase.wall_seconds, buffered_phase.cells_per_sec,
      retained_samples ? buffered_phase.peak_rss_mb : 0.0, retained_samples);

  const double flat_ratio = streaming.peak_rss_mb / small.peak_rss_mb;
  const double buffered_ratio =
      buffered_phase.peak_rss_mb / streaming.peak_rss_mb;
  std::printf("  peak rss: full/small streaming %.2fx (gate < %.1fx), "
              "buffered/streaming %.2fx (gate >= %.1fx)%s\n",
              flat_ratio, kFlatFactor, buffered_ratio, kBufferedFactor,
              kSanitized ? " [sanitized build: gates skipped]" : "");
  if (!kSanitized) {
    CM_ENSURES(retained_samples > 0);
    CM_ENSURES(flat_ratio < kFlatFactor);
    CM_ENSURES(buffered_ratio >= kBufferedFactor);
  }

  util::JsonValue bench = util::JsonValue::object();
  bench["bench"] = "store_smoke";
  bench["cells"] = static_cast<double>(cells);
  bench["threads"] = static_cast<double>(threads);
  bench["measure_hours"] = spec.measure_hours;
  bench["streaming_wall_seconds"] = streaming.wall_seconds;
  bench["streaming_cells_per_sec"] = streaming.cells_per_sec;
  bench["streaming_peak_rss_mb"] = streaming.peak_rss_mb;
  bench["buffered_wall_seconds"] = buffered_phase.wall_seconds;
  bench["buffered_cells_per_sec"] = buffered_phase.cells_per_sec;
  bench["buffered_peak_rss_mb"] = buffered_phase.peak_rss_mb;
  bench["buffered_retained_samples"] = static_cast<double>(retained_samples);
  bench["rss_flat_ratio"] = flat_ratio;
  bench["rss_buffered_over_streaming"] = buffered_ratio;
  bench["sanitized"] = kSanitized;
  const std::string out = flags.get("out", std::string("BENCH_store.json"));
  util::write_json_file(out, bench);
  std::printf("[json] %s\n", out.c_str());
  return 0;
}
