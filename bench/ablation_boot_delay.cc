// Ablation: VM provisioning latency. Sec. VI-C measures ~25 s to boot a VM
// (shutdown faster) and argues that parallel boots make provisioning
// latency negligible for a VoD application. We sweep the boot delay from
// instant to 30 minutes and measure what latency level would actually
// start hurting the hourly control loop.
//
// Flags: --hours=24 --seed=42

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 24.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  std::printf("Ablation: VM boot latency (client-server, %.0f h per point, "
              "seed %llu; paper measures ~%.0f s)\n",
              hours, static_cast<unsigned long long>(seed),
              expr::paper::kVmBootSeconds);
  std::printf("\n%12s %9s %12s %12s %10s\n", "boot delay", "quality",
              "late frac", "reserved", "$/h");

  for (double delay : {0.0, 25.0, 120.0, 600.0, 1800.0}) {
    expr::ExperimentConfig cfg =
        expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
    cfg.vm_boot_delay = delay;
    cfg.warmup_hours = 2.0;
    cfg.measure_hours = hours;
    cfg.seed = seed;
    const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
    const double late_fraction =
        r.metrics.counters.chunk_downloads > 0
            ? static_cast<double>(r.metrics.counters.late_downloads) /
                  static_cast<double>(r.metrics.counters.chunk_downloads)
            : 0.0;
    std::printf("%10.0f s %9.3f %12.4f %9.0f Mb %10.2f\n", delay,
                r.mean_quality(), late_fraction, r.mean_reserved_mbps(),
                r.mean_vm_cost_rate());
  }

  std::printf("\nreading: against a 1-hour provisioning interval and a\n"
              "5-minute playback deadline, the paper's 25-second boot is\n"
              "indeed negligible — latency only bites once it reaches the\n"
              "scale of the chunk deadline (minutes), validating Sec. VI-C's\n"
              "\"timely service provisioning\" claim.\n");
  return 0;
}
