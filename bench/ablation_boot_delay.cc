// Ablation: VM provisioning latency. Sec. VI-C measures ~25 s to boot a VM
// (shutdown faster) and argues that parallel boots make provisioning
// latency negligible for a VoD application. We sweep the boot delay from
// instant to 30 minutes and measure what latency level would actually
// start hurting the hourly control loop.
//
// Runs on the sweep engine: the ablation_boot_delay golden preset's
// boot_delay={0..1800} axis at paper horizons. boot_delay is system-side,
// so every row faces the byte-identical workload — the latency penalty is
// the only thing that moves.
// `tool_sweep --golden=ablation_boot_delay` replays the downsized grid.
//
// Flags: --hours=24 --warmup=2 --seed=42 --threads=<hardware>
//        --out=results/ablation_boot_delay

#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("ablation_boot_delay").profile;
  prof.warmup_hours = 2.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // late-retrieval counters per row
  spec.apply_flags(flags);

  std::printf("Ablation: VM boot latency (client-server, %.0f h per point, "
              "seed %llu; paper measures ~%.0f s)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed),
              expr::paper::kVmBootSeconds);
  std::printf("\n%12s %9s %12s %12s %10s\n", "boot delay", "quality",
              "late frac", "reserved", "$/h");

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  for (std::size_t k = 0; k < result.runs.size(); ++k) {
    const sweep::RunSummary& run = result.runs[k];
    const expr::ExperimentResult& r = result.results[k];
    const double late_fraction =
        r.metrics.counters.chunk_downloads > 0
            ? static_cast<double>(r.metrics.counters.late_downloads) /
                  static_cast<double>(r.metrics.counters.chunk_downloads)
            : 0.0;
    std::printf("%10s s %9.3f %12.4f %9.0f Mb %10.2f\n",
                run.point.coords.back().second.c_str(), run.mean_quality,
                late_fraction, run.mean_reserved_mbps,
                r.mean_vm_cost_rate());
  }

  const std::string out =
      flags.get("out", std::string("results/ablation_boot_delay"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf("\nreading: against a 1-hour provisioning interval and a\n"
              "5-minute playback deadline, the paper's 25-second boot is\n"
              "indeed negligible — latency only bites once it reaches the\n"
              "scale of the chunk deadline (minutes), validating Sec. VI-C's\n"
              "\"timely service provisioning\" claim.\n");
  return 0;
}
