// Figure 11 (+ Sec. VI-D): "Average streaming quality with P2P VoD at
// different ratios of peer average upload capacity over the streaming
// rate" — the paper sweeps ratios 0.9 / 1.0 / 1.2 and reports average
// qualities 0.95 / 0.95 / 1.0. It also notes (plot omitted) that "less
// cloud resource is needed when peer average upload capacity is larger";
// we print that series too.
//
// Flags: --hours=72 --warmup=4 --seed=42 --ratios=0.9,1.0,1.2

#include <cstdio>
#include <sstream>
#include <vector>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 72.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  std::vector<double> ratios;
  {
    std::stringstream list(flags.get("ratios", std::string("0.9,1.0,1.2")));
    std::string token;
    while (std::getline(list, token, ',')) ratios.push_back(std::stod(token));
  }

  std::printf("Figure 11: P2P streaming quality vs peer bandwidth "
              "sufficiency (%.0f h per ratio, seed %llu)\n",
              hours, static_cast<unsigned long long>(seed));

  std::vector<expr::ExperimentResult> results;
  results.reserve(ratios.size());
  for (double ratio : ratios) {
    expr::ExperimentConfig cfg =
        expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
    cfg.workload.uplink_mean_ratio = ratio;
    cfg.warmup_hours = flags.get("warmup", 4.0);
    cfg.measure_hours = hours;
    cfg.seed = seed;
    results.push_back(expr::ExperimentRunner::run(cfg));
  }

  std::vector<expr::SeriesColumn> columns;
  std::vector<std::string> names;
  for (double ratio : ratios) {
    names.push_back("ratio " + std::to_string(ratio).substr(0, 4));
  }
  for (std::size_t k = 0; k < results.size(); ++k) {
    columns.push_back({names[k], &results[k].metrics.quality});
  }
  expr::print_series_table("Fig. 11 series (quality, 4-hour buckets)", columns,
                           results[0].measure_start, results[0].measure_end,
                           4.0 * 3600.0, "fig11_peer_bandwidth_sufficiency");

  std::printf("\n-- paper comparison (avg streaming quality) --\n");
  for (std::size_t k = 0; k < ratios.size(); ++k) {
    double paper_value = -1.0;
    for (std::size_t p = 0; p < expr::paper::kFig11Ratios.size(); ++p) {
      if (std::abs(expr::paper::kFig11Ratios[p] - ratios[k]) < 1e-9) {
        paper_value = expr::paper::kFig11Quality[p];
      }
    }
    if (paper_value >= 0.0) {
      expr::print_paper_comparison("quality at " + names[k],
                                   results[k].mean_quality(), paper_value, "");
    } else {
      std::printf("quality at %-34s measured %10.3f\n", names[k].c_str(),
                  results[k].mean_quality());
    }
  }

  std::printf("\n-- Sec. VI-D companion (cloud demand falls as peers get "
              "stronger) --\n");
  std::printf("%-12s %16s %16s %14s\n", "ratio", "reserved (Mbps)",
              "cloud used (Mbps)", "VM cost ($/h)");
  for (std::size_t k = 0; k < ratios.size(); ++k) {
    std::printf("%-12.2f %16.1f %16.1f %14.2f\n", ratios[k],
                results[k].mean_reserved_mbps(),
                results[k].mean_used_cloud_mbps(),
                results[k].mean_vm_cost_rate());
  }
  std::printf("quality is \"satisfactory in all cases\" (paper) — cloud "
              "provisioning absorbs whatever the overlay cannot supply.\n");
  return 0;
}
