// Figure 11 (+ Sec. VI-D): "Average streaming quality with P2P VoD at
// different ratios of peer average upload capacity over the streaming
// rate" — the paper sweeps ratios 0.9 / 1.0 / 1.2 and reports average
// qualities 0.95 / 0.95 / 1.0. It also notes (plot omitted) that "less
// cloud resource is needed when peer average upload capacity is larger";
// we print that series too.
//
// Runs on the sweep engine: the fig11_peer_sufficiency golden preset's
// mode={p2p} × uplink_ratio={0.9,1,1.2} grid at paper horizons. The ratio
// axis is workload-shaping (each ratio draws a different peer population),
// so each column gets its own derived seed, as in the paper's setup.
// Other ratios: `tool_sweep --scenario=baseline_diurnal --grid mode=p2p
// --grid uplink_ratio=...`.
//
// Flags: --hours=72 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/fig11_summary

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig11_peer_sufficiency").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 72.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the quality series per ratio
  spec.apply_flags(flags);

  const std::vector<std::string>& ratios = spec.grid.axes().back().values;

  std::printf("Figure 11: P2P streaming quality vs peer bandwidth "
              "sufficiency (%.0f h per ratio, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);

  std::vector<expr::SeriesColumn> columns;
  std::vector<std::string> names;
  for (const std::string& ratio : ratios) names.push_back("ratio " + ratio);
  for (std::size_t k = 0; k < result.results.size(); ++k) {
    columns.push_back({names[k], &result.results[k].metrics.quality});
  }
  expr::print_series_table("Fig. 11 series (quality, 4-hour buckets)", columns,
                           result.results[0].measure_start,
                           result.results[0].measure_end, 4.0 * 3600.0,
                           "fig11_peer_bandwidth_sufficiency");

  std::printf("\n-- paper comparison (avg streaming quality) --\n");
  for (std::size_t k = 0; k < ratios.size(); ++k) {
    const double ratio = std::stod(ratios[k]);
    double paper_value = -1.0;
    for (std::size_t p = 0; p < expr::paper::kFig11Ratios.size(); ++p) {
      if (std::abs(expr::paper::kFig11Ratios[p] - ratio) < 1e-9) {
        paper_value = expr::paper::kFig11Quality[p];
      }
    }
    if (paper_value >= 0.0) {
      expr::print_paper_comparison("quality at " + names[k],
                                   result.runs[k].mean_quality, paper_value,
                                   "");
    } else {
      std::printf("quality at %-34s measured %10.3f\n", names[k].c_str(),
                  result.runs[k].mean_quality);
    }
  }

  std::printf("\n-- Sec. VI-D companion (cloud demand falls as peers get "
              "stronger) --\n");
  std::printf("%-12s %16s %16s %14s\n", "ratio", "reserved (Mbps)",
              "cloud used (Mbps)", "VM cost ($/h)");
  for (std::size_t k = 0; k < result.runs.size(); ++k) {
    std::printf("%-12s %16.1f %16.1f %14.2f\n", ratios[k].c_str(),
                result.runs[k].mean_reserved_mbps,
                result.runs[k].mean_used_cloud_mbps,
                result.results[k].mean_vm_cost_rate());
  }
  std::printf("quality is \"satisfactory in all cases\" (paper) — cloud "
              "provisioning absorbs whatever the overlay cannot supply.\n");

  const std::string out = flags.get("out", std::string("results/fig11_summary"));
  result.write(out);
  std::printf("[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
