// Figure 4: "Cloud capacity provisioning vs. usage" — hourly reserved and
// actually-used cloud bandwidth over ~100 hours, for the client-server and
// P2P deployments on the same workload.
//
// Paper shape to reproduce: reserved tracks (and stays above) used through
// the diurnal swings and flash crowds; the P2P curves sit roughly an order
// of magnitude below the client-server ones.
//
// Flags: --hours=100 --warmup=4 --seed=42

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 100.0);
  const double warmup = flags.get("warmup", 4.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  auto run_mode = [&](core::StreamingMode mode) {
    expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
    cfg.warmup_hours = warmup;
    cfg.measure_hours = hours;
    cfg.seed = seed;
    return expr::ExperimentRunner::run(cfg);
  };

  std::printf("Figure 4: cloud capacity provisioning vs usage "
              "(%.0f h measured after %.0f h warmup, seed %llu)\n",
              hours, warmup, static_cast<unsigned long long>(seed));
  const expr::ExperimentResult cs = run_mode(core::StreamingMode::kClientServer);
  const expr::ExperimentResult p2p = run_mode(core::StreamingMode::kP2p);

  expr::print_series_table(
      "Fig. 4 series (Mbps, hourly means)",
      {{"C/S reserved", &cs.metrics.reserved_mbps},
       {"C/S used", &cs.metrics.used_cloud_mbps},
       {"P2P reserved", &p2p.metrics.reserved_mbps},
       {"P2P used", &p2p.metrics.used_cloud_mbps}},
      cs.measure_start, cs.measure_end, 3600.0, "fig04_capacity_provisioning");

  std::printf("\n-- summary over the measurement window --\n");
  std::printf("%-34s %12s %12s\n", "", "C/S", "P2P");
  std::printf("%-34s %12.1f %12.1f\n", "mean reserved (Mbps)",
              cs.mean_reserved_mbps(), p2p.mean_reserved_mbps());
  std::printf("%-34s %12.1f %12.1f\n", "mean used (Mbps)",
              cs.mean_used_cloud_mbps(), p2p.mean_used_cloud_mbps());
  std::printf("%-34s %12.1f %12.1f\n", "peak reserved (Mbps)",
              cs.metrics.reserved_mbps.max_value(),
              p2p.metrics.reserved_mbps.max_value());
  std::printf("%-34s %12.3f %12.3f\n", "reserved >= used (fraction of time)",
              cs.reserved_covers_used_fraction(),
              p2p.reserved_covers_used_fraction());
  std::printf("%-34s %12.1f %12.1f\n", "avg concurrent users",
              cs.mean_concurrent_users(), p2p.mean_concurrent_users());
  std::printf("%-34s %12s %12.1f\n", "peer-served bandwidth (Mbps)", "-",
              p2p.mean_used_peer_mbps());
  std::printf("\nC/S / P2P reserved-bandwidth ratio: %.1fx "
              "(paper Fig. 4 shows roughly an order of magnitude)\n",
              cs.mean_reserved_mbps() / p2p.mean_reserved_mbps());
  std::printf("paper context: curves oscillate in the 0-%0.0f Mbps band over "
              "~100 h with provisioning above usage throughout\n",
              expr::paper::kFig4MaxMbps);
  return 0;
}
