// Figure 4: "Cloud capacity provisioning vs. usage" — hourly reserved and
// actually-used cloud bandwidth over ~100 hours, for the client-server and
// P2P deployments on the same workload.
//
// Paper shape to reproduce: reserved tracks (and stays above) used through
// the diurnal swings and flash crowds; the P2P curves sit roughly an order
// of magnitude below the client-server ones.
//
// Runs on the sweep engine: the fig04_provisioning golden preset's
// mode={cs,p2p} grid at paper horizons, both cells sharing one derived
// seed (mode is system-side) so the two deployments face the
// byte-identical viewer population. `tool_sweep --golden=fig04_provisioning`
// replays the downsized golden schedule of the same grid.
//
// Flags: --hours=100 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/fig04_capacity_provisioning

#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig04_provisioning").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 100.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the series tables need the full metrics
  spec.apply_flags(flags);

  std::printf("Figure 4: cloud capacity provisioning vs usage "
              "(%.0f h measured after %.0f h warmup, seed %llu)\n",
              spec.measure_hours, spec.warmup_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& cs = result.results[0];   // mode=cs
  const expr::ExperimentResult& p2p = result.results[1];  // mode=p2p

  expr::print_series_table(
      "Fig. 4 series (Mbps, hourly means)",
      {{"C/S reserved", &cs.metrics.reserved_mbps},
       {"C/S used", &cs.metrics.used_cloud_mbps},
       {"P2P reserved", &p2p.metrics.reserved_mbps},
       {"P2P used", &p2p.metrics.used_cloud_mbps}},
      cs.measure_start, cs.measure_end, 3600.0, "fig04_capacity_provisioning");

  std::printf("\n-- summary over the measurement window --\n");
  std::printf("%-34s %12s %12s\n", "", "C/S", "P2P");
  std::printf("%-34s %12.1f %12.1f\n", "mean reserved (Mbps)",
              cs.mean_reserved_mbps(), p2p.mean_reserved_mbps());
  std::printf("%-34s %12.1f %12.1f\n", "mean used (Mbps)",
              cs.mean_used_cloud_mbps(), p2p.mean_used_cloud_mbps());
  std::printf("%-34s %12.1f %12.1f\n", "peak reserved (Mbps)",
              cs.metrics.reserved_mbps.max_value(),
              p2p.metrics.reserved_mbps.max_value());
  std::printf("%-34s %12.3f %12.3f\n", "reserved >= used (fraction of time)",
              cs.reserved_covers_used_fraction(),
              p2p.reserved_covers_used_fraction());
  std::printf("%-34s %12.1f %12.1f\n", "avg concurrent users",
              cs.mean_concurrent_users(), p2p.mean_concurrent_users());
  std::printf("%-34s %12s %12.1f\n", "peer-served bandwidth (Mbps)", "-",
              p2p.mean_used_peer_mbps());
  std::printf("\nC/S / P2P reserved-bandwidth ratio: %.1fx "
              "(paper Fig. 4 shows roughly an order of magnitude)\n",
              cs.mean_reserved_mbps() / p2p.mean_reserved_mbps());
  std::printf("paper context: curves oscillate in the 0-%0.0f Mbps band over "
              "~100 h with provisioning above usage throughout\n",
              expr::paper::kFig4MaxMbps);

  const std::string out =
      flags.get("out", std::string("results/fig04_capacity_provisioning"));
  result.write(out);
  std::printf("[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
