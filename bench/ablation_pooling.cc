// Ablation: per-chunk literal vs channel-pooled Erlang sizing.
//
// The paper's Sec. IV-B sizes every chunk queue separately with an integer
// m_i — which reserves at least one whole VM-bandwidth R per active chunk.
// Its Sec. V-A2 then lets one VM serve several consecutive chunks, i.e. the
// deployed system pools a channel's VMs. This bench quantifies why that
// pooling is load-bearing: at the paper's own scale (20 channels × 20
// chunks) the literal sizing needs 2-3x the bandwidth of the pooled sizing
// and overflows Table II's 150 VMs outright.
//
// Flags: none (pure analysis; runs in milliseconds)

#include <cstdio>
#include <vector>

#include "core/capacity.h"
#include "core/jackson.h"
#include "core/params.h"
#include "util/units.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

using namespace cloudmedia;

int main() {
  const core::VodParameters params;
  const workload::ViewingBehavior behavior;
  const util::Matrix transfer = behavior.transfer_matrix(params.chunks_per_video);
  const std::vector<double> entry =
      behavior.entry_distribution(params.chunks_per_video);

  const core::CapacityPlanner literal(params,
                                      core::CapacityModel::kPerChunkLiteral);
  const core::CapacityPlanner pooled(params,
                                     core::CapacityModel::kChannelPooled);

  std::printf("Ablation: per-chunk literal vs channel-pooled VM sizing\n\n");
  std::printf("%14s %16s %16s %12s\n", "channel rate", "literal (VMs)",
              "pooled (VMs)", "literal/pooled");
  for (double rate : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const std::vector<double> lambdas =
        core::solve_traffic_equations(transfer, entry, rate);
    const int lit = literal.plan(lambdas).total_servers;
    const int pool = pooled.plan(lambdas).total_servers;
    std::printf("%11.3f/s %16d %16d %12.2f\n", rate, lit, pool,
                static_cast<double>(lit) / pool);
  }

  // Paper scale: 20 Zipf channels at the default aggregate arrival rate.
  const std::vector<double> weights = workload::zipf_weights(20, 1.0);
  const double total_rate = 1.1;
  int literal_total = 0, pooled_total = 0;
  for (double w : weights) {
    const std::vector<double> lambdas =
        core::solve_traffic_equations(transfer, entry, total_rate * w);
    literal_total += literal.plan(lambdas).total_servers;
    pooled_total += pooled.plan(lambdas).total_servers;
  }
  std::printf("\npaper scale (20 Zipf channels, %.1f users/s aggregate):\n",
              total_rate);
  std::printf("  literal sizing : %4d VMs = %6.0f Mbps\n", literal_total,
              util::to_mbps(params.vm_bandwidth) * literal_total);
  std::printf("  pooled sizing  : %4d VMs = %6.0f Mbps\n", pooled_total,
              util::to_mbps(params.vm_bandwidth) * pooled_total);
  std::printf("  Table II total : 150 VMs = 1500 Mbps\n");
  std::printf("  => literal sizing %s Table II's capacity; pooled fits. The\n"
              "     paper's Fig. 4 reserved curve (~1-2.2 Gbps) is only\n"
              "     reachable with pooling — see DESIGN.md.\n",
              literal_total > 150 ? "OVERFLOWS" : "fits");
  std::printf("\nnote: both models target the same per-queue sojourn bound\n"
              "E[n] <= lambda*T0; pooling wins by statistical multiplexing —\n"
              "one Erlang headroom per channel instead of per chunk.\n");
  return 0;
}
