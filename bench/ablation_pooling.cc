// Ablation: per-chunk literal vs channel-pooled Erlang sizing.
//
// The paper's Sec. IV-B sizes every chunk queue separately with an integer
// m_i — which reserves at least one whole VM-bandwidth R per active chunk.
// Its Sec. V-A2 then lets one VM serve several consecutive chunks, i.e. the
// deployed system pools a channel's VMs. This bench quantifies why that
// pooling is load-bearing, end to end: a capacity={literal,pooled} ×
// arrival-rate grid on the sweep engine, every cell a full Simulator +
// StreamingSystem run. Both cells of an arrival column share a seed
// (capacity is a system-side axis), so the reserved-bandwidth gap is pure
// sizing policy. At the paper's own scale the literal sizing needs 2-3x
// the pooled bandwidth and overflows Table II's 150 VMs outright.
//
// Flags: --hours=12 --warmup=2 --seed=42 --threads=<hardware>
//        --out=results/ablation_pooling

#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "profile/profile.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "util/units.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof;
  prof.scenario = "baseline_diurnal";
  prof.grid.add_axis("capacity", {"literal", "pooled"});
  prof.grid.add_axis("arrival", {"0.14", "0.28", "0.55", "1.1"});
  prof.warmup_hours = 2.0;
  prof.measure_hours = 12.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  std::printf("Ablation: per-chunk literal vs channel-pooled VM sizing "
              "(%.0f h, seed %llu, %u threads)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed),
              spec.threads ? spec.threads
                           : sweep::ThreadPool::default_threads());

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);

  // Rows come out in grid order: all literal cells first, then pooled.
  const std::size_t rates = result.axes[1].values.size();
  std::printf("\n%12s %18s %18s %14s %10s\n", "arrival", "literal (Mbps)",
              "pooled (Mbps)", "literal/pooled", "quality Δ");
  for (std::size_t r = 0; r < rates; ++r) {
    const sweep::RunSummary& literal = result.runs[r];
    const sweep::RunSummary& pooled = result.runs[rates + r];
    const double ratio = pooled.mean_reserved_mbps > 0.0
                             ? literal.mean_reserved_mbps / pooled.mean_reserved_mbps
                             : 0.0;
    std::printf("%10s/s %18.1f %18.1f %14.2f %+10.3f\n",
                result.axes[1].values[r].c_str(), literal.mean_reserved_mbps,
                pooled.mean_reserved_mbps, ratio,
                literal.mean_quality - pooled.mean_quality);
  }

  const sweep::RunSummary& paper_literal = result.runs[rates - 1];
  const sweep::RunSummary& paper_pooled = result.runs[2 * rates - 1];
  const core::VodParameters params;
  const double table2_mbps = 150.0 * util::to_mbps(params.vm_bandwidth);
  std::printf("\npaper scale (20 Zipf channels, 1.1 users/s aggregate):\n");
  std::printf("  literal sizing : %7.0f Mbps mean reserved\n",
              paper_literal.mean_reserved_mbps);
  std::printf("  pooled sizing  : %7.0f Mbps mean reserved\n",
              paper_pooled.mean_reserved_mbps);
  std::printf("  Table II total : %7.0f Mbps (150 VMs)\n", table2_mbps);
  // In the deployed system literal sizing cannot exceed what the clusters
  // sell — it pins against the cap instead (and quality pays for it).
  std::printf("  => literal sizing %s Table II's capacity; pooled fits with\n"
              "     headroom. The paper's Fig. 4 reserved curve (~1-2.2 Gbps)\n"
              "     is only reachable with pooling — see DESIGN.md.\n",
              paper_literal.mean_reserved_mbps > 0.95 * table2_mbps
                  ? "SATURATES"
                  : "fits within");

  const std::string out =
      flags.get("out", std::string("results/ablation_pooling"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf("\nnote: both models target the same per-queue sojourn bound\n"
              "E[n] <= lambda*T0; pooling wins by statistical multiplexing —\n"
              "one Erlang headroom per channel instead of per chunk.\n");
  return 0;
}
