// Figure 5: "Average streaming quality in the VoD system" — the fraction
// of users with smooth playback in the past 5 minutes, over ~100 hours,
// client-server vs P2P on the same workload.
//
// Paper values: C/S average 0.97, P2P average 0.95 (a small quality price
// for the large P2P cost saving), with dips at the flash crowds.
//
// Runs on the sweep engine: the fig05_quality golden preset's mode={cs,p2p}
// grid at paper horizons; both cells share one derived seed.
// `tool_sweep --golden=fig05_quality` replays the downsized schedule.
//
// Flags: --hours=100 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/fig05_streaming_quality

#include <algorithm>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

namespace {
double worst_hourly(const util::TimeSeries& series, double t0) {
  const util::TimeSeries hourly = series.resample(t0, 3600.0);
  double worst = 1.0;
  for (double v : hourly.values()) worst = std::min(worst, v);
  return worst;
}
}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig05_quality").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 100.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // hourly series + late-retrieval counters
  spec.apply_flags(flags);

  std::printf("Figure 5: average streaming quality (%.0f h, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& cs = result.results[0];   // mode=cs
  const expr::ExperimentResult& p2p = result.results[1];  // mode=p2p

  expr::print_series_table("Fig. 5 series (smooth-playback fraction, hourly)",
                           {{"C/S quality", &cs.metrics.quality},
                            {"P2P quality", &p2p.metrics.quality}},
                           cs.measure_start, cs.measure_end, 3600.0,
                           "fig05_streaming_quality");

  std::printf("\n-- paper comparison --\n");
  expr::print_paper_comparison("C/S average streaming quality",
                               cs.mean_quality(),
                               expr::paper::kQualityClientServer, "");
  expr::print_paper_comparison("P2P average streaming quality",
                               p2p.mean_quality(), expr::paper::kQualityP2p,
                               "");
  std::printf("worst hourly quality: C/S %.3f | P2P %.3f "
              "(paper's curves dip at the flash crowds)\n",
              worst_hourly(cs.metrics.quality, cs.measure_start),
              worst_hourly(p2p.metrics.quality, p2p.measure_start));
  std::printf("late retrievals: C/S %ld/%ld | P2P %ld/%ld\n",
              cs.metrics.counters.late_downloads,
              cs.metrics.counters.chunk_downloads,
              p2p.metrics.counters.late_downloads,
              p2p.metrics.counters.chunk_downloads);

  const std::string out =
      flags.get("out", std::string("results/fig05_streaming_quality"));
  result.write(out);
  std::printf("[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
