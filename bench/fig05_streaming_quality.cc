// Figure 5: "Average streaming quality in the VoD system" — the fraction
// of users with smooth playback in the past 5 minutes, over ~100 hours,
// client-server vs P2P on the same workload.
//
// Paper values: C/S average 0.97, P2P average 0.95 (a small quality price
// for the large P2P cost saving), with dips at the flash crowds.
//
// Flags: --hours=100 --warmup=4 --seed=42

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"

using namespace cloudmedia;

namespace {
double worst_hourly(const util::TimeSeries& series, double t0) {
  const util::TimeSeries hourly = series.resample(t0, 3600.0);
  double worst = 1.0;
  for (double v : hourly.values()) worst = std::min(worst, v);
  return worst;
}
}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 100.0);
  const double warmup = flags.get("warmup", 4.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  auto run_mode = [&](core::StreamingMode mode) {
    expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
    cfg.warmup_hours = warmup;
    cfg.measure_hours = hours;
    cfg.seed = seed;
    return expr::ExperimentRunner::run(cfg);
  };

  std::printf("Figure 5: average streaming quality (%.0f h, seed %llu)\n",
              hours, static_cast<unsigned long long>(seed));
  const expr::ExperimentResult cs = run_mode(core::StreamingMode::kClientServer);
  const expr::ExperimentResult p2p = run_mode(core::StreamingMode::kP2p);

  expr::print_series_table("Fig. 5 series (smooth-playback fraction, hourly)",
                           {{"C/S quality", &cs.metrics.quality},
                            {"P2P quality", &p2p.metrics.quality}},
                           cs.measure_start, cs.measure_end, 3600.0,
                           "fig05_streaming_quality");

  std::printf("\n-- paper comparison --\n");
  expr::print_paper_comparison("C/S average streaming quality",
                               cs.mean_quality(),
                               expr::paper::kQualityClientServer, "");
  expr::print_paper_comparison("P2P average streaming quality",
                               p2p.mean_quality(), expr::paper::kQualityP2p,
                               "");
  std::printf("worst hourly quality: C/S %.3f | P2P %.3f "
              "(paper's curves dip at the flash crowds)\n",
              worst_hourly(cs.metrics.quality, cs.measure_start),
              worst_hourly(p2p.metrics.quality, p2p.measure_start));
  std::printf("late retrievals: C/S %ld/%ld | P2P %ld/%ld\n",
              cs.metrics.counters.late_downloads,
              cs.metrics.counters.chunk_downloads,
              p2p.metrics.counters.late_downloads,
              p2p.metrics.counters.chunk_downloads);
  return 0;
}
