// Ablation: the Eqn.-(5) peer-supply cap, literal vs bandwidth-consistent.
//
// Printed verbatim, Eqn. (5) caps chunk i's peer supply at m_i * r. With
// the paper's own parameters R = 25 r, that bounds peer offload at 4% of
// the provisioned requirement m_i * R — flatly contradicting the paper's
// headline result that P2P cuts the cloud bill ~11x (Figs. 4/10). This
// bench computes the cloud residual under both readings across peer-uplink
// ratios, then runs the end-to-end comparison on the sweep engine: the
// ablation_p2p_cap golden preset's p2p_cap={literal,bandwidth} axis, both
// cells facing the byte-identical workload (the cap is system-side), which
// demonstrates why DESIGN.md adopts the bandwidth-consistent cap as the
// default. `tool_sweep --golden=ablation_p2p_cap` replays the downsized
// grid.
//
// Flags: --hours=12 --warmup=2 --seed=42 --threads=<hardware>
//        --out=results/ablation_p2p_cap

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "expr/flags.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "util/units.h"
#include "workload/viewing.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const core::VodParameters params;
  const workload::ViewingBehavior behavior;
  const util::Matrix transfer = behavior.transfer_matrix(params.chunks_per_video);
  const std::vector<double> entry =
      behavior.entry_distribution(params.chunks_per_video);

  std::printf("Ablation: Eqn.-(5) peer-supply cap (analytic, one channel at "
              "0.2 users/s)\n\n");
  const std::vector<double> lambdas =
      core::solve_traffic_equations(transfer, entry, 0.2);
  const core::ChannelCapacityPlan capacity =
      core::CapacityPlanner(params, core::CapacityModel::kChannelPooled)
          .plan(lambdas);
  std::vector<double> population(lambdas.size());
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    population[i] = lambdas[i] * params.chunk_duration;
  }

  std::printf("%8s | %28s | %28s\n", "", "literal cap  (Gamma <= m*r)",
              "bandwidth cap (Gamma <= m*R)");
  std::printf("%8s | %13s %14s | %13s %14s\n", "u/r", "peer (Mbps)",
              "cloud (Mbps)", "peer (Mbps)", "cloud (Mbps)");
  for (double ratio : {0.5, 0.9, 1.0, 1.2, 2.0}) {
    const double uplink = ratio * params.streaming_rate;
    core::P2pOptions lit;
    lit.demand_cap = core::P2pDemandCap::kStreamingRateLiteral;
    const core::P2pSupply literal = core::solve_p2p_supply(
        transfer, capacity, population, uplink, params.streaming_rate, lit);
    const core::P2pSupply bandwidth = core::solve_p2p_supply(
        transfer, capacity, population, uplink, params.streaming_rate);
    const auto total = [](const std::vector<double>& v) {
      return std::accumulate(v.begin(), v.end(), 0.0);
    };
    std::printf("%8.2f | %13.1f %14.1f | %13.1f %14.1f\n", ratio,
                util::to_mbps(total(literal.peer_supply)),
                util::to_mbps(total(literal.cloud_residual)),
                util::to_mbps(total(bandwidth.peer_supply)),
                util::to_mbps(total(bandwidth.cloud_residual)));
  }
  std::printf("(channel requirement: %.1f Mbps; with R = 25 r the literal "
              "cap can never offload more than %.0f%% of it)\n",
              util::to_mbps(capacity.total_bandwidth),
              100.0 * params.streaming_rate / params.vm_bandwidth);

  // ------------------------------------------- end-to-end on the sweep engine
  profile::Profile prof = sweep::golden_preset("ablation_p2p_cap").profile;
  prof.warmup_hours = 2.0;
  prof.measure_hours = 12.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  std::printf("\nend-to-end (%.0f h P2P simulation, seed %llu, shared "
              "workload):\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  // Grid order: p2p_cap={literal,bandwidth}.
  const sweep::RunSummary& literal_run = result.runs[0];
  const sweep::RunSummary& bandwidth_run = result.runs[1];
  std::printf("%-24s %12s %12s\n", "", "literal", "bandwidth");
  std::printf("%-24s %12.1f %12.1f\n", "reserved (Mbps)",
              literal_run.mean_reserved_mbps, bandwidth_run.mean_reserved_mbps);
  std::printf("%-24s %12.2f %12.2f\n", "cost ($/h)",
              literal_run.cost_per_hour, bandwidth_run.cost_per_hour);
  std::printf("%-24s %12.3f %12.3f\n", "quality",
              literal_run.mean_quality, bandwidth_run.mean_quality);

  const std::string out =
      flags.get("out", std::string("results/ablation_p2p_cap"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf("\nreading: under the literal cap the P2P deployment reserves "
              "almost as much cloud as client-server — the paper's ~11x "
              "saving is only reproducible with the bandwidth-consistent "
              "reading.\n");
  return 0;
}
