// Cohort-engine scale gate: one live_event_cliff day calibrated to a
// target peak concurrent population (10M by default — two orders beyond
// what the discrete engine can touch), run on the cohort core, emitting
// BENCH_cohort.json (viewers-simulated/s, realized peak, peak RSS) so the
// ROADMAP's scaling claim is measured, not asserted.
//
// Calibration: estimated_peak_users() is linear in the aggregate arrival
// rate, so the rate that hits the target peak is target / peak-per-unit-
// rate. The realized concurrent peak lands below the closed-form estimate
// (the cliff is narrower than a session, so arrivals spread across it);
// --calibration scales the rate to compensate and the gate asserts the
// realized peak reaches the target.
//
// Flags: --viewers=10000000 --hours=24 --warmup=0 --seed=42
//        --calibration=<factor> --out=BENCH_cohort.json

#include <chrono>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/runner.h"
#include "sweep/scenario_catalog.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rss.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double target = flags.get("viewers", 10'000'000.0);
  const double hours = flags.get("hours", 24.0);
  const double warmup = flags.get("warmup", 0.0);
  const double calibration = flags.get("calibration", 1.3);
  CM_EXPECTS(target > 0.0 && hours > 0.0 && calibration > 0.0);

  expr::ExperimentConfig cfg =
      sweep::ScenarioCatalog::global().make_config("live_event_cliff");
  cfg.warmup_hours = warmup;
  cfg.measure_hours = hours;
  cfg.seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));
  cfg.engine = expr::Engine::kCohort;

  cfg.workload.total_arrival_rate = 1.0;
  const double peak_per_unit_rate = expr::estimated_peak_users(cfg);
  CM_ENSURES(peak_per_unit_rate > 0.0);
  cfg.workload.total_arrival_rate =
      calibration * target / peak_per_unit_rate;

  std::printf(
      "cohort_smoke: live_event_cliff, %.0fh, target peak %.3g viewers "
      "(arrival rate %.1f/s)\n",
      hours, target, cfg.workload.total_arrival_rate);

  const auto t0 = std::chrono::steady_clock::now();
  const expr::ExperimentResult result = expr::ExperimentRunner::run(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double peak = result.metrics.concurrent_users.max_value();
  const auto viewers = static_cast<double>(result.metrics.counters.arrivals);
  const double viewers_per_sec = viewers / wall;
  const double rss_mb = util::peak_rss_mb();
  std::printf(
      "  %.3g viewers (peak %.3g concurrent) in %.2f s  |  %.3g viewers/s  "
      "|  %llu events  |  peak rss %.1f MB\n",
      viewers, peak, wall, viewers_per_sec,
      static_cast<unsigned long long>(result.sim_events), rss_mb);

  // The scaling gate: the realized concurrent peak must reach the target
  // population (re-tune --calibration if the workload shape changes).
  CM_ENSURES(peak >= target);

  util::JsonValue bench = util::JsonValue::object();
  bench["bench"] = "cohort_smoke";
  bench["engine"] = "cohort";
  bench["scenario"] = "live_event_cliff";
  bench["target_peak_viewers"] = target;
  bench["realized_peak_viewers"] = peak;
  bench["viewers_simulated"] = viewers;
  bench["hours"] = hours;
  bench["arrival_rate"] = cfg.workload.total_arrival_rate;
  bench["wall_seconds"] = wall;
  bench["viewers_per_sec"] = viewers_per_sec;
  bench["sim_events"] = static_cast<double>(result.sim_events);
  bench["peak_rss_mb"] = rss_mb;
  const std::string out = flags.get("out", std::string("BENCH_cohort.json"));
  const std::size_t slash = out.find_last_of('/');
  if (slash != std::string::npos) util::ensure_directory(out.substr(0, slash));
  util::write_json_file(out, bench);
  std::printf("[json] %s\n", out.c_str());
  return 0;
}
