// Figure 10: "Evolution of overall VM rental cost" over a day, plus the
// Sec. VI-C storage-cost observation.
//
// Paper values: client-server averages ~$48/h and swings with the diurnal
// load; P2P averages ~$4.27/h; NFS storage costs ~$0.018/day — i.e. the
// cloud bill of a VoD provider is all VM rental, and a P2P overlay removes
// an order of magnitude of it.
//
// Runs on the sweep engine: the fig10_vm_cost golden preset's mode={cs,p2p}
// grid at paper horizons, both cells sharing one derived seed.
// `tool_sweep --golden=fig10_vm_cost` replays the downsized schedule.
//
// Flags: --hours=24 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/fig10_summary

#include <algorithm>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig10_vm_cost").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // hourly cost series + cost totals
  spec.apply_flags(flags);

  std::printf("Figure 10: overall VM rental cost (%.0f h, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& cs = result.results[0];   // mode=cs
  const expr::ExperimentResult& p2p = result.results[1];  // mode=p2p

  expr::print_series_table("Fig. 10 series (VM rental cost, $/h, hourly)",
                           {{"C/S cost", &cs.metrics.vm_cost_rate},
                            {"P2P cost", &p2p.metrics.vm_cost_rate}},
                           cs.measure_start, cs.measure_end, 3600.0,
                           "fig10_vm_cost");

  std::printf("\n-- paper comparison --\n");
  expr::print_paper_comparison("C/S average VM rental cost",
                               cs.mean_vm_cost_rate(),
                               expr::paper::kVmCostClientServer, "$/h");
  expr::print_paper_comparison("P2P average VM rental cost",
                               p2p.mean_vm_cost_rate(),
                               expr::paper::kVmCostP2p, "$/h");
  std::printf("C/S / P2P cost ratio: %.1fx (paper: %.1fx)\n",
              cs.mean_vm_cost_rate() / p2p.mean_vm_cost_rate(),
              expr::paper::kVmCostClientServer / expr::paper::kVmCostP2p);

  const double measured_days = (cs.measure_end - cs.measure_start) / 86400.0;
  expr::print_paper_comparison(
      "NFS storage cost",
      cs.mean_storage_cost_rate() * 24.0, expr::paper::kStorageCostPerDay,
      "$/day");
  std::printf("\ntotals over %.1f day(s): C/S $%.2f VM + $%.4f storage | "
              "P2P $%.2f VM + $%.4f storage\n",
              measured_days, cs.vm_cost_total, cs.storage_cost_total,
              p2p.vm_cost_total, p2p.storage_cost_total);
  std::printf("cost variability (C/S): min $%.2f/h, max $%.2f/h — follows the "
              "user-population dynamics as in the paper\n",
              [&] {
                double worst = 1e300;
                const util::TimeSeries hourly = cs.metrics.vm_cost_rate.resample(
                    cs.measure_start, 3600.0);
                for (double v : hourly.values()) worst = std::min(worst, v);
                return worst;
              }(),
              cs.metrics.vm_cost_rate.max_value());

  const std::string out = flags.get("out", std::string("results/fig10_summary"));
  result.write(out);
  std::printf("[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
