// Figure 10: "Evolution of overall VM rental cost" over a day, plus the
// Sec. VI-C storage-cost observation.
//
// Paper values: client-server averages ~$48/h and swings with the diurnal
// load; P2P averages ~$4.27/h; NFS storage costs ~$0.018/day — i.e. the
// cloud bill of a VoD provider is all VM rental, and a P2P overlay removes
// an order of magnitude of it.
//
// Flags: --hours=24 --warmup=4 --seed=42

#include <cstdio>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 24.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  auto run_mode = [&](core::StreamingMode mode) {
    expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
    cfg.warmup_hours = flags.get("warmup", 4.0);
    cfg.measure_hours = hours;
    cfg.seed = seed;
    return expr::ExperimentRunner::run(cfg);
  };

  std::printf("Figure 10: overall VM rental cost (%.0f h, seed %llu)\n", hours,
              static_cast<unsigned long long>(seed));
  const expr::ExperimentResult cs = run_mode(core::StreamingMode::kClientServer);
  const expr::ExperimentResult p2p = run_mode(core::StreamingMode::kP2p);

  expr::print_series_table("Fig. 10 series (VM rental cost, $/h, hourly)",
                           {{"C/S cost", &cs.metrics.vm_cost_rate},
                            {"P2P cost", &p2p.metrics.vm_cost_rate}},
                           cs.measure_start, cs.measure_end, 3600.0,
                           "fig10_vm_cost");

  std::printf("\n-- paper comparison --\n");
  expr::print_paper_comparison("C/S average VM rental cost",
                               cs.mean_vm_cost_rate(),
                               expr::paper::kVmCostClientServer, "$/h");
  expr::print_paper_comparison("P2P average VM rental cost",
                               p2p.mean_vm_cost_rate(),
                               expr::paper::kVmCostP2p, "$/h");
  std::printf("C/S / P2P cost ratio: %.1fx (paper: %.1fx)\n",
              cs.mean_vm_cost_rate() / p2p.mean_vm_cost_rate(),
              expr::paper::kVmCostClientServer / expr::paper::kVmCostP2p);

  const double measured_days = (cs.measure_end - cs.measure_start) / 86400.0;
  expr::print_paper_comparison(
      "NFS storage cost",
      cs.mean_storage_cost_rate() * 24.0, expr::paper::kStorageCostPerDay,
      "$/day");
  std::printf("\ntotals over %.1f day(s): C/S $%.2f VM + $%.4f storage | "
              "P2P $%.2f VM + $%.4f storage\n",
              measured_days, cs.vm_cost_total, cs.storage_cost_total,
              p2p.vm_cost_total, p2p.storage_cost_total);
  std::printf("cost variability (C/S): min $%.2f/h, max $%.2f/h — follows the "
              "user-population dynamics as in the paper\n",
              [&] {
                double worst = 1e300;
                const util::TimeSeries hourly = cs.metrics.vm_cost_rate.resample(
                    cs.measure_start, 3600.0);
                for (double v : hourly.values()) worst = std::min(worst, v);
                return worst;
              }(),
              cs.metrics.vm_cost_rate.max_value());
  return 0;
}
