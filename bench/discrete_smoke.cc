// Discrete-engine throughput gate: every golden preset, every sweep cell
// under the cohort auto-threshold, and all CI fuzz profiles run the
// *discrete* core, so its single-run events/s bounds the wall-clock of the
// whole figure/fuzz pipeline. This bench runs one flash_crowd day in P2P
// mode (the heaviest discrete path: per-peer walks, rarest-first
// rebalances, pool churn) at a population far above the golden presets',
// and emits BENCH_discrete.json (events/s, peers simulated, peak RSS).
//
// The gate: events/s must reach --min-events-per-sec, whose default is
// 2x the pre-overhaul baseline measured by this same bench on the
// reference container (kBaselineEventsPerSec below; unordered_map peers +
// std::function events + map-based pools). Both the baseline and the
// realized figure land in the JSON so the speedup is recorded, not
// asserted. Sanitizer/debug builds detect themselves and skip the rate
// gate (the run itself still exercises the hot path).
//
// Flags: --rate=6.0 --hours=10 --warmup=0 --seed=42
//        --min-events-per-sec=<2x baseline> --max-rss-mb=2048
//        --out=BENCH_discrete.json

#include <chrono>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/runner.h"
#include "sweep/scenario_catalog.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rss.h"

using namespace cloudmedia;

namespace {

/// Pre-overhaul (PR 9) discrete-engine throughput on the reference
/// container, measured by this bench at its default arguments. The CI gate
/// demands >= 2x this figure from the slab/SBO/sorted-vector hot path.
constexpr double kBaselineEventsPerSec = 1.96e5;

constexpr bool sanitized_build() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double rate = flags.get("rate", 6.0);
  const double hours = flags.get("hours", 10.0);
  const double warmup = flags.get("warmup", 0.0);
  const double min_events_per_sec =
      flags.get("min-events-per-sec", 2.0 * kBaselineEventsPerSec);
  const double max_rss_mb = flags.get("max-rss-mb", 2048.0);
  CM_EXPECTS(rate > 0.0 && hours > 0.0 && max_rss_mb > 0.0);

  expr::ExperimentConfig cfg = sweep::ScenarioCatalog::global().make_config(
      "flash_crowd", core::StreamingMode::kP2p);
  cfg.warmup_hours = warmup;
  cfg.measure_hours = hours;
  cfg.seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));
  cfg.engine = expr::Engine::kDiscrete;
  cfg.workload.total_arrival_rate = rate;

  std::printf(
      "discrete_smoke: flash_crowd p2p, %.0fh, arrival rate %.1f/s "
      "(~%.3g est. peak viewers)\n",
      hours, rate, expr::estimated_peak_users(cfg));

  const auto t0 = std::chrono::steady_clock::now();
  const expr::ExperimentResult result = expr::ExperimentRunner::run(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  CM_ENSURES(!result.used_cohort_engine);

  const auto events = static_cast<double>(result.sim_events);
  const double events_per_sec = events / wall;
  const double rss_mb = util::peak_rss_mb();
  const auto viewers = static_cast<double>(result.metrics.counters.arrivals);
  std::printf(
      "  %.3g events in %.2f s  |  %.3g events/s  |  %.3g viewers  |  "
      "peak rss %.1f MB\n",
      events, wall, events_per_sec, viewers, rss_mb);
  std::printf("  gate: >= %.3g events/s (baseline %.3g, %.2fx realized), "
              "rss <= %.0f MB\n",
              min_events_per_sec, kBaselineEventsPerSec,
              events_per_sec / kBaselineEventsPerSec, max_rss_mb);

  if (sanitized_build()) {
    std::printf("  sanitizer build: throughput/RSS gates skipped\n");
  } else {
    // The regression gates. Throughput halving or an RSS blow-up in the
    // slab/event/pool hot path fails CI on both compilers.
    CM_ENSURES(events_per_sec >= min_events_per_sec);
    CM_ENSURES(rss_mb <= max_rss_mb);
  }

  util::JsonValue bench = util::JsonValue::object();
  bench["bench"] = "discrete_smoke";
  bench["engine"] = "discrete";
  bench["scenario"] = "flash_crowd";
  bench["mode"] = "p2p";
  bench["hours"] = hours;
  bench["arrival_rate"] = rate;
  bench["viewers_simulated"] = viewers;
  bench["sim_events"] = events;
  bench["wall_seconds"] = wall;
  bench["events_per_sec"] = events_per_sec;
  bench["baseline_events_per_sec"] = kBaselineEventsPerSec;
  bench["speedup_vs_baseline"] = events_per_sec / kBaselineEventsPerSec;
  bench["min_events_per_sec"] = min_events_per_sec;
  bench["peak_rss_mb"] = rss_mb;
  bench["max_rss_mb"] = max_rss_mb;
  bench["gates_enforced"] = !sanitized_build();
  const std::string out = flags.get("out", std::string("BENCH_discrete.json"));
  const std::size_t slash = out.find_last_of('/');
  if (slash != std::string::npos) util::ensure_directory(out.substr(0, slash));
  util::write_json_file(out, bench);
  std::printf("[json] %s\n", out.c_str());
  return 0;
}
