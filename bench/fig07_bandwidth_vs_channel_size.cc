// Figure 7: "Cloud capacity provisioning vs. channel size for all channels
// in one day's time" — per-channel provisioned cloud bandwidth against
// channel size, client-server vs P2P.
//
// Paper shape: client-server bandwidth grows linearly with channel size;
// P2P stays low and nearly flat ("scales very well") because peers absorb
// the growth.
//
// Runs on the sweep engine: the fig07_bandwidth_scaling golden preset's
// mode={cs,p2p} grid, both cells sharing one derived seed; the scatter is
// harvested from the retained per-channel series.
// `tool_sweep --golden=fig07_bandwidth_scaling` replays the downsized grid.
//
// Flags: --hours=24 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/fig07_summary

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace cloudmedia;

namespace {

void collect(const expr::ExperimentResult& r, std::vector<double>& sizes,
             std::vector<double>& bandwidths) {
  for (const vod::ChannelSeries& channel : r.metrics.channels) {
    for (double t = r.measure_start; t + 3600.0 <= r.measure_end; t += 3600.0) {
      const double size = channel.size.mean_over(t, t + 3600.0);
      const double mbps = channel.provisioned_mbps.mean_over(t, t + 3600.0);
      if (size <= 0.0) continue;
      sizes.push_back(size);
      bandwidths.push_back(mbps);
    }
  }
}

void print_buckets(const char* label, const std::vector<double>& sizes,
                   const std::vector<double>& bandwidths) {
  std::printf("\n%s\n%16s %10s %18s\n", label, "size bucket", "samples",
              "mean Mbps provisioned");
  const double edges[] = {0, 25, 50, 100, 200, 400, 800, 1e9};
  for (std::size_t b = 0; b + 1 < std::size(edges); ++b) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] >= edges[b] && sizes[i] < edges[b + 1]) {
        sum += bandwidths[i];
        ++n;
      }
    }
    if (n == 0) continue;
    std::printf("%7.0f - %6.0f %10d %18.1f\n", edges[b],
                std::min(edges[b + 1], 1000.0), n, sum / n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig07_bandwidth_scaling").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the scatter needs the per-channel series
  spec.apply_flags(flags);

  std::printf("Figure 7: provisioned cloud bandwidth vs channel size "
              "(%.0f h, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& cs = result.results[0];   // mode=cs
  const expr::ExperimentResult& p2p = result.results[1];  // mode=p2p

  std::vector<double> cs_sizes, cs_bw, p2p_sizes, p2p_bw;
  collect(cs, cs_sizes, cs_bw);
  collect(p2p, p2p_sizes, p2p_bw);

  print_buckets("C/S", cs_sizes, cs_bw);
  print_buckets("P2P", p2p_sizes, p2p_bw);

  const util::LinearFit cs_fit = util::linear_fit(cs_sizes, cs_bw);
  const util::LinearFit p2p_fit = util::linear_fit(p2p_sizes, p2p_bw);
  std::printf("\nlinear fits (Mbps per user):\n");
  std::printf("  C/S : slope %.4f, intercept %.2f, R^2 %.3f "
              "(paper: linear growth; streaming rate r = 0.4 Mbps/user)\n",
              cs_fit.slope, cs_fit.intercept, cs_fit.r2);
  std::printf("  P2P : slope %.4f, intercept %.2f, R^2 %.3f "
              "(paper: \"scales very well\" — near-flat)\n",
              p2p_fit.slope, p2p_fit.intercept, p2p_fit.r2);
  std::printf("  slope ratio C/S / P2P = %.1fx\n",
              cs_fit.slope / std::max(1e-9, p2p_fit.slope));

  util::ensure_directory("results");
  util::CsvWriter csv("results/fig07_bandwidth_vs_channel_size.csv");
  csv.write_header({"mode", "channel_size", "provisioned_mbps"});
  for (std::size_t i = 0; i < cs_sizes.size(); ++i) {
    csv.write_row(std::vector<std::string>{"cs", std::to_string(cs_sizes[i]),
                                           std::to_string(cs_bw[i])});
  }
  for (std::size_t i = 0; i < p2p_sizes.size(); ++i) {
    csv.write_row(std::vector<std::string>{"p2p", std::to_string(p2p_sizes[i]),
                                           std::to_string(p2p_bw[i])});
  }
  std::printf("[csv] results/fig07_bandwidth_vs_channel_size.csv\n");

  const std::string out = flags.get("out", std::string("results/fig07_summary"));
  result.write(out);
  std::printf("[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
