// Figure 9: "Evolution of aggregate VM utility in 4 representative
// channels" over 24 hours (P2P deployment) — Σ_i ũ_v z_iv per channel.
//
// Paper shape: like Fig. 8 but for the VM-configuration heuristic: the
// popular channels hold more (and better) VMs, tracking the diurnal swing.
//
// Runs on the sweep engine: the fig09_vm_utility golden preset (a single
// mode=p2p cell) at paper horizons, with per-channel series retained.
// `tool_sweep --golden=fig09_vm_utility` replays the downsized schedule.
//
// Flags: --hours=24 --warmup=4 --seed=42 --out=results/fig09_summary

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

namespace {
int closest_channel(const expr::ExperimentResult& r, double target,
                    const std::vector<int>& taken) {
  int best = -1;
  double best_gap = 1e300;
  for (int c = 0; c < static_cast<int>(r.metrics.channels.size()); ++c) {
    if (std::find(taken.begin(), taken.end(), c) != taken.end()) continue;
    const double size = r.metrics.channels[static_cast<std::size_t>(c)]
                            .size.mean_over(r.measure_start, r.measure_end);
    const double gap = std::abs(size - target);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
    }
  }
  return best;
}
}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig09_vm_utility").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the figure is per-channel utility series
  spec.apply_flags(flags);

  std::printf("Figure 9: aggregate VM utility of 4 representative channels "
              "(P2P, %.0f h)\n", spec.measure_hours);

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& r = result.results[0];  // mode=p2p

  std::vector<int> picks;
  std::vector<std::string> names;
  for (double target : expr::paper::kRepresentativeChannelSizes) {
    const int c = closest_channel(r, target, picks);
    picks.push_back(c);
    const double size = r.metrics.channels[static_cast<std::size_t>(c)]
                            .size.mean_over(r.measure_start, r.measure_end);
    names.push_back("ch" + std::to_string(c) + " (avg " +
                    std::to_string(static_cast<int>(size)) + ")");
  }
  std::vector<expr::SeriesColumn> columns;
  for (std::size_t k = 0; k < picks.size(); ++k) {
    columns.push_back(
        {names[k],
         &r.metrics.channels[static_cast<std::size_t>(picks[k])].vm_utility});
  }
  expr::print_series_table("Fig. 9 series (aggregate VM utility, hourly)",
                           columns, r.measure_start, r.measure_end, 3600.0,
                           "fig09_vm_utility");

  std::printf("\nVM utility orders by channel popularity (paper: larger "
              "channels sustain higher utility all day):\n");
  double prev = 1e300;
  bool ordered = true;
  for (std::size_t k = picks.size(); k-- > 0;) {  // big -> small target
    const double mean =
        r.metrics.channels[static_cast<std::size_t>(picks[k])]
            .vm_utility.mean_over(r.measure_start, r.measure_end);
    std::printf("  %-18s mean %8.3f\n", names[k].c_str(), mean);
    if (mean > prev + 1e-9) ordered = false;
    prev = mean;
  }
  std::printf("popularity ordering preserved: %s\n", ordered ? "yes" : "no");

  const std::string out = flags.get("out", std::string("results/fig09_summary"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
