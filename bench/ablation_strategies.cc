// Ablation: provisioning strategies. The paper's queueing-model-driven
// controller vs the baselines a provider could deploy instead:
//   - reactive    : margin × last hour's observed load (no model)
//   - static      : permanent peak provisioning (no elasticity)
//   - clairvoyant : the paper's model fed the *true* next-hour arrival rate
//                   (isolates the cost of predicting from last-hour stats)
//   - model-nofloor: DESIGN.md's lingering-viewer guard off.
//
// Runs on the sweep engine: one grid axis over the strategy knob, fanned
// across threads, all rows facing the byte-identical workload (strategy is
// a system-side axis, so it does not perturb the per-run seed).
//
// Flags: --hours=48 --warmup=4 --seed=42 --threads=<hardware>
//        --scenario=baseline_diurnal --out=results/ablation_strategies
// --scenario accepts composite expressions too ("flash_crowd+churn_heavy"):
// the strategy comparison under any workload the catalog can compose.

#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "profile/profile.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof;
  prof.scenario = flags.get("scenario", std::string("baseline_diurnal"));
  prof.grid.add_axis("strategy", {"model", "model-nofloor", "reactive",
                                  "static", "seasonal", "clairvoyant"});
  prof.warmup_hours = 4.0;
  prof.measure_hours = 48.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  std::printf("Ablation: provisioning strategies (client-server, %s, %.0f h, "
              "seed %llu, %u threads)\n",
              spec.scenario.c_str(), spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed),
              spec.threads ? spec.threads
                           : sweep::ThreadPool::default_threads());

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);

  std::printf("\n%-28s %10s %10s %9s %9s %9s %10s\n", "strategy", "reserved",
              "used", "over-%", "quality", "$/h", "covered");
  for (const sweep::RunSummary& run : result.runs) {
    const double over =
        run.mean_used_cloud_mbps > 0.0
            ? 100.0 * (run.mean_reserved_mbps / run.mean_used_cloud_mbps - 1.0)
            : 0.0;
    std::printf("%-28s %10.1f %10.1f %8.1f%% %9.3f %9.2f %10.3f\n",
                run.point.coords.front().second.c_str(),
                run.mean_reserved_mbps, run.mean_used_cloud_mbps, over,
                run.mean_quality, run.cost_per_hour, run.covered_fraction);
  }

  const std::string out =
      flags.get("out", std::string("results/ablation_strategies"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf(
      "\nreading: the paper's controller should sit near the clairvoyant "
      "oracle (its 1-hour prediction is cheap but accurate), beat reactive "
      "on quality during ramps, and beat static-peak on cost.\n");
  return 0;
}
