// Ablation: provisioning strategies. The paper's queueing-model-driven
// controller vs the baselines a provider could deploy instead:
//   - reactive    : margin × last hour's observed load (no model)
//   - static      : permanent peak provisioning (no elasticity)
//   - clairvoyant : the paper's model fed the *true* next-hour arrival rate
//                   (isolates the cost of predicting from last-hour stats)
//   - model (no occupancy floor): DESIGN.md's lingering-viewer guard off.
//
// Flags: --hours=48 --warmup=4 --seed=42

#include <cstdio>
#include <string>
#include <vector>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"

using namespace cloudmedia;

namespace {

struct Row {
  std::string name;
  expr::ExperimentResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 48.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  auto base = [&] {
    expr::ExperimentConfig cfg =
        expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
    cfg.warmup_hours = flags.get("warmup", 4.0);
    cfg.measure_hours = hours;
    cfg.seed = seed;
    return cfg;
  };

  std::printf("Ablation: provisioning strategies (client-server, %.0f h, "
              "seed %llu)\n", hours, static_cast<unsigned long long>(seed));

  std::vector<Row> rows;
  {
    expr::ExperimentConfig cfg = base();
    rows.push_back({"model-based (paper)", expr::ExperimentRunner::run(cfg)});
  }
  {
    expr::ExperimentConfig cfg = base();
    cfg.occupancy_floor = false;
    rows.push_back({"model, no occupancy floor", expr::ExperimentRunner::run(cfg)});
  }
  {
    expr::ExperimentConfig cfg = base();
    cfg.strategy = expr::Strategy::kReactive;
    rows.push_back({"reactive (margin 1.2)", expr::ExperimentRunner::run(cfg)});
  }
  {
    expr::ExperimentConfig cfg = base();
    cfg.strategy = expr::Strategy::kStatic;
    rows.push_back({"static peak", expr::ExperimentRunner::run(cfg)});
  }
  {
    expr::ExperimentConfig cfg = base();
    cfg.strategy = expr::Strategy::kSeasonal;
    rows.push_back({"seasonal (future work)", expr::ExperimentRunner::run(cfg)});
  }
  {
    expr::ExperimentConfig cfg = base();
    cfg.strategy = expr::Strategy::kClairvoyant;
    rows.push_back({"clairvoyant oracle", expr::ExperimentRunner::run(cfg)});
  }

  std::printf("\n%-28s %10s %10s %9s %9s %9s %10s\n", "strategy", "reserved",
              "used", "over-%", "quality", "$/h", "covered");
  for (const Row& row : rows) {
    const expr::ExperimentResult& r = row.result;
    const double over =
        r.mean_used_cloud_mbps() > 0.0
            ? 100.0 * (r.mean_reserved_mbps() / r.mean_used_cloud_mbps() - 1.0)
            : 0.0;
    std::printf("%-28s %10.1f %10.1f %8.1f%% %9.3f %9.2f %10.3f\n",
                row.name.c_str(), r.mean_reserved_mbps(),
                r.mean_used_cloud_mbps(), over, r.mean_quality(),
                r.mean_vm_cost_rate(), r.reserved_covers_used_fraction());
  }

  std::printf(
      "\nreading: the paper's controller should sit near the clairvoyant "
      "oracle (its 1-hour prediction is cheap but accurate), beat reactive "
      "on quality during ramps, and beat static-peak on cost.\n");
  return 0;
}
