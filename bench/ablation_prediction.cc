// Ablation: arrival-rate predictors — the paper's future work ("more
// accurate prediction method based on historical data collected over more
// intervals", Sec. V-B) implemented in src/predict and measured two ways:
//
//   1. analytically: one-step forecast accuracy on the true diurnal
//      per-channel rates of the paper workload (no simulation noise);
//   2. end-to-end on the sweep engine: the ablation_prediction golden
//      preset's forecaster axis drives the controller through full
//      simulations, every forecaster facing the byte-identical workload
//      (the forecaster is system-side). `tool_sweep
//      --golden=ablation_prediction` replays the downsized grid.
//
// Flags: --days=4 --hours=30 --warmup=4 --seed=42 --e2e=true
//        --threads=<hardware> --out=results/ablation_prediction

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"
#include "predict/accuracy.h"
#include "predict/forecaster.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "workload/scenario.h"

using namespace cloudmedia;

namespace {

predict::ForecasterSpec spec_of(predict::ForecasterKind kind) {
  predict::ForecasterSpec spec;
  spec.kind = kind;
  spec.period = 24;  // hourly cadence, daily season
  return spec;
}

/// True mean rate of `channel` over one hour (1-minute resolution).
double true_hourly_rate(const workload::Workload& workload, int channel,
                        double t0) {
  double acc = 0.0;
  for (int m = 0; m < 60; ++m) {
    acc += workload.channel_rate(channel, t0 + 60.0 * m);
  }
  return acc / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const int days = flags.get("days", 4);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  // --- part 1: forecast accuracy on the true rates ------------------------
  const expr::ExperimentConfig base =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  const workload::Workload workload(base.workload, seed);

  std::printf("Part 1: one-step accuracy on true per-channel hourly rates "
              "(%d day(s), %d channels)\n",
              days, workload.num_channels());
  std::printf("%-16s %10s %10s %10s %10s %9s\n", "forecaster",
              "MAE(/s)", "RMSE(/s)", "MAPE", "bias(/s)", "under-%");

  for (const predict::ForecasterKind kind : predict::all_forecaster_kinds()) {
    predict::ForecastScore score;
    for (int c = 0; c < workload.num_channels(); ++c) {
      const auto f = predict::make_forecaster(spec_of(kind));
      for (int h = 0; h < 24 * days; ++h) {
        const double actual = true_hourly_rate(workload, c, 3600.0 * h);
        if (h >= 24) score.add(f->forecast(), actual);  // skip day-1 warmup
        f->observe(actual);
      }
    }
    std::printf("%-16s %10.4f %10.4f %9.1f%% %+10.4f %8.1f%%\n",
                predict::to_string(kind).c_str(), score.mae(), score.rmse(),
                100.0 * score.mape(), score.bias(),
                100.0 * score.under_fraction());
  }
  std::printf("\nreading: on a repeating diurnal signal the seasonal "
              "forecasters should cut MAE well below persistence (the "
              "paper's predictor), which trails every ramp by one hour.\n");

  if (!flags.get("e2e", true)) return 0;

  // --- part 2: end to end on the sweep engine ------------------------------
  profile::Profile prof = sweep::golden_preset("ablation_prediction").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 30.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.apply_flags(flags);

  std::printf("\nPart 2: end-to-end provisioning (client-server, %.0f h "
              "measured, seed %llu, shared workload)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));
  std::printf("%-16s %10s %10s %9s %9s %10s\n", "forecaster", "reserved",
              "used", "quality", "$/h", "covered");

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  for (const sweep::RunSummary& run : result.runs) {
    std::printf("%-16s %10.1f %10.1f %9.3f %9.2f %10.3f\n",
                run.point.coords.back().second.c_str(),
                run.mean_reserved_mbps, run.mean_used_cloud_mbps,
                run.mean_quality, run.cost_per_hour, run.covered_fraction);
  }

  const std::string out =
      flags.get("out", std::string("results/ablation_prediction"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf(
      "\nreading: all forecasters keep quality high (the Erlang sizing "
      "carries headroom); the differences show up in reserved bandwidth "
      "and cost — better predictors under-provision less during the "
      "flash-crowd ramps and over-provision less after them.\n");
  return 0;
}
