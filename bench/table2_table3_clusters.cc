// Tables II & III: the virtual- and NFS-cluster menus of the paper's cloud
// (Sec. VI-A), as encoded in core::paper_vm_clusters() /
// core::paper_nfs_clusters(), plus the derived quantities the provisioning
// algorithm actually consumes (marginal utility per cost, chunk slots,
// aggregate capacity).

#include <cstdio>

#include "core/clusters.h"
#include "core/params.h"
#include "util/units.h"

using namespace cloudmedia;

int main() {
  const core::VodParameters params;

  std::printf("== Table II: virtual cluster configurations ==\n");
  std::printf("%-10s %8s %14s %8s %12s %14s\n", "type", "utility",
              "price ($/h)", "N_v", "u/p rank", "bandwidth");
  double total_vms = 0.0, max_cost = 0.0;
  for (const core::VmClusterSpec& c : core::paper_vm_clusters()) {
    std::printf("%-10s %8.1f %14.3f %8d %12.3f %11.0f Mbps\n", c.name.c_str(),
                c.utility, c.price_per_hour, c.max_vms,
                c.utility / c.price_per_hour,
                util::to_mbps(params.vm_bandwidth) * c.max_vms);
    total_vms += c.max_vms;
    max_cost += c.max_vms * c.price_per_hour;
  }
  std::printf("total: %.0f VMs = %.0f Mbps deliverable, $%.2f/h at full load "
              "(budget B_M = $100/h)\n",
              total_vms, util::to_mbps(params.vm_bandwidth) * total_vms,
              max_cost);

  std::printf("\n== Table III: NFS cluster configurations ==\n");
  std::printf("%-10s %8s %18s %12s %12s\n", "type", "utility",
              "price ($/GB/h)", "capacity", "chunk slots");
  double total_slots = 0.0;
  for (const core::NfsClusterSpec& c : core::paper_nfs_clusters()) {
    const double slots = c.capacity_bytes / params.chunk_bytes();
    std::printf("%-10s %8.1f %18.2e %9.0f GB %12.0f\n", c.name.c_str(),
                c.utility, c.price_per_gb_hour,
                util::to_gigabytes(c.capacity_bytes), slots);
    total_slots += slots;
  }
  const double library_chunks = 20.0 * params.chunks_per_video;
  std::printf("library: %.0f chunks x %.0f MB = %.1f GB across %.0f slots "
              "(budget B_S = $1/h)\n",
              library_chunks, util::to_megabytes(params.chunk_bytes()),
              util::to_gigabytes(library_chunks * params.chunk_bytes()),
              total_slots);
  std::printf("\nfull-library storage bill: $%.6f/h = $%.4f/day "
              "(paper reports ~$0.018/day)\n",
              library_chunks * params.chunk_bytes() * 1.11e-4 / 1e9,
              library_chunks * params.chunk_bytes() * 1.11e-4 / 1e9 * 24.0);
  return 0;
}
