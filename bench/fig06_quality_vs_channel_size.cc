// Figure 6: "Channel streaming quality vs. channel size for all channels in
// one day's time" — a scatter of (channel size, channel quality) samples,
// client-server deployment.
//
// Paper shape: quality is uniformly high regardless of channel size — the
// provisioning algorithm protects small channels as well as large ones.
// (The P2P scatter "significantly overlaps" it, per the paper; we print it
// too for completeness.)
//
// Runs on the sweep engine: a mode={cs,p2p} axis, both cells sharing one
// derived seed (mode is system-side) so the two deployments face the
// byte-identical viewer population, as the paper's comparison requires.
//
// Flags: --hours=24 --warmup=4 --seed=42

#include <algorithm>
#include <cstdio>
#include <vector>

#include "expr/flags.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "util/csv.h"

using namespace cloudmedia;

namespace {

struct Sample {
  double size;
  double quality;
};

std::vector<Sample> hourly_samples(const expr::ExperimentResult& r) {
  std::vector<Sample> samples;
  for (const vod::ChannelSeries& channel : r.metrics.channels) {
    for (double t = r.measure_start; t + 3600.0 <= r.measure_end; t += 3600.0) {
      Sample s;
      s.size = channel.size.mean_over(t, t + 3600.0);
      s.quality = channel.quality.mean_over(t, t + 3600.0);
      if (s.size > 0.0) samples.push_back(s);
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.size < b.size; });
  return samples;
}

void print_bucketed(const char* label, const std::vector<Sample>& samples) {
  std::printf("\n%s: %zu (size, quality) samples, bucketed by channel size\n",
              label, samples.size());
  std::printf("%16s %10s %12s %12s\n", "size bucket", "samples",
              "mean quality", "min quality");
  const double edges[] = {0, 25, 50, 100, 200, 400, 800, 1e9};
  for (std::size_t b = 0; b + 1 < std::size(edges); ++b) {
    double sum = 0.0, worst = 1.0;
    int n = 0;
    for (const Sample& s : samples) {
      if (s.size >= edges[b] && s.size < edges[b + 1]) {
        sum += s.quality;
        worst = std::min(worst, s.quality);
        ++n;
      }
    }
    if (n == 0) continue;
    std::printf("%7.0f - %6.0f %10d %12.3f %12.3f\n", edges[b],
                std::min(edges[b + 1], 1000.0), n, sum / n, worst);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig06_modes").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the scatter needs the per-channel series
  spec.apply_flags(flags);

  std::printf("Figure 6: channel streaming quality vs channel size "
              "(%.0f h, 20 channels, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& cs = result.results[0];
  const expr::ExperimentResult& p2p = result.results[1];

  const std::vector<Sample> cs_samples = hourly_samples(cs);
  const std::vector<Sample> p2p_samples = hourly_samples(p2p);
  print_bucketed("C/S (the paper's Fig. 6)", cs_samples);
  print_bucketed("P2P (paper: overlaps C/S, slightly worse)", p2p_samples);

  util::ensure_directory("results");
  util::CsvWriter csv("results/fig06_quality_vs_channel_size.csv");
  csv.write_header({"mode", "channel_size", "quality"});
  for (const Sample& s : cs_samples) {
    csv.write_row(std::vector<std::string>{"cs", std::to_string(s.size),
                                           std::to_string(s.quality)});
  }
  for (const Sample& s : p2p_samples) {
    csv.write_row(std::vector<std::string>{"p2p", std::to_string(s.size),
                                           std::to_string(s.quality)});
  }
  std::printf("[csv] results/fig06_quality_vs_channel_size.csv\n");
  result.write("results/fig06_summary");
  std::printf("[csv] results/fig06_summary.csv  [json] results/fig06_summary.json\n");

  double overall = 0.0;
  for (const Sample& s : cs_samples) overall += s.quality;
  std::printf("\nC/S scatter mean quality %.3f across sizes %.0f-%.0f "
              "(paper: \"generally good regardless of channel sizes\")\n",
              cs_samples.empty() ? 1.0 : overall / cs_samples.size(),
              cs_samples.empty() ? 0.0 : cs_samples.front().size,
              cs_samples.empty() ? 0.0 : cs_samples.back().size);
  return 0;
}
