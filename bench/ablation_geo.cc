// Ablation: geo-distributed federation — the paper's Sec. VII ongoing work
// ("expanding to cloud systems spanning different geographic locations"),
// quantified: three regional CloudMedia stacks with staggered diurnal
// crowds vs one consolidated deployment of the same global audience.
//
// Flags: --hours=24 --warmup=4 --seed=42

#include <cstdio>
#include <string>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"
#include "geo/federation.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 24.0);
  const double warmup = flags.get("warmup", 4.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));

  geo::FederationConfig cfg =
      geo::FederationConfig::make_default(core::StreamingMode::kP2p);
  cfg.base.warmup_hours = warmup;
  cfg.base.measure_hours = hours;
  cfg.base.seed = seed;

  std::printf("Ablation: geo federation (%zu regions, P2P, %.0f h measured, "
              "seed %llu)\n\n",
              cfg.regions.size(), hours,
              static_cast<unsigned long long>(seed));

  const geo::FederationResult fed = geo::FederationRunner::run(cfg);

  std::printf("%-10s %8s %7s %12s %12s %9s\n", "region", "share", "tz",
              "mean $/h", "peak $/h", "quality");
  for (const geo::RegionResult& region : fed.regions) {
    const util::TimeSeries hourly =
        region.result.metrics.vm_cost_rate.resample(fed.measure_start, 3600.0);
    std::printf("%-10s %7.0f%% %+6.0fh %12.2f %12.2f %9.3f\n",
                region.spec.name.c_str(),
                100.0 * region.spec.audience_share,
                region.spec.utc_offset_hours,
                region.result.mean_vm_cost_rate(), hourly.max_value(),
                region.result.mean_quality());
  }

  // Consolidated baseline: the whole audience on one region's clock.
  expr::ExperimentConfig consolidated = cfg.base;
  consolidated.seed = seed;
  const expr::ExperimentResult mono = expr::ExperimentRunner::run(consolidated);
  const util::TimeSeries mono_hourly =
      mono.metrics.vm_cost_rate.resample(mono.measure_start, 3600.0);

  std::printf("\n%-28s %12s %12s %14s\n", "", "mean $/h", "peak $/h",
              "peak-to-mean");
  std::printf("%-28s %12.2f %12.2f %14.2f\n", "federated (sum of regions)",
              fed.global_mean_cost(), fed.global_peak_cost(),
              fed.global_peak_cost() / fed.global_mean_cost());
  std::printf("%-28s %12.2f %12.2f %14.2f\n", "consolidated (one clock)",
              mono.mean_vm_cost_rate(), mono_hourly.max_value(),
              mono_hourly.max_value() / mono.mean_vm_cost_rate());

  std::printf("\nsum of regional peaks %.2f $/h vs federated global peak "
              "%.2f $/h: multiplexing gain %.2fx\n",
              fed.sum_of_regional_peaks(), fed.global_peak_cost(),
              fed.multiplexing_gain());
  std::printf("worst regional quality %.3f; audience-weighted %.3f\n",
              fed.min_quality(), fed.weighted_quality());
  std::printf(
      "\nreading: regional crowds peak at different reference hours, so the "
      "federated provider's aggregate bill is flatter (lower peak-to-mean, "
      "multiplexing gain > 1) than a consolidated deployment whose whole "
      "audience surges at once — the economics behind the paper's geo "
      "expansion plan. The flip side is visible in the mean column: "
      "splitting one audience into three smaller swarms costs more in "
      "total (smaller channels lose Erlang multiplexing and peer supply "
      "density, and regional prices carry premiums) — geography buys peak "
      "flatness and user proximity, not a lower total bill.\n");
  return 0;
}
