// Ablation: geo-distributed federation — the paper's Sec. VII ongoing work
// ("expanding to cloud systems spanning different geographic locations"),
// quantified: three regional CloudMedia stacks with staggered diurnal
// crowds vs one consolidated deployment of the same global audience.
//
// Runs on the sweep engine: the ablation_geo golden preset's
// region={global,asia,europe,americas} axis. The region applier
// (sweep/param_grid.cc) reuses FederationRunner::regional_config, so each
// row is one region's full stack — audience share, shifted clock, regional
// prices, proportional budget slice — and "global" is the consolidated
// baseline. region is workload-shaping: every region draws its own viewer
// population, independently seeded.
// `tool_sweep --golden=ablation_geo` replays the downsized grid.
//
// Flags: --hours=24 --warmup=4 --seed=42 --threads=<hardware>
//        --out=results/ablation_geo

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "expr/runner.h"
#include "geo/federation.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"
#include "util/check.h"
#include "util/stats.h"

using namespace cloudmedia;

namespace {

/// Peak of the hourly sum of the regions' VM cost rates.
double federated_peak(const std::vector<const expr::ExperimentResult*>& regions) {
  double peak = 0.0;
  const double t0 = regions.front()->measure_start;
  const double t1 = regions.front()->measure_end;
  for (double t = t0; t + 3600.0 <= t1 + 1e-9; t += 3600.0) {
    double sum = 0.0;
    for (const expr::ExperimentResult* r : regions) {
      sum += r->metrics.vm_cost_rate.mean_over(t, t + 3600.0);
    }
    peak = std::max(peak, sum);
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("ablation_geo").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the peak accounting needs hourly cost series
  spec.apply_flags(flags);

  const geo::FederationConfig federation =
      geo::FederationConfig::make_default(core::StreamingMode::kP2p);

  std::printf("Ablation: geo federation (%zu regions, P2P, %.0f h measured, "
              "seed %llu)\n\n",
              federation.regions.size(), spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  // Pair rows with their RegionSpec by the region coordinate, not by
  // position — the preset's axis order and the federation's region list
  // must not have to stay in lockstep.
  auto spec_of_region = [&](const std::string& name) -> const geo::RegionSpec& {
    for (const geo::RegionSpec& region : federation.regions) {
      if (region.name == name) return region;
    }
    throw util::PreconditionError("preset region '" + name +
                                  "' missing from the default federation");
  };
  const expr::ExperimentResult* mono = nullptr;
  std::vector<const geo::RegionSpec*> region_specs;
  std::vector<const expr::ExperimentResult*> regions;
  for (std::size_t k = 0; k < result.runs.size(); ++k) {
    const std::string& name = result.runs[k].point.coords.back().second;
    if (name == "global") {
      mono = &result.results[k];
    } else {
      region_specs.push_back(&spec_of_region(name));
      regions.push_back(&result.results[k]);
    }
  }
  CM_EXPECTS(mono != nullptr && !regions.empty());

  std::printf("%-10s %8s %7s %12s %12s %9s\n", "region", "share", "tz",
              "mean $/h", "peak $/h", "quality");
  double federated_mean = 0.0;
  double sum_of_regional_peaks = 0.0;
  double weighted_quality = 0.0;
  double min_quality = 1.0;
  for (std::size_t k = 0; k < regions.size(); ++k) {
    const geo::RegionSpec& region_spec = *region_specs[k];
    const expr::ExperimentResult& r = *regions[k];
    const util::TimeSeries hourly =
        r.metrics.vm_cost_rate.resample(r.measure_start, 3600.0);
    std::printf("%-10s %7.0f%% %+6.0fh %12.2f %12.2f %9.3f\n",
                region_spec.name.c_str(), 100.0 * region_spec.audience_share,
                region_spec.utc_offset_hours, r.mean_vm_cost_rate(),
                hourly.max_value(), r.mean_quality());
    federated_mean += r.mean_vm_cost_rate();
    sum_of_regional_peaks += hourly.max_value();
    weighted_quality += region_spec.audience_share * r.mean_quality();
    min_quality = std::min(min_quality, r.mean_quality());
  }

  const double global_peak = federated_peak(regions);
  const util::TimeSeries mono_hourly =
      mono->metrics.vm_cost_rate.resample(mono->measure_start, 3600.0);

  std::printf("\n%-28s %12s %12s %14s\n", "", "mean $/h", "peak $/h",
              "peak-to-mean");
  std::printf("%-28s %12.2f %12.2f %14.2f\n", "federated (sum of regions)",
              federated_mean, global_peak, global_peak / federated_mean);
  std::printf("%-28s %12.2f %12.2f %14.2f\n", "consolidated (one clock)",
              mono->mean_vm_cost_rate(), mono_hourly.max_value(),
              mono_hourly.max_value() / mono->mean_vm_cost_rate());

  std::printf("\nsum of regional peaks %.2f $/h vs federated global peak "
              "%.2f $/h: multiplexing gain %.2fx\n",
              sum_of_regional_peaks, global_peak,
              sum_of_regional_peaks / global_peak);
  std::printf("worst regional quality %.3f; audience-weighted %.3f\n",
              min_quality, weighted_quality);

  const std::string out =
      flags.get("out", std::string("results/ablation_geo"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf(
      "\nreading: regional crowds peak at different reference hours, so the "
      "federated provider's aggregate bill is flatter (lower peak-to-mean, "
      "multiplexing gain > 1) than a consolidated deployment whose whole "
      "audience surges at once — the economics behind the paper's geo "
      "expansion plan. The flip side is visible in the mean column: "
      "splitting one audience into three smaller swarms costs more in "
      "total (smaller channels lose Erlang multiplexing and peer supply "
      "density, and regional prices carry premiums) — geography buys peak "
      "flatness and user proximity, not a lower total bill.\n");
  return 0;
}
