// Ablation: the paper's greedy heuristics vs exact optima for the two
// Sec.-V optimization problems, on randomized instances at paper scale
// (20 channels × 20 chunks for VM allocation; smaller instances for the
// exponential exact storage search).
//
// Known structural result (also unit-tested): ranking by marginal utility
// per unit cost is optimal when budgets bind, but leaves utility on the
// table when the budget is slack — the exact optimum then buys the
// higher-utility clusters outright.
//
// Flags: --instances=25 --seed=42

#include <chrono>
#include <cstdio>

#include "core/clusters.h"
#include "core/storage_rental.h"
#include "core/vm_allocation.h"
#include "expr/flags.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const int instances = flags.get("instances", 25);
  util::Rng rng(static_cast<std::uint64_t>(flags.get_ll("seed", 42)));

  std::printf("Ablation: paper heuristics vs exact optima (%d random "
              "instances each)\n", instances);

  // ---------------------------------------------------------------- VM
  util::SummaryStats vm_gap, vm_greedy_us, vm_exact_us;
  int vm_feasible = 0;
  for (int k = 0; k < instances; ++k) {
    core::VmProblem p;
    p.clusters = core::paper_vm_clusters();
    p.vm_bandwidth = 1'250'000.0;
    p.budget_per_hour = rng.uniform(40.0, 100.0);
    for (int c = 0; c < 20; ++c) {
      for (int i = 0; i < 20; ++i) {
        p.chunks.push_back({{c, i}, rng.uniform(0.0, 0.25) * p.vm_bandwidth});
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const core::VmAllocation greedy = core::solve_vm_greedy(p);
    const auto t1 = std::chrono::steady_clock::now();
    const core::VmAllocation exact = core::solve_vm_exact(p);
    const auto t2 = std::chrono::steady_clock::now();
    vm_greedy_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());
    vm_exact_us.add(std::chrono::duration<double, std::micro>(t2 - t1).count());
    if (greedy.feasible && exact.feasible) {
      ++vm_feasible;
      vm_gap.add(100.0 * (1.0 - greedy.total_utility / exact.total_utility));
    }
  }
  std::printf("\nVM configuration (Eqn. 7), 400 chunks, paper clusters:\n");
  std::printf("  feasible instances       : %d/%d\n", vm_feasible, instances);
  std::printf("  greedy utility gap       : mean %.2f%%, worst %.2f%%\n",
              vm_gap.mean(), vm_gap.max());
  std::printf("  runtime                  : greedy %.0f us, exact %.0f us\n",
              vm_greedy_us.mean(), vm_exact_us.mean());

  // ------------------------------------------------------------- storage
  util::SummaryStats st_gap, st_greedy_us, st_exact_us;
  int st_feasible = 0;
  for (int k = 0; k < instances; ++k) {
    core::StorageProblem p;
    p.clusters = core::paper_nfs_clusters();
    // Shrink cluster capacity so placement decisions actually bind.
    p.clusters[0].capacity_bytes = rng.uniform(3.0, 7.0) * 15e6;
    p.clusters[1].capacity_bytes = rng.uniform(3.0, 7.0) * 15e6;
    p.chunk_bytes = 15e6;
    p.budget_per_hour = rng.uniform(2e-5, 2e-4) * 15.0;
    const int chunks = 8 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int i = 0; i < chunks; ++i) {
      p.chunks.push_back({{0, i}, rng.uniform(0.0, 5e6)});
    }
    const auto t0 = std::chrono::steady_clock::now();
    const core::StorageAssignment greedy = core::solve_storage_greedy(p);
    const auto t1 = std::chrono::steady_clock::now();
    const core::StorageAssignment exact = core::solve_storage_exact(p);
    const auto t2 = std::chrono::steady_clock::now();
    st_greedy_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());
    st_exact_us.add(std::chrono::duration<double, std::micro>(t2 - t1).count());
    if (greedy.feasible && exact.feasible) {
      ++st_feasible;
      st_gap.add(100.0 * (1.0 - greedy.total_utility / exact.total_utility));
    }
  }
  std::printf("\nStorage rental (Eqn. 6), 8-10 chunks, tight clusters:\n");
  std::printf("  feasible instances       : %d/%d\n", st_feasible, instances);
  std::printf("  greedy utility gap       : mean %.2f%%, worst %.2f%%\n",
              st_gap.mean(), st_gap.max());
  std::printf("  runtime                  : greedy %.0f us, exact %.0f us\n",
              st_greedy_us.mean(), st_exact_us.mean());

  std::printf("\nreading: the heuristics run orders of magnitude faster and "
              "their gap quantifies the price of utility-per-cost greed; the "
              "paper's hourly control loop needs the speed, not the last "
              "percent of utility.\n");
  return 0;
}
