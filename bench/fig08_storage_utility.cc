// Figure 8: "Evolution of aggregate storage utility in 4 representative
// channels" over 24 hours (P2P deployment) — Σ_i u_f Δ_i x_if per channel,
// i.e. how the storage-rental heuristic re-ranks channels as their
// popularity moves through the day.
//
// Paper shape: utility follows channel popularity (bigger channels higher),
// rising and falling with the diurnal pattern — the heuristic adapts.
//
// Runs on the sweep engine: the fig08_storage_utility golden preset (a
// single mode=p2p cell) at paper horizons, with per-channel series
// retained. `tool_sweep --golden=fig08_storage_utility` replays the
// downsized schedule.
//
// Flags: --hours=24 --warmup=4 --seed=42 --out=results/fig08_summary

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

namespace {
/// Pick the channel whose average size is closest to `target`.
int closest_channel(const expr::ExperimentResult& r, double target,
                    const std::vector<int>& taken) {
  int best = -1;
  double best_gap = 1e300;
  for (int c = 0; c < static_cast<int>(r.metrics.channels.size()); ++c) {
    if (std::find(taken.begin(), taken.end(), c) != taken.end()) continue;
    const double size = r.metrics.channels[static_cast<std::size_t>(c)]
                            .size.mean_over(r.measure_start, r.measure_end);
    const double gap = std::abs(size - target);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
    }
  }
  return best;
}
}  // namespace

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("fig08_storage_utility").profile;
  prof.warmup_hours = 4.0;
  prof.measure_hours = 24.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // the figure is per-channel utility series
  spec.apply_flags(flags);

  std::printf("Figure 8: aggregate storage utility of 4 representative "
              "channels (P2P, %.0f h)\n", spec.measure_hours);

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  const expr::ExperimentResult& r = result.results[0];  // mode=p2p

  std::vector<int> picks;
  std::vector<expr::SeriesColumn> columns;
  std::vector<std::string> names;
  for (double target : expr::paper::kRepresentativeChannelSizes) {
    const int c = closest_channel(r, target, picks);
    picks.push_back(c);
    const double size = r.metrics.channels[static_cast<std::size_t>(c)]
                            .size.mean_over(r.measure_start, r.measure_end);
    names.push_back("ch" + std::to_string(c) + " (avg " +
                    std::to_string(static_cast<int>(size)) + ")");
  }
  for (std::size_t k = 0; k < picks.size(); ++k) {
    columns.push_back({names[k],
                       &r.metrics.channels[static_cast<std::size_t>(picks[k])]
                            .storage_utility});
  }
  expr::print_series_table("Fig. 8 series (aggregate storage utility, hourly)",
                           columns, r.measure_start, r.measure_end, 3600.0,
                           "fig08_storage_utility");

  std::printf("\npaper targets avg sizes {60, 100, 200, 600}; utility ranks "
              "with popularity and follows the diurnal swing:\n");
  for (std::size_t k = 0; k < picks.size(); ++k) {
    const auto& series = r.metrics.channels[static_cast<std::size_t>(picks[k])]
                             .storage_utility;
    std::printf("  %-18s mean %12.3g  peak %12.3g\n", names[k].c_str(),
                series.mean_over(r.measure_start, r.measure_end),
                series.max_value());
  }

  const std::string out = flags.get("out", std::string("results/fig08_summary"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());
  return 0;
}
