// Ablation: chunk size (the paper's footnote 3). "The selection of chunk
// size should aim to minimize the unnecessary number of times of VM
// switching during users' playback, while considering the average length
// of continuous playback between two VCR operations as well as the actual
// transmission efficiency. We have experimented with different chunk sizes
// and identified the one presented here [T0 = 5 min] as the best."
//
// Runs on the sweep engine: the ablation_chunk_size golden preset's
// chunk_minutes axis at paper horizons. The chunk_minutes applier
// (sweep/param_grid.cc) sweeps T0 over a 100-minute video (J = 100 / T0)
// while keeping the physical seek (15 min) and departure (37 min)
// processes fixed, so the per-chunk jump/leave probabilities follow the
// competing-risks formula. Other T0 values:
// `tool_sweep --scenario=baseline_diurnal --grid mode=p2p --grid
//  chunk_minutes=1,2.5,5`.
//
// Flags: --hours=16 --warmup=2 --seed=42 --threads=<hardware>
//        --out=results/ablation_chunk_size

#include <cmath>
#include <cstdio>
#include <string>

#include "expr/flags.h"
#include "expr/runner.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "sweep/sweep_runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);

  profile::Profile prof = sweep::golden_preset("ablation_chunk_size").profile;
  prof.warmup_hours = 2.0;
  prof.measure_hours = 16.0;
  sweep::SweepSpec spec = sweep::SweepSpec::from_profile(prof);
  spec.keep_results = true;  // VM-boot and late-retrieval counters per row
  spec.apply_flags(flags);

  std::printf("Ablation: chunk size T0 (P2P, 100-minute videos, %.0f h per "
              "point, seed %llu)\n",
              spec.measure_hours,
              static_cast<unsigned long long>(spec.base_seed));
  std::printf("\n%8s %6s %10s %9s %10s %10s %10s %12s\n", "T0 (min)", "J",
              "chunk MB", "quality", "reserved", "$/h", "VM boots",
              "late frac");

  const sweep::SweepResult result = sweep::SweepRunner::run(spec);
  for (std::size_t k = 0; k < result.runs.size(); ++k) {
    const sweep::RunSummary& run = result.runs[k];
    const expr::ExperimentResult& r = result.results[k];
    const double t0_minutes = std::stod(run.point.coords.back().second);
    const int chunks = static_cast<int>(std::lround(100.0 / t0_minutes));
    core::VodParameters vod;
    vod.chunk_duration = t0_minutes * 60.0;
    vod.chunks_per_video = chunks;
    const double late_fraction =
        r.metrics.counters.chunk_downloads > 0
            ? static_cast<double>(r.metrics.counters.late_downloads) /
                  static_cast<double>(r.metrics.counters.chunk_downloads)
            : 0.0;
    std::printf("%8.1f %6d %10.1f %9.3f %7.0f Mb %10.2f %10ld %12.4f\n",
                t0_minutes, chunks, vod.chunk_bytes() / 1e6, run.mean_quality,
                run.mean_reserved_mbps, r.mean_vm_cost_rate(), r.vm_boots,
                late_fraction);
  }

  const std::string out =
      flags.get("out", std::string("results/ablation_chunk_size"));
  result.write(out);
  std::printf("\n[csv]  %s.csv\n[json] %s.json\n", out.c_str(), out.c_str());

  std::printf(
      "\nreading: small chunks multiply queues (finer control, more VM\n"
      "switching and per-chunk headroom); large chunks reduce switching but\n"
      "make each retrieval heavier and seeks wasteful — the paper's 5-minute\n"
      "choice sits in the flat middle of the quality/cost trade-off.\n");
  return 0;
}
