// Ablation: chunk size (the paper's footnote 3). "The selection of chunk
// size should aim to minimize the unnecessary number of times of VM
// switching during users' playback, while considering the average length
// of continuous playback between two VCR operations as well as the actual
// transmission efficiency. We have experimented with different chunk sizes
// and identified the one presented here [T0 = 5 min] as the best."
//
// We sweep T0 over a 100-minute video (J = 100 min / T0), keeping the mean
// seek interval at 15 minutes (so the per-chunk jump probability scales
// with T0), and measure quality, reserved bandwidth, cost, and the VM
// churn that footnote 3 worries about.
//
// Flags: --hours=16 --seed=42

#include <cmath>
#include <cstdio>
#include <vector>

#include "expr/config.h"
#include "expr/flags.h"
#include "expr/runner.h"

using namespace cloudmedia;

int main(int argc, char** argv) {
  const expr::Flags flags(argc, argv);
  const double hours = flags.get("hours", 16.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_ll("seed", 42));
  const double video_minutes = 100.0;
  const double seek_interval_minutes = 15.0;

  std::printf("Ablation: chunk size T0 (P2P, %.0f-minute videos, %.0f h per "
              "point, seed %llu)\n",
              video_minutes, hours, static_cast<unsigned long long>(seed));
  std::printf("\n%8s %6s %10s %9s %10s %10s %10s %12s\n", "T0 (min)", "J",
              "chunk MB", "quality", "reserved", "$/h", "VM boots",
              "late frac");

  for (double t0_minutes : {1.0, 2.5, 5.0, 10.0, 20.0}) {
    expr::ExperimentConfig cfg =
        expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
    cfg.vod.chunk_duration = t0_minutes * 60.0;
    cfg.vod.chunks_per_video =
        static_cast<int>(std::lround(video_minutes / t0_minutes));
    cfg.workload.chunks_per_video = cfg.vod.chunks_per_video;
    // Keep the physical processes fixed across T0: seeks fire at rate
    // 1/15 min, departures at rate 1/37 min. Over one chunk the two
    // exponential risks compete, so
    //   P(neither) = e^{-(rj+rl) T0},
    //   P(jump)    = rj/(rj+rl) · (1 - P(neither)),  etc.
    // which keeps jump+leave <= 1 for any chunk duration.
    const double rj = 1.0 / seek_interval_minutes;
    const double rl = 1.0 / 37.0;  // ~37 min mean viewing time
    const double event_prob = 1.0 - std::exp(-(rj + rl) * t0_minutes);
    cfg.workload.behavior.jump_prob = event_prob * rj / (rj + rl);
    cfg.workload.behavior.leave_prob = event_prob * rl / (rj + rl);
    cfg.warmup_hours = 2.0;
    cfg.measure_hours = hours;
    cfg.seed = seed;

    const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
    const double late_fraction =
        r.metrics.counters.chunk_downloads > 0
            ? static_cast<double>(r.metrics.counters.late_downloads) /
                  static_cast<double>(r.metrics.counters.chunk_downloads)
            : 0.0;
    std::printf("%8.1f %6d %10.1f %9.3f %7.0f Mb %10.2f %10ld %12.4f\n",
                t0_minutes, cfg.vod.chunks_per_video,
                cfg.vod.chunk_bytes() / 1e6, r.mean_quality(),
                r.mean_reserved_mbps(), r.mean_vm_cost_rate(), r.vm_boots,
                late_fraction);
  }

  std::printf(
      "\nreading: small chunks multiply queues (finer control, more VM\n"
      "switching and per-chunk headroom); large chunks reduce switching but\n"
      "make each retrieval heavier and seeks wasteful — the paper's 5-minute\n"
      "choice sits in the flat middle of the quality/cost trade-off.\n");
  return 0;
}
