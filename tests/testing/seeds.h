#pragma once

#include <cstdint>

namespace cloudmedia::testing {

// Seeding policy for randomized tests (audited in ISSUE 1): every test that
// draws randomness must construct its util::Rng from a compile-time-fixed
// seed, so any failure reproduces bit-for-bit with
// `ctest -R <name> --rerun-failed`. Parameterized sweeps derive their seed
// from GetParam() through sweep_seed() below; single-case tests use a
// literal. std::random_device, time-based seeds, and shared global engines
// are banned in tests.
//
// Caveat: std::* distributions are implementation-defined, so streams are
// reproducible per standard library (libstdc++ here), not across toolchains.

/// The default seed for single-instance tests that need one fixed stream.
inline constexpr std::uint64_t kGoldenSeed = 42;

/// Derive a sweep seed from a TEST_P parameter. `stride` must be odd and
/// distinct per sweep so different sweeps walk disjoint-looking seed
/// sequences; the +offset keeps seed 0 away from param 0.
[[nodiscard]] constexpr std::uint64_t sweep_seed(
    int param, std::uint64_t stride, std::uint64_t offset = 1) noexcept {
  return static_cast<std::uint64_t>(param) * stride + offset;
}

}  // namespace cloudmedia::testing
