#pragma once

#include <cstdint>

namespace cloudmedia::testing {

// Seeding policy for randomized tests (audited in ISSUE 1, re-audited in
// ISSUE 3): every test that draws randomness must construct its util::Rng
// from a compile-time-fixed seed, so any failure reproduces bit-for-bit
// with `ctest -R <name> --rerun-failed`. Parameterized sweeps derive their
// seed from GetParam() through sweep_seed() below; single-case tests use a
// literal. std::random_device, time-based seeds, shared global engines, and
// std::* distributions are banned in tests.
//
// Since ISSUE 3, util::Rng owns its generator (SplitMix64-seeded
// xoshiro256**) and every sampler, so streams are reproducible across
// standard libraries and toolchains, not just on libstdc++ — the golden
// snapshots under goldens/ and the pinned-stream tests in rng_test.cc rely
// on exactly that. The old "reproducible per standard library" caveat is
// gone; what remains implementation-sensitive is only libm rounding of
// log/log1p/sqrt inside the floating-point samplers.

/// The default seed for single-instance tests that need one fixed stream.
/// Must equal sweep::kGoldenSeed (src/sweep/goldens.h), the seed the
/// goldens/ snapshots are generated at — golden_test.cc asserts this.
inline constexpr std::uint64_t kGoldenSeed = 42;

/// Derive a sweep seed from a TEST_P parameter. `stride` must be odd and
/// distinct per sweep so different sweeps walk disjoint-looking seed
/// sequences; the +offset keeps seed 0 away from param 0.
[[nodiscard]] constexpr std::uint64_t sweep_seed(
    int param, std::uint64_t stride, std::uint64_t offset = 1) noexcept {
  return static_cast<std::uint64_t>(param) * stride + offset;
}

}  // namespace cloudmedia::testing
