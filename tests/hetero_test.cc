// Tests for the heterogeneous-peer extension of Eqn. (5) (src/core/hetero)
// — the paper's "the analysis can be readily extended to cases with
// heterogeneous bandwidths" (Sec. IV-C).

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "core/hetero.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "util/check.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

namespace cloudmedia {
namespace {

struct Scenario {
  util::Matrix transfer;
  core::ChannelCapacityPlan capacity;
  std::vector<double> population;
  double streaming_rate = 50'000.0;
};

Scenario make_scenario(int chunks, double arrival_rate) {
  workload::ViewingBehavior behavior;
  core::VodParameters params;
  params.chunks_per_video = chunks;

  Scenario s;
  s.transfer = behavior.transfer_matrix(chunks);
  const std::vector<double> entry = behavior.entry_distribution(chunks);
  const std::vector<double> lambda =
      core::solve_traffic_equations(s.transfer, entry, arrival_rate);
  const core::CapacityPlanner planner(params,
                                      core::CapacityModel::kChannelPooled);
  s.capacity = planner.plan(lambda);
  s.population.resize(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    s.population[i] = lambda[i] * params.chunk_duration;
  }
  s.streaming_rate = params.streaming_rate;
  return s;
}

std::vector<core::PeerClass> uniform_classes(int n, double upload) {
  std::vector<core::PeerClass> classes;
  for (int g = 0; g < n; ++g) {
    classes.push_back(
        core::PeerClass{"c" + std::to_string(g), upload, 1.0 / n});
  }
  return classes;
}

// ---------------------------------------------------------------------------
// Class-mix plumbing.
// ---------------------------------------------------------------------------

TEST(PeerClasses, ValidationRejectsBadMixes) {
  EXPECT_THROW(core::validate_peer_classes({}), util::PreconditionError);
  EXPECT_THROW(
      core::validate_peer_classes({{"a", 1e5, 0.5}, {"b", 1e5, 0.4}}),
      util::PreconditionError);  // fractions sum to 0.9
  EXPECT_THROW(core::validate_peer_classes({{"", 1e5, 1.0}}),
               util::PreconditionError);
  EXPECT_THROW(core::validate_peer_classes({{"a", -1.0, 1.0}}),
               util::PreconditionError);
}

TEST(PeerClasses, MeanUploadIsPopulationWeighted) {
  const std::vector<core::PeerClass> classes = {
      {"dsl", 100.0, 0.7}, {"fiber", 1000.0, 0.3}};
  EXPECT_NEAR(core::mean_upload(classes), 0.7 * 100 + 0.3 * 1000, 1e-12);
}

TEST(PeerClasses, QuantileDiscretizationPreservesTheMean) {
  const workload::BoundedPareto pareto(22'500.0, 1'250'000.0, 3.0);
  const auto classes = core::classes_from_quantiles(
      [&](double u) { return pareto.quantile(u); }, 8, 256);
  ASSERT_EQ(classes.size(), 8u);
  EXPECT_NEAR(core::mean_upload(classes), pareto.mean(),
              0.01 * pareto.mean());
  // Quantile classes are ordered by construction.
  for (std::size_t g = 1; g < classes.size(); ++g) {
    EXPECT_GE(classes[g].upload, classes[g - 1].upload);
  }
}

TEST(PeerClasses, SingleClassDiscretizationIsTheMean) {
  const workload::BoundedPareto pareto(22'500.0, 1'250'000.0, 3.0);
  const auto classes = core::classes_from_quantiles(
      [&](double u) { return pareto.quantile(u); }, 1, 4096);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_NEAR(classes[0].upload, pareto.mean(), 0.005 * pareto.mean());
  EXPECT_DOUBLE_EQ(classes[0].fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Degeneracy: identical classes must reproduce the homogeneous waterfall.
// ---------------------------------------------------------------------------

class HomogeneousDegeneracy : public ::testing::TestWithParam<int> {};

TEST_P(HomogeneousDegeneracy, MatchesHomogeneousSolverExactly) {
  const Scenario s = make_scenario(10, 0.08);
  const double u = 55'000.0;

  const core::P2pSupply homogeneous = core::solve_p2p_supply(
      s.transfer, s.capacity, s.population, u, s.streaming_rate);
  const core::HeteroP2pSupply hetero = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, uniform_classes(GetParam(), u),
      s.streaming_rate);

  ASSERT_EQ(hetero.peer_supply.size(), homogeneous.peer_supply.size());
  for (std::size_t i = 0; i < hetero.peer_supply.size(); ++i) {
    EXPECT_NEAR(hetero.peer_supply[i], homogeneous.peer_supply[i], 1e-6)
        << "chunk " << i;
    EXPECT_NEAR(hetero.cloud_residual[i], homogeneous.cloud_residual[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, HomogeneousDegeneracy,
                         ::testing::Values(1, 2, 5, 16));

// ---------------------------------------------------------------------------
// Waterfall invariants.
// ---------------------------------------------------------------------------

TEST(HeteroWaterfall, ClassContributionsSumToChunkSupply) {
  const Scenario s = make_scenario(12, 0.1);
  const std::vector<core::PeerClass> classes = {
      {"dsl", 20'000.0, 0.5}, {"cable", 60'000.0, 0.3}, {"fiber", 300'000.0, 0.2}};
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, classes, s.streaming_rate);

  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    double sum = 0.0;
    for (std::size_t g = 0; g < classes.size(); ++g) {
      EXPECT_GE(out.class_supply(g, i), -1e-9);
      sum += out.class_supply(g, i);
    }
    EXPECT_NEAR(sum, out.peer_supply[i], 1e-6) << "chunk " << i;
  }
}

TEST(HeteroWaterfall, SupplyNeverExceedsChunkRequirement) {
  const Scenario s = make_scenario(12, 0.1);
  const std::vector<core::PeerClass> classes = {
      {"slow", 10'000.0, 0.6}, {"fast", 500'000.0, 0.4}};
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, classes, s.streaming_rate);
  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    EXPECT_LE(out.peer_supply[i],
              s.capacity.chunks[i].bandwidth + 1e-6);
    EXPECT_GE(out.cloud_residual[i], 0.0);
    EXPECT_NEAR(out.cloud_residual[i],
                std::max(0.0, s.capacity.chunks[i].bandwidth -
                                  out.peer_supply[i]),
                1e-6);
  }
}

TEST(HeteroWaterfall, NoClassPledgesMoreThanItsCapacity) {
  const Scenario s = make_scenario(10, 0.12);
  const std::vector<core::PeerClass> classes = {
      {"dsl", 15'000.0, 0.7}, {"fiber", 400'000.0, 0.3}};
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, classes, s.streaming_rate);

  const double population =
      std::accumulate(s.population.begin(), s.population.end(), 0.0);
  for (std::size_t g = 0; g < classes.size(); ++g) {
    double pledged = 0.0;
    for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
      pledged += out.class_supply(g, i);
    }
    EXPECT_LE(pledged,
              classes[g].fraction * population * classes[g].upload + 1e-6)
        << "class " << classes[g].name;
  }
}

TEST(HeteroWaterfall, MeanPreservingSpreadShiftsLoadTowardFastClass) {
  const Scenario s = make_scenario(10, 0.1);
  // Same mean as homogeneous 50 kB/s but split 80/20 slow/fast.
  const std::vector<core::PeerClass> spread = {
      {"slow", 12'500.0, 0.8}, {"fast", 200'000.0, 0.2}};
  ASSERT_NEAR(core::mean_upload(spread), 50'000.0, 1e-9);

  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, spread, s.streaming_rate);

  double slow_total = 0.0, fast_total = 0.0;
  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    slow_total += out.class_supply(0, i);
    fast_total += out.class_supply(1, i);
  }
  // 20% of the population holds 80% of the capacity; the waterfall must
  // draw more from it in absolute terms.
  EXPECT_GT(fast_total, slow_total);
}

TEST(HeteroWaterfall, TotalSupplyWeaklyBelowHomogeneousMeanField) {
  // Jensen-style sanity: with the provisioned-bandwidth cap, concentrating
  // capacity in few peers cannot *increase* usable supply relative to the
  // homogeneous mean (caps bind per chunk, and the fast class saturates).
  const Scenario s = make_scenario(10, 0.1);
  const double mean = 50'000.0;
  const std::vector<core::PeerClass> spread = {
      {"slow", 5'000.0, 0.9}, {"fast", 455'000.0, 0.1}};
  ASSERT_NEAR(core::mean_upload(spread), mean, 1e-9);

  const auto hetero = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, spread, s.streaming_rate);
  const auto homogeneous = core::solve_p2p_supply(
      s.transfer, s.capacity, s.population, mean, s.streaming_rate);

  const double hetero_total = std::accumulate(
      hetero.peer_supply.begin(), hetero.peer_supply.end(), 0.0);
  const double homo_total = std::accumulate(
      homogeneous.peer_supply.begin(), homogeneous.peer_supply.end(), 0.0);
  EXPECT_LE(hetero_total, homo_total + 1e-6);
}

TEST(HeteroWaterfall, ZeroUploadClassesContributeNothing) {
  const Scenario s = make_scenario(8, 0.1);
  const std::vector<core::PeerClass> classes = {
      {"freerider", 0.0, 0.5}, {"seed", 100'000.0, 0.5}};
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, classes, s.streaming_rate);
  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.class_supply(0, i), 0.0);
  }
}

TEST(HeteroWaterfall, AllZeroUploadMeansCloudServesEverything) {
  const Scenario s = make_scenario(8, 0.1);
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, uniform_classes(3, 0.0),
      s.streaming_rate);
  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.peer_supply[i], 0.0);
    EXPECT_NEAR(out.cloud_residual[i], s.capacity.chunks[i].bandwidth, 1e-9);
  }
}

TEST(HeteroWaterfall, RarestOrderMatchesAvailabilityOrdering) {
  const Scenario s = make_scenario(10, 0.1);
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, uniform_classes(2, 50'000.0),
      s.streaming_rate);
  for (std::size_t k = 1; k < out.rarest_order.size(); ++k) {
    EXPECT_LE(out.availability.owners[out.rarest_order[k - 1]],
              out.availability.owners[out.rarest_order[k]] + 1e-12);
  }
}

TEST(HeteroWaterfall, LiteralCapOptionBindsAtStreamingRate) {
  const Scenario s = make_scenario(8, 0.15);
  core::P2pOptions options;
  options.demand_cap = core::P2pDemandCap::kStreamingRateLiteral;
  const auto out = core::solve_hetero_p2p_supply(
      s.transfer, s.capacity, s.population, uniform_classes(2, 500'000.0),
      s.streaming_rate, options);
  for (std::size_t i = 0; i < out.peer_supply.size(); ++i) {
    EXPECT_LE(out.peer_supply[i],
              s.capacity.chunks[i].servers * s.streaming_rate + 1e-6);
  }
}

}  // namespace
}  // namespace cloudmedia
