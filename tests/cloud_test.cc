#include <gtest/gtest.h>

#include <numeric>

#include "cloud/cloud_service.h"
#include "core/controller.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "workload/viewing.h"

namespace cloudmedia::cloud {
namespace {

using core::StreamingMode;

// ----------------------------------------------------------------- billing

TEST(CostMeter, IntegratesPiecewiseConstantRate) {
  sim::Simulator sim;
  CostMeter meter(sim);
  meter.set_rate("vm", 10.0);  // $/h from t=0
  sim.run_until(1800.0);       // half an hour
  EXPECT_NEAR(meter.total("vm"), 5.0, 1e-9);
  meter.set_rate("vm", 20.0);
  sim.run_until(5400.0);  // another hour at $20
  EXPECT_NEAR(meter.total("vm"), 25.0, 1e-9);
}

TEST(CostMeter, TracksCategoriesIndependently) {
  sim::Simulator sim;
  CostMeter meter(sim);
  meter.set_rate("vm", 48.0);
  meter.set_rate("storage", 0.00075);
  sim.run_until(24.0 * 3600.0);
  EXPECT_NEAR(meter.total("vm"), 48.0 * 24.0, 1e-6);
  EXPECT_NEAR(meter.total("storage"), 0.018, 1e-9);  // the paper's $/day
  EXPECT_NEAR(meter.grand_total(), 48.0 * 24.0 + 0.018, 1e-6);
}

TEST(CostMeter, UnknownCategoryIsZero) {
  sim::Simulator sim;
  const CostMeter meter(sim);
  EXPECT_DOUBLE_EQ(meter.total("nope"), 0.0);
  EXPECT_DOUBLE_EQ(meter.current_rate("nope"), 0.0);
  EXPECT_TRUE(meter.rate_series("nope").empty());
}

TEST(CostMeter, SeriesRecordsRateChanges) {
  sim::Simulator sim;
  CostMeter meter(sim);
  meter.set_rate("vm", 1.0);
  sim.run_until(3600.0);
  meter.set_rate("vm", 2.0);
  const util::TimeSeries& series = meter.rate_series("vm");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(series.time_at(1), 3600.0);
}

TEST(CostMeter, RejectsNegativeRate) {
  sim::Simulator sim;
  CostMeter meter(sim);
  EXPECT_THROW(meter.set_rate("vm", -1.0), util::PreconditionError);
}

// ---------------------------------------------------------- plan fixtures

core::ProvisioningPlan make_plan(double arrival_rate,
                                 StreamingMode mode = StreamingMode::kClientServer) {
  const core::VodParameters params;
  core::DemandEstimatorConfig est;
  est.mode = mode;
  core::ControllerConfig cfg{core::paper_vm_clusters(),
                             core::paper_nfs_clusters(), 100.0, 1.0};
  core::Controller controller(
      params, cfg, std::make_unique<core::ModelBasedPolicy>(params, est));

  const workload::ViewingBehavior behavior;
  core::ChannelObservation obs;
  obs.arrival_rate = arrival_rate;
  obs.transfer = behavior.transfer_matrix(params.chunks_per_video);
  obs.entry = behavior.entry_distribution(params.chunks_per_video);
  obs.occupancy.assign(static_cast<std::size_t>(params.chunks_per_video), 0.0);
  obs.served_cloud_bandwidth = obs.occupancy;
  obs.mean_peer_uplink = 50'000.0;

  core::TrackerReport report;
  report.interval_length = 3600.0;
  report.channels = {obs};
  return controller.plan(report);
}

CloudConfig paper_cloud_config(double boot_delay = 25.0) {
  CloudConfig cfg;
  cfg.sla = SlaTerms{100.0, 1.0, core::paper_vm_clusters(),
                     core::paper_nfs_clusters()};
  cfg.vm = VmSchedulerConfig{boot_delay, 1'250'000.0};
  return cfg;
}

// ------------------------------------------------------------ VM scheduler

TEST(VmScheduler, CapacityAppearsAfterBootDelay) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{25.0, 1'250'000.0});
  const core::ProvisioningPlan plan = make_plan(0.2);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);

  // Billed immediately, capacity only after the boot completes.
  EXPECT_GT(scheduler.reserved_bandwidth(), 0.0);
  double capacity_now = 0.0;
  for (int i = 0; i < 20; ++i) capacity_now += scheduler.chunk_capacity(0, i);
  EXPECT_DOUBLE_EQ(capacity_now, 0.0);

  sim.run_until(24.9);
  capacity_now = 0.0;
  for (int i = 0; i < 20; ++i) capacity_now += scheduler.chunk_capacity(0, i);
  EXPECT_DOUBLE_EQ(capacity_now, 0.0);

  sim.run_until(25.0);
  capacity_now = 0.0;
  for (int i = 0; i < 20; ++i) capacity_now += scheduler.chunk_capacity(0, i);
  EXPECT_NEAR(capacity_now, plan.reserved_bandwidth, 1.0);
}

TEST(VmScheduler, ZeroDelayIsImmediate) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{0.0, 1'250'000.0});
  const core::ProvisioningPlan plan = make_plan(0.2);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);
  double capacity_now = 0.0;
  for (int i = 0; i < 20; ++i) capacity_now += scheduler.chunk_capacity(0, i);
  EXPECT_NEAR(capacity_now, plan.reserved_bandwidth, 1.0);
}

TEST(VmScheduler, ShutdownIsImmediate) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{25.0, 1'250'000.0});
  const core::ProvisioningPlan big = make_plan(0.5);
  scheduler.apply(big.vm_problem, big.instances, 1, 20);
  sim.run_until(100.0);
  const double reserved_before = scheduler.reserved_bandwidth();

  const core::ProvisioningPlan small = make_plan(0.01);
  scheduler.apply(small.vm_problem, small.instances, 1, 20);
  EXPECT_LT(scheduler.reserved_bandwidth(), reserved_before);
  // Ready count drops instantly with the billed count.
  for (std::size_t v = 0; v < scheduler.num_clusters(); ++v) {
    EXPECT_LE(scheduler.ready_instances(v), scheduler.billed_instances(v));
  }
}

TEST(VmScheduler, CostRateMatchesBilledInstances) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{25.0, 1'250'000.0});
  const core::ProvisioningPlan plan = make_plan(0.3);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);
  EXPECT_NEAR(scheduler.cost_rate(), plan.vm_cost_rate, 1e-9);
}

TEST(VmScheduler, ListenerFiresOnApplyAndBootCompletion) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{25.0, 1'250'000.0});
  int fires = 0;
  scheduler.set_capacity_listener([&] { ++fires; });
  const core::ProvisioningPlan plan = make_plan(0.2);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);
  EXPECT_EQ(fires, 1);
  sim.run_until(30.0);
  EXPECT_EQ(fires, 2);
}

TEST(VmScheduler, ReplanCancelsPendingBoot) {
  sim::Simulator sim;
  VmScheduler scheduler(sim, core::paper_vm_clusters(),
                        VmSchedulerConfig{25.0, 1'250'000.0});
  const core::ProvisioningPlan plan = make_plan(0.2);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);
  sim.run_until(10.0);
  scheduler.apply(plan.vm_problem, plan.instances, 1, 20);  // replan at t=10
  sim.run_until(100.0);
  // No stale boot event left behind; capacity settled.
  for (std::size_t v = 0; v < scheduler.num_clusters(); ++v) {
    EXPECT_EQ(scheduler.ready_instances(v), scheduler.billed_instances(v));
  }
}

// ----------------------------------------------------------- NFS scheduler

TEST(NfsScheduler, AppliesPlacementAndBills) {
  NfsScheduler scheduler(core::paper_nfs_clusters());
  const core::ProvisioningPlan plan = make_plan(0.2);
  scheduler.apply(plan.storage_problem, plan.storage);
  EXPECT_EQ(scheduler.stored_chunks(0) + scheduler.stored_chunks(1), 20);
  EXPECT_NEAR(scheduler.cost_rate(), plan.storage_cost_rate, 1e-12);
  EXPECT_GT(scheduler.used_bytes(0) + scheduler.used_bytes(1), 0.0);
}

TEST(NfsScheduler, RejectsOverCapacityPlacement) {
  std::vector<core::NfsClusterSpec> tiny = core::paper_nfs_clusters();
  tiny[0].capacity_bytes = 15e6;  // one chunk
  tiny[1].capacity_bytes = 15e6;
  NfsScheduler scheduler(tiny);
  core::StorageProblem problem;
  problem.clusters = tiny;
  problem.chunk_bytes = 15e6;
  problem.budget_per_hour = 1.0;
  for (int i = 0; i < 4; ++i) problem.chunks.push_back({{0, i}, 1.0});
  core::StorageAssignment assignment;
  assignment.cluster_of = {0, 0, 1, 1};  // two chunks per one-chunk cluster
  EXPECT_THROW(scheduler.apply(problem, assignment), util::InvariantError);
}

// -------------------------------------------------------------- SLA/broker

TEST(Sla, AdmitsPaperScalePlan) {
  const SlaNegotiator sla(paper_cloud_config().sla);
  std::string reason;
  EXPECT_TRUE(sla.admit(make_plan(0.3), &reason)) << reason;
}

TEST(Sla, RejectsOverBudgetPlan) {
  CloudConfig cfg = paper_cloud_config();
  cfg.sla.vm_budget_per_hour = 0.5;  // below one VM-hour
  const SlaNegotiator sla(cfg.sla);
  std::string reason;
  EXPECT_FALSE(sla.admit(make_plan(0.5), &reason));
  EXPECT_FALSE(reason.empty());
}

TEST(VmMonitorCounters, TracksScaleEvents) {
  VmMonitor monitor(2);
  monitor.on_scale(0, +5);
  monitor.on_scale(0, -2);
  monitor.on_scale(1, +1);
  EXPECT_EQ(monitor.boots(0), 5);
  EXPECT_EQ(monitor.shutdowns(0), 2);
  EXPECT_EQ(monitor.total_boots(), 6);
  EXPECT_EQ(monitor.total_shutdowns(), 2);
}

// ------------------------------------------------------------ CloudService

TEST(CloudService, SubmitAppliesSchedulersAndBilling) {
  sim::Simulator sim;
  CloudService cloud(sim, paper_cloud_config(0.0));
  const core::ProvisioningPlan plan = make_plan(0.2);
  ASSERT_TRUE(cloud.submit_plan(plan, 1, 20));

  EXPECT_NEAR(cloud.vm_cost_rate(), plan.vm_cost_rate, 1e-9);
  EXPECT_NEAR(cloud.storage_cost_rate(), plan.storage_cost_rate, 1e-12);
  EXPECT_NEAR(cloud.reserved_bandwidth(),
              cloud.vm_scheduler().reserved_bandwidth(), 1e-9);
  ASSERT_EQ(cloud.request_monitor().log().size(), 1u);
  EXPECT_TRUE(cloud.request_monitor().log()[0].admitted);

  sim.run_until(3600.0);
  EXPECT_NEAR(cloud.billing().total("vm"), plan.vm_cost_rate, 1e-6);
}

TEST(CloudService, RejectedPlanChangesNothing) {
  sim::Simulator sim;
  CloudConfig cfg = paper_cloud_config(0.0);
  cfg.sla.vm_budget_per_hour = 0.01;
  CloudService cloud(sim, cfg);
  EXPECT_FALSE(cloud.submit_plan(make_plan(0.5), 1, 20));
  EXPECT_DOUBLE_EQ(cloud.reserved_bandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(cloud.vm_cost_rate(), 0.0);
  ASSERT_EQ(cloud.request_monitor().log().size(), 1u);
  EXPECT_FALSE(cloud.request_monitor().log()[0].admitted);
}

TEST(CloudService, MonitorsInstanceChurnAcrossPlans) {
  sim::Simulator sim;
  CloudService cloud(sim, paper_cloud_config(0.0));
  ASSERT_TRUE(cloud.submit_plan(make_plan(0.5), 1, 20));
  sim.run_until(3600.0);
  ASSERT_TRUE(cloud.submit_plan(make_plan(0.05), 1, 20));
  EXPECT_GT(cloud.vm_monitor().total_boots(), 0);
  EXPECT_GT(cloud.vm_monitor().total_shutdowns(), 0);
}

TEST(CloudService, BillingIntegratesAcrossPlanChanges) {
  sim::Simulator sim;
  CloudService cloud(sim, paper_cloud_config(0.0));
  ASSERT_TRUE(cloud.submit_plan(make_plan(0.4), 1, 20));
  const double rate1 = cloud.vm_cost_rate();
  sim.run_until(1800.0);  // half an hour at rate1
  ASSERT_TRUE(cloud.submit_plan(make_plan(0.05), 1, 20));
  const double rate2 = cloud.vm_cost_rate();
  ASSERT_LT(rate2, rate1);
  sim.run_until(5400.0);  // one more hour at rate2
  EXPECT_NEAR(cloud.billing().total("vm"), rate1 * 0.5 + rate2 * 1.0, 1e-6);
}

TEST(CloudService, P2pPlanReservesLessThanClientServer) {
  sim::Simulator sim1, sim2;
  CloudService cs(sim1, paper_cloud_config(0.0));
  CloudService p2p(sim2, paper_cloud_config(0.0));
  ASSERT_TRUE(cs.submit_plan(make_plan(0.3, StreamingMode::kClientServer), 1, 20));
  ASSERT_TRUE(p2p.submit_plan(make_plan(0.3, StreamingMode::kP2p), 1, 20));
  EXPECT_LT(p2p.reserved_bandwidth(), cs.reserved_bandwidth());
  EXPECT_LT(p2p.vm_cost_rate(), cs.vm_cost_rate());
}

}  // namespace
}  // namespace cloudmedia::cloud
