#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace cloudmedia::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EqualTimesFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockIsEventTimeInsideCallback) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { seen = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(5.0, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(5.1, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run_until(2.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, CancelFromInsideCallback) {
  Simulator sim;
  bool second_ran = false;
  const EventId second = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(second); });
  sim.run_until(5.0);
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, EventsScheduledAtCurrentTimeRunInSameDrain) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(2); });
  });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), util::PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), util::PreconditionError);
}

TEST(Simulator, RejectsBackwardRunUntil) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), util::PreconditionError);
}

TEST(Simulator, RunAllReturnsCountAndRespectsCap) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run_all(4), 4u);
  EXPECT_EQ(sim.pending(), 6u);
  EXPECT_EQ(sim.run_all(), 6u);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
  Simulator sim;
  std::vector<double> fires;
  sim.schedule_periodic(10.0, 5.0, [&](double t) { fires.push_back(t); });
  sim.run_until(27.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Simulator, PeriodicCancelStops) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle =
      sim.schedule_periodic(1.0, 1.0, [&](double) { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(1.0, 1.0, [&](double) {
    if (++count == 2) handle.cancel();
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicValidatesArguments) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(0.0, 0.0, [](double) {}),
               util::PreconditionError);
  EXPECT_THROW(sim.schedule_periodic(0.0, -1.0, [](double) {}),
               util::PreconditionError);
}

TEST(Simulator, ManyInterleavedEventsKeepOrder) {
  Simulator sim;
  std::vector<double> times;
  // Schedule in scrambled order; execution must be sorted.
  for (int i = 0; i < 500; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_all();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
  EXPECT_EQ(times.size(), 500u);
}

TEST(Simulator, CallbackExceptionPropagates) {
  Simulator sim;
  sim.schedule_at(1.0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(sim.run_until(2.0), std::runtime_error);
}

}  // namespace
}  // namespace cloudmedia::sim
