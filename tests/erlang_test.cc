#include <gtest/gtest.h>

#include <cmath>

#include "core/capacity.h"
#include "core/erlang.h"
#include "core/params.h"
#include "util/check.h"

namespace cloudmedia::core {
namespace {

// ------------------------------------------------------------- Erlang B/C

TEST(ErlangB, ZeroServersBlocksEverything) {
  EXPECT_DOUBLE_EQ(erlang_b(0, 5.0), 1.0);
}

TEST(ErlangB, SingleServerClosedForm) {
  // B(1, a) = a / (1 + a).
  for (double a : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(erlang_b(1, a), a / (1.0 + a), 1e-12);
  }
}

TEST(ErlangB, KnownValues) {
  // Hand-computed by the textbook recursion.
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b(3, 2.0), 0.8 / 3.8, 1e-12);
}

TEST(ErlangB, DecreasesWithServers) {
  for (int m = 1; m < 30; ++m) {
    EXPECT_LT(erlang_b(m + 1, 5.0), erlang_b(m, 5.0));
  }
}

TEST(ErlangB, IncreasesWithLoad) {
  EXPECT_LT(erlang_b(5, 1.0), erlang_b(5, 2.0));
  EXPECT_LT(erlang_b(5, 2.0), erlang_b(5, 4.0));
}

TEST(ErlangB, StableForLargeLoads) {
  // The naive a^m/m! formula overflows near m = 170; the recursion must not.
  const double b = erlang_b(1000, 900.0);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1.0);
  EXPECT_FALSE(std::isnan(b));
}

TEST(ErlangC, SingleServerEqualsUtilization) {
  // C(1, a) = a for a < 1 (M/M/1 waiting probability = ρ).
  for (double a : {0.1, 0.3, 0.7, 0.95}) {
    EXPECT_NEAR(erlang_c(1, a), a, 1e-12);
  }
}

TEST(ErlangC, KnownTwoServerValue) {
  // C(2, 1) = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, KnownThreeServerValue) {
  // C(3, 2) = 4/9.
  EXPECT_NEAR(erlang_c(3, 2.0), 4.0 / 9.0, 1e-9);
}

TEST(ErlangC, AtLeastErlangB) {
  for (int m : {1, 2, 5, 10}) {
    const double a = 0.8 * m;
    EXPECT_GE(erlang_c(m, a), erlang_b(m, a));
  }
}

TEST(ErlangC, RequiresStability) {
  EXPECT_THROW((void)erlang_c(2, 2.0), util::PreconditionError);
  EXPECT_THROW((void)erlang_c(2, 3.0), util::PreconditionError);
}

// -------------------------------------------------------------- M/M/m

TEST(MmmMetrics, MM1ClosedForms) {
  // M/M/1: E[n] = ρ/(1-ρ), E[T] = 1/(µ-λ).
  const double lambda = 0.6, mu = 1.0;
  const MmmMetrics m = mmm_metrics(lambda, mu, 1);
  EXPECT_NEAR(m.expected_system, 0.6 / 0.4, 1e-12);
  EXPECT_NEAR(m.expected_sojourn, 1.0 / 0.4, 1e-12);
  EXPECT_NEAR(m.utilization, 0.6, 1e-12);
}

TEST(MmmMetrics, MM2HandComputed) {
  // λ=1, µ=1, m=2: E[Lq] = C·ρ/(1-ρ) = (1/3)·1 = 1/3; E[n] = 4/3.
  const MmmMetrics m = mmm_metrics(1.0, 1.0, 2);
  EXPECT_NEAR(m.prob_wait, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.expected_queue, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.expected_system, 4.0 / 3.0, 1e-12);
}

TEST(MmmMetrics, LittlesLawHolds) {
  // E[n] = λ · E[sojourn] must hold for all stable configurations.
  for (int m = 1; m <= 20; m += 3) {
    for (double rho : {0.2, 0.5, 0.8, 0.95}) {
      const double mu = 0.1;
      const double lambda = rho * m * mu;
      const MmmMetrics metrics = mmm_metrics(lambda, mu, m);
      EXPECT_NEAR(metrics.expected_system, lambda * metrics.expected_sojourn,
                  1e-9)
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(MmmMetrics, ZeroArrivalsIdleSystem) {
  const MmmMetrics m = mmm_metrics(0.0, 0.5, 3);
  EXPECT_DOUBLE_EQ(m.expected_system, 0.0);
  EXPECT_DOUBLE_EQ(m.prob_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_sojourn, 2.0);  // pure service time
}

TEST(MmmMetrics, MonotoneInServers) {
  const double lambda = 2.0, mu = 0.5;
  double prev = 1e300;
  for (int m = 5; m <= 15; ++m) {
    const double en = mmm_metrics(lambda, mu, m).expected_system;
    EXPECT_LT(en, prev);
    prev = en;
  }
}

TEST(MmmMetrics, ApproachesOfferedLoadForManyServers) {
  const double lambda = 2.0, mu = 0.5;  // a = 4
  EXPECT_NEAR(mmm_metrics(lambda, mu, 200).expected_system, 4.0, 1e-6);
}

// ------------------------------------------------------------ min_servers

TEST(MinServers, ZeroArrivalsNeedNoServers) {
  EXPECT_EQ(min_servers(0.0, 1.0, 10.0), 0);
}

TEST(MinServers, ResultSatisfiesTargetAndIsMinimal) {
  const VodParameters params;  // µ = 1/12, T0 = 300
  const double mu = params.service_rate();
  for (double lambda : {0.01, 0.05, 0.2, 1.0, 5.0}) {
    const double target = lambda * params.chunk_duration;
    const int m = min_servers(lambda, mu, target);
    ASSERT_GE(m, 1);
    EXPECT_LE(mmm_metrics(lambda, mu, m).expected_system, target);
    // Minimality: m-1 either unstable or above target.
    if (m > 1) {
      const double a = lambda / mu;
      if (a < m - 1) {
        EXPECT_GT(mmm_metrics(lambda, mu, m - 1).expected_system, target);
      }
    }
  }
}

TEST(MinServers, PaperMappingTargetIsReachable) {
  // Target λT0 = a·R/r > a whenever R > r, so sizing always succeeds.
  const VodParameters params;
  const double mu = params.service_rate();
  const double lambda = 0.06;
  const double a = lambda / mu;
  EXPECT_NEAR(lambda * params.chunk_duration, a * 25.0, 1e-9);  // R = 25 r
  EXPECT_EQ(min_servers(lambda, mu, lambda * params.chunk_duration), 1);
}

TEST(MinServers, TightTargetForcesManyServers) {
  // Target barely above the offered load requires a large pool.
  const int m = min_servers(1.0, 0.1, 10.5);  // a = 10
  EXPECT_GT(m, 12);
  EXPECT_LE(mmm_metrics(1.0, 0.1, m).expected_system, 10.5);
}

TEST(MinServers, UnreachableTargetThrows) {
  // E[n] >= a always, so a target below the offered load is impossible.
  EXPECT_THROW((void)min_servers(1.0, 0.1, 9.0), util::PreconditionError);
}

// A parameterized sweep: for every (λ, ρ-target) combination the sizing
// must return a stable minimal pool.
class MinServersSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MinServersSweep, SizingInvariants) {
  const auto [lambda, slack] = GetParam();
  const double mu = 1.0 / 12.0;
  const double a = lambda / mu;
  const double target = a * slack;
  const int m = min_servers(lambda, mu, target);
  EXPECT_GT(static_cast<double>(m), a);  // stability
  EXPECT_LE(mmm_metrics(lambda, mu, m).expected_system, target);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MinServersSweep,
    ::testing::Combine(::testing::Values(0.01, 0.1, 0.5, 1.0, 3.0, 10.0),
                       ::testing::Values(1.05, 1.5, 5.0, 25.0)));

// --------------------------------------------------------- CapacityPlanner

TEST(CapacityPlanner, LiteralMatchesMinServersPerChunk) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kPerChunkLiteral);
  const std::vector<double> lambdas{0.05, 0.0, 0.3};
  const ChannelCapacityPlan plan = planner.plan(lambdas);
  ASSERT_EQ(plan.chunks.size(), 3u);
  const double mu = params.service_rate();
  for (std::size_t i = 0; i < 3; ++i) {
    const int expected =
        min_servers(lambdas[i], mu, lambdas[i] * params.chunk_duration);
    EXPECT_DOUBLE_EQ(plan.chunks[i].servers, expected);
    EXPECT_DOUBLE_EQ(plan.chunks[i].bandwidth,
                     params.vm_bandwidth * expected);
  }
  EXPECT_DOUBLE_EQ(plan.total_bandwidth,
                   params.vm_bandwidth * plan.total_servers);
}

TEST(CapacityPlanner, PooledUsesAggregateLoad) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kChannelPooled);
  const std::vector<double> lambdas{0.2, 0.2, 0.2, 0.2};
  const ChannelCapacityPlan plan = planner.plan(lambdas);
  const double mu = params.service_rate();
  const int expected = min_servers(0.8, mu, 0.8 * params.chunk_duration);
  EXPECT_EQ(plan.total_servers, expected);
  // Equal rates split bandwidth equally.
  for (const ChunkCapacity& c : plan.chunks) {
    EXPECT_NEAR(c.bandwidth, plan.total_bandwidth / 4.0, 1e-9);
    EXPECT_NEAR(c.servers, expected / 4.0, 1e-12);
  }
}

TEST(CapacityPlanner, PooledNeverExceedsLiteral) {
  // Pooling can only help: the aggregate M/M/M needs at most Σ m_i servers.
  const VodParameters params;
  const CapacityPlanner literal(params, CapacityModel::kPerChunkLiteral);
  const CapacityPlanner pooled(params, CapacityModel::kChannelPooled);
  const std::vector<double> lambdas{0.02, 0.08, 0.15, 0.4, 0.01};
  EXPECT_LE(pooled.plan(lambdas).total_servers,
            literal.plan(lambdas).total_servers);
}

TEST(CapacityPlanner, EmptyChannelNeedsNothing) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kChannelPooled);
  const ChannelCapacityPlan plan = planner.plan({0.0, 0.0});
  EXPECT_EQ(plan.total_servers, 0);
  EXPECT_DOUBLE_EQ(plan.total_bandwidth, 0.0);
}

TEST(CapacityPlanner, PooledBandwidthProportionalToRates) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kChannelPooled);
  const ChannelCapacityPlan plan = planner.plan({0.1, 0.3});
  EXPECT_NEAR(plan.chunks[1].bandwidth / plan.chunks[0].bandwidth, 3.0, 1e-9);
}

TEST(CapacityPlanner, LiteralExpectedInQueueMatchesEqn3) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kPerChunkLiteral);
  const std::vector<double> lambdas{0.2};
  const ChannelCapacityPlan plan = planner.plan(lambdas);
  const double mu = params.service_rate();
  const int m = static_cast<int>(plan.chunks[0].servers);
  EXPECT_NEAR(plan.chunks[0].expected_in_queue,
              mmm_metrics(0.2, mu, m).expected_system, 1e-12);
}

TEST(CapacityPlanner, RejectsNegativeRates) {
  const VodParameters params;
  const CapacityPlanner planner(params, CapacityModel::kChannelPooled);
  EXPECT_THROW((void)planner.plan({-0.1}), util::PreconditionError);
}

TEST(VodParameters, DefaultsMatchPaper) {
  const VodParameters params;
  EXPECT_DOUBLE_EQ(params.streaming_rate, 50'000.0);   // 400 kbps
  EXPECT_DOUBLE_EQ(params.chunk_duration, 300.0);      // 5 min
  EXPECT_EQ(params.chunks_per_video, 20);              // 100-minute video
  EXPECT_DOUBLE_EQ(params.chunk_bytes(), 15e6);        // 15 MB
  EXPECT_DOUBLE_EQ(params.vm_bandwidth, 1'250'000.0);  // 10 Mbps
  EXPECT_NEAR(params.service_rate(), 1.0 / 12.0, 1e-12);
}

TEST(VodParameters, RequiresVmFasterThanStream) {
  VodParameters params;
  params.vm_bandwidth = params.streaming_rate;
  EXPECT_THROW(params.validate(), util::PreconditionError);
}

}  // namespace
}  // namespace cloudmedia::core
