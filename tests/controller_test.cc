#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/controller.h"
#include "core/jackson.h"
#include "util/check.h"
#include "workload/viewing.h"

namespace cloudmedia::core {
namespace {

ChannelObservation make_observation(double arrival_rate, int j = 20,
                                    double uplink = 50'000.0) {
  const workload::ViewingBehavior behavior;
  ChannelObservation obs;
  obs.arrival_rate = arrival_rate;
  obs.transfer = behavior.transfer_matrix(j);
  obs.entry = behavior.entry_distribution(j);
  obs.occupancy.assign(static_cast<std::size_t>(j), 0.0);
  obs.served_cloud_bandwidth.assign(static_cast<std::size_t>(j), 0.0);
  obs.mean_peer_uplink = uplink;
  return obs;
}

TrackerReport make_report(std::vector<double> rates) {
  TrackerReport report;
  report.interval_start = 0.0;
  report.interval_length = 3600.0;
  for (double r : rates) report.channels.push_back(make_observation(r));
  return report;
}

ControllerConfig paper_controller_config() {
  return ControllerConfig{paper_vm_clusters(), paper_nfs_clusters(), 100.0, 1.0};
}

// --------------------------------------------------------- DemandEstimator

TEST(DemandEstimator, ClientServerDemandEqualsCapacity) {
  DemandEstimatorConfig cfg;
  cfg.mode = StreamingMode::kClientServer;
  const DemandEstimator estimator(VodParameters{}, cfg);
  const ChannelDemandEstimate est = estimator.estimate(make_observation(0.3));
  for (std::size_t i = 0; i < est.cloud_demand.size(); ++i) {
    EXPECT_DOUBLE_EQ(est.cloud_demand[i], est.capacity.chunks[i].bandwidth);
    EXPECT_DOUBLE_EQ(est.peer_supply[i], 0.0);
  }
  EXPECT_GT(est.total_cloud_demand, 0.0);
}

TEST(DemandEstimator, P2pDemandNeverExceedsClientServer) {
  DemandEstimatorConfig cs_cfg, p2p_cfg;
  cs_cfg.mode = StreamingMode::kClientServer;
  p2p_cfg.mode = StreamingMode::kP2p;
  const DemandEstimator cs(VodParameters{}, cs_cfg);
  const DemandEstimator p2p(VodParameters{}, p2p_cfg);
  const ChannelObservation obs = make_observation(0.3);
  EXPECT_LE(p2p.estimate(obs).total_cloud_demand,
            cs.estimate(obs).total_cloud_demand + 1e-6);
}

TEST(DemandEstimator, P2pSavingsGrowWithUplink) {
  DemandEstimatorConfig cfg;
  cfg.mode = StreamingMode::kP2p;
  const DemandEstimator estimator(VodParameters{}, cfg);
  double previous = 1e300;
  for (double u : {0.0, 25'000.0, 50'000.0, 75'000.0}) {
    const double total =
        estimator.estimate(make_observation(0.3, 20, u)).total_cloud_demand;
    EXPECT_LE(total, previous + 1e-6);
    previous = total;
  }
}

TEST(DemandEstimator, OccupancyFloorKeepsLingeringViewersServed) {
  DemandEstimatorConfig cfg;
  cfg.occupancy_floor = true;
  const DemandEstimator with_floor(VodParameters{}, cfg);
  cfg.occupancy_floor = false;
  const DemandEstimator without_floor(VodParameters{}, cfg);

  ChannelObservation obs = make_observation(0.0);  // no fresh arrivals
  std::fill(obs.occupancy.begin(), obs.occupancy.end(), 10.0);

  EXPECT_DOUBLE_EQ(without_floor.estimate(obs).total_cloud_demand, 0.0);
  const ChannelDemandEstimate floored = with_floor.estimate(obs);
  EXPECT_GT(floored.total_cloud_demand, 0.0);
  // Floor implies at least n_i/T0 arrivals per chunk.
  for (double l : floored.arrival_rates) {
    EXPECT_GE(l, 10.0 / 300.0 - 1e-12);
  }
}

TEST(DemandEstimator, LiteralEqnFiveCapRaisesCloudDemand) {
  // Plumb check for the DESIGN.md cap option: the verbatim m·r cap leaves
  // peers nearly unused, so the cloud residual grows to almost the full
  // client-server requirement.
  DemandEstimatorConfig bandwidth_cfg;
  bandwidth_cfg.mode = StreamingMode::kP2p;
  DemandEstimatorConfig literal_cfg = bandwidth_cfg;
  literal_cfg.p2p.demand_cap = P2pDemandCap::kStreamingRateLiteral;
  const DemandEstimator bandwidth(VodParameters{}, bandwidth_cfg);
  const DemandEstimator literal(VodParameters{}, literal_cfg);
  const ChannelObservation obs = make_observation(0.3);
  const double with_bandwidth_cap = bandwidth.estimate(obs).total_cloud_demand;
  const double with_literal_cap = literal.estimate(obs).total_cloud_demand;
  EXPECT_GT(with_literal_cap, 3.0 * with_bandwidth_cap);
  // Literal cap bounds offload at r/R = 4 % of the requirement.
  double requirement = 0.0;
  for (const ChunkCapacity& c : literal.estimate(obs).capacity.chunks) {
    requirement += c.bandwidth;
  }
  EXPECT_GT(with_literal_cap, requirement * 0.95);
}

TEST(DemandEstimator, ZeroChannelZeroDemand) {
  const DemandEstimator estimator(VodParameters{}, DemandEstimatorConfig{});
  EXPECT_DOUBLE_EQ(estimator.estimate(make_observation(0.0)).total_cloud_demand,
                   0.0);
}

TEST(DemandEstimator, RejectsMismatchedDimensions) {
  const DemandEstimator estimator(VodParameters{}, DemandEstimatorConfig{});
  ChannelObservation obs = make_observation(0.1, 7);  // J mismatch
  EXPECT_THROW((void)estimator.estimate(obs), util::PreconditionError);
}

// --------------------------------------------------------------- policies

TEST(ModelBasedPolicy, ProducesEstimatesPerChannel) {
  ModelBasedPolicy policy(VodParameters{}, DemandEstimatorConfig{});
  const DemandSet set = policy.estimate(make_report({0.1, 0.4}));
  ASSERT_EQ(set.cloud_demand.size(), 2u);
  ASSERT_EQ(set.estimates.size(), 2u);
  EXPECT_GT(set.estimates[1].total_cloud_demand,
            set.estimates[0].total_cloud_demand);
}

TEST(ReactivePolicy, ScalesLastIntervalUsage) {
  ReactivePolicy policy(VodParameters{}, 1.5);
  TrackerReport report = make_report({0.1});
  std::fill(report.channels[0].served_cloud_bandwidth.begin(),
            report.channels[0].served_cloud_bandwidth.end(), 2e6);
  const DemandSet set = policy.estimate(report);
  for (double d : set.cloud_demand[0]) EXPECT_DOUBLE_EQ(d, 3e6);
  EXPECT_TRUE(set.estimates.empty());
}

TEST(ReactivePolicy, RequiresMarginAtLeastOne) {
  EXPECT_THROW(ReactivePolicy(VodParameters{}, 0.5), util::PreconditionError);
}

TEST(StaticPolicy, AlwaysReturnsTheFixedPlan) {
  std::vector<std::vector<double>> fixed{{1e6, 2e6}, {0.0, 3e6}};
  StaticPolicy policy(fixed);
  TrackerReport report;
  report.channels.resize(2);
  EXPECT_EQ(policy.estimate(report).cloud_demand, fixed);
  EXPECT_EQ(policy.estimate(report).cloud_demand, fixed);
}

TEST(ClairvoyantPolicy, UsesFutureRateNotMeasured) {
  ClairvoyantPolicy policy(VodParameters{}, DemandEstimatorConfig{},
                           [](int, double, double) { return 0.5; });
  // Measured rate is 0; the oracle still provisions for 0.5 users/s.
  const DemandSet set = policy.estimate(make_report({0.0}));
  double total = 0.0;
  for (double d : set.cloud_demand[0]) total += d;
  EXPECT_GT(total, 0.0);
}

TEST(ClairvoyantPolicy, QueriesTheUpcomingInterval) {
  double seen_t0 = -1.0, seen_t1 = -1.0;
  ClairvoyantPolicy policy(VodParameters{}, DemandEstimatorConfig{},
                           [&](int, double t0, double t1) {
                             seen_t0 = t0;
                             seen_t1 = t1;
                             return 0.1;
                           });
  TrackerReport report = make_report({0.0});
  report.interval_start = 7200.0;
  report.interval_length = 3600.0;
  (void)policy.estimate(report);
  EXPECT_DOUBLE_EQ(seen_t0, 10'800.0);  // start of the planned interval
  EXPECT_DOUBLE_EQ(seen_t1, 14'400.0);
}

TEST(SeasonalPolicy, FallsBackToPersistenceWithoutHistory) {
  SeasonalPolicy seasonal(VodParameters{}, DemandEstimatorConfig{});
  ModelBasedPolicy persistence(VodParameters{}, DemandEstimatorConfig{});
  TrackerReport report = make_report({0.2});
  report.interval_start = 0.0;
  const DemandSet a = seasonal.estimate(report);
  const DemandSet b = persistence.estimate(report);
  ASSERT_EQ(a.cloud_demand.size(), b.cloud_demand.size());
  for (std::size_t i = 0; i < a.cloud_demand[0].size(); ++i) {
    EXPECT_NEAR(a.cloud_demand[0][i], b.cloud_demand[0][i], 1e-6);
  }
}

TEST(SeasonalPolicy, LearnsDayOverDaySlotRates) {
  SeasonalPolicy policy(VodParameters{}, DemandEstimatorConfig{},
                        /*period=*/86'400.0, /*blend=*/1.0, /*ewma=*/1.0);
  // Day 1, hour 5: measured 0.4. Day 2, hour 5 report should predict the
  // hour-6 slot; first teach it hour 6 too.
  TrackerReport hour5 = make_report({0.4});
  hour5.interval_start = 5.0 * 3600.0;
  (void)policy.estimate(hour5);
  EXPECT_NEAR(policy.seasonal_rate(0, 5), 0.4, 1e-12);

  TrackerReport hour6 = make_report({0.9});
  hour6.interval_start = 6.0 * 3600.0;
  (void)policy.estimate(hour6);
  EXPECT_NEAR(policy.seasonal_rate(0, 6), 0.9, 1e-12);

  // Next day, hour 5, measured only 0.1 — with blend=1 the prediction for
  // hour 6 must equal yesterday's hour-6 rate (0.9), not 0.1.
  TrackerReport next_day = make_report({0.1});
  next_day.interval_start = 86'400.0 + 5.0 * 3600.0;
  const DemandSet predicted = policy.estimate(next_day);
  ModelBasedPolicy reference(VodParameters{}, DemandEstimatorConfig{});
  TrackerReport expected = make_report({0.9});
  const DemandSet ref = reference.estimate(expected);
  double total_pred = 0.0, total_ref = 0.0;
  for (double d : predicted.cloud_demand[0]) total_pred += d;
  for (double d : ref.cloud_demand[0]) total_ref += d;
  EXPECT_NEAR(total_pred, total_ref, 1e-6);
}

TEST(SeasonalPolicy, EwmaSmoothsAcrossDays) {
  SeasonalPolicy policy(VodParameters{}, DemandEstimatorConfig{}, 86'400.0,
                        0.5, 0.5);
  for (int day = 0; day < 2; ++day) {
    TrackerReport report = make_report({day == 0 ? 0.2 : 0.6});
    report.interval_start = day * 86'400.0 + 3.0 * 3600.0;
    (void)policy.estimate(report);
  }
  // EWMA(0.5): 0.2 then 0.5*0.2 + 0.5*0.6 = 0.4.
  EXPECT_NEAR(policy.seasonal_rate(0, 3), 0.4, 1e-12);
}

TEST(SeasonalPolicy, ValidatesParameters) {
  EXPECT_THROW(SeasonalPolicy(VodParameters{}, DemandEstimatorConfig{}, -1.0),
               util::PreconditionError);
  EXPECT_THROW(SeasonalPolicy(VodParameters{}, DemandEstimatorConfig{},
                              86'400.0, 2.0),
               util::PreconditionError);
  EXPECT_THROW(SeasonalPolicy(VodParameters{}, DemandEstimatorConfig{},
                              86'400.0, 0.5, 0.0),
               util::PreconditionError);
}

// -------------------------------------------------------------- controller

TEST(Controller, PlanSolvesBothProblemsWithinBudgets) {
  Controller controller(
      VodParameters{}, paper_controller_config(),
      std::make_unique<ModelBasedPolicy>(VodParameters{},
                                         DemandEstimatorConfig{}));
  const ProvisioningPlan plan = controller.plan(make_report({0.2, 0.1, 0.05}));

  EXPECT_TRUE(plan.storage.feasible);
  EXPECT_TRUE(plan.vm.feasible);
  EXPECT_LE(plan.vm.cost_per_hour, 100.0 + 1e-9);
  EXPECT_LE(plan.storage_cost_rate, 1.0 + 1e-9);
  EXPECT_GT(plan.reserved_bandwidth, 0.0);
}

TEST(Controller, RealizedBandwidthMatchesAllocation) {
  Controller controller(
      VodParameters{}, paper_controller_config(),
      std::make_unique<ModelBasedPolicy>(VodParameters{},
                                         DemandEstimatorConfig{}));
  const ProvisioningPlan plan = controller.plan(make_report({0.2, 0.1}));

  double from_z = 0.0;
  for (const auto& row : plan.vm.z) {
    from_z += std::accumulate(row.begin(), row.end(), 0.0);
  }
  double from_chunks = 0.0;
  for (const auto& channel : plan.chunk_cloud_bandwidth) {
    from_chunks += std::accumulate(channel.begin(), channel.end(), 0.0);
  }
  EXPECT_NEAR(from_chunks, from_z * 1'250'000.0, 1.0);
  EXPECT_NEAR(plan.reserved_bandwidth, from_chunks, 1.0);
}

TEST(Controller, EveryChunkIsStored) {
  // The cloud is the only persistent source of the videos (Sec. III-B):
  // zero-demand chunks still get an NFS slot.
  Controller controller(
      VodParameters{}, paper_controller_config(),
      std::make_unique<ModelBasedPolicy>(VodParameters{},
                                         DemandEstimatorConfig{}));
  const ProvisioningPlan plan = controller.plan(make_report({0.0, 0.2}));
  for (int f : plan.storage.cluster_of) EXPECT_GE(f, 0);
  // 2 channels × 20 chunks × 15 MB = 600 MB stored.
  EXPECT_EQ(plan.storage.cluster_of.size(), 40u);
}

TEST(Controller, PaperScaleStorageCostIsTiny) {
  // 20 channels: 6 GB stored => ~$0.0007/h (the paper's ~$0.018/day).
  std::vector<double> rates(20, 0.05);
  Controller controller(
      VodParameters{}, paper_controller_config(),
      std::make_unique<ModelBasedPolicy>(VodParameters{},
                                         DemandEstimatorConfig{}));
  const ProvisioningPlan plan = controller.plan(make_report(rates));
  EXPECT_TRUE(plan.storage.feasible);
  EXPECT_LT(plan.storage_cost_rate * 24.0, 0.05);  // well under a nickel/day
  EXPECT_GT(plan.storage_cost_rate, 0.0);
}

TEST(Controller, InstanceBillNeverBelowFractionalCost) {
  Controller controller(
      VodParameters{}, paper_controller_config(),
      std::make_unique<ModelBasedPolicy>(VodParameters{},
                                         DemandEstimatorConfig{}));
  const ProvisioningPlan plan = controller.plan(make_report({0.3}));
  EXPECT_GE(plan.vm_cost_rate, plan.vm.cost_per_hour - 1e-9);
}

TEST(Controller, P2pPlanCheaperThanClientServer) {
  DemandEstimatorConfig cs_cfg, p2p_cfg;
  cs_cfg.mode = StreamingMode::kClientServer;
  p2p_cfg.mode = StreamingMode::kP2p;
  Controller cs(VodParameters{}, paper_controller_config(),
                std::make_unique<ModelBasedPolicy>(VodParameters{}, cs_cfg));
  Controller p2p(VodParameters{}, paper_controller_config(),
                 std::make_unique<ModelBasedPolicy>(VodParameters{}, p2p_cfg));
  const TrackerReport report = make_report({0.2, 0.1});
  EXPECT_LT(p2p.plan(report).vm_cost_rate, cs.plan(report).vm_cost_rate);
}

TEST(Controller, RequiresPolicy) {
  EXPECT_THROW(Controller(VodParameters{}, paper_controller_config(), nullptr),
               util::PreconditionError);
}

TEST(Controller, ValidatesConfig) {
  ControllerConfig cfg = paper_controller_config();
  cfg.vm_clusters.clear();
  EXPECT_THROW(Controller(VodParameters{}, cfg,
                          std::make_unique<ModelBasedPolicy>(
                              VodParameters{}, DemandEstimatorConfig{})),
               util::PreconditionError);
}

TEST(DemandEstimator, ToleratesClosedMeasuredTransferMatrix) {
  // Regression: a quiet hour can measure a P-hat in which every observed
  // departure from a chunk leads to another chunk (rows sum to 1). The raw
  // traffic equations are singular there — users that "never leave" have
  // unbounded equilibrium demand. The estimator must damp the matrix and
  // return finite, serviceable demand instead of throwing.
  const int j = 4;
  ChannelObservation obs;
  obs.arrival_rate = 0.01;
  obs.transfer = util::Matrix(j, j);
  // A closed 4-cycle: 0->1->2->3->0, no leave probability anywhere.
  for (int i = 0; i < j; ++i) {
    obs.transfer(static_cast<std::size_t>(i),
                 static_cast<std::size_t>((i + 1) % j)) = 1.0;
  }
  obs.entry.assign(static_cast<std::size_t>(j), 1.0 / j);
  obs.occupancy.assign(static_cast<std::size_t>(j), 2.0);
  obs.mean_peer_uplink = 50'000.0;

  VodParameters params;
  params.chunks_per_video = j;
  for (const auto mode : {StreamingMode::kClientServer, StreamingMode::kP2p}) {
    DemandEstimatorConfig config;
    config.mode = mode;
    const DemandEstimator estimator(params, config);
    ChannelDemandEstimate est;
    ASSERT_NO_THROW(est = estimator.estimate(obs));
    for (double lambda : est.arrival_rates) {
      EXPECT_TRUE(std::isfinite(lambda));
      EXPECT_GE(lambda, 0.0);
      // The damping bounds expected visits per entry at 1000.
      EXPECT_LE(lambda, obs.arrival_rate * 1000.0 + 2.0 / 300.0 + 1e-9);
    }
    EXPECT_TRUE(std::isfinite(est.total_cloud_demand));
    EXPECT_GE(est.total_cloud_demand, 0.0);
  }
}

TEST(DemandEstimator, WellMeasuredMatrixIsNotDamped) {
  // The paper's behaviour matrix leaks ~0.12 per row; damping must leave
  // it bit-identical (the scale branch should not trigger).
  const workload::ViewingBehavior behavior;
  ChannelObservation obs = make_observation(0.05);
  VodParameters params;
  const DemandEstimator estimator(params, {});
  const ChannelDemandEstimate est = estimator.estimate(obs);

  const std::vector<double> reference = solve_traffic_equations(
      obs.transfer, obs.entry, obs.arrival_rate);
  ASSERT_EQ(est.arrival_rates.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_DOUBLE_EQ(est.arrival_rates[i], reference[i]);
  }
}

}  // namespace
}  // namespace cloudmedia::core
