// Randomized cross-validation of the Sec.-V optimizers and the Sec.-IV
// pipeline: many seeded random instances, each checked against the exact
// solver / analytic invariants. Complements the hand-built cases in
// optimize_test.cc with breadth.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "core/storage_rental.h"
#include "core/vm_allocation.h"
#include "testing/seeds.h"
#include "util/rng.h"
#include "workload/viewing.h"

namespace cloudmedia {
namespace {

// ---------------------------------------------------------------------------
// Random instance builders (small enough for the exact solvers).
// ---------------------------------------------------------------------------

core::StorageProblem random_storage_problem(util::Rng& rng) {
  core::StorageProblem problem;
  const int clusters = rng.uniform_int(1, 3);
  const int chunks = rng.uniform_int(1, 8);
  problem.chunk_bytes = 15e6;
  for (int f = 0; f < clusters; ++f) {
    core::NfsClusterSpec spec;
    spec.name = "nfs" + std::to_string(f);
    spec.utility = rng.uniform(0.3, 1.0);
    spec.price_per_gb_hour = rng.uniform(1e-4, 3e-4);
    // Capacity between 1 and chunks+1 chunk slots.
    spec.capacity_bytes = problem.chunk_bytes * rng.uniform_int(1, chunks + 1);
    problem.clusters.push_back(spec);
  }
  for (int i = 0; i < chunks; ++i) {
    problem.chunks.push_back(core::ChunkDemand{
        core::ChunkRef{0, i}, rng.uniform(0.0, 2e6)});
  }
  // Budget from generous to tight (sometimes infeasible).
  problem.budget_per_hour = rng.uniform(0.0, 1.5) * 3e-4 / 1e9 *
                            problem.chunk_bytes * chunks;
  return problem;
}

core::VmProblem random_vm_problem(util::Rng& rng) {
  core::VmProblem problem;
  const int clusters = rng.uniform_int(1, 3);
  const int chunks = rng.uniform_int(1, 6);
  problem.vm_bandwidth = 1.25e6;
  for (int v = 0; v < clusters; ++v) {
    core::VmClusterSpec spec;
    spec.name = "vm" + std::to_string(v);
    spec.utility = rng.uniform(0.4, 1.0);
    spec.price_per_hour = rng.uniform(0.3, 1.0);
    spec.max_vms = rng.uniform_int(1, 30);
    problem.clusters.push_back(spec);
  }
  for (int i = 0; i < chunks; ++i) {
    problem.chunks.push_back(core::ChunkDemand{
        core::ChunkRef{0, i},
        rng.uniform(0.0, 8.0) * problem.vm_bandwidth});
  }
  problem.budget_per_hour = rng.uniform(0.5, 40.0);
  return problem;
}

// ---------------------------------------------------------------------------
// Storage rental: greedy vs exact over random instances.
// ---------------------------------------------------------------------------

class StorageRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(StorageRandomSweep, GreedyNeverBeatsExactAndBothAudit) {
  util::Rng rng(testing::sweep_seed(GetParam(), 7919, 13));
  for (int trial = 0; trial < 40; ++trial) {
    const core::StorageProblem problem = random_storage_problem(rng);
    const core::StorageAssignment greedy = core::solve_storage_greedy(problem);
    const core::StorageAssignment exact = core::solve_storage_exact(problem);

    // The exact search dominates: it is feasible whenever greedy is, and
    // its utility is at least greedy's.
    if (greedy.feasible) {
      ASSERT_TRUE(exact.feasible) << "exact lost feasibility greedy found";
      const double tol = 1e-12 * std::max(1.0, exact.total_utility);
      EXPECT_LE(greedy.total_utility, exact.total_utility + tol);
      // Audit both against the Eqn.-(6) constraints (throws on violation).
      EXPECT_NO_THROW({
        const auto check =
            core::audit_storage_assignment(problem, greedy.cluster_of);
        EXPECT_NEAR(check.total_utility, greedy.total_utility, tol);
        EXPECT_NEAR(check.cost_per_hour, greedy.cost_per_hour, 1e-12);
      });
      EXPECT_NO_THROW(
          (void)core::audit_storage_assignment(problem, exact.cluster_of));
      EXPECT_LE(greedy.cost_per_hour, problem.budget_per_hour + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageRandomSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// VM configuration: greedy vs exact LP over random instances.
// ---------------------------------------------------------------------------

class VmRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(VmRandomSweep, GreedyNeverBeatsExactAndMeetsDemandWhenFeasible) {
  util::Rng rng(testing::sweep_seed(GetParam(), 104729, 7));
  int greedy_only_failures = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const core::VmProblem problem = random_vm_problem(rng);
    const core::VmAllocation greedy = core::solve_vm_greedy(problem);
    const core::VmAllocation exact = core::solve_vm_exact(problem);

    if (greedy.feasible) {
      ASSERT_TRUE(exact.feasible);
      const double tol = 1e-9 * std::max(1.0, exact.total_utility);
      EXPECT_LE(greedy.total_utility, exact.total_utility + tol);
      EXPECT_NO_THROW((void)core::audit_vm_allocation(problem, greedy.z));
      EXPECT_NO_THROW((void)core::audit_vm_allocation(problem, exact.z));

      // Demand constraint: Σ_v z_iv = Δ_i / R for every chunk.
      for (std::size_t i = 0; i < problem.chunks.size(); ++i) {
        const double want = problem.chunks[i].demand / problem.vm_bandwidth;
        const double got = std::accumulate(greedy.z[i].begin(),
                                           greedy.z[i].end(), 0.0);
        EXPECT_NEAR(got, want, 1e-6) << "chunk " << i;
      }
      EXPECT_LE(greedy.cost_per_hour, problem.budget_per_hour + 1e-9);

      // Cluster capacity: Σ_i z_iv <= N_v.
      for (std::size_t v = 0; v < problem.clusters.size(); ++v) {
        EXPECT_LE(greedy.per_cluster_total[v],
                  problem.clusters[v].max_vms + 1e-9);
      }
    } else if (exact.feasible) {
      // A genuine (and documented) failure mode of the paper's heuristic:
      // greedy fills from the best utility-per-cost cluster first and can
      // exhaust the budget on expensive VMs, declaring infeasible an
      // instance the exact LP serves by mixing in cheaper clusters. Count
      // it — it should be the exception, not the rule.
      ++greedy_only_failures;
    }
  }
  EXPECT_LE(greedy_only_failures, 8)
      << "greedy loses feasibility far more often than expected";
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmRandomSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Instance packing: the fractional z -> integer VM instances step.
// ---------------------------------------------------------------------------

class PackingRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackingRandomSweep, InstancesCoverAllocationWithinClusterBounds) {
  util::Rng rng(testing::sweep_seed(GetParam(), 31, 3));
  for (int trial = 0; trial < 40; ++trial) {
    const core::VmProblem problem = random_vm_problem(rng);
    const core::VmAllocation greedy = core::solve_vm_greedy(problem);
    if (!greedy.feasible) continue;
    const core::InstancePlan plan = core::pack_instances(problem, greedy);

    // Every slice fraction is in (0, 1]; per-instance total <= 1.
    std::vector<double> served(problem.chunks.size(), 0.0);
    for (const core::VmInstance& vm : plan.instances) {
      double used = 0.0;
      for (const auto& [chunk, fraction] : vm.slices) {
        ASSERT_LT(chunk, problem.chunks.size());
        EXPECT_GT(fraction, 0.0);
        EXPECT_LE(fraction, 1.0 + 1e-9);
        served[chunk] += fraction;
        used += fraction;
      }
      EXPECT_LE(used, 1.0 + 1e-9);
    }
    // Integer instances fully cover the fractional allocation.
    for (std::size_t i = 0; i < problem.chunks.size(); ++i) {
      const double want = std::accumulate(greedy.z[i].begin(),
                                          greedy.z[i].end(), 0.0);
      EXPECT_GE(served[i] + 1e-6, want) << "chunk " << i;
    }
    // Booted counts match and stay within cluster limits; integer-priced
    // cost is at least the fractional cost.
    for (std::size_t v = 0; v < problem.clusters.size(); ++v) {
      EXPECT_LE(plan.per_cluster_count[v], problem.clusters[v].max_vms);
    }
    EXPECT_GE(plan.cost_per_hour, greedy.cost_per_hour - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingRandomSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Sec.-IV pipeline on random viewing behaviours.
// ---------------------------------------------------------------------------

class PipelineRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineRandomSweep, DemandPipelineInvariantsHoldForRandomBehaviour) {
  util::Rng rng(testing::sweep_seed(GetParam(), 65537, 11));
  for (int trial = 0; trial < 15; ++trial) {
    workload::ViewingBehavior behavior;
    behavior.alpha = rng.uniform(0.1, 0.95);
    behavior.jump_prob = rng.uniform(0.0, 0.5);
    behavior.leave_prob = rng.uniform(0.05, 0.5);
    const int j = rng.uniform_int(2, 16);
    const double arrival = rng.uniform(0.005, 0.3);

    core::VodParameters params;
    params.chunks_per_video = j;

    const util::Matrix transfer = behavior.transfer_matrix(j);
    const std::vector<double> lambda = core::solve_traffic_equations(
        transfer, behavior.entry_distribution(j), arrival);

    // Conservation: external in == external out.
    EXPECT_NEAR(core::departure_flow(transfer, lambda), arrival,
                1e-9 * std::max(1.0, arrival));

    // Sizing: both capacity models meet the sojourn target per chunk.
    for (const auto model : {core::CapacityModel::kPerChunkLiteral,
                             core::CapacityModel::kChannelPooled}) {
      const core::ChannelCapacityPlan plan =
          core::CapacityPlanner(params, model).plan(lambda);
      double expected_total = 0.0;
      for (std::size_t i = 0; i < lambda.size(); ++i) {
        expected_total += plan.chunks[i].expected_in_queue;
      }
      const double target = std::accumulate(lambda.begin(), lambda.end(), 0.0) *
                            params.chunk_duration;
      // E[n] <= λ·T0 system-wide is exactly the smooth-playback condition.
      EXPECT_LE(expected_total, target + 1e-6);
      EXPECT_GE(plan.total_bandwidth, 0.0);
    }

    // P2P: residuals never negative, supply never exceeds requirement.
    const core::ChannelCapacityPlan pooled =
        core::CapacityPlanner(params, core::CapacityModel::kChannelPooled)
            .plan(lambda);
    std::vector<double> population(lambda.size());
    for (std::size_t i = 0; i < lambda.size(); ++i) {
      population[i] = lambda[i] * params.chunk_duration;
    }
    const core::P2pSupply supply = core::solve_p2p_supply(
        transfer, pooled, population, rng.uniform(0.0, 2.0) * 50'000.0,
        params.streaming_rate);
    const double total_pop =
        std::accumulate(population.begin(), population.end(), 0.0);
    double total_supply = 0.0;
    for (std::size_t i = 0; i < lambda.size(); ++i) {
      EXPECT_GE(supply.peer_supply[i], -1e-9);
      EXPECT_LE(supply.peer_supply[i], pooled.chunks[i].bandwidth + 1e-6);
      EXPECT_GE(supply.cloud_residual[i], -1e-9);
      total_supply += supply.peer_supply[i];
    }
    // The overlay cannot upload more than every peer's full uplink.
    EXPECT_LE(total_supply, total_pop * 2.0 * 50'000.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRandomSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Determinism regression: the instance builders above must be pure functions
// of the seed — no global state, iteration-order dependence, or other hidden
// nondeterminism — or sweep failures would not reproduce under --rerun-failed.
// ---------------------------------------------------------------------------

TEST(RandomInstanceDeterminism, BuildersReproduceBitForBitFromSeed) {
  for (std::uint64_t seed : {cloudmedia::testing::kGoldenSeed,
                             cloudmedia::testing::sweep_seed(3, 7919, 13)}) {
    util::Rng a(seed);
    util::Rng b(seed);
    const core::StorageProblem sp1 = random_storage_problem(a);
    const core::StorageProblem sp2 = random_storage_problem(b);
    ASSERT_EQ(sp1.clusters.size(), sp2.clusters.size());
    ASSERT_EQ(sp1.chunks.size(), sp2.chunks.size());
    EXPECT_EQ(sp1.budget_per_hour, sp2.budget_per_hour);
    for (std::size_t f = 0; f < sp1.clusters.size(); ++f) {
      EXPECT_EQ(sp1.clusters[f].utility, sp2.clusters[f].utility);
      EXPECT_EQ(sp1.clusters[f].price_per_gb_hour,
                sp2.clusters[f].price_per_gb_hour);
      EXPECT_EQ(sp1.clusters[f].capacity_bytes, sp2.clusters[f].capacity_bytes);
    }
    for (std::size_t i = 0; i < sp1.chunks.size(); ++i) {
      EXPECT_EQ(sp1.chunks[i].demand, sp2.chunks[i].demand);
    }

    const core::VmProblem vp1 = random_vm_problem(a);
    const core::VmProblem vp2 = random_vm_problem(b);
    ASSERT_EQ(vp1.clusters.size(), vp2.clusters.size());
    ASSERT_EQ(vp1.chunks.size(), vp2.chunks.size());
    EXPECT_EQ(vp1.budget_per_hour, vp2.budget_per_hour);
    for (std::size_t i = 0; i < vp1.chunks.size(); ++i) {
      EXPECT_EQ(vp1.chunks[i].demand, vp2.chunks[i].demand);
    }
  }
}

TEST(RandomInstanceDeterminism, SolversAreDeterministicOnFixedInstance) {
  util::Rng rng(cloudmedia::testing::kGoldenSeed);
  const core::StorageProblem sp = random_storage_problem(rng);
  const core::VmProblem vp = random_vm_problem(rng);

  const core::StorageAssignment s1 = core::solve_storage_exact(sp);
  const core::StorageAssignment s2 = core::solve_storage_exact(sp);
  EXPECT_EQ(s1.feasible, s2.feasible);
  EXPECT_EQ(s1.total_utility, s2.total_utility);
  EXPECT_EQ(s1.cluster_of, s2.cluster_of);

  const core::VmAllocation v1 = core::solve_vm_greedy(vp);
  const core::VmAllocation v2 = core::solve_vm_greedy(vp);
  EXPECT_EQ(v1.feasible, v2.feasible);
  EXPECT_EQ(v1.total_utility, v2.total_utility);
  EXPECT_EQ(v1.z, v2.z);
}

}  // namespace
}  // namespace cloudmedia
