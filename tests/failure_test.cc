// Failure injection and adversarial-condition tests: the system must stay
// consistent (no crashes, conserved populations, sane metrics) when budgets
// collapse, clusters vanish, peers contribute nothing, or demand dwarfs the
// cloud — the situations a provisioning system actually gets judged on.

#include <gtest/gtest.h>

#include "expr/config.h"
#include "expr/runner.h"
#include "util/check.h"

namespace cloudmedia {
namespace {

using core::StreamingMode;

expr::ExperimentConfig tiny_config(StreamingMode mode) {
  expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
  cfg.workload.num_channels = 3;
  cfg.workload.total_arrival_rate = 0.06;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.warmup_hours = 1.0;
  cfg.measure_hours = 2.0;
  cfg.seed = 17;
  return cfg;
}

TEST(Failure, StarvedVmBudgetDegradesButDoesNotCrash) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.vm_budget_per_hour = 2.0;  // ~4 standard VMs for ~75 users
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  // Users stall: quality collapses, population piles up, but accounting
  // stays consistent and reserved stays within the budget.
  EXPECT_LT(r.mean_quality(), 0.9);
  EXPECT_LE(r.mean_vm_cost_rate(), 2.0 + 1.95 + 1e-6);  // budget + rounding
  EXPECT_GE(r.metrics.counters.arrivals, r.metrics.counters.departures);
}

TEST(Failure, ZeroUplinkPeersForceCloudToCarryP2p) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kP2p);
  cfg.workload.uplink_mean_ratio = 0.02;  // peers nearly useless
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  EXPECT_GT(r.mean_used_cloud_mbps(), r.mean_used_peer_mbps());
  EXPECT_GT(r.mean_quality(), 0.9);  // the cloud residual must cover it
}

TEST(Failure, StrongerPeersShedCloudUsage) {
  // Small swarms keep some cloud traffic no matter what (fresh arrivals own
  // nothing, availability is lumpy), so the robust property is relative:
  // tripling peer uplink must cut cloud usage substantially versus starving
  // it, on the identical workload.
  expr::ExperimentConfig weak = tiny_config(StreamingMode::kP2p);
  weak.workload.uplink_mean_ratio = 0.3;
  expr::ExperimentConfig strong = weak;
  strong.workload.uplink_mean_ratio = 3.0;
  const expr::ExperimentResult r_weak = expr::ExperimentRunner::run(weak);
  const expr::ExperimentResult r_strong = expr::ExperimentRunner::run(strong);
  // Some cloud usage is structural: the PS pools let downloads burst up to
  // R = 25 r on the provisioned headroom, and that surplus is cloud by the
  // peers-first attribution. Stronger peers still cut it and carry more.
  EXPECT_LT(r_strong.mean_used_cloud_mbps(),
            0.75 * r_weak.mean_used_cloud_mbps());
  EXPECT_GT(r_strong.mean_used_peer_mbps(), r_weak.mean_used_peer_mbps());
  const double strong_share =
      r_strong.mean_used_peer_mbps() /
      (r_strong.mean_used_peer_mbps() + r_strong.mean_used_cloud_mbps());
  const double weak_share =
      r_weak.mean_used_peer_mbps() /
      (r_weak.mean_used_peer_mbps() + r_weak.mean_used_cloud_mbps());
  EXPECT_GT(strong_share, weak_share);
}

TEST(Failure, SingleChannelLibraryWorks) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.workload.num_channels = 1;
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  EXPECT_GT(r.metrics.counters.chunk_downloads, 0);
  EXPECT_GT(r.mean_quality(), 0.9);
}

TEST(Failure, DeadChannelIsDeprovisioned) {
  // Channel 0 gets essentially all traffic (Zipf exponent 8): the other
  // channels must not hold VMs once their occupancy drains.
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.workload.zipf_exponent = 8.0;
  cfg.measure_hours = 3.0;
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  const double tail_start = r.measure_end - 3600.0;
  const double dead_channel_bw =
      r.metrics.channels[2].provisioned_mbps.mean_over(tail_start, r.measure_end);
  const double hot_channel_bw =
      r.metrics.channels[0].provisioned_mbps.mean_over(tail_start, r.measure_end);
  EXPECT_LT(dead_channel_bw, 0.1 * hot_channel_bw);
}

TEST(Failure, SlowBootDelayHurtsRampQuality) {
  // A pathological 20-minute boot latency makes every scale-up late; the
  // system must survive (and quality shows the damage vs instant boots).
  expr::ExperimentConfig slow = tiny_config(StreamingMode::kClientServer);
  slow.workload.diurnal = workload::DiurnalPattern(0.5, {{1.6, 2.0, 0.5}});
  slow.vm_boot_delay = 1200.0;
  expr::ExperimentConfig fast = slow;
  fast.vm_boot_delay = 0.0;
  const expr::ExperimentResult r_slow = expr::ExperimentRunner::run(slow);
  const expr::ExperimentResult r_fast = expr::ExperimentRunner::run(fast);
  EXPECT_LE(r_slow.mean_quality(), r_fast.mean_quality() + 1e-9);
  EXPECT_GT(r_slow.metrics.counters.chunk_downloads, 0);
}

TEST(Failure, ZeroStorageBudgetMakesPlansInfeasibleButSystemSurvives) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.storage_budget_per_hour = 0.0;
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  // Storage placement is infeasible (nothing stored), which the paper says
  // signals "budget too low"; our cloud still admits the VM side.
  EXPECT_DOUBLE_EQ(r.mean_storage_cost_rate(), 0.0);
  EXPECT_GT(r.metrics.counters.chunk_downloads, 0);
}

TEST(Failure, MassiveOverloadIsStableAccountingWise) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.workload.total_arrival_rate = 2.0;  // ~30x the tiny cloud budget
  cfg.vm_budget_per_hour = 5.0;
  cfg.measure_hours = 2.0;
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  EXPECT_LT(r.mean_quality(), 0.5);
  // Population balance still holds.
  EXPECT_EQ(r.metrics.counters.arrivals - r.metrics.counters.departures >= 0,
            true);
  // Reserved never exceeds what $5/h + rounding can buy (~13 standard VMs).
  EXPECT_LT(r.mean_reserved_mbps(), 200.0);
}

TEST(Failure, RecoveryAfterOverloadClears) {
  // A burst of arrivals overwhelms a modest budget, then arrivals stop;
  // the occupancy floor must keep capacity up until the backlog drains.
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kClientServer);
  cfg.workload.total_arrival_rate = 0.15;
  cfg.vm_budget_per_hour = 20.0;
  cfg.warmup_hours = 0.0;
  cfg.measure_hours = 4.0;
  // Arrivals are a single short pulse in the first hour, then ~nothing.
  cfg.workload.diurnal = workload::DiurnalPattern(1e-4, {{0.5, 2.0, 0.25}});
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  const double tail_users =
      r.metrics.concurrent_users.mean_over(r.measure_end - 900.0, r.measure_end);
  EXPECT_LT(tail_users, r.metrics.concurrent_users.max_value() * 0.3);
  EXPECT_GT(r.metrics.counters.departures, 0);
}

TEST(Failure, P2pWithNoArrivalsIsQuiet) {
  expr::ExperimentConfig cfg = tiny_config(StreamingMode::kP2p);
  cfg.workload.total_arrival_rate = 1e-6;
  cfg.warmup_hours = 0.0;
  cfg.measure_hours = 1.0;
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  EXPECT_LE(r.metrics.counters.arrivals, 2);
  EXPECT_DOUBLE_EQ(r.mean_quality(), 1.0);  // vacuous quality = 1
}

}  // namespace
}  // namespace cloudmedia
