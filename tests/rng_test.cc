// util::Rng sampler tests, in two tiers:
//
//  1. Golden stream pinning. The generator is OURS (SplitMix64-seeded
//     xoshiro256**, fully specified samplers), so the exact draw sequence
//     at kGoldenSeed is part of the public contract — checked-in sweep
//     goldens depend on it. These tests hard-code that sequence; if one
//     fails, the stream changed, every goldens/ snapshot is invalid, and
//     the change must be deliberate (regenerate via scripts/regen-goldens.sh
//     and say why).
//
//  2. Statistical sanity at fixed seeds: moment checks and chi-square /
//     Kolmogorov-Smirnov goodness-of-fit for the hand-rolled samplers.
//     Thresholds sit far out in the tail (~p < 1e-3) and the seeds are
//     frozen, so these never flake — they fail only if a sampler is wrong.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "testing/seeds.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cloudmedia::util {
namespace {

using cloudmedia::testing::kGoldenSeed;

// ------------------------------------------------------ golden stream pins

TEST(RngGolden, RawWordStreamAtGoldenSeed) {
  // First words of xoshiro256** seeded from SplitMix64(42) — verified
  // against an independent implementation of the reference algorithm.
  const std::uint64_t expected[] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL, 0xae17533239e499a1ULL,
      0xecb8ad4703b360a1ULL, 0xfde6dc7fe2ec5e64ULL, 0xc50da53101795238ULL,
      0xb82154855a65ddb2ULL, 0xd99a2743ebe60087ULL,
  };
  Rng rng(kGoldenSeed);
  for (std::uint64_t word : expected) EXPECT_EQ(rng.next_u64(), word);
}

TEST(RngGolden, WordStreamHashPinsFourThousandDraws) {
  // FNV-1a over the first 4096 words: a single constant that a change
  // anywhere in the seeding or the generator cannot dodge.
  Rng rng(kGoldenSeed);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t x = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      hash ^= (x >> (8 * b)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  }
  EXPECT_EQ(hash, 0xa2add2d917036f9eULL);
}

TEST(RngGolden, SamplerValuesAtGoldenSeed) {
  {
    Rng rng(kGoldenSeed);
    EXPECT_DOUBLE_EQ(rng.uniform(), 0.083862971059882163);
    EXPECT_DOUBLE_EQ(rng.uniform(), 0.37898025066266861);
    EXPECT_DOUBLE_EQ(rng.uniform(), 0.68004341102813937);
    EXPECT_DOUBLE_EQ(rng.uniform(), 0.92469294532538759);
  }
  {
    Rng rng(kGoldenSeed);
    EXPECT_DOUBLE_EQ(rng.exponential(2.0), 0.17517866116683514);
    EXPECT_DOUBLE_EQ(rng.exponential(2.0), 0.9527847901575448);
  }
  {
    Rng rng(kGoldenSeed);
    EXPECT_DOUBLE_EQ(rng.normal(0.0, 1.0), -0.72621913824478568);
    EXPECT_DOUBLE_EQ(rng.normal(0.0, 1.0), -0.21119691823195985);  // spare
    EXPECT_DOUBLE_EQ(rng.normal(0.0, 1.0), 0.22162270150359331);
  }
  {
    Rng rng(kGoldenSeed);
    const int expected[] = {17, 44, 71, 93, 99, 79, 74, 86};
    for (int value : expected) EXPECT_EQ(rng.uniform_int(10, 99), value);
  }
}

TEST(RngGolden, DerivedStreamPinned) {
  Rng derived = Rng(kGoldenSeed).derive(7, 3);
  EXPECT_EQ(derived.next_u64(), 0x354cf549d07efe66ULL);
}

TEST(RngGolden, Mix64Pinned) {
  // derive() and SweepRunner::run_seed both build on mix64; pin it too.
  EXPECT_EQ(mix64(42), 0xbdd732262feb6e95ULL);
}

// ----------------------------------------------------- statistical sanity

/// Chi-square statistic for observed counts vs. uniform expectation.
double chi_square_uniform(const std::vector<int>& counts, double total) {
  const double expected = total / static_cast<double>(counts.size());
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(RngStats, UniformMomentsAndKs) {
  Rng rng(kGoldenSeed);
  const int n = 100'000;
  std::vector<double> samples(n);
  SummaryStats stats;
  for (double& x : samples) {
    x = rng.uniform();
    stats.add(x);
  }
  // U(0,1): mean 1/2 (se ~9e-4), variance 1/12.
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);

  // Kolmogorov-Smirnov against the uniform CDF. Critical value at
  // alpha = 0.001 is ~1.95 / sqrt(n).
  std::sort(samples.begin(), samples.end());
  double ks = 0.0;
  for (int i = 0; i < n; ++i) {
    const double cdf = samples[static_cast<std::size_t>(i)];
    ks = std::max(ks, std::fabs(cdf - static_cast<double>(i) / n));
    ks = std::max(ks, std::fabs(static_cast<double>(i + 1) / n - cdf));
  }
  EXPECT_LT(ks, 1.95 / std::sqrt(static_cast<double>(n)));
}

TEST(RngStats, UniformIntChiSquareAcrossBuckets) {
  // 20 equiprobable buckets, 100k draws: chi-square with 19 dof has
  // p < 0.001 beyond ~43.8.
  Rng rng(kGoldenSeed);
  const int n = 100'000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 19))];
  EXPECT_LT(chi_square_uniform(counts, n), 43.8);
}

TEST(RngStats, UniformIntIsUnbiasedOverAwkwardRange) {
  // A 3-value range exercises the Lemire rejection path (2^64 % 3 != 0
  // would bias a naive modulo by ~2^-64 — the test mostly documents intent;
  // the chi-square catches gross errors like off-by-one bounds).
  Rng rng(kGoldenSeed);
  const int n = 90'000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(-1, 1)) + 1];
  EXPECT_LT(chi_square_uniform(counts, n), 13.8);  // 2 dof, p < 0.001
}

TEST(RngStats, ExponentialMomentsAndTail) {
  Rng rng(kGoldenSeed);
  const double mean = 4.0;
  const int n = 100'000;
  SummaryStats stats;
  int beyond_3mean = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(mean);
    EXPECT_GE(x, 0.0);
    stats.add(x);
    beyond_3mean += x > 3.0 * mean;
  }
  // Exp(mean): mean 4 (se ~1.3e-2), variance mean^2 = 16.
  EXPECT_NEAR(stats.mean(), mean, 0.06);
  EXPECT_NEAR(stats.variance(), mean * mean, 0.7);
  // P(X > 3*mean) = e^-3 ~ 0.0498.
  EXPECT_NEAR(beyond_3mean / static_cast<double>(n), std::exp(-3.0), 0.004);
}

TEST(RngStats, ExponentialInverseCdfChiSquare) {
  // Bucket by deciles of the fitted CDF: uniform counts expected.
  Rng rng(kGoldenSeed);
  const int n = 100'000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < n; ++i) {
    const double u = 1.0 - std::exp(-rng.exponential(1.0));  // CDF value
    const int bucket = std::min(9, static_cast<int>(u * 10.0));
    ++counts[static_cast<std::size_t>(bucket)];
  }
  EXPECT_LT(chi_square_uniform(counts, n), 27.9);  // 9 dof, p < 0.001
}

TEST(RngStats, NormalMomentsSkewAndKurtosis) {
  Rng rng(kGoldenSeed);
  const int n = 100'000;
  SummaryStats stats;
  std::vector<double> samples(n);
  for (double& x : samples) {
    x = rng.normal(3.0, 2.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.03);
  EXPECT_NEAR(stats.variance(), 4.0, 0.1);
  // Standardized third and fourth moments: 0 and 3 for a normal.
  double m3 = 0.0, m4 = 0.0;
  for (double x : samples) {
    const double z = (x - stats.mean()) / std::sqrt(stats.variance());
    m3 += z * z * z;
    m4 += z * z * z * z;
  }
  EXPECT_NEAR(m3 / n, 0.0, 0.05);
  EXPECT_NEAR(m4 / n, 3.0, 0.15);
}

TEST(RngStats, NormalThreeSigmaCoverage) {
  Rng rng(kGoldenSeed);
  const int n = 100'000;
  int within1 = 0, within2 = 0;
  for (int i = 0; i < n; ++i) {
    const double z = std::fabs(rng.normal(0.0, 1.0));
    within1 += z < 1.0;
    within2 += z < 2.0;
  }
  EXPECT_NEAR(within1 / static_cast<double>(n), 0.6827, 0.006);
  EXPECT_NEAR(within2 / static_cast<double>(n), 0.9545, 0.003);
}

TEST(RngStats, WeightedIndexChiSquareAgainstWeights) {
  Rng rng(kGoldenSeed);
  const std::vector<double> weights{0.5, 2.0, 0.0, 4.5, 3.0};
  const double total = 10.0;
  const int n = 100'000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight must never be drawn
  double chi2 = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0) continue;
    const double expected = n * weights[i] / total;
    const double d = counts[i] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 16.3);  // 3 dof, p < 0.001
}

TEST(RngStats, BernoulliBinomialBound) {
  Rng rng(kGoldenSeed);
  const double p = 0.3;
  const int n = 100'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
  // 4.5 binomial standard deviations.
  const double sd = std::sqrt(n * p * (1.0 - p));
  EXPECT_NEAR(hits, n * p, 4.5 * sd);
}

TEST(RngStats, BernoulliDegenerateEndpoints) {
  Rng rng(kGoldenSeed);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// --------------------------------------------------------- contract edges

TEST(Rng, UniformIntFullIntRangeDoesNotOverflow) {
  Rng rng(kGoldenSeed);
  for (int i = 0; i < 100; ++i) {
    const int v = rng.uniform_int(std::numeric_limits<int>::min(),
                                  std::numeric_limits<int>::max());
    (void)v;  // any value is legal; the test is that span+1 cannot overflow
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(7, 7), 7);
  }
}

TEST(Rng, UniformRangeStaysHalfOpen) {
  Rng rng(kGoldenSeed);
  // A huge span makes lo + u*(hi-lo) land on hi under rounding without the
  // nextafter guard.
  const double hi = 1e308;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(-hi, hi), hi);
  }
}

TEST(Rng, CopyTakesSamplerCacheAlong) {
  Rng a(kGoldenSeed);
  (void)a.normal(0.0, 1.0);  // prime the polar-method spare
  Rng b = a;
  EXPECT_DOUBLE_EQ(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace cloudmedia::util
