// Tests for workload trace record / save / load / offline analysis
// (src/trace). The paper drives its evaluation from a synthetic PPLive-like
// trace (Sec. VI-A); this module makes such traces first-class artifacts.

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/demand.h"
#include "trace/trace.h"
#include "util/check.h"
#include "workload/scenario.h"

namespace cloudmedia {
namespace {

workload::WorkloadConfig small_workload() {
  workload::WorkloadConfig cfg;
  cfg.num_channels = 4;
  cfg.chunks_per_video = 8;
  cfg.total_arrival_rate = 0.2;
  return cfg;
}

core::VodParameters small_params() {
  core::VodParameters params;
  params.chunks_per_video = 8;
  return params;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Recording.
// ---------------------------------------------------------------------------

TEST(TraceRecord, CapturesSortedValidSessions) {
  const workload::Workload workload(small_workload(), 11);
  const trace::Trace t = trace::record_trace(workload, 2.0 * 3600.0);
  EXPECT_NO_THROW(t.validate());
  EXPECT_GT(t.size(), 100u);  // ~0.2/s for 2 h ≈ 1400 arrivals
  EXPECT_EQ(t.num_channels, 4);
  EXPECT_EQ(t.chunks_per_video, 8);
  double prev = 0.0;
  for (const trace::TraceSession& s : t.sessions) {
    EXPECT_GE(s.arrival_time, prev);
    prev = s.arrival_time;
  }
}

TEST(TraceRecord, RecordingIsDeterministicReplay) {
  const workload::Workload a(small_workload(), 42);
  const workload::Workload b(small_workload(), 42);
  const trace::Trace ta = trace::record_trace(a, 3600.0);
  const trace::Trace tb = trace::record_trace(b, 3600.0);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t k = 0; k < ta.size(); ++k) {
    EXPECT_DOUBLE_EQ(ta.sessions[k].arrival_time, tb.sessions[k].arrival_time);
    EXPECT_EQ(ta.sessions[k].channel, tb.sessions[k].channel);
    EXPECT_DOUBLE_EQ(ta.sessions[k].uplink, tb.sessions[k].uplink);
    EXPECT_EQ(ta.sessions[k].chunks, tb.sessions[k].chunks);
  }
}

TEST(TraceRecord, DifferentSeedsDiffer) {
  const workload::Workload a(small_workload(), 1);
  const workload::Workload b(small_workload(), 2);
  const trace::Trace ta = trace::record_trace(a, 3600.0);
  const trace::Trace tb = trace::record_trace(b, 3600.0);
  // Identical traces across seeds would mean the seed is ignored.
  bool differs = ta.size() != tb.size();
  for (std::size_t k = 0; !differs && k < ta.size(); ++k) {
    differs = ta.sessions[k].arrival_time != tb.sessions[k].arrival_time;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceRecord, PopularChannelsDominate) {
  const workload::Workload workload(small_workload(), 3);
  const trace::Trace t = trace::record_trace(workload, 6.0 * 3600.0);
  const auto counts = t.sessions_per_channel();
  // Zipf(1.0): channel 0 should clearly out-draw channel 3 (weight 4x).
  EXPECT_GT(counts[0], counts[3] * 2);
}

TEST(TraceSummaries, MeanChunksAndHorizonMatchHandCount) {
  trace::Trace t;
  t.num_channels = 2;
  t.chunks_per_video = 4;
  t.sessions = {{10.0, 0, 5e4, {0, 1}}, {20.0, 1, 5e4, {2, 3, 1, 0}}};
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.mean_session_chunks(), 3.0);
  EXPECT_DOUBLE_EQ(t.horizon(), 20.0);
  EXPECT_EQ(t.sessions_per_channel(), (std::vector<std::size_t>{1, 1}));
}

TEST(TraceValidation, RejectsCorruptTraces) {
  trace::Trace t;
  t.num_channels = 2;
  t.chunks_per_video = 4;
  t.sessions = {{10.0, 0, 5e4, {0, 9}}};  // chunk out of range
  EXPECT_THROW(t.validate(), util::PreconditionError);
  t.sessions = {{10.0, 5, 5e4, {0}}};  // channel out of range
  EXPECT_THROW(t.validate(), util::PreconditionError);
  t.sessions = {{10.0, 0, 5e4, {}}};  // empty walk
  EXPECT_THROW(t.validate(), util::PreconditionError);
  t.sessions = {{10.0, 0, 5e4, {0}}, {5.0, 0, 5e4, {0}}};  // unsorted
  EXPECT_THROW(t.validate(), util::PreconditionError);
}

// ---------------------------------------------------------------------------
// CSV round trip.
// ---------------------------------------------------------------------------

TEST(TraceCsv, RoundTripPreservesEverySession) {
  const workload::Workload workload(small_workload(), 5);
  const trace::Trace original = trace::record_trace(workload, 3600.0);
  const std::string path = temp_path("cloudmedia_trace_roundtrip.csv");
  trace::save_trace_csv(original, path);
  const trace::Trace loaded = trace::load_trace_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_channels, original.num_channels);
  EXPECT_EQ(loaded.chunks_per_video, original.chunks_per_video);
  for (std::size_t k = 0; k < original.size(); ++k) {
    EXPECT_NEAR(loaded.sessions[k].arrival_time,
                original.sessions[k].arrival_time, 1e-3);
    EXPECT_EQ(loaded.sessions[k].channel, original.sessions[k].channel);
    EXPECT_NEAR(loaded.sessions[k].uplink, original.sessions[k].uplink, 1.0);
    EXPECT_EQ(loaded.sessions[k].chunks, original.sessions[k].chunks);
  }
}

TEST(TraceCsv, LoadRejectsForeignFiles) {
  const std::string path = temp_path("cloudmedia_trace_bogus.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("time,value\n1,2\n", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)trace::load_trace_csv(path), util::PreconditionError);
  std::remove(path.c_str());
}

TEST(TraceCsv, LoadRejectsMissingFile) {
  EXPECT_THROW((void)trace::load_trace_csv("/nonexistent/trace.csv"),
               util::PreconditionError);
}

// ---------------------------------------------------------------------------
// Offline analysis.
// ---------------------------------------------------------------------------

TEST(TraceAnalyzer, ArrivalRateCountsWindowedArrivals) {
  trace::Trace t;
  t.num_channels = 1;
  t.chunks_per_video = 4;
  t.sessions = {{100.0, 0, 5e4, {0}},
                {200.0, 0, 5e4, {1}},
                {1700.0, 0, 5e4, {2}}};
  const trace::TraceAnalyzer analyzer(t, core::VodParameters{
                                             50'000.0, 300.0, 4, 1'250'000.0});
  EXPECT_NEAR(analyzer.arrival_rate(0, 0.0, 1000.0), 2.0 / 1000.0, 1e-12);
  EXPECT_NEAR(analyzer.arrival_rate(0, 1000.0, 2000.0), 1.0 / 1000.0, 1e-12);
  EXPECT_DOUBLE_EQ(analyzer.arrival_rate(0, 2000.0, 3000.0), 0.0);
}

TEST(TraceAnalyzer, EmpiricalTransferMatchesHandCounts) {
  trace::Trace t;
  t.num_channels = 1;
  t.chunks_per_video = 3;
  // Walks: 0→1→2, 0→1, 0→2. From chunk 0: 2/3 to 1, 1/3 to 2.
  t.sessions = {{0.0, 0, 5e4, {0, 1, 2}},
                {1.0, 0, 5e4, {0, 1}},
                {2.0, 0, 5e4, {0, 2}}};
  const trace::TraceAnalyzer analyzer(t, core::VodParameters{
                                             50'000.0, 300.0, 3, 1'250'000.0});
  const util::Matrix p = analyzer.empirical_transfer(0);
  EXPECT_NEAR(p(0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p(0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p(1, 2), 1.0 / 2.0, 1e-12);  // one of two chunk-1 visits
  EXPECT_DOUBLE_EQ(p(2, 0), 0.0);          // chunk 2 always exits
}

TEST(TraceAnalyzer, EmpiricalEntryIsTheFirstChunkHistogram) {
  trace::Trace t;
  t.num_channels = 1;
  t.chunks_per_video = 4;
  t.sessions = {{0.0, 0, 5e4, {0}},
                {1.0, 0, 5e4, {0, 1}},
                {2.0, 0, 5e4, {2}},
                {3.0, 0, 5e4, {0}}};
  const trace::TraceAnalyzer analyzer(t, core::VodParameters{
                                             50'000.0, 300.0, 4, 1'250'000.0});
  const std::vector<double> entry = analyzer.empirical_entry(0);
  EXPECT_NEAR(entry[0], 0.75, 1e-12);
  EXPECT_NEAR(entry[2], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(entry[1], 0.0);
}

TEST(TraceAnalyzer, OccupancyPlacesViewersOnTheirCurrentChunk) {
  trace::Trace t;
  t.num_channels = 1;
  t.chunks_per_video = 4;
  // T0 = 300 s. Arrived at 0 with walk {0,1,2}: on chunk 1 during
  // [300, 600). Arrived at 500 with walk {3}: on chunk 3 until 800.
  t.sessions = {{0.0, 0, 5e4, {0, 1, 2}}, {500.0, 0, 5e4, {3}}};
  const trace::TraceAnalyzer analyzer(t, core::VodParameters{
                                             50'000.0, 300.0, 4, 1'250'000.0});
  const std::vector<double> occ = analyzer.occupancy(0, 550.0);
  EXPECT_DOUBLE_EQ(occ[0], 0.0);
  EXPECT_DOUBLE_EQ(occ[1], 1.0);
  EXPECT_DOUBLE_EQ(occ[3], 1.0);
  // After both sessions end, the channel is empty.
  const std::vector<double> later = analyzer.occupancy(0, 2000.0);
  for (double n : later) EXPECT_DOUBLE_EQ(n, 0.0);
}

TEST(TraceAnalyzer, ReportsCoverTheTraceAndDriveTheController) {
  const workload::Workload workload(small_workload(), 9);
  const trace::Trace t = trace::record_trace(workload, 4.0 * 3600.0);
  const trace::TraceAnalyzer analyzer(t, small_params());

  const auto reports = analyzer.reports(3600.0, 50'000.0);
  ASSERT_EQ(reports.size(), 4u);
  for (const core::TrackerReport& report : reports) {
    ASSERT_EQ(report.channels.size(), 4u);
  }

  // The reports must be consumable by the actual controller end to end.
  core::ControllerConfig controller_config{core::paper_vm_clusters(),
                                           core::paper_nfs_clusters(), 100.0,
                                           1.0};
  core::DemandEstimatorConfig estimator;
  estimator.mode = core::StreamingMode::kClientServer;
  const core::Controller controller(
      small_params(), controller_config,
      std::make_unique<core::ModelBasedPolicy>(small_params(), estimator));
  const core::ProvisioningPlan plan = controller.plan(reports[1]);
  EXPECT_GT(plan.reserved_bandwidth, 0.0);
  EXPECT_GT(plan.vm_cost_rate, 0.0);
}

TEST(TraceAnalyzer, RejectsMismatchedChunkGeometry) {
  const workload::Workload workload(small_workload(), 9);
  const trace::Trace t = trace::record_trace(workload, 600.0);
  core::VodParameters wrong = small_params();
  wrong.chunks_per_video = 20;
  EXPECT_THROW(trace::TraceAnalyzer(t, wrong), util::PreconditionError);
}

}  // namespace
}  // namespace cloudmedia
