#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/capacity.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "testing/seeds.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/viewing.h"

namespace cloudmedia::core {
namespace {

util::Matrix chain_matrix(int j, double advance) {
  // Pure sequential viewing: chunk i -> i+1 with probability `advance`.
  util::Matrix p(static_cast<std::size_t>(j), static_cast<std::size_t>(j));
  for (int i = 0; i + 1 < j; ++i) {
    p(static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1)) = advance;
  }
  return p;
}

// ------------------------------------------------------ traffic equations

TEST(TrafficEquations, SequentialChainGeometricRates) {
  const int j = 5;
  const double c = 0.5;
  std::vector<double> entry(j, 0.0);
  entry[0] = 1.0;
  const std::vector<double> l =
      solve_traffic_equations(chain_matrix(j, c), entry, 2.0);
  for (int i = 0; i < j; ++i) {
    EXPECT_NEAR(l[static_cast<std::size_t>(i)], 2.0 * std::pow(c, i), 1e-12);
  }
}

TEST(TrafficEquations, HandSolvedTwoQueueSystem) {
  // P = [[0, 0.5], [0.25, 0]], entry (1, 0), Λ = 1:
  //   λ1 = 1 + 0.25 λ2;  λ2 = 0.5 λ1  =>  λ1 = 8/7, λ2 = 4/7.
  util::Matrix p(2, 2);
  p(0, 1) = 0.5;
  p(1, 0) = 0.25;
  const std::vector<double> l = solve_traffic_equations(p, {1.0, 0.0}, 1.0);
  EXPECT_NEAR(l[0], 8.0 / 7.0, 1e-12);
  EXPECT_NEAR(l[1], 4.0 / 7.0, 1e-12);
}

TEST(TrafficEquations, ZeroExternalRateZeroFlows) {
  const std::vector<double> l =
      solve_traffic_equations(chain_matrix(4, 0.9), {1, 0, 0, 0}, 0.0);
  for (double x : l) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(TrafficEquations, EntrySplitSuperposition) {
  // Linearity: solution for a mixed entry vector equals the weighted sum of
  // single-entry solutions.
  const util::Matrix p = chain_matrix(3, 0.5);
  const std::vector<double> full =
      solve_traffic_equations(p, {0.7, 0.3, 0.0}, 1.0);
  const std::vector<double> e0 = solve_traffic_equations(p, {1, 0, 0}, 0.7);
  const std::vector<double> e1 = solve_traffic_equations(p, {0, 1, 0}, 0.3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(full[static_cast<std::size_t>(i)],
                e0[static_cast<std::size_t>(i)] + e1[static_cast<std::size_t>(i)],
                1e-12);
  }
}

TEST(TrafficEquations, ConservationExternalEqualsDepartures) {
  // For any open sub-stochastic network, Σ λ_i · P(leave|i) = Λ.
  const workload::ViewingBehavior behavior;
  const util::Matrix p = behavior.transfer_matrix(20);
  const std::vector<double> entry = behavior.entry_distribution(20);
  const std::vector<double> l = solve_traffic_equations(p, entry, 3.7);
  EXPECT_NEAR(departure_flow(p, l), 3.7, 1e-9);
}

class TrafficConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrafficConservationSweep, RandomSubStochasticNetworksConserveFlow) {
  util::Rng rng(testing::sweep_seed(GetParam(), 9973, 17));
  const int j = 3 + GetParam() % 6;
  util::Matrix p(static_cast<std::size_t>(j), static_cast<std::size_t>(j));
  for (int i = 0; i < j; ++i) {
    double row_budget = rng.uniform(0.3, 0.95);  // leak >= 5 %
    for (int k = 0; k < j; ++k) {
      const double share = rng.uniform() * row_budget / j;
      p(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) = share;
    }
  }
  std::vector<double> entry(static_cast<std::size_t>(j), 0.0);
  double total = 0.0;
  for (int i = 0; i < j; ++i) total += (entry[static_cast<std::size_t>(i)] = rng.uniform());
  for (double& e : entry) e /= total;

  const double external = rng.uniform(0.1, 10.0);
  const std::vector<double> l = solve_traffic_equations(p, entry, external);
  for (double x : l) EXPECT_GE(x, 0.0);
  EXPECT_NEAR(departure_flow(p, l), external, 1e-8 * external);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficConservationSweep,
                         ::testing::Range(1, 21));

TEST(TrafficEquations, RejectsSuperStochasticMatrix) {
  util::Matrix p(2, 2);
  p(0, 0) = 0.7;
  p(0, 1) = 0.6;  // row sum 1.3
  EXPECT_THROW((void)solve_traffic_equations(p, {1, 0}, 1.0),
               util::PreconditionError);
}

TEST(TrafficEquations, RejectsClosedNetwork) {
  // A stochastic (no-leak) matrix makes (I - Pᵀ) singular.
  util::Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  EXPECT_THROW((void)solve_traffic_equations(p, {1, 0}, 1.0),
               util::InvariantError);
}

TEST(TrafficEquations, RejectsNegativeEntries) {
  util::Matrix p(2, 2);
  p(0, 1) = -0.1;
  EXPECT_THROW((void)solve_traffic_equations(p, {1, 0}, 1.0),
               util::PreconditionError);
}

// ---------------------------------------------------------- Proposition 1

TEST(ChunkAvailability, SolutionSatisfiesProposition1) {
  const workload::ViewingBehavior behavior;
  const util::Matrix p = behavior.transfer_matrix(8);
  std::vector<double> population(8);
  for (int i = 0; i < 8; ++i) population[static_cast<std::size_t>(i)] = 5.0 + i;

  const ChunkAvailability a = solve_chunk_availability(p, population);
  for (std::size_t i = 0; i < 8; ++i) {
    // Anchor: ν_ii = E[n_i].
    EXPECT_NEAR(a.nu(i, i), population[i], 1e-9);
    // Fixed point: ν_ij = Σ_l ν_il P_lj for j != i.
    for (std::size_t jj = 0; jj < 8; ++jj) {
      if (jj == i) continue;
      double rhs = 0.0;
      for (std::size_t l = 0; l < 8; ++l) rhs += a.nu(i, l) * p(l, jj);
      EXPECT_NEAR(a.nu(i, jj), rhs, 1e-9) << "i=" << i << " j=" << jj;
    }
  }
}

TEST(ChunkAvailability, OwnersAreEqn4RowSums) {
  const workload::ViewingBehavior behavior;
  const util::Matrix p = behavior.transfer_matrix(6);
  const std::vector<double> population(6, 10.0);
  const ChunkAvailability a = solve_chunk_availability(p, population);
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (std::size_t jj = 0; jj < 6; ++jj) {
      if (jj != i) sum += a.nu(i, jj);
    }
    EXPECT_NEAR(a.owners[i], sum, 1e-9);
    EXPECT_GE(a.owners[i], 0.0);
  }
}

TEST(ChunkAvailability, SequentialChainOwnershipFlowsDownstream) {
  // In a pure forward chain, owners of chunk 0 sit in later queues only.
  const util::Matrix p = chain_matrix(4, 0.8);
  const ChunkAvailability a = solve_chunk_availability(p, {10, 8, 6, 4});
  EXPECT_GT(a.nu(0, 1), 0.0);
  EXPECT_GT(a.owners[0], a.owners[3]);  // early chunks owned more widely
  // Nobody in queue 0 owns chunk 3 (can't have passed through it).
  EXPECT_NEAR(a.nu(3, 0), 0.0, 1e-9);
}

TEST(ChunkAvailability, EmptyChannelHasNoOwners) {
  const util::Matrix p = chain_matrix(4, 0.5);
  const ChunkAvailability a = solve_chunk_availability(p, {0, 0, 0, 0});
  for (double o : a.owners) EXPECT_DOUBLE_EQ(o, 0.0);
}

TEST(ChunkAvailability, SingleChunkChannel) {
  util::Matrix p(1, 1);
  const ChunkAvailability a = solve_chunk_availability(p, {7.0});
  EXPECT_DOUBLE_EQ(a.nu(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a.owners[0], 0.0);  // downloaders are not suppliers
}

// ----------------------------------------------------------- Eqn. (5)

struct SupplyFixture {
  VodParameters params;
  util::Matrix transfer;
  ChannelCapacityPlan capacity;
  std::vector<double> population;

  explicit SupplyFixture(double external_rate = 0.2)
      : transfer(workload::ViewingBehavior{}.transfer_matrix(10)) {
    params.chunks_per_video = 10;
    const workload::ViewingBehavior behavior;
    const std::vector<double> lambdas = solve_traffic_equations(
        transfer, behavior.entry_distribution(10), external_rate);
    capacity = CapacityPlanner(params, CapacityModel::kChannelPooled).plan(lambdas);
    population.resize(10);
    for (std::size_t i = 0; i < 10; ++i) {
      population[i] = lambdas[i] * params.chunk_duration;
    }
  }
};

TEST(P2pSupply, SupplyIsNonNegativeAndCapped) {
  const SupplyFixture f;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                       50'000.0, f.params.streaming_rate);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(s.peer_supply[i], 0.0);
    EXPECT_LE(s.peer_supply[i], f.capacity.chunks[i].bandwidth + 1e-6);
    EXPECT_LE(s.peer_supply[i],
              s.availability.owners[i] * 50'000.0 + 1e-6);
  }
}

TEST(P2pSupply, TotalSupplyBoundedByOverlayUpload) {
  const SupplyFixture f;
  const double u = 50'000.0;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population, u,
                                       f.params.streaming_rate);
  const double total_supply =
      std::accumulate(s.peer_supply.begin(), s.peer_supply.end(), 0.0);
  const double overlay_upload =
      std::accumulate(f.population.begin(), f.population.end(), 0.0) * u;
  EXPECT_LE(total_supply, overlay_upload + 1e-6);
}

TEST(P2pSupply, ResidualPlusSupplyCoversRequirement) {
  const SupplyFixture f;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                       50'000.0, f.params.streaming_rate);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(s.cloud_residual[i] + s.peer_supply[i],
              f.capacity.chunks[i].bandwidth - 1e-6);
    EXPECT_GE(s.cloud_residual[i], 0.0);
  }
}

TEST(P2pSupply, RarestOrderSortedByOwners) {
  const SupplyFixture f;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                       50'000.0, f.params.streaming_rate);
  for (std::size_t k = 1; k < s.rarest_order.size(); ++k) {
    EXPECT_LE(s.availability.owners[s.rarest_order[k - 1]],
              s.availability.owners[s.rarest_order[k]]);
  }
}

TEST(P2pSupply, MoreUploadMeansLessCloud) {
  const SupplyFixture f;
  double previous_total = 1e300;
  for (double u : {10'000.0, 30'000.0, 50'000.0, 70'000.0}) {
    const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                         u, f.params.streaming_rate);
    const double total = std::accumulate(s.cloud_residual.begin(),
                                         s.cloud_residual.end(), 0.0);
    EXPECT_LE(total, previous_total + 1e-6);
    previous_total = total;
  }
}

TEST(P2pSupply, ZeroUploadMeansCloudServesEverything) {
  const SupplyFixture f;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                       0.0, f.params.streaming_rate);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(s.peer_supply[i], 0.0);
    EXPECT_DOUBLE_EQ(s.cloud_residual[i], f.capacity.chunks[i].bandwidth);
  }
}

TEST(P2pSupply, LiteralCapLimitsOffloadToStreamingRate) {
  // The paper-literal cap Γ <= m·r can never exceed (r/R)·s_i — the
  // inconsistency documented in DESIGN.md and core/p2p.h.
  const SupplyFixture f;
  P2pOptions literal;
  literal.demand_cap = P2pDemandCap::kStreamingRateLiteral;
  const P2pSupply s =
      solve_p2p_supply(f.transfer, f.capacity, f.population, 1e9,
                       f.params.streaming_rate, literal);
  const double r_over_big_r = f.params.streaming_rate / f.params.vm_bandwidth;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_LE(s.peer_supply[i],
              f.capacity.chunks[i].bandwidth * r_over_big_r + 1e-6);
  }
}

TEST(P2pSupply, AbundantUploadCoversAllDemandUnderBandwidthCap) {
  const SupplyFixture f;
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population,
                                       1e9, f.params.streaming_rate);
  for (std::size_t i = 0; i < 10; ++i) {
    if (s.availability.owners[i] > 0.0) {
      EXPECT_NEAR(s.cloud_residual[i], 0.0, 1e-6);
    }
  }
}

TEST(P2pSupply, PledgeAccountingDiscountsLaterChunks) {
  // With just enough upload for the rarest chunk, the next chunks get less.
  const SupplyFixture f;
  const double u = 5'000.0;  // scarce
  const P2pSupply s = solve_p2p_supply(f.transfer, f.capacity, f.population, u,
                                       f.params.streaming_rate);
  const std::size_t rarest = s.rarest_order[0];
  // The rarest chunk is served first (if it has owners at all).
  if (s.availability.owners[rarest] > 0.0) {
    EXPECT_GT(s.peer_supply[rarest], 0.0);
  }
  const double total =
      std::accumulate(s.peer_supply.begin(), s.peer_supply.end(), 0.0);
  const double overlay =
      std::accumulate(f.population.begin(), f.population.end(), 0.0) * u;
  EXPECT_LE(total, overlay + 1e-6);
}

}  // namespace
}  // namespace cloudmedia::core
