#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cloud/cloud_service.h"
#include "core/controller.h"
#include "expr/config.h"
#include "sim/simulator.h"
#include "sweep/scenario_catalog.h"
#include "util/check.h"
#include "vod/service_pool.h"
#include "vod/streaming_system.h"
#include "vod/tracker.h"
#include "workload/scenario.h"

namespace cloudmedia::vod {
namespace {

struct PoolHarness {
  sim::Simulator sim;
  std::vector<ServicePool::Completion> done;
  ServicePool pool;

  explicit PoolHarness(double per_job_cap = 100.0)
      : pool(sim, per_job_cap,
             [this](const ServicePool::Completion& c) { done.push_back(c); }) {}
};

// ------------------------------------------------------------ ServicePool

TEST(ServicePool, SingleJobServedAtPerJobCap) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 1000.0);  // capacity far above the cap
  h.pool.add_job(500.0, 7);
  h.sim.run_until(4.9);
  EXPECT_TRUE(h.done.empty());
  h.sim.run_until(5.0);  // 500 bytes / 100 B/s
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_EQ(h.done[0].tag, 7u);
  EXPECT_NEAR(h.done[0].sojourn, 5.0, 1e-9);
}

TEST(ServicePool, CapacityLimitsSingleJob) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 50.0);
  h.pool.add_job(500.0, 1);
  h.sim.run_until(10.0);  // 500 / 50
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 10.0, 1e-9);
}

TEST(ServicePool, ProcessorSharingSplitsEqually) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.pool.add_job(100.0, 2);
  // Two equal jobs at 50 B/s each finish together at t = 2.
  h.sim.run_until(2.0);
  ASSERT_EQ(h.done.size(), 2u);
  EXPECT_NEAR(h.done[0].sojourn, 2.0, 1e-9);
  EXPECT_NEAR(h.done[1].sojourn, 2.0, 1e-9);
}

TEST(ServicePool, LateArrivalFinishesLater) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.sim.schedule_at(0.5, [&] { h.pool.add_job(100.0, 2); });
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 2u);
  // Job 1: 0.5s alone (50 B) + shares 50 B/s until 100 B total:
  // needs 50 more bytes at 50 B/s -> t = 1.5.
  EXPECT_EQ(h.done[0].tag, 1u);
  EXPECT_NEAR(h.done[0].sojourn, 1.5, 1e-9);
  // Job 2: 50 B/s from 0.5 to 1.5 (50 B), then alone at 100 B/s for the
  // remaining 50 B -> completes at 2.0, sojourn 1.5.
  EXPECT_EQ(h.done[1].tag, 2u);
  EXPECT_NEAR(h.done[1].sojourn, 1.5, 1e-9);
}

TEST(ServicePool, CapacityChangeMidDownload) {
  PoolHarness h(1000.0);
  h.pool.set_capacity(0.0, 10.0);
  h.pool.add_job(100.0, 1);
  h.sim.schedule_at(5.0, [&] { h.pool.set_capacity(0.0, 5.0); });
  h.sim.run_all();
  // 50 bytes in the first 5 s, remaining 50 at 5 B/s -> t = 15.
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 15.0, 1e-9);
}

TEST(ServicePool, StarvedPoolResumesWhenCapacityReturns) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 0.0);
  h.pool.add_job(100.0, 1);
  h.sim.run_until(50.0);
  EXPECT_TRUE(h.done.empty());
  h.pool.set_capacity(0.0, 100.0);
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 51.0, 1e-9);
}

TEST(ServicePool, NoLivelockAfterLongBusyPeriods) {
  // Regression: the cumulative service level only matters relative to the
  // outstanding targets, but it used to grow without bound. Past ~2^35
  // bytes one double ULP exceeds the completion tolerance, `level +=
  // rate*dt` rounds to zero progress, and the pool reschedules the same
  // completion forever at an unmoving clock — week-long paper-scale runs
  // froze at t around 2^17 s. The pool now rebases; this keeps a pool busy
  // at the paper's per-VM rate far past the old tipping point.
  PoolHarness h(1.25e6);                  // R = 10 Mbps per connection
  h.pool.set_capacity(0.0, 1.25e6);
  const double chunk_bytes = 15e6;        // the paper's 15 MB chunks
  long completions = 0;
  // Keep exactly one job in flight: each completion enqueues the next.
  std::function<void()> enqueue = [&] { h.pool.add_job(chunk_bytes, 1); };
  h.pool.set_capacity(0.0, 1.25e6);
  enqueue();
  const double horizon = 300'000.0;       // ~3.5 simulated days busy
  double watchdog = 0.0;
  while (h.sim.now() < horizon) {
    const std::size_t before = h.done.size();
    h.sim.run_all(1000);
    completions += static_cast<long>(h.done.size() - before);
    for (std::size_t k = before; k < h.done.size(); ++k) enqueue();
    // A livelock would stop advancing the clock while burning events.
    ASSERT_GT(h.sim.now(), watchdog) << "clock stalled at " << h.sim.now();
    watchdog = h.sim.now();
    if (h.sim.pending() == 0) break;
  }
  // 1.25e6 B/s over 300000 s serves exactly 25 chunks/300 s.
  EXPECT_NEAR(static_cast<double>(completions), horizon / 12.0, 2.0);
}

TEST(ServicePool, TinyResidualWorkCompletesAtLargeSimTimes) {
  // Regression companion to NoLivelockAfterLongBusyPeriods: even with the
  // service level rebased, a job whose *remaining* bytes are just above
  // the byte tolerance needs a timer step below the clock's resolution
  // once now is large (ULP(131072 s) ~ 3e-11 s) — scheduling it would land
  // back on `now` and spin forever. The completion tolerance absorbs any
  // work the clock cannot resolve.
  PoolHarness h(1.25e6);
  h.pool.set_capacity(0.0, 1.25e6);
  h.sim.run_until(131'072.0);  // a large clock, as in week-long runs
  // Remaining work after the scheduled hop lands within a clock quantum:
  // 2e-5 bytes at 1.25e6 B/s is a 1.6e-11 s step, below ULP(now).
  h.pool.add_job(15e6 + 2e-5, 1);
  const std::size_t events = h.sim.run_all(10'000);
  ASSERT_EQ(h.done.size(), 1u) << "job never completed (frozen-clock spin)";
  EXPECT_LT(events, 100u) << "completion took an event storm";
  EXPECT_NEAR(h.done[0].sojourn, 12.0, 1e-3);
}

TEST(ServicePool, RemoveJobSuppressesCompletion) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  const std::uint64_t id = h.pool.add_job(100.0, 1);
  EXPECT_TRUE(h.pool.remove_job(id));
  EXPECT_FALSE(h.pool.remove_job(id));
  h.sim.run_all();
  EXPECT_TRUE(h.done.empty());
  EXPECT_EQ(h.pool.active_jobs(), 0u);
}

TEST(ServicePool, PeerFirstAttribution) {
  PoolHarness h(100.0);
  h.pool.set_capacity(60.0, 40.0);
  h.pool.add_job(1000.0, 1);  // rate = min(100, 100/1) = 100
  EXPECT_NEAR(h.pool.total_rate(), 100.0, 1e-9);
  EXPECT_NEAR(h.pool.peer_rate(), 60.0, 1e-9);
  EXPECT_NEAR(h.pool.cloud_rate(), 40.0, 1e-9);
}

TEST(ServicePool, CloudUnusedWhenPeersSuffice) {
  PoolHarness h(10.0);
  h.pool.set_capacity(60.0, 40.0);
  h.pool.add_job(1000.0, 1);  // per-job cap 10 binds
  EXPECT_NEAR(h.pool.total_rate(), 10.0, 1e-9);
  EXPECT_NEAR(h.pool.peer_rate(), 10.0, 1e-9);
  EXPECT_NEAR(h.pool.cloud_rate(), 0.0, 1e-9);
}

TEST(ServicePool, ByteCountersSplitBySource) {
  PoolHarness h(100.0);
  h.pool.set_capacity(30.0, 70.0);
  h.pool.add_job(100.0, 1);
  h.sim.run_all();  // 1 second at 100 B/s
  h.pool.sync();
  EXPECT_NEAR(h.pool.peer_bytes_served(), 30.0, 1e-6);
  EXPECT_NEAR(h.pool.cloud_bytes_served(), 70.0, 1e-6);
}

TEST(ServicePool, ManyJobsAllComplete) {
  PoolHarness h(10.0);
  h.pool.set_capacity(0.0, 100.0);
  for (int i = 0; i < 50; ++i) {
    h.pool.add_job(10.0 + i, static_cast<std::uint64_t>(i));
  }
  h.sim.run_all();
  EXPECT_EQ(h.done.size(), 50u);
  EXPECT_EQ(h.pool.active_jobs(), 0u);
  // Smaller jobs finish no later than larger ones (equal rates).
  for (std::size_t k = 1; k < h.done.size(); ++k) {
    EXPECT_LE(h.done[k - 1].tag, h.done[k].tag);
  }
}

TEST(ServicePool, CompletionHandlerMayAddJobs) {
  sim::Simulator sim;
  int completions = 0;
  ServicePool* pool_ptr = nullptr;
  ServicePool pool(sim, 100.0, [&](const ServicePool::Completion&) {
    if (++completions < 3) pool_ptr->add_job(100.0, 9);
  });
  pool_ptr = &pool;
  pool.set_capacity(0.0, 100.0);
  pool.add_job(100.0, 9);
  sim.run_all();
  EXPECT_EQ(completions, 3);
}

TEST(ServicePool, RejectsInvalidArguments) {
  PoolHarness h;
  EXPECT_THROW(h.pool.add_job(0.0, 1), util::PreconditionError);
  EXPECT_THROW(h.pool.set_capacity(-1.0, 0.0), util::PreconditionError);
}

TEST(ServicePool, SojournMeasuredFromEnqueue) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.sim.schedule_at(10.0, [&] { h.pool.add_job(200.0, 4); });
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].enqueue_time, 10.0, 1e-12);
  EXPECT_NEAR(h.done[0].sojourn, 2.0, 1e-9);
}

// ------------------------------------------------- ServicePool fluid jobs

TEST(ServicePool, FluidJobsShareCapacityWithDiscreteJobs) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.pool.set_fluid_jobs(1.0);  // processor-sharing denominator becomes 2
  EXPECT_NEAR(h.pool.per_job_rate(), 50.0, 1e-12);
  EXPECT_NEAR(h.pool.total_rate(), 100.0, 1e-12);
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 2.0, 1e-9);  // slowed from 1 s to 2 s
}

TEST(ServicePool, FluidOnlyPoolAccruesBytesWithoutCompletions) {
  PoolHarness h(100.0);
  h.pool.set_capacity(30.0, 70.0);
  h.pool.set_fluid_jobs(4.0);  // per-job rate min(100, 100/4) = 25
  EXPECT_NEAR(h.pool.total_rate(), 100.0, 1e-12);
  h.sim.run_until(10.0);
  h.pool.sync();
  EXPECT_TRUE(h.done.empty());  // fluid mass never "completes"
  EXPECT_EQ(h.pool.active_jobs(), 0u);
  EXPECT_NEAR(h.pool.peer_bytes_served(), 300.0, 1e-6);
  EXPECT_NEAR(h.pool.cloud_bytes_served(), 700.0, 1e-6);
}

TEST(ServicePool, ZeroFluidJobsIsBitNeutral) {
  // The discrete engine leaves fluid_jobs_ at 0.0; x + 0.0 == x exactly,
  // so the committed goldens cannot move. Pin the neutral case.
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.pool.set_fluid_jobs(0.0);
  EXPECT_DOUBLE_EQ(h.pool.per_job_rate(), 100.0);
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 1.0, 1e-12);
}

TEST(ServicePool, FluidJobsClearedMidFlightRestoresFullRate) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.pool.set_fluid_jobs(1.0);                           // 50 B/s
  h.sim.schedule_at(1.0, [&] { h.pool.set_fluid_jobs(0.0); });
  h.sim.run_all();
  // 50 bytes in the shared first second, the rest alone at 100 B/s.
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 1.5, 1e-9);
}

TEST(ServicePool, FluidJobsRejectInvalidValues) {
  PoolHarness h;
  EXPECT_THROW(h.pool.set_fluid_jobs(-1.0), util::PreconditionError);
}

TEST(ServicePool, MidWindowJoinersSurviveRebaseWithFluidLoad) {
  // Regression for the rebase/mid-window interaction: jobs that join while
  // earlier jobs are in flight carry absolute targets (enqueue level +
  // bytes), and a rebase must shift *every* outstanding target by the same
  // base exactly once — including jobs added mid-window and while fluid
  // load sits in the processor-sharing denominator. Byte volumes here are
  // chosen so the run crosses the 1e9 rebase threshold mid-flight: if the
  // rebase mis-shifted any joiner's target, its completion time would move
  // by ~1e9/rate seconds, not nanoseconds.
  PoolHarness h(1e12);  // no per-job cap: rate = capacity / n
  h.pool.set_capacity(0.0, 1e9);
  h.pool.add_job(8e8, 1);                                 // alone: 1e9 B/s
  h.sim.schedule_at(0.4, [&] { h.pool.add_job(8e8, 2); });  // level 4e8
  h.sim.schedule_at(0.8, [&] { h.pool.set_fluid_jobs(2.0); });
  // Joins mid-window at the rebase boundary (level ≈ 1e9).
  h.sim.schedule_at(2.2, [&] { h.pool.add_job(3e8, 3); });
  h.sim.run_all();

  ASSERT_EQ(h.done.size(), 3u);
  // Job 1: 1e9 B/s for 0.4 s, 5e8 B/s for 0.4 s (job 2 joins), 2.5e8 B/s
  // once 2 fluid jobs join at t = 0.8 -> 8e8 bytes done at t = 1.6.
  EXPECT_EQ(h.done[0].tag, 1u);
  EXPECT_NEAR(h.done[0].sojourn, 1.6, 1e-6);
  // Job 2 (target 1.2e9, past the threshold): shares as above, then runs
  // with 2 fluid jobs at 1e9/3 B/s from 1.6 to 2.2, at 2.5e8 B/s after
  // job 3 joins -> completes at t = 3.0 (sojourn 2.6). The rebase fires
  // during this stretch; its completion must not move.
  EXPECT_EQ(h.done[1].tag, 2u);
  EXPECT_NEAR(h.done[1].sojourn, 2.6, 1e-6);
  // Job 3 joined mid-window right at the threshold: 2.5e8 B/s until job 2
  // finishes, then 1e9/3 B/s for the last 1e8 bytes -> done at t = 3.3.
  EXPECT_EQ(h.done[2].tag, 3u);
  EXPECT_NEAR(h.done[2].sojourn, 1.1, 1e-6);
}

// --------------------------------------------------------------- Tracker

TEST(Tracker, CountsArrivalsAndTransitions) {
  Tracker tracker(2, 4);
  tracker.record_arrival(0, 0);
  tracker.record_arrival(0, 2);
  tracker.record_transition(0, 0, 1);
  tracker.record_transition(0, 1, std::nullopt);
  EXPECT_EQ(tracker.arrivals(0), 2);
  EXPECT_EQ(tracker.transitions(0, 0, 1), 1);
  EXPECT_EQ(tracker.leaves(0, 1), 1);
  EXPECT_EQ(tracker.arrivals(1), 0);
}

TEST(Tracker, HarvestBuildsNormalizedReport) {
  Tracker tracker(1, 3);
  for (int i = 0; i < 60; ++i) tracker.record_arrival(0, 0);
  for (int i = 0; i < 30; ++i) tracker.record_arrival(0, 1);
  for (int i = 0; i < 40; ++i) tracker.record_transition(0, 0, 1);
  for (int i = 0; i < 10; ++i) tracker.record_transition(0, 0, 2);
  for (int i = 0; i < 50; ++i) tracker.record_transition(0, 0, std::nullopt);

  const std::vector<std::vector<double>> occupancy{{1.0, 2.0, 3.0}};
  const std::vector<double> uplink{55'000.0};
  const std::vector<std::vector<double>> served{{1e6, 0.0, 0.0}};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, served);

  ASSERT_EQ(report.channels.size(), 1u);
  const core::ChannelObservation& obs = report.channels[0];
  EXPECT_NEAR(obs.arrival_rate, 90.0 / 3600.0, 1e-12);
  EXPECT_NEAR(obs.entry[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(obs.entry[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(obs.transfer(0, 1), 0.4, 1e-12);
  EXPECT_NEAR(obs.transfer(0, 2), 0.1, 1e-12);
  // Row sum leaves out the 50% leave probability.
  EXPECT_NEAR(obs.transfer(0, 0) + obs.transfer(0, 1) + obs.transfer(0, 2),
              0.5, 1e-12);
  EXPECT_EQ(obs.occupancy, occupancy[0]);
  EXPECT_DOUBLE_EQ(obs.mean_peer_uplink, 55'000.0);
  EXPECT_EQ(obs.served_cloud_bandwidth, served[0]);
}

TEST(Tracker, HarvestResetsCounters) {
  Tracker tracker(1, 2);
  tracker.record_arrival(0, 0);
  tracker.record_transition(0, 0, 1);
  const std::vector<std::vector<double>> occupancy{{0.0, 0.0}};
  const std::vector<double> uplink{0.0};
  (void)tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  EXPECT_EQ(tracker.arrivals(0), 0);
  EXPECT_EQ(tracker.transitions(0, 0, 1), 0);
  const core::TrackerReport second =
      tracker.harvest(3600.0, 3600.0, occupancy, uplink, occupancy);
  EXPECT_DOUBLE_EQ(second.channels[0].arrival_rate, 0.0);
}

TEST(Tracker, NoArrivalsYieldsValidEntryDistribution) {
  Tracker tracker(1, 3);
  const std::vector<std::vector<double>> occupancy{{0, 0, 0}};
  const std::vector<double> uplink{0.0};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  double total = 0.0;
  for (double e : report.channels[0].entry) total += e;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Tracker, UnobservedRowsStayZero) {
  Tracker tracker(1, 3);
  tracker.record_transition(0, 0, 1);
  const std::vector<std::vector<double>> occupancy{{0, 0, 0}};
  const std::vector<double> uplink{0.0};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(report.channels[0].transfer(2, j), 0.0);
  }
}

TEST(Tracker, ValidatesIndices) {
  Tracker tracker(2, 3);
  EXPECT_THROW(tracker.record_arrival(5, 0), util::PreconditionError);
  EXPECT_THROW(tracker.record_arrival(0, 9), util::PreconditionError);
  EXPECT_THROW(tracker.record_transition(0, 0, 7), util::PreconditionError);
}

TEST(Tracker, WeightedRecordsAccumulateFractionalMass) {
  // The cohort engine reports expected flows, not unit events: weights are
  // fractional viewer mass. Integer getters round; harvest normalizes the
  // raw mass.
  Tracker tracker(1, 3);
  tracker.record_arrival(0, 0, 1.5);
  tracker.record_arrival(0, 1, 2.5);
  tracker.record_transition(0, 0, 1, 3.0);
  tracker.record_transition(0, 0, std::nullopt, 1.0);
  EXPECT_EQ(tracker.arrivals(0), 4);  // lround(1.5 + 2.5)
  EXPECT_EQ(tracker.transitions(0, 0, 1), 3);
  EXPECT_EQ(tracker.leaves(0, 0), 1);

  const std::vector<std::vector<double>> occupancy{{0.0, 0.0, 0.0}};
  const std::vector<double> uplink{0.0};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  const core::ChannelObservation& obs = report.channels[0];
  EXPECT_NEAR(obs.arrival_rate, 4.0 / 3600.0, 1e-15);
  EXPECT_NEAR(obs.entry[0], 1.5 / 4.0, 1e-12);
  EXPECT_NEAR(obs.entry[1], 2.5 / 4.0, 1e-12);
  EXPECT_NEAR(obs.transfer(0, 1), 3.0 / 4.0, 1e-12);  // row mass 3 + 1
  EXPECT_THROW(tracker.record_arrival(0, 0, -0.5), util::PreconditionError);
}

// ------------------------------------------------- full-system lifecycle

cloud::CloudConfig cloud_config_for(const expr::ExperimentConfig& cfg) {
  cloud::CloudConfig cc;
  cc.sla = cloud::SlaTerms{cfg.vm_budget_per_hour, cfg.storage_budget_per_hour,
                           cfg.vm_clusters, cfg.nfs_clusters};
  cc.vm = cloud::VmSchedulerConfig{0.0, cfg.vod.vm_bandwidth};
  return cc;
}

/// The full deployment wired by hand (as integration_test does) so the
/// tests below can poke StreamingSystem internals mid-run.
struct SystemHarness {
  sim::Simulator sim;
  workload::Workload workload;
  cloud::CloudService cloud;
  StreamingSystem system;

  SystemHarness(const expr::ExperimentConfig& cfg, StreamingOptions options,
                std::unique_ptr<core::DemandPolicy> policy)
      : workload(cfg.workload, cfg.seed),
        cloud(sim, cloud_config_for(cfg)),
        system(sim, workload, cfg.vod, cloud,
               std::make_unique<core::Controller>(
                   cfg.vod,
                   core::ControllerConfig{cfg.vm_clusters, cfg.nfs_clusters,
                                          cfg.vm_budget_per_hour,
                                          cfg.storage_budget_per_hour},
                   std::move(policy)),
               options) {}
};

std::unique_ptr<core::DemandPolicy> model_policy(
    const expr::ExperimentConfig& cfg, core::StreamingMode mode) {
  core::DemandEstimatorConfig est;
  est.mode = mode;
  return std::make_unique<core::ModelBasedPolicy>(cfg.vod, est);
}

TEST(StreamingSystem, DepartWhileDownloadingAbortsPoolJob) {
  // Regression for the ghost-job leak: a peer departing mid-download left
  // its pool job in flight, holding a processor-sharing capacity share
  // forever and inflating cloud_bytes_served when it finally "completed"
  // into a missing peer.
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  cfg.workload.num_channels = 2;
  cfg.workload.total_arrival_rate = 0.05;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.seed = 11;

  StreamingOptions options;
  options.mode = core::StreamingMode::kClientServer;
  options.bootstrap_plan = false;  // no capacity: every download stalls

  SystemHarness h(cfg, options,
                  model_policy(cfg, core::StreamingMode::kClientServer));
  h.system.start();
  h.sim.run_until(1800.0);  // before the first plan: pools still at zero

  // Precondition: every present peer is stuck mid-download holding a job.
  ASSERT_GT(h.system.current_users(), 0u);
  std::size_t downloading = 0;
  h.system.for_each_peer(
      [&](const Peer& peer) { downloading += peer.downloading ? 1u : 0u; });
  EXPECT_EQ(downloading, h.system.current_users());
  const auto pool_jobs = [&] {
    std::size_t jobs = 0;
    for (int c = 0; c < cfg.workload.num_channels; ++c) {
      for (int j = 0; j < cfg.vod.chunks_per_video; ++j) {
        jobs += h.system.pool(c, j).active_jobs();
      }
    }
    return jobs;
  };
  EXPECT_EQ(pool_jobs(), downloading);

  // Evict everyone: each mid-download departure must abort its pool job.
  std::size_t evicted = 0;
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    evicted += h.system.evict_channel(c);
  }
  EXPECT_EQ(evicted, downloading);
  EXPECT_EQ(h.system.current_users(), 0u);
  EXPECT_EQ(pool_jobs(), 0u) << "ghost jobs survived the departures";
  const SystemCounters& counters = h.system.metrics().counters;
  EXPECT_EQ(counters.arrivals, counters.departures);

  // Aborted jobs must never fire a completion into the missing peers.
  const long downloads_before = counters.chunk_downloads;
  h.sim.run_until(3000.0);
  EXPECT_EQ(counters.chunk_downloads, downloads_before);
}

TEST(StreamingSystem, ConservationInvariantsAfterGoldenPresetRun) {
  // Run a downsized live_event_cliff (the golden preset the cohort bench
  // scales up) into the middle of its 20:00 arrival wall, then check every
  // derived count against the peer map it is supposed to mirror.
  expr::ExperimentConfig cfg = sweep::ScenarioCatalog::global().make_config(
      "live_event_cliff", core::StreamingMode::kP2p);
  cfg.workload.total_arrival_rate = 0.04;  // downsized from the preset
  cfg.seed = 3;

  StreamingOptions options;
  options.mode = core::StreamingMode::kP2p;
  SystemHarness h(cfg, options, model_policy(cfg, core::StreamingMode::kP2p));
  h.system.start();
  h.sim.run_until(20.5 * 3600.0);  // mid-cliff: maximal churn

  const SystemCounters& counters = h.system.metrics().counters;
  EXPECT_GT(counters.arrivals, 0);
  EXPECT_EQ(counters.arrivals - counters.departures,
            static_cast<long>(h.system.current_users()));

  const int channels = cfg.workload.num_channels;
  const int chunks = cfg.vod.chunks_per_video;
  std::vector<std::vector<long>> owned(
      static_cast<std::size_t>(channels),
      std::vector<long>(static_cast<std::size_t>(chunks), 0));
  std::vector<std::vector<long>> at_position = owned;
  std::vector<double> uplink(static_cast<std::size_t>(channels), 0.0);
  std::vector<std::size_t> members(static_cast<std::size_t>(channels), 0);
  h.system.for_each_peer([&](const Peer& peer) {
    const auto ch = static_cast<std::size_t>(peer.channel);
    ++members[ch];
    uplink[ch] += peer.uplink;
    ++at_position[ch][static_cast<std::size_t>(peer.walk[peer.position])];
    for (int j = 0; j < chunks; ++j) {
      owned[ch][static_cast<std::size_t>(j)] +=
          peer.owned[static_cast<std::size_t>(j)] ? 1 : 0;
    }
  });
  for (int c = 0; c < channels; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    EXPECT_EQ(h.system.channel_users(c), members[ch]);
    EXPECT_NEAR(h.system.uplink_sum(c), uplink[ch],
                1e-6 * std::max(1.0, uplink[ch]));
    for (int j = 0; j < chunks; ++j) {
      EXPECT_EQ(h.system.owner_count(c, j),
                owned[ch][static_cast<std::size_t>(j)]);
      EXPECT_EQ(h.system.position_count(c, j),
                at_position[ch][static_cast<std::size_t>(j)]);
    }
  }
}

TEST(StreamingSystem, GenerationGuardRejectsStaleHandlesAfterSlotReuse) {
  // The peer slab recycles slots through a LIFO free list, so a handle
  // held across a departure points at storage the next arrival will
  // reuse. The generation stamp in the handle's high 32 bits must make
  // every such stale handle miss — exactly the semantics the old
  // unordered_map::find gave for an erased id.
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  cfg.workload.num_channels = 2;
  cfg.workload.total_arrival_rate = 0.05;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.seed = 11;

  StreamingOptions options;
  options.mode = core::StreamingMode::kClientServer;
  options.bootstrap_plan = false;  // no capacity: peers stall, none depart

  SystemHarness h(cfg, options,
                  model_policy(cfg, core::StreamingMode::kClientServer));
  h.system.start();
  h.sim.run_until(1800.0);
  ASSERT_GT(h.system.current_users(), 0u);

  // Live handles resolve to their peer.
  std::vector<std::uint64_t> old_handles;
  h.system.for_each_peer([&](const Peer& peer) {
    const std::uint64_t handle = h.system.peer_handle(peer);
    const Peer* found = h.system.find_peer(handle);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, peer.id);
    old_handles.push_back(handle);
  });

  // Evict everyone: every held handle must now miss.
  for (int c = 0; c < cfg.workload.num_channels; ++c) h.system.evict_channel(c);
  ASSERT_EQ(h.system.current_users(), 0u);
  for (const std::uint64_t handle : old_handles) {
    EXPECT_EQ(h.system.find_peer(handle), nullptr);
  }

  // Let fresh arrivals recycle the freed slots (LIFO free list: they are
  // reused before the slab ever grows).
  h.sim.run_until(5400.0);
  ASSERT_GT(h.system.current_users(), 0u);

  constexpr std::uint64_t kSlotMask = 0xffffffffull;
  std::size_t recycled = 0;
  h.system.for_each_peer([&](const Peer& peer) {
    const std::uint64_t handle = h.system.peer_handle(peer);
    const Peer* found = h.system.find_peer(handle);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, peer.id);
    for (const std::uint64_t stale : old_handles) {
      if ((stale & kSlotMask) == (handle & kSlotMask)) {
        ++recycled;
        EXPECT_NE(stale, handle) << "generation not bumped on reuse";
      }
    }
  });
  ASSERT_GT(recycled, 0u) << "no slot was recycled; the guard went untested";
  // Stale handles still miss even though their slots are live again.
  for (const std::uint64_t handle : old_handles) {
    EXPECT_EQ(h.system.find_peer(handle), nullptr);
  }
}

TEST(StreamingSystem, EvictionOrderIsAscendingPeerId) {
  // channel_peer_handles() is the snapshot evict_channel (and the
  // rarest-first rebalance) iterates, so its order decides the float
  // summation and departure order. Pin it: ascending monotone peer id,
  // and exactly the channel's live membership — never slab or hash order.
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  cfg.workload.num_channels = 2;
  cfg.workload.total_arrival_rate = 0.05;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.seed = 7;

  StreamingOptions options;
  options.mode = core::StreamingMode::kClientServer;
  options.bootstrap_plan = false;

  SystemHarness h(cfg, options,
                  model_policy(cfg, core::StreamingMode::kClientServer));
  h.system.start();
  // Churn the slab first so slot order and id order disagree: fill, evict
  // (frees slots in id order, so the LIFO free list hands them back
  // *reversed*), then refill.
  h.sim.run_until(1800.0);
  for (int c = 0; c < cfg.workload.num_channels; ++c) h.system.evict_channel(c);
  h.sim.run_until(5400.0);
  ASSERT_GT(h.system.current_users(), 0u);

  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    const std::vector<std::uint64_t> handles = h.system.channel_peer_handles(c);
    EXPECT_EQ(handles.size(), h.system.channel_users(c));
    std::uint64_t last_id = 0;
    for (const std::uint64_t handle : handles) {
      const Peer* peer = h.system.find_peer(handle);
      ASSERT_NE(peer, nullptr);
      EXPECT_EQ(peer->channel, c);
      EXPECT_GT(peer->id, last_id) << "membership not ascending by id";
      last_id = peer->id;
    }
  }
}

/// Records every report the controller is asked to estimate from, so the
/// window-labelling test can see bootstrap and harvest side by side.
class ProbePolicy final : public core::DemandPolicy {
 public:
  ProbePolicy(int channels, int chunks,
              std::vector<std::pair<double, double>>* windows)
      : channels_(channels), chunks_(chunks), windows_(windows) {}

  core::DemandSet estimate(const core::TrackerReport& report) override {
    windows_->emplace_back(report.interval_start, report.interval_length);
    core::DemandSet demand;
    demand.cloud_demand.assign(
        static_cast<std::size_t>(channels_),
        std::vector<double>(static_cast<std::size_t>(chunks_), 0.0));
    return demand;
  }
  std::string name() const override { return "probe"; }

 private:
  int channels_;
  int chunks_;
  std::vector<std::pair<double, double>>* windows_;
};

TEST(StreamingSystem, BootstrapAndHarvestAgreeOnWindowLabels) {
  // bootstrap_report() stamps interval_start = now (the upcoming-window
  // forecast) while the hourly harvest stamps now - T (the just-measured
  // window). The asymmetry is deliberate: both describe the *start* of the
  // window they label, so the t=0 bootstrap and the first harvest name the
  // same window [0, T) and no consumer ever sees a negative time.
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  cfg.workload.num_channels = 2;
  cfg.workload.total_arrival_rate = 0.02;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.seed = 5;

  StreamingOptions options;
  options.mode = core::StreamingMode::kClientServer;
  ASSERT_TRUE(options.bootstrap_plan);

  std::vector<std::pair<double, double>> windows;
  SystemHarness h(cfg, options,
                  std::make_unique<ProbePolicy>(cfg.workload.num_channels,
                                                cfg.vod.chunks_per_video,
                                                &windows));
  const double T = options.provisioning_interval;
  const core::TrackerReport prior = h.system.bootstrap_report();
  EXPECT_DOUBLE_EQ(prior.interval_start, 0.0);
  EXPECT_DOUBLE_EQ(prior.interval_length, T);

  h.system.start();
  h.sim.run_until(2.5 * T);
  ASSERT_EQ(windows.size(), 3u);  // bootstrap + harvests at T and 2T
  EXPECT_DOUBLE_EQ(windows[0].first, 0.0);  // forecast of [0, T)
  EXPECT_DOUBLE_EQ(windows[1].first, 0.0);  // measurement of [0, T)
  EXPECT_DOUBLE_EQ(windows[2].first, T);
  for (const auto& [start, length] : windows) {
    EXPECT_DOUBLE_EQ(length, T);
    EXPECT_GE(start, 0.0);
  }
}

}  // namespace
}  // namespace cloudmedia::vod
