#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.h"
#include "util/check.h"
#include "vod/service_pool.h"
#include "vod/tracker.h"

namespace cloudmedia::vod {
namespace {

struct PoolHarness {
  sim::Simulator sim;
  std::vector<ServicePool::Completion> done;
  ServicePool pool;

  explicit PoolHarness(double per_job_cap = 100.0)
      : pool(sim, per_job_cap,
             [this](const ServicePool::Completion& c) { done.push_back(c); }) {}
};

// ------------------------------------------------------------ ServicePool

TEST(ServicePool, SingleJobServedAtPerJobCap) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 1000.0);  // capacity far above the cap
  h.pool.add_job(500.0, 7);
  h.sim.run_until(4.9);
  EXPECT_TRUE(h.done.empty());
  h.sim.run_until(5.0);  // 500 bytes / 100 B/s
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_EQ(h.done[0].tag, 7u);
  EXPECT_NEAR(h.done[0].sojourn, 5.0, 1e-9);
}

TEST(ServicePool, CapacityLimitsSingleJob) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 50.0);
  h.pool.add_job(500.0, 1);
  h.sim.run_until(10.0);  // 500 / 50
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 10.0, 1e-9);
}

TEST(ServicePool, ProcessorSharingSplitsEqually) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.pool.add_job(100.0, 2);
  // Two equal jobs at 50 B/s each finish together at t = 2.
  h.sim.run_until(2.0);
  ASSERT_EQ(h.done.size(), 2u);
  EXPECT_NEAR(h.done[0].sojourn, 2.0, 1e-9);
  EXPECT_NEAR(h.done[1].sojourn, 2.0, 1e-9);
}

TEST(ServicePool, LateArrivalFinishesLater) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.pool.add_job(100.0, 1);
  h.sim.schedule_at(0.5, [&] { h.pool.add_job(100.0, 2); });
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 2u);
  // Job 1: 0.5s alone (50 B) + shares 50 B/s until 100 B total:
  // needs 50 more bytes at 50 B/s -> t = 1.5.
  EXPECT_EQ(h.done[0].tag, 1u);
  EXPECT_NEAR(h.done[0].sojourn, 1.5, 1e-9);
  // Job 2: 50 B/s from 0.5 to 1.5 (50 B), then alone at 100 B/s for the
  // remaining 50 B -> completes at 2.0, sojourn 1.5.
  EXPECT_EQ(h.done[1].tag, 2u);
  EXPECT_NEAR(h.done[1].sojourn, 1.5, 1e-9);
}

TEST(ServicePool, CapacityChangeMidDownload) {
  PoolHarness h(1000.0);
  h.pool.set_capacity(0.0, 10.0);
  h.pool.add_job(100.0, 1);
  h.sim.schedule_at(5.0, [&] { h.pool.set_capacity(0.0, 5.0); });
  h.sim.run_all();
  // 50 bytes in the first 5 s, remaining 50 at 5 B/s -> t = 15.
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 15.0, 1e-9);
}

TEST(ServicePool, StarvedPoolResumesWhenCapacityReturns) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 0.0);
  h.pool.add_job(100.0, 1);
  h.sim.run_until(50.0);
  EXPECT_TRUE(h.done.empty());
  h.pool.set_capacity(0.0, 100.0);
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].sojourn, 51.0, 1e-9);
}

TEST(ServicePool, NoLivelockAfterLongBusyPeriods) {
  // Regression: the cumulative service level only matters relative to the
  // outstanding targets, but it used to grow without bound. Past ~2^35
  // bytes one double ULP exceeds the completion tolerance, `level +=
  // rate*dt` rounds to zero progress, and the pool reschedules the same
  // completion forever at an unmoving clock — week-long paper-scale runs
  // froze at t around 2^17 s. The pool now rebases; this keeps a pool busy
  // at the paper's per-VM rate far past the old tipping point.
  PoolHarness h(1.25e6);                  // R = 10 Mbps per connection
  h.pool.set_capacity(0.0, 1.25e6);
  const double chunk_bytes = 15e6;        // the paper's 15 MB chunks
  long completions = 0;
  // Keep exactly one job in flight: each completion enqueues the next.
  std::function<void()> enqueue = [&] { h.pool.add_job(chunk_bytes, 1); };
  h.pool.set_capacity(0.0, 1.25e6);
  enqueue();
  const double horizon = 300'000.0;       // ~3.5 simulated days busy
  double watchdog = 0.0;
  while (h.sim.now() < horizon) {
    const std::size_t before = h.done.size();
    h.sim.run_all(1000);
    completions += static_cast<long>(h.done.size() - before);
    for (std::size_t k = before; k < h.done.size(); ++k) enqueue();
    // A livelock would stop advancing the clock while burning events.
    ASSERT_GT(h.sim.now(), watchdog) << "clock stalled at " << h.sim.now();
    watchdog = h.sim.now();
    if (h.sim.pending() == 0) break;
  }
  // 1.25e6 B/s over 300000 s serves exactly 25 chunks/300 s.
  EXPECT_NEAR(static_cast<double>(completions), horizon / 12.0, 2.0);
}

TEST(ServicePool, TinyResidualWorkCompletesAtLargeSimTimes) {
  // Regression companion to NoLivelockAfterLongBusyPeriods: even with the
  // service level rebased, a job whose *remaining* bytes are just above
  // the byte tolerance needs a timer step below the clock's resolution
  // once now is large (ULP(131072 s) ~ 3e-11 s) — scheduling it would land
  // back on `now` and spin forever. The completion tolerance absorbs any
  // work the clock cannot resolve.
  PoolHarness h(1.25e6);
  h.pool.set_capacity(0.0, 1.25e6);
  h.sim.run_until(131'072.0);  // a large clock, as in week-long runs
  // Remaining work after the scheduled hop lands within a clock quantum:
  // 2e-5 bytes at 1.25e6 B/s is a 1.6e-11 s step, below ULP(now).
  h.pool.add_job(15e6 + 2e-5, 1);
  const std::size_t events = h.sim.run_all(10'000);
  ASSERT_EQ(h.done.size(), 1u) << "job never completed (frozen-clock spin)";
  EXPECT_LT(events, 100u) << "completion took an event storm";
  EXPECT_NEAR(h.done[0].sojourn, 12.0, 1e-3);
}

TEST(ServicePool, RemoveJobSuppressesCompletion) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  const std::uint64_t id = h.pool.add_job(100.0, 1);
  EXPECT_TRUE(h.pool.remove_job(id));
  EXPECT_FALSE(h.pool.remove_job(id));
  h.sim.run_all();
  EXPECT_TRUE(h.done.empty());
  EXPECT_EQ(h.pool.active_jobs(), 0u);
}

TEST(ServicePool, PeerFirstAttribution) {
  PoolHarness h(100.0);
  h.pool.set_capacity(60.0, 40.0);
  h.pool.add_job(1000.0, 1);  // rate = min(100, 100/1) = 100
  EXPECT_NEAR(h.pool.total_rate(), 100.0, 1e-9);
  EXPECT_NEAR(h.pool.peer_rate(), 60.0, 1e-9);
  EXPECT_NEAR(h.pool.cloud_rate(), 40.0, 1e-9);
}

TEST(ServicePool, CloudUnusedWhenPeersSuffice) {
  PoolHarness h(10.0);
  h.pool.set_capacity(60.0, 40.0);
  h.pool.add_job(1000.0, 1);  // per-job cap 10 binds
  EXPECT_NEAR(h.pool.total_rate(), 10.0, 1e-9);
  EXPECT_NEAR(h.pool.peer_rate(), 10.0, 1e-9);
  EXPECT_NEAR(h.pool.cloud_rate(), 0.0, 1e-9);
}

TEST(ServicePool, ByteCountersSplitBySource) {
  PoolHarness h(100.0);
  h.pool.set_capacity(30.0, 70.0);
  h.pool.add_job(100.0, 1);
  h.sim.run_all();  // 1 second at 100 B/s
  h.pool.sync();
  EXPECT_NEAR(h.pool.peer_bytes_served(), 30.0, 1e-6);
  EXPECT_NEAR(h.pool.cloud_bytes_served(), 70.0, 1e-6);
}

TEST(ServicePool, ManyJobsAllComplete) {
  PoolHarness h(10.0);
  h.pool.set_capacity(0.0, 100.0);
  for (int i = 0; i < 50; ++i) {
    h.pool.add_job(10.0 + i, static_cast<std::uint64_t>(i));
  }
  h.sim.run_all();
  EXPECT_EQ(h.done.size(), 50u);
  EXPECT_EQ(h.pool.active_jobs(), 0u);
  // Smaller jobs finish no later than larger ones (equal rates).
  for (std::size_t k = 1; k < h.done.size(); ++k) {
    EXPECT_LE(h.done[k - 1].tag, h.done[k].tag);
  }
}

TEST(ServicePool, CompletionHandlerMayAddJobs) {
  sim::Simulator sim;
  int completions = 0;
  ServicePool* pool_ptr = nullptr;
  ServicePool pool(sim, 100.0, [&](const ServicePool::Completion&) {
    if (++completions < 3) pool_ptr->add_job(100.0, 9);
  });
  pool_ptr = &pool;
  pool.set_capacity(0.0, 100.0);
  pool.add_job(100.0, 9);
  sim.run_all();
  EXPECT_EQ(completions, 3);
}

TEST(ServicePool, RejectsInvalidArguments) {
  PoolHarness h;
  EXPECT_THROW(h.pool.add_job(0.0, 1), util::PreconditionError);
  EXPECT_THROW(h.pool.set_capacity(-1.0, 0.0), util::PreconditionError);
}

TEST(ServicePool, SojournMeasuredFromEnqueue) {
  PoolHarness h(100.0);
  h.pool.set_capacity(0.0, 100.0);
  h.sim.schedule_at(10.0, [&] { h.pool.add_job(200.0, 4); });
  h.sim.run_all();
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].enqueue_time, 10.0, 1e-12);
  EXPECT_NEAR(h.done[0].sojourn, 2.0, 1e-9);
}

// --------------------------------------------------------------- Tracker

TEST(Tracker, CountsArrivalsAndTransitions) {
  Tracker tracker(2, 4);
  tracker.record_arrival(0, 0);
  tracker.record_arrival(0, 2);
  tracker.record_transition(0, 0, 1);
  tracker.record_transition(0, 1, std::nullopt);
  EXPECT_EQ(tracker.arrivals(0), 2);
  EXPECT_EQ(tracker.transitions(0, 0, 1), 1);
  EXPECT_EQ(tracker.leaves(0, 1), 1);
  EXPECT_EQ(tracker.arrivals(1), 0);
}

TEST(Tracker, HarvestBuildsNormalizedReport) {
  Tracker tracker(1, 3);
  for (int i = 0; i < 60; ++i) tracker.record_arrival(0, 0);
  for (int i = 0; i < 30; ++i) tracker.record_arrival(0, 1);
  for (int i = 0; i < 40; ++i) tracker.record_transition(0, 0, 1);
  for (int i = 0; i < 10; ++i) tracker.record_transition(0, 0, 2);
  for (int i = 0; i < 50; ++i) tracker.record_transition(0, 0, std::nullopt);

  const std::vector<std::vector<double>> occupancy{{1.0, 2.0, 3.0}};
  const std::vector<double> uplink{55'000.0};
  const std::vector<std::vector<double>> served{{1e6, 0.0, 0.0}};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, served);

  ASSERT_EQ(report.channels.size(), 1u);
  const core::ChannelObservation& obs = report.channels[0];
  EXPECT_NEAR(obs.arrival_rate, 90.0 / 3600.0, 1e-12);
  EXPECT_NEAR(obs.entry[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(obs.entry[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(obs.transfer(0, 1), 0.4, 1e-12);
  EXPECT_NEAR(obs.transfer(0, 2), 0.1, 1e-12);
  // Row sum leaves out the 50% leave probability.
  EXPECT_NEAR(obs.transfer(0, 0) + obs.transfer(0, 1) + obs.transfer(0, 2),
              0.5, 1e-12);
  EXPECT_EQ(obs.occupancy, occupancy[0]);
  EXPECT_DOUBLE_EQ(obs.mean_peer_uplink, 55'000.0);
  EXPECT_EQ(obs.served_cloud_bandwidth, served[0]);
}

TEST(Tracker, HarvestResetsCounters) {
  Tracker tracker(1, 2);
  tracker.record_arrival(0, 0);
  tracker.record_transition(0, 0, 1);
  const std::vector<std::vector<double>> occupancy{{0.0, 0.0}};
  const std::vector<double> uplink{0.0};
  (void)tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  EXPECT_EQ(tracker.arrivals(0), 0);
  EXPECT_EQ(tracker.transitions(0, 0, 1), 0);
  const core::TrackerReport second =
      tracker.harvest(3600.0, 3600.0, occupancy, uplink, occupancy);
  EXPECT_DOUBLE_EQ(second.channels[0].arrival_rate, 0.0);
}

TEST(Tracker, NoArrivalsYieldsValidEntryDistribution) {
  Tracker tracker(1, 3);
  const std::vector<std::vector<double>> occupancy{{0, 0, 0}};
  const std::vector<double> uplink{0.0};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  double total = 0.0;
  for (double e : report.channels[0].entry) total += e;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Tracker, UnobservedRowsStayZero) {
  Tracker tracker(1, 3);
  tracker.record_transition(0, 0, 1);
  const std::vector<std::vector<double>> occupancy{{0, 0, 0}};
  const std::vector<double> uplink{0.0};
  const core::TrackerReport report =
      tracker.harvest(0.0, 3600.0, occupancy, uplink, occupancy);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(report.channels[0].transfer(2, j), 0.0);
  }
}

TEST(Tracker, ValidatesIndices) {
  Tracker tracker(2, 3);
  EXPECT_THROW(tracker.record_arrival(5, 0), util::PreconditionError);
  EXPECT_THROW(tracker.record_arrival(0, 9), util::PreconditionError);
  EXPECT_THROW(tracker.record_transition(0, 0, 7), util::PreconditionError);
}

}  // namespace
}  // namespace cloudmedia::vod
