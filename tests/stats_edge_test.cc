// Edge-case coverage for src/util/stats.cc (ISSUE 1 satellite): empty
// inputs and single samples for SummaryStats, TimeSeries, and linear_fit.
// Complements the bulk accumulation tests in util_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/stats.h"

namespace cloudmedia::util {
namespace {

// ------------------------------------------------------------ SummaryStats

TEST(SummaryStatsEdge, EmptyAccumulatorIsZeroValued) {
  const SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  // min/max on an empty accumulator are the identity elements, by design:
  // merging an empty accumulator must never move another's extrema.
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
}

TEST(SummaryStatsEdge, SingleSample) {
  SummaryStats s;
  s.add(-3.25);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), -3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // sample variance undefined -> 0
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.25);
  EXPECT_DOUBLE_EQ(s.max(), -3.25);
  EXPECT_DOUBLE_EQ(s.sum(), -3.25);
}

TEST(SummaryStatsEdge, MergeWithEmptyIsIdentityBothWays) {
  SummaryStats filled;
  filled.add(1.0);
  filled.add(2.0);
  filled.add(4.0);

  SummaryStats lhs = filled;
  lhs.merge(SummaryStats{});  // empty rhs: no-op
  EXPECT_EQ(lhs.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(lhs.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(lhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(lhs.max(), 4.0);

  SummaryStats rhs;  // empty lhs: adopt rhs wholesale
  rhs.merge(filled);
  EXPECT_EQ(rhs.count(), 3u);
  EXPECT_DOUBLE_EQ(rhs.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(rhs.variance(), filled.variance());

  SummaryStats both;  // empty + empty stays empty
  both.merge(SummaryStats{});
  EXPECT_EQ(both.count(), 0u);
  EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(SummaryStatsEdge, MergeOfSingletonsMatchesBatch) {
  SummaryStats a;
  a.add(2.0);
  SummaryStats b;
  b.add(8.0);
  a.merge(b);

  SummaryStats batch;
  batch.add(2.0);
  batch.add(8.0);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), batch.mean());
  EXPECT_DOUBLE_EQ(a.variance(), batch.variance());
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

// -------------------------------------------------------------- TimeSeries

TEST(TimeSeriesEdge, EmptySeriesAggregatesToZero) {
  const TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 100.0), 0.0);
  EXPECT_TRUE(ts.resample(0.0, 1.0).empty());
  EXPECT_THROW((void)ts.time_at(0), PreconditionError);
  EXPECT_THROW((void)ts.value_at(0), PreconditionError);
}

TEST(TimeSeriesEdge, SinglePoint) {
  TimeSeries ts;
  ts.add(5.0, -2.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.mean(), -2.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), -2.0);  // max of values, even if negative
  EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 10.0), -2.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(6.0, 10.0), 0.0);  // window misses the point

  const TimeSeries r = ts.resample(0.0, 2.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.time_at(0), 4.0);  // window [4, 6) contains t=5
  EXPECT_DOUBLE_EQ(r.value_at(0), -2.0);
}

TEST(TimeSeriesEdge, DuplicateTimestampsAreAllowedAndAveraged) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(1.0, 20.0);  // non-decreasing, not strictly increasing
  EXPECT_DOUBLE_EQ(ts.mean_over(1.0, 1.5), 15.0);
}

TEST(TimeSeriesEdge, EmptyWindowMeanIsZero) {
  TimeSeries ts;
  ts.add(0.0, 7.0);
  ts.add(10.0, 9.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(2.0, 8.0), 0.0);   // gap between samples
  EXPECT_DOUBLE_EQ(ts.mean_over(3.0, 3.0), 0.0);   // zero-width window
}

// -------------------------------------------------------------- linear_fit

TEST(LinearFitEdge, RejectsFewerThanTwoPoints) {
  EXPECT_THROW((void)linear_fit({}, {}), PreconditionError);
  EXPECT_THROW((void)linear_fit({1.0}, {2.0}), PreconditionError);
  EXPECT_THROW((void)linear_fit({1.0, 2.0}, {1.0}), PreconditionError);
}

TEST(LinearFitEdge, VerticalDataReportsZeros) {
  // All x identical: slope is undefined; the fit degrades to zeros rather
  // than dividing by a ~0 determinant.
  const LinearFit fit = linear_fit({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(LinearFitEdge, TwoPointsFitExactly) {
  const LinearFit fit = linear_fit({0.0, 2.0}, {1.0, 5.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

}  // namespace
}  // namespace cloudmedia::util
