// The cohort/fluid engine's correctness surface: the bulk event scheduler,
// the batched Poisson arrivals, the engine knob, discrete/auto equivalence
// at small N (the `auto` routing guarantee every committed golden relies
// on), cohort-engine determinism, and mass conservation in a forced-cohort
// run.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "cloud/cloud_service.h"
#include "core/controller.h"
#include "expr/config.h"
#include "expr/runner.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"
#include "vod/cohort_system.h"
#include "workload/cohort.h"
#include "workload/scenario.h"

namespace cloudmedia {
namespace {

using core::StreamingMode;

// ------------------------------------------------- Simulator::schedule_bulk

TEST(ScheduleBulk, MatchesLoopOfScheduleAt) {
  // Bulk scheduling is a throughput optimization only: firing order must be
  // exactly what the same (time, callback) list gets from schedule_at —
  // including FIFO order among equal times.
  const std::vector<double> times{5.0, 1.0, 3.0, 1.0, 3.0, 1.0, 2.0};

  std::vector<int> loop_order;
  sim::Simulator loop_sim;
  for (std::size_t i = 0; i < times.size(); ++i) {
    loop_sim.schedule_at(times[i],
                         [&loop_order, i] { loop_order.push_back(static_cast<int>(i)); });
  }
  loop_sim.run_all();

  std::vector<int> bulk_order;
  sim::Simulator bulk_sim;
  std::vector<std::pair<double, sim::Simulator::Callback>> batch;
  for (std::size_t i = 0; i < times.size(); ++i) {
    batch.emplace_back(times[i], [&bulk_order, i] {
      bulk_order.push_back(static_cast<int>(i));
    });
  }
  (void)bulk_sim.schedule_bulk(std::move(batch));
  bulk_sim.run_all();

  EXPECT_EQ(bulk_order, loop_order);
}

TEST(ScheduleBulk, EmptyBatchReturnsInvalidEvent) {
  sim::Simulator sim;
  EXPECT_EQ(sim.schedule_bulk({}), sim::kInvalidEvent);
  EXPECT_EQ(sim.run_all(), 0u);
}

TEST(ScheduleBulk, AssignsContiguousCancellableIds) {
  sim::Simulator sim;
  std::vector<int> fired;
  std::vector<std::pair<double, sim::Simulator::Callback>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.emplace_back(1.0 + i, [&fired, i] { fired.push_back(i); });
  }
  const sim::EventId first = sim.schedule_bulk(std::move(batch));
  ASSERT_NE(first, sim::kInvalidEvent);
  EXPECT_TRUE(sim.cancel(first + 1));   // entry k gets id first + k
  EXPECT_FALSE(sim.cancel(first + 1));  // already cancelled
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

TEST(ScheduleBulk, LargeBatchOnSmallHeapHeapifies) {
  // A batch larger than a quarter of the existing heap takes the
  // make_heap branch; order must still come out fully sorted.
  sim::Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(500.0, [&fired] { fired.push_back(-1); });
  std::vector<std::pair<double, sim::Simulator::Callback>> batch;
  for (int i = 63; i >= 0; --i) {  // reverse-time order in the batch
    batch.emplace_back(static_cast<double>(i), [&fired, i] { fired.push_back(i); });
  }
  (void)sim.schedule_bulk(std::move(batch));
  sim.run_all();
  ASSERT_EQ(fired.size(), 65u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(fired.back(), -1);
}

// ------------------------------------------------------------ sample_poisson

TEST(SamplePoisson, ZeroMeanIsZeroAndNegativeMeanThrows) {
  util::Rng rng(1);
  EXPECT_EQ(workload::sample_poisson(rng, 0.0), 0);
  EXPECT_THROW((void)workload::sample_poisson(rng, -3.0),
               util::PreconditionError);
}

TEST(SamplePoisson, SmallMeanMatchesExpectation) {
  util::Rng rng(42);
  const double mean = 4.0;
  const int n = 4000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const long long k = workload::sample_poisson(rng, mean);
    ASSERT_GE(k, 0);
    sum += static_cast<double>(k);
  }
  // Std error of the sample mean is sqrt(4/4000) ~ 0.032; 6 sigma bound.
  EXPECT_NEAR(sum / n, mean, 0.2);
}

TEST(SamplePoisson, LargeMeanUsesNormalBranch) {
  util::Rng rng(7);
  const double mean = 1e6;
  for (int i = 0; i < 16; ++i) {
    const long long k = workload::sample_poisson(rng, mean);
    EXPECT_NEAR(static_cast<double>(k), mean, 6.0 * std::sqrt(mean));
  }
}

TEST(SamplePoisson, DeterministicForEqualSeeds) {
  util::Rng a(99);
  util::Rng b(99);
  for (const double mean : {0.3, 7.0, 63.9, 64.1, 5000.0}) {
    EXPECT_EQ(workload::sample_poisson(a, mean),
              workload::sample_poisson(b, mean));
  }
}

// ------------------------------------------------------------ CohortArrivals

TEST(CohortArrivals, WindowMeanIntegratesFlatRate) {
  workload::CohortArrivals arrivals([](double) { return 2.0; }, 300.0,
                                    util::Rng(1));
  EXPECT_NEAR(arrivals.window_mean(0.0), 600.0, 1e-9);
  EXPECT_NEAR(arrivals.window_mean(7200.0), 600.0, 1e-9);
  EXPECT_DOUBLE_EQ(arrivals.window(), 300.0);
}

TEST(CohortArrivals, CountStreamIsDeterministic) {
  const auto rate = [](double t) { return t < 600.0 ? 1.0 : 3.0; };
  workload::CohortArrivals a(rate, 300.0, util::Rng(5));
  workload::CohortArrivals b(rate, 300.0, util::Rng(5));
  for (int w = 0; w < 8; ++w) {
    const double t = 300.0 * w;
    EXPECT_EQ(a.sample_count(t), b.sample_count(t)) << "window " << w;
  }
}

// --------------------------------------------------------------- the knob

TEST(EngineKnob, ParsesAndPrints) {
  EXPECT_EQ(expr::engine_from_string("discrete"), expr::Engine::kDiscrete);
  EXPECT_EQ(expr::engine_from_string("cohort"), expr::Engine::kCohort);
  EXPECT_EQ(expr::engine_from_string("auto"), expr::Engine::kAuto);
  EXPECT_EQ(expr::to_string(expr::Engine::kCohort), "cohort");
  EXPECT_EQ(expr::engine_from_string(expr::to_string(expr::Engine::kAuto)),
            expr::Engine::kAuto);
  EXPECT_THROW(expr::engine_from_string("hybrid"), util::PreconditionError);
}

TEST(EngineKnob, EstimatedPeakScalesLinearlyWithArrivalRate) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(StreamingMode::kClientServer);
  cfg.workload.total_arrival_rate = 1.0;
  const double per_unit = expr::estimated_peak_users(cfg);
  EXPECT_GT(per_unit, 0.0);
  cfg.workload.total_arrival_rate = 10.0;
  EXPECT_NEAR(expr::estimated_peak_users(cfg), 10.0 * per_unit,
              1e-9 * per_unit);
}

// ----------------------------------------------------- engine equivalence

expr::ExperimentConfig small_config(StreamingMode mode) {
  expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
  cfg.workload.num_channels = 3;
  cfg.workload.total_arrival_rate = 0.08;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.warmup_hours = 0.5;
  cfg.measure_hours = 2.0;
  cfg.seed = 7;
  return cfg;
}

void expect_identical_results(const expr::ExperimentResult& a,
                              const expr::ExperimentResult& b) {
  EXPECT_EQ(a.metrics.counters.arrivals, b.metrics.counters.arrivals);
  EXPECT_EQ(a.metrics.counters.departures, b.metrics.counters.departures);
  EXPECT_EQ(a.metrics.counters.chunk_downloads,
            b.metrics.counters.chunk_downloads);
  EXPECT_EQ(a.metrics.counters.late_downloads,
            b.metrics.counters.late_downloads);
  EXPECT_EQ(a.metrics.counters.buffered_replays,
            b.metrics.counters.buffered_replays);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_DOUBLE_EQ(a.vm_cost_total, b.vm_cost_total);
  EXPECT_DOUBLE_EQ(a.storage_cost_total, b.storage_cost_total);
  ASSERT_EQ(a.metrics.quality.size(), b.metrics.quality.size());
  for (std::size_t i = 0; i < a.metrics.quality.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.quality.value_at(i),
                     b.metrics.quality.value_at(i));
  }
  ASSERT_EQ(a.metrics.reserved_mbps.size(), b.metrics.reserved_mbps.size());
  for (std::size_t i = 0; i < a.metrics.reserved_mbps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.reserved_mbps.value_at(i),
                     b.metrics.reserved_mbps.value_at(i));
  }
  ASSERT_EQ(a.metrics.concurrent_users.size(),
            b.metrics.concurrent_users.size());
  for (std::size_t i = 0; i < a.metrics.concurrent_users.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.concurrent_users.value_at(i),
                     b.metrics.concurrent_users.value_at(i));
  }
}

TEST(CohortEquivalence, AutoRoutesToDiscreteBelowThreshold) {
  // The guarantee every committed golden rides on: below the population
  // threshold, engine=auto replays the discrete engine bit for bit.
  expr::ExperimentConfig cfg = small_config(StreamingMode::kP2p);
  cfg.engine = expr::Engine::kDiscrete;
  const expr::ExperimentResult discrete = expr::ExperimentRunner::run(cfg);
  cfg.engine = expr::Engine::kAuto;  // ~110 peak users << 250k threshold
  const expr::ExperimentResult routed = expr::ExperimentRunner::run(cfg);
  expect_identical_results(discrete, routed);
}

TEST(CohortEquivalence, ThresholdZeroRoutesAutoToCohort) {
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  cfg.engine = expr::Engine::kDiscrete;
  const expr::ExperimentResult discrete = expr::ExperimentRunner::run(cfg);
  cfg.engine = expr::Engine::kAuto;
  cfg.cohort_threshold = 1.0;  // any population routes to the cohort core
  const expr::ExperimentResult cohort = expr::ExperimentRunner::run(cfg);
  // A different core: far fewer heap events, but a live population and a
  // full metrics surface.
  EXPECT_LT(cohort.sim_events, discrete.sim_events);
  EXPECT_GT(cohort.metrics.counters.arrivals, 0);
  EXPECT_FALSE(cohort.metrics.quality.empty());
  EXPECT_FALSE(cohort.metrics.reserved_mbps.empty());
}

TEST(CohortEquivalence, CohortTracksDiscretePopulationScale) {
  // The fluid approximation must agree with the exact engine on the
  // *scale* of the run: same arrival process mean, similar concurrency.
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  cfg.engine = expr::Engine::kDiscrete;
  const expr::ExperimentResult discrete = expr::ExperimentRunner::run(cfg);
  cfg.engine = expr::Engine::kCohort;
  const expr::ExperimentResult cohort = expr::ExperimentRunner::run(cfg);

  const auto da = static_cast<double>(discrete.metrics.counters.arrivals);
  const auto ca = static_cast<double>(cohort.metrics.counters.arrivals);
  EXPECT_GT(ca, 0.0);
  EXPECT_NEAR(ca, da, 0.25 * da);  // both Poisson around the same mean
  EXPECT_NEAR(cohort.mean_concurrent_users(), discrete.mean_concurrent_users(),
              0.35 * discrete.mean_concurrent_users());
}

TEST(CohortEngine, DeterministicAcrossRuns) {
  expr::ExperimentConfig cfg = small_config(StreamingMode::kP2p);
  cfg.engine = expr::Engine::kCohort;
  const expr::ExperimentResult a = expr::ExperimentRunner::run(cfg);
  const expr::ExperimentResult b = expr::ExperimentRunner::run(cfg);
  expect_identical_results(a, b);
}

// --------------------------------------------------- cohort mass accounting

TEST(CohortSystem, ConservesViewerMass) {
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  cfg.workload.total_arrival_rate = 0.5;

  sim::Simulator sim;
  const workload::Workload workload(cfg.workload, cfg.seed);
  cloud::CloudConfig cloud_cfg;
  cloud_cfg.sla = cloud::SlaTerms{cfg.vm_budget_per_hour,
                                  cfg.storage_budget_per_hour,
                                  cfg.vm_clusters, cfg.nfs_clusters};
  cloud_cfg.vm = cloud::VmSchedulerConfig{0.0, cfg.vod.vm_bandwidth};
  cloud::CloudService cloud(sim, cloud_cfg);
  core::DemandEstimatorConfig est;
  est.mode = StreamingMode::kClientServer;
  auto controller = std::make_unique<core::Controller>(
      cfg.vod,
      core::ControllerConfig{cfg.vm_clusters, cfg.nfs_clusters,
                             cfg.vm_budget_per_hour,
                             cfg.storage_budget_per_hour},
      std::make_unique<core::ModelBasedPolicy>(cfg.vod, est));

  vod::CohortOptions options;
  options.streaming.mode = StreamingMode::kClientServer;
  vod::CohortSystem system(sim, workload, cfg.vod, cloud,
                           std::move(controller), options);
  system.start();
  sim.run_until(3.0 * 3600.0);

  const auto admitted = static_cast<double>(system.viewers_admitted());
  ASSERT_GT(admitted, 0.0);
  // Every admitted viewer is either still in the system or departed
  // (retirement folds sub-threshold residual mass into departures).
  EXPECT_NEAR(system.departures_mass() + system.current_viewer_mass(),
              admitted, 1e-6 * admitted);

  double channel_sum = 0.0;
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    channel_sum += system.channel_viewer_mass(c);
  }
  EXPECT_NEAR(channel_sum, system.current_viewer_mass(),
              1e-9 * std::max(1.0, channel_sum));
  EXPECT_GE(system.peak_viewer_mass(), system.current_viewer_mass());
  EXPECT_EQ(system.metrics().counters.arrivals,
            static_cast<long>(system.viewers_admitted()));
  EXPECT_GT(system.live_cohorts(), 0u);
}

}  // namespace
}  // namespace cloudmedia
