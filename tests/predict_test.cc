// Tests for the arrival-rate forecasting library (src/predict) — the
// paper's Sec. V-B future work ("more accurate prediction method based on
// historical data collected over more intervals").

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/demand.h"
#include "predict/accuracy.h"
#include "predict/forecaster.h"
#include "predict/policy.h"
#include "util/check.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

namespace cloudmedia {
namespace {

using predict::ForecasterKind;
using predict::ForecasterSpec;

ForecasterSpec spec_of(ForecasterKind kind) {
  ForecasterSpec spec;
  spec.kind = kind;
  spec.period = 24;
  return spec;
}

// ---------------------------------------------------------------------------
// Properties shared by every forecaster kind.
// ---------------------------------------------------------------------------

class AllForecasters : public ::testing::TestWithParam<ForecasterKind> {};

TEST_P(AllForecasters, NoObservationForecastsZero) {
  const auto f = predict::make_forecaster(spec_of(GetParam()));
  EXPECT_EQ(f->forecast(), 0.0);
}

TEST_P(AllForecasters, ConstantSignalIsLearnedExactly) {
  const auto f = predict::make_forecaster(spec_of(GetParam()));
  for (int k = 0; k < 120; ++k) f->observe(3.25);
  EXPECT_NEAR(f->forecast(), 3.25, 1e-9)
      << "kind=" << predict::to_string(GetParam());
}

TEST_P(AllForecasters, ForecastIsNonNegativeOnDecayingSignal) {
  const auto f = predict::make_forecaster(spec_of(GetParam()));
  // A crash from a high plateau to zero tempts trend models negative.
  for (int k = 0; k < 30; ++k) f->observe(100.0);
  for (int k = 0; k < 60; ++k) {
    f->observe(std::max(0.0, 100.0 - 10.0 * k));
    EXPECT_GE(f->forecast(), 0.0)
        << "kind=" << predict::to_string(GetParam()) << " step=" << k;
  }
}

TEST_P(AllForecasters, CloneReproducesStateAndThenDiverges) {
  const auto f = predict::make_forecaster(spec_of(GetParam()));
  for (int k = 0; k < 40; ++k) f->observe(5.0 + (k % 7));
  const auto copy = f->clone();
  EXPECT_DOUBLE_EQ(copy->forecast(), f->forecast());

  f->observe(50.0);
  copy->observe(0.0);
  if (GetParam() != ForecasterKind::kSeasonalNaive) {
    // Seasonal-naive may legitimately forecast from untouched history.
    EXPECT_NE(copy->forecast(), f->forecast());
  }
}

TEST_P(AllForecasters, NameRoundTripsThroughFactoryString) {
  EXPECT_EQ(predict::forecaster_kind_from_string(
                predict::to_string(GetParam())),
            GetParam());
}

TEST_P(AllForecasters, RejectsNegativeObservation) {
  const auto f = predict::make_forecaster(spec_of(GetParam()));
  EXPECT_THROW(f->observe(-1.0), util::PreconditionError);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllForecasters,
    ::testing::ValuesIn(predict::all_forecaster_kinds()),
    [](const ::testing::TestParamInfo<ForecasterKind>& info) {
      std::string name = predict::to_string(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// Per-kind behaviour.
// ---------------------------------------------------------------------------

TEST(Persistence, ForecastsExactlyTheLastValue) {
  predict::PersistenceForecaster f;
  f.observe(2.0);
  f.observe(7.5);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.5);
}

TEST(MovingAverage, AveragesExactlyTheWindow) {
  predict::MovingAverageForecaster f(3);
  f.observe(1.0);
  f.observe(2.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 1.5);  // partial window
  f.observe(3.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 2.0);
  f.observe(9.0);  // evicts the 1.0
  EXPECT_DOUBLE_EQ(f.forecast(), (2.0 + 3.0 + 9.0) / 3.0);
}

TEST(MovingAverage, WindowOneIsPersistence) {
  predict::MovingAverageForecaster ma(1);
  predict::PersistenceForecaster last;
  for (double v : {4.0, 0.0, 11.0, 3.0}) {
    ma.observe(v);
    last.observe(v);
    EXPECT_DOUBLE_EQ(ma.forecast(), last.forecast());
  }
}

TEST(MovingAverage, RejectsNonPositiveWindow) {
  EXPECT_THROW(predict::MovingAverageForecaster(0), util::PreconditionError);
}

TEST(Ewma, MatchesTheRecursionExactly) {
  const double alpha = 0.3;
  predict::EwmaForecaster f(alpha);
  double level = 0.0;
  bool first = true;
  for (double v : {10.0, 4.0, 6.0, 6.0, 0.0, 2.0}) {
    f.observe(v);
    level = first ? v : (1 - alpha) * level + alpha * v;
    first = false;
    EXPECT_NEAR(f.forecast(), level, 1e-12);
  }
}

TEST(Ewma, AlphaOneIsPersistence) {
  predict::EwmaForecaster f(1.0);
  f.observe(3.0);
  f.observe(8.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 8.0);
}

TEST(Ewma, RejectsAlphaOutOfRange) {
  EXPECT_THROW(predict::EwmaForecaster(0.0), util::PreconditionError);
  EXPECT_THROW(predict::EwmaForecaster(1.5), util::PreconditionError);
}

TEST(Holt, TracksALinearRampAsymptotically) {
  predict::HoltForecaster f(0.5, 0.3);
  // y = 5 + 2k: after convergence the one-step forecast is exact.
  for (int k = 0; k < 200; ++k) f.observe(5.0 + 2.0 * k);
  EXPECT_NEAR(f.forecast(), 5.0 + 2.0 * 200, 1e-6);
  EXPECT_NEAR(f.trend(), 2.0, 1e-6);
}

TEST(Holt, BeatsPersistenceOnARamp) {
  predict::HoltForecaster holt(0.5, 0.3);
  predict::PersistenceForecaster last;
  predict::ForecastScore holt_score, last_score;
  for (int k = 0; k < 60; ++k) {
    const double actual = 10.0 + 3.0 * k;
    if (k > 5) {
      holt_score.add(holt.forecast(), actual);
      last_score.add(last.forecast(), actual);
    }
    holt.observe(actual);
    last.observe(actual);
  }
  EXPECT_LT(holt_score.mae(), last_score.mae());
  // Persistence under-forecasts every step of a rising ramp.
  EXPECT_DOUBLE_EQ(last_score.under_fraction(), 1.0);
}

TEST(SeasonalNaive, RepeatsThePreviousPeriodExactly) {
  const int period = 4;
  predict::SeasonalNaiveForecaster f(period);
  const std::vector<double> wave = {1.0, 5.0, 9.0, 2.0};
  for (int rep = 0; rep < 3; ++rep) {
    for (int s = 0; s < period; ++s) {
      if (rep > 0) {
        EXPECT_DOUBLE_EQ(f.forecast(), wave[static_cast<std::size_t>(s)])
            << "rep=" << rep << " slot=" << s;
      }
      f.observe(wave[static_cast<std::size_t>(s)]);
    }
  }
}

TEST(SeasonalNaive, FallsBackToPersistenceInFirstPeriod) {
  predict::SeasonalNaiveForecaster f(8);
  f.observe(3.0);
  f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.0);
}

TEST(SeasonalEwma, LearnsAPeriodicProfile) {
  const int period = 6;
  predict::SeasonalEwmaForecaster f(period, 0.5, 1.0);  // pure profile
  const std::vector<double> wave = {0.0, 2.0, 10.0, 4.0, 1.0, 0.0};
  for (int rep = 0; rep < 12; ++rep) {
    for (double v : wave) f.observe(v);
  }
  for (int s = 0; s < period; ++s) {
    EXPECT_NEAR(f.profile(s), wave[static_cast<std::size_t>(s)], 1e-3);
  }
}

TEST(SeasonalEwma, BlendZeroIsPersistence) {
  predict::SeasonalEwmaForecaster f(24, 0.4, 0.0);
  predict::PersistenceForecaster last;
  for (int k = 0; k < 60; ++k) {
    const double v = std::abs(std::sin(0.3 * k)) * 9.0;
    f.observe(v);
    last.observe(v);
    EXPECT_DOUBLE_EQ(f.forecast(), last.forecast());
  }
}

TEST(HoltWinters, LearnsASeasonalSignalWithTrend) {
  const int period = 12;
  predict::HoltWintersForecaster f(0.3, 0.05, 0.4, period);
  predict::ForecastScore tail_score;
  // y(k) = 20 + 0.5k + 8·sin(2πk/12), strictly positive.
  const auto signal = [&](int k) {
    return 20.0 + 0.5 * k + 8.0 * std::sin(2.0 * M_PI * k / period);
  };
  for (int k = 0; k < 20 * period; ++k) {
    if (k > 10 * period) tail_score.add(f.forecast(), signal(k));
    f.observe(signal(k));
  }
  // One-step error far below the seasonal swing (16 peak-to-trough).
  EXPECT_LT(tail_score.mae(), 1.0);
}

TEST(HoltWinters, OutperformsPersistenceOnSeasonalSignal) {
  const int period = 24;
  predict::HoltWintersForecaster hw(0.3, 0.05, 0.4, period);
  predict::PersistenceForecaster last;
  predict::ForecastScore hw_score, last_score;
  const auto signal = [&](int k) {
    return 10.0 + 6.0 * std::sin(2.0 * M_PI * k / period);
  };
  for (int k = 0; k < 12 * period; ++k) {
    if (k > 3 * period) {
      hw_score.add(hw.forecast(), signal(k));
      last_score.add(last.forecast(), signal(k));
    }
    hw.observe(signal(k));
    last.observe(signal(k));
  }
  EXPECT_LT(hw_score.mae(), 0.4 * last_score.mae());
}

TEST(Factory, ShortAliasesParse) {
  EXPECT_EQ(predict::forecaster_kind_from_string("last"),
            ForecasterKind::kPersistence);
  EXPECT_EQ(predict::forecaster_kind_from_string("ma"),
            ForecasterKind::kMovingAverage);
  EXPECT_EQ(predict::forecaster_kind_from_string("hw"),
            ForecasterKind::kHoltWinters);
  EXPECT_THROW((void)predict::forecaster_kind_from_string("nope"),
               util::PreconditionError);
}

TEST(Factory, SpecValidationCatchesBadParameters) {
  ForecasterSpec spec;
  spec.alpha = 0.0;
  EXPECT_THROW(predict::make_forecaster(spec), util::PreconditionError);
  spec = ForecasterSpec{};
  spec.kind = ForecasterKind::kHoltWinters;
  spec.period = 1;  // HW needs >= 2
  EXPECT_THROW(predict::make_forecaster(spec), util::PreconditionError);
  spec = ForecasterSpec{};
  spec.window = 0;
  EXPECT_THROW(predict::make_forecaster(spec), util::PreconditionError);
}

// ---------------------------------------------------------------------------
// Accuracy metrics.
// ---------------------------------------------------------------------------

TEST(ForecastScore, HandComputedMetrics) {
  predict::ForecastScore score;
  score.add(10.0, 8.0);   // over by 2
  score.add(5.0, 9.0);    // under by 4
  score.add(3.0, 3.0);    // exact
  EXPECT_EQ(score.count(), 3u);
  EXPECT_NEAR(score.mae(), (2.0 + 4.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(score.rmse(), std::sqrt((4.0 + 16.0 + 0.0) / 3.0), 1e-12);
  EXPECT_NEAR(score.bias(), (2.0 - 4.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(score.mape(), (2.0 / 8.0 + 4.0 / 9.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(score.under_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.mean_shortfall(), 4.0 / 3.0, 1e-12);
}

TEST(ForecastScore, MapeSkipsZeroActuals) {
  predict::ForecastScore score;
  score.add(1.0, 0.0);
  score.add(6.0, 4.0);
  EXPECT_NEAR(score.mape(), 0.5, 1e-12);  // only the second pair counts
  EXPECT_EQ(score.count(), 2u);
}

TEST(ForecastScore, MergeEqualsPooledStream) {
  predict::ForecastScore a, b, pooled;
  for (int k = 0; k < 10; ++k) {
    const double f = 2.0 + k, x = 3.0 + 0.5 * k;
    (k % 2 ? a : b).add(f, x);
    pooled.add(f, x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mae(), pooled.mae(), 1e-12);
  EXPECT_NEAR(a.rmse(), pooled.rmse(), 1e-12);
  EXPECT_NEAR(a.bias(), pooled.bias(), 1e-12);
  EXPECT_NEAR(a.under_fraction(), pooled.under_fraction(), 1e-12);
}

TEST(ForecastScore, EmptyScoreIsAllZero) {
  const predict::ForecastScore score;
  EXPECT_EQ(score.count(), 0u);
  EXPECT_EQ(score.mae(), 0.0);
  EXPECT_EQ(score.rmse(), 0.0);
  EXPECT_EQ(score.mape(), 0.0);
  EXPECT_EQ(score.under_fraction(), 0.0);
}

// ---------------------------------------------------------------------------
// ForecastPolicy: the DemandPolicy adapter.
// ---------------------------------------------------------------------------

core::TrackerReport make_report(double start, double interval,
                                const std::vector<double>& rates) {
  const int j = 6;
  const workload::ViewingBehavior behavior;
  core::TrackerReport report;
  report.interval_start = start;
  report.interval_length = interval;
  for (double rate : rates) {
    core::ChannelObservation obs;
    obs.arrival_rate = rate;
    obs.transfer = behavior.transfer_matrix(j);
    obs.entry = behavior.entry_distribution(j);
    obs.occupancy.assign(6, 0.0);
    obs.mean_peer_uplink = 50'000.0;
    report.channels.push_back(std::move(obs));
  }
  return report;
}

core::VodParameters small_params() {
  core::VodParameters params;
  params.chunks_per_video = 6;
  return params;
}

TEST(ForecastPolicy, PersistenceKindMatchesModelBasedPolicy) {
  const core::VodParameters params = small_params();
  core::DemandEstimatorConfig config;
  config.occupancy_floor = false;

  predict::ForecastPolicy forecast(params, config, ForecasterSpec{});
  core::ModelBasedPolicy model(params, config);

  for (int k = 0; k < 5; ++k) {
    const auto report =
        make_report(3600.0 * k, 3600.0, {0.05 + 0.01 * k, 0.2});
    const core::DemandSet a = forecast.estimate(report);
    const core::DemandSet b = model.estimate(report);
    ASSERT_EQ(a.cloud_demand.size(), b.cloud_demand.size());
    for (std::size_t c = 0; c < a.cloud_demand.size(); ++c) {
      for (std::size_t i = 0; i < a.cloud_demand[c].size(); ++i) {
        EXPECT_NEAR(a.cloud_demand[c][i], b.cloud_demand[c][i], 1e-9)
            << "k=" << k << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(ForecastPolicy, ScoresForecastsAgainstNextMeasurement) {
  predict::ForecastPolicy policy(small_params(), {}, ForecasterSpec{});
  (void)policy.estimate(make_report(0.0, 3600.0, {0.10}));
  EXPECT_EQ(policy.score().count(), 0u);  // nothing to score yet
  (void)policy.estimate(make_report(3600.0, 3600.0, {0.14}));
  EXPECT_EQ(policy.score().count(), 1u);
  // Persistence forecast 0.10 vs measured 0.14.
  EXPECT_NEAR(policy.score().mae(), 0.04, 1e-12);
  EXPECT_NEAR(policy.score().under_fraction(), 1.0, 1e-12);
}

TEST(ForecastPolicy, LastForecastExposesPerChannelPrediction) {
  predict::ForecastPolicy policy(small_params(), {}, ForecasterSpec{});
  EXPECT_LT(policy.last_forecast(0), 0.0);  // before any estimate
  (void)policy.estimate(make_report(0.0, 3600.0, {0.10, 0.30}));
  EXPECT_NEAR(policy.last_forecast(0), 0.10, 1e-12);
  EXPECT_NEAR(policy.last_forecast(1), 0.30, 1e-12);
  EXPECT_LT(policy.last_forecast(5), 0.0);  // out of range
}

TEST(ForecastPolicy, HoltKindAnticipatesARisingRamp) {
  ForecasterSpec spec;
  spec.kind = ForecasterKind::kHolt;
  predict::ForecastPolicy policy(small_params(), {}, spec);
  double measured = 0.05;
  for (int k = 0; k < 10; ++k) {
    (void)policy.estimate(make_report(3600.0 * k, 3600.0, {measured}));
    measured += 0.02;
  }
  // After a steady ramp the Holt forecast leads the last measurement.
  EXPECT_GT(policy.last_forecast(0), measured - 0.02 + 1e-9);
}

TEST(ForecastPolicy, NameIncludesKind) {
  ForecasterSpec spec;
  spec.kind = ForecasterKind::kHoltWinters;
  predict::ForecastPolicy policy(small_params(), {}, spec);
  EXPECT_EQ(policy.name(), "forecast:holt-winters");
}

TEST(ForecastPolicy, ChannelCountMustStayStable) {
  predict::ForecastPolicy policy(small_params(), {}, ForecasterSpec{});
  (void)policy.estimate(make_report(0.0, 3600.0, {0.1, 0.2}));
  EXPECT_THROW((void)policy.estimate(make_report(3600.0, 3600.0, {0.1})),
               util::PreconditionError);
}

}  // namespace
}  // namespace cloudmedia
