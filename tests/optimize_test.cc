#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/clusters.h"
#include "core/storage_rental.h"
#include "core/vm_allocation.h"
#include "testing/seeds.h"
#include "util/check.h"
#include "util/rng.h"

namespace cloudmedia::core {
namespace {

constexpr double kChunkBytes = 15e6;

StorageProblem small_storage_problem() {
  StorageProblem p;
  p.clusters = paper_nfs_clusters();
  p.chunk_bytes = kChunkBytes;
  p.budget_per_hour = 1.0;
  for (int i = 0; i < 6; ++i) {
    p.chunks.push_back({{0, i}, (6.0 - i) * 1e6});
  }
  return p;
}

// ------------------------------------------------------------- Table II/III

TEST(PaperClusters, TableTwoValues) {
  const std::vector<VmClusterSpec> vms = paper_vm_clusters();
  ASSERT_EQ(vms.size(), 3u);
  EXPECT_EQ(vms[0].name, "standard");
  EXPECT_DOUBLE_EQ(vms[0].utility, 0.6);
  EXPECT_DOUBLE_EQ(vms[0].price_per_hour, 0.45);
  EXPECT_EQ(vms[0].max_vms, 75);
  EXPECT_EQ(vms[1].max_vms, 30);
  EXPECT_EQ(vms[2].max_vms, 45);
  // Total capacity: 150 VMs (the Fig.-4 calibration constraint).
  EXPECT_EQ(vms[0].max_vms + vms[1].max_vms + vms[2].max_vms, 150);
}

TEST(PaperClusters, TableThreeValues) {
  const std::vector<NfsClusterSpec> nfs = paper_nfs_clusters();
  ASSERT_EQ(nfs.size(), 2u);
  EXPECT_DOUBLE_EQ(nfs[0].utility, 0.8);
  EXPECT_DOUBLE_EQ(nfs[0].price_per_gb_hour, 1.11e-4);
  EXPECT_DOUBLE_EQ(nfs[1].price_per_gb_hour, 2.08e-4);
  EXPECT_DOUBLE_EQ(nfs[0].capacity_bytes, 20e9);
  // Per-byte conversion.
  EXPECT_NEAR(nfs[1].price_per_byte_hour() * 1e9, 2.08e-4, 1e-15);
}

TEST(PaperClusters, GreedyOrderings) {
  // Storage: u/p ranks standard (0.8/1.11e-4) above high (1/2.08e-4).
  const auto nfs = paper_nfs_clusters();
  EXPECT_GT(nfs[0].utility / nfs[0].price_per_gb_hour,
            nfs[1].utility / nfs[1].price_per_gb_hour);
  // VM: standard (1.33) > advanced (1.25) > medium (1.14).
  const auto vms = paper_vm_clusters();
  const auto ratio = [](const VmClusterSpec& c) {
    return c.utility / c.price_per_hour;
  };
  EXPECT_GT(ratio(vms[0]), ratio(vms[2]));
  EXPECT_GT(ratio(vms[2]), ratio(vms[1]));
}

// ------------------------------------------------------------- storage

TEST(StorageGreedy, PlacesEveryChunkWithinBudget) {
  const StorageProblem p = small_storage_problem();
  const StorageAssignment a = solve_storage_greedy(p);
  EXPECT_TRUE(a.feasible);
  for (int f : a.cluster_of) EXPECT_GE(f, 0);
  EXPECT_LE(a.cost_per_hour, p.budget_per_hour + 1e-12);
}

TEST(StorageGreedy, PrefersBestUtilityPerCostCluster) {
  // With ample capacity and budget everything lands on the best-u/p
  // cluster (standard, index 0).
  const StorageProblem p = small_storage_problem();
  const StorageAssignment a = solve_storage_greedy(p);
  for (int f : a.cluster_of) EXPECT_EQ(f, 0);
}

TEST(StorageGreedy, OverflowsToSecondClusterWhenFull) {
  StorageProblem p = small_storage_problem();
  // Standard holds only 2 chunks.
  p.clusters[0].capacity_bytes = 2.0 * kChunkBytes;
  const StorageAssignment a = solve_storage_greedy(p);
  EXPECT_TRUE(a.feasible);
  int on_standard = 0, on_high = 0;
  for (int f : a.cluster_of) (f == 0 ? on_standard : on_high)++;
  EXPECT_EQ(on_standard, 2);
  EXPECT_EQ(on_high, 4);
}

TEST(StorageGreedy, HighestDemandChunksWinTheBestCluster) {
  StorageProblem p = small_storage_problem();
  p.clusters[0].capacity_bytes = 2.0 * kChunkBytes;
  const StorageAssignment a = solve_storage_greedy(p);
  // Chunks 0 and 1 carry the highest demand.
  EXPECT_EQ(a.cluster_of[0], 0);
  EXPECT_EQ(a.cluster_of[1], 0);
  EXPECT_EQ(a.cluster_of[5], 1);
}

TEST(StorageGreedy, BudgetExhaustionSignalsInfeasible) {
  StorageProblem p = small_storage_problem();
  // Budget for roughly two chunks on the standard cluster.
  p.budget_per_hour = 2.5 * p.clusters[0].price_per_byte_hour() * kChunkBytes;
  const StorageAssignment a = solve_storage_greedy(p);
  EXPECT_FALSE(a.feasible);
  int placed = 0;
  for (int f : a.cluster_of) placed += f >= 0;
  EXPECT_EQ(placed, 2);
}

TEST(StorageGreedy, CapacityExhaustionSignalsInfeasible) {
  StorageProblem p = small_storage_problem();
  for (NfsClusterSpec& c : p.clusters) c.capacity_bytes = 2.0 * kChunkBytes;
  const StorageAssignment a = solve_storage_greedy(p);
  EXPECT_FALSE(a.feasible);
}

TEST(StorageGreedy, UtilityAndCostAudited) {
  const StorageProblem p = small_storage_problem();
  const StorageAssignment a = solve_storage_greedy(p);
  const StorageAssignment audit = audit_storage_assignment(p, a.cluster_of);
  EXPECT_NEAR(audit.total_utility, a.total_utility, 1e-9);
  EXPECT_NEAR(audit.cost_per_hour, a.cost_per_hour, 1e-12);
}

TEST(StorageExact, GreedyIsSuboptimalUnderSlackBudget) {
  // A documented property of the paper's heuristic: ranking clusters by
  // utility-per-cost puts everything on "standard" (u = 0.8) even when the
  // budget would comfortably pay for "high" (u = 1.0). The exact optimum
  // under Table III's prices and B_S = $1/h uses the high cluster and wins
  // by exactly the utility ratio. bench/ablation_heuristic_vs_exact
  // quantifies this gap at paper scale.
  const StorageProblem p = small_storage_problem();
  const StorageAssignment greedy = solve_storage_greedy(p);
  const StorageAssignment exact = solve_storage_exact(p);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(exact.total_utility / greedy.total_utility, 1.0 / 0.8, 1e-9);
}

TEST(StorageExact, MatchesGreedyWhenBestRatioClusterAlsoHasBestUtility) {
  StorageProblem p = small_storage_problem();
  std::swap(p.clusters[0].utility, p.clusters[1].utility);  // standard: u=1.0
  EXPECT_NEAR(solve_storage_exact(p).total_utility,
              solve_storage_greedy(p).total_utility, 1e-6);
}

TEST(StorageExact, RecoversFeasibilityGreedyLoses) {
  // Greedy spends the budget on the better-u/p (pricier) cluster and runs
  // dry before placing everything; the exact solver finds the complete
  // assignment: chunk 0 on "pricey", chunks 1–2 on "cheap" ($1.00 exactly,
  // utility 10 + 4.5 + 4 = 18.5).
  StorageProblem p;
  p.chunk_bytes = 1.0;  // 1-byte chunks for easy arithmetic
  p.clusters = {
      {"pricey", 1.0, 0.4e9, 3.0},  // $0.40 per chunk-hour, 3 slots
      {"cheap", 0.5, 0.3e9, 10.0},  // $0.30 per chunk-hour, 10 slots
  };
  p.budget_per_hour = 1.0;
  p.chunks = {{{0, 0}, 10.0}, {{0, 1}, 9.0}, {{0, 2}, 8.0}};
  const StorageAssignment greedy = solve_storage_greedy(p);
  EXPECT_FALSE(greedy.feasible);  // 0.4 + 0.4 spent, third chunk unplaceable
  const StorageAssignment exact = solve_storage_exact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(exact.total_utility, 18.5, 1e-9);
  EXPECT_NEAR(exact.cost_per_hour, 1.0, 1e-9);
}

TEST(StorageExact, InfeasibleWhenNothingFits) {
  StorageProblem p = small_storage_problem();
  p.budget_per_hour = 0.0;
  // Zero budget: no chunk can be stored at a positive price.
  const StorageAssignment a = solve_storage_exact(p);
  EXPECT_FALSE(a.feasible);
}

TEST(StorageAudit, ThrowsOnCapacityViolation) {
  StorageProblem p = small_storage_problem();
  p.clusters[0].capacity_bytes = 1.0 * kChunkBytes;
  std::vector<int> bad(p.chunks.size(), 0);  // everything on cluster 0
  EXPECT_THROW((void)audit_storage_assignment(p, bad), util::InvariantError);
}

TEST(StorageChannelUtility, SumsOnlyTheChannel) {
  StorageProblem p = small_storage_problem();
  p.chunks[3].ref.channel = 1;
  p.chunks[4].ref.channel = 1;
  const StorageAssignment a = solve_storage_greedy(p);
  const double total = channel_storage_utility(p, a, 0) +
                       channel_storage_utility(p, a, 1);
  EXPECT_NEAR(total, a.total_utility, 1e-9);
  EXPECT_GT(channel_storage_utility(p, a, 0), 0.0);
  EXPECT_GT(channel_storage_utility(p, a, 1), 0.0);
  EXPECT_DOUBLE_EQ(channel_storage_utility(p, a, 7), 0.0);
}

class StorageRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(StorageRandomSweep, GreedyNeverBeatsExactAndBothRespectConstraints) {
  util::Rng rng(testing::sweep_seed(GetParam(), 7919, 0));
  StorageProblem p;
  p.chunk_bytes = 1.0;  // slots == capacity_bytes
  const int clusters = 2 + GetParam() % 2;
  for (int f = 0; f < clusters; ++f) {
    NfsClusterSpec spec;
    spec.name = "c" + std::to_string(f);
    spec.utility = rng.uniform(0.3, 1.0);
    spec.price_per_gb_hour = rng.uniform(0.5, 3.0) * 1e9;  // $0.5–3 per chunk
    spec.capacity_bytes = std::floor(rng.uniform(2.0, 6.0));  // 2–5 slots
    p.clusters.push_back(spec);
  }
  const int chunks = 4 + GetParam() % 5;
  for (int i = 0; i < chunks; ++i) {
    p.chunks.push_back({{0, i}, rng.uniform(0.0, 10.0)});
  }
  p.budget_per_hour = rng.uniform(1.0, 12.0);

  const StorageAssignment greedy = solve_storage_greedy(p);
  const StorageAssignment exact = solve_storage_exact(p);
  // A feasible greedy solution implies a feasible instance, and exact must
  // then match or beat it. (Greedy may miss feasibility the exact solver
  // finds, and its partial utility is not comparable in that case.)
  if (greedy.feasible) {
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(exact.total_utility, greedy.total_utility - 1e-9);
    (void)audit_storage_assignment(p, greedy.cluster_of);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageRandomSweep, ::testing::Range(1, 16));

// ----------------------------------------------------------------- VM

VmProblem small_vm_problem(double budget = 100.0) {
  VmProblem p;
  p.clusters = paper_vm_clusters();
  p.vm_bandwidth = 1'250'000.0;
  p.budget_per_hour = budget;
  for (int i = 0; i < 5; ++i) {
    p.chunks.push_back({{0, i}, (i + 1) * 10e6});  // 8..40 VMs total demand
  }
  return p;
}

TEST(VmGreedy, MeetsDemandExactly) {
  const VmProblem p = small_vm_problem();
  const VmAllocation a = solve_vm_greedy(p);
  EXPECT_TRUE(a.feasible);
  for (std::size_t i = 0; i < p.chunks.size(); ++i) {
    const double row = std::accumulate(a.z[i].begin(), a.z[i].end(), 0.0);
    EXPECT_NEAR(row, p.chunks[i].demand / p.vm_bandwidth, 1e-9);
  }
}

TEST(VmGreedy, FillsBestRatioClusterFirst) {
  const VmProblem p = small_vm_problem();
  const VmAllocation a = solve_vm_greedy(p);
  // Demand = 120 VMs total: standard (75) fills, then advanced (45) —
  // medium has the worst ũ/p̃ and stays empty.
  EXPECT_NEAR(a.per_cluster_total[0], 75.0, 1e-9);
  EXPECT_NEAR(a.per_cluster_total[2], 45.0, 1e-9);
  EXPECT_NEAR(a.per_cluster_total[1], 0.0, 1e-9);
}

TEST(VmGreedy, RespectsBudget) {
  const VmProblem p = small_vm_problem(20.0);
  const VmAllocation a = solve_vm_greedy(p);
  EXPECT_FALSE(a.feasible);  // 120 VMs cannot fit in $20/h
  EXPECT_LE(a.cost_per_hour, 20.0 + 1e-9);
}

TEST(VmGreedy, HighDemandChunksServedFirstUnderPressure) {
  const VmProblem p = small_vm_problem(5.0);  // ~11 standard VMs affordable
  const VmAllocation a = solve_vm_greedy(p);
  // The largest chunk (index 4, 32 VMs) is served before chunk 0.
  const double row4 = std::accumulate(a.z[4].begin(), a.z[4].end(), 0.0);
  const double row0 = std::accumulate(a.z[0].begin(), a.z[0].end(), 0.0);
  EXPECT_GT(row4, 0.0);
  EXPECT_DOUBLE_EQ(row0, 0.0);
}

TEST(VmGreedy, ZeroDemandZeroAllocation) {
  VmProblem p = small_vm_problem();
  for (ChunkDemand& c : p.chunks) c.demand = 0.0;
  const VmAllocation a = solve_vm_greedy(p);
  EXPECT_TRUE(a.feasible);
  EXPECT_DOUBLE_EQ(a.cost_per_hour, 0.0);
  EXPECT_DOUBLE_EQ(a.total_utility, 0.0);
}

TEST(VmExact, MatchesHandSolvedAggregate) {
  // Demand 120 VMs, paper clusters, loose budget: the LP maximizes utility
  // by preferring advanced (1.0) and medium (0.8) over standard (0.6) as
  // long as the budget allows; with B = $100: advanced 45 + medium 30 +
  // standard 45 = 120 VMs costs 36 + 21 + 20.25 = $77.25 and is optimal.
  const VmProblem p = small_vm_problem(100.0);
  const VmAllocation exact = solve_vm_exact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(exact.per_cluster_total[2], 45.0, 1e-6);
  EXPECT_NEAR(exact.per_cluster_total[1], 30.0, 1e-6);
  EXPECT_NEAR(exact.per_cluster_total[0], 45.0, 1e-6);
  EXPECT_NEAR(exact.total_utility, 45.0 + 24.0 + 27.0, 1e-6);
  EXPECT_NEAR(exact.cost_per_hour, 77.25, 1e-6);
}

TEST(VmExact, BudgetTightVertex) {
  // The cheapest way to 120 VMs costs $66.75/h (75 standard + 30 medium +
  // 15 advanced); a $70 budget therefore forces the equality+budget vertex.
  const VmProblem p = small_vm_problem(70.0);
  const VmAllocation exact = solve_vm_exact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_LE(exact.cost_per_hour, 70.0 + 1e-6);
  const double total = std::accumulate(exact.per_cluster_total.begin(),
                                       exact.per_cluster_total.end(), 0.0);
  EXPECT_NEAR(total, 120.0, 1e-6);
}

TEST(VmExact, JustBelowCheapestCostIsInfeasible) {
  const VmProblem p = small_vm_problem(66.0);
  EXPECT_FALSE(solve_vm_exact(p).feasible);
}

TEST(VmExact, InfeasibleWhenDemandExceedsClusters) {
  VmProblem p = small_vm_problem();
  p.chunks[0].demand = 200.0 * p.vm_bandwidth;  // 200 VMs > 150 available
  const VmAllocation exact = solve_vm_exact(p);
  EXPECT_FALSE(exact.feasible);
}

TEST(VmExact, InfeasibleWhenBudgetTooSmall) {
  const VmProblem p = small_vm_problem(1.0);
  EXPECT_FALSE(solve_vm_exact(p).feasible);
}

class VmRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(VmRandomSweep, GreedyNeverBeatsExact) {
  util::Rng rng(testing::sweep_seed(GetParam(), 104729, 0));
  VmProblem p;
  p.vm_bandwidth = 1'250'000.0;
  const int clusters = 2 + GetParam() % 3;
  for (int v = 0; v < clusters; ++v) {
    p.clusters.push_back({"v" + std::to_string(v), rng.uniform(0.4, 1.0),
                          rng.uniform(0.2, 1.0),
                          static_cast<int>(rng.uniform(10.0, 60.0))});
  }
  for (int i = 0; i < 6; ++i) {
    p.chunks.push_back({{0, i}, rng.uniform(0.0, 30.0) * p.vm_bandwidth});
  }
  p.budget_per_hour = rng.uniform(5.0, 80.0);

  const VmAllocation greedy = solve_vm_greedy(p);
  const VmAllocation exact = solve_vm_exact(p);
  // Greedy fills by ũ/p̃, not by price, so it can run out of budget on
  // instances the exact solver still satisfies — but never the reverse.
  if (greedy.feasible) {
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(exact.total_utility, greedy.total_utility - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmRandomSweep, ::testing::Range(1, 16));

TEST(VmChannelUtility, PartitionsTotal) {
  VmProblem p = small_vm_problem();
  p.chunks[0].ref.channel = 1;
  const VmAllocation a = solve_vm_greedy(p);
  EXPECT_NEAR(channel_vm_utility(p, a, 0) + channel_vm_utility(p, a, 1),
              a.total_utility, 1e-9);
}

// ------------------------------------------------------------- packing

TEST(Packing, InstanceCountIsCeilOfClusterTotal) {
  const VmProblem p = small_vm_problem();
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  for (std::size_t v = 0; v < p.clusters.size(); ++v) {
    EXPECT_EQ(plan.per_cluster_count[v],
              static_cast<int>(std::ceil(a.per_cluster_total[v] - 1e-9)));
    EXPECT_LE(plan.per_cluster_count[v], p.clusters[v].max_vms);
  }
}

TEST(Packing, SlicesPreserveAllocation) {
  const VmProblem p = small_vm_problem();
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  std::vector<std::vector<double>> rebuilt(
      p.chunks.size(), std::vector<double>(p.clusters.size(), 0.0));
  for (const VmInstance& inst : plan.instances) {
    double load = 0.0;
    for (const auto& [chunk, fraction] : inst.slices) {
      rebuilt[chunk][inst.cluster] += fraction;
      load += fraction;
    }
    EXPECT_LE(load, 1.0 + 1e-9);  // one VM of capacity per instance
  }
  for (std::size_t i = 0; i < p.chunks.size(); ++i) {
    for (std::size_t v = 0; v < p.clusters.size(); ++v) {
      EXPECT_NEAR(rebuilt[i][v], a.z[i][v], 1e-9);
    }
  }
}

TEST(Packing, CostUsesWholeInstances) {
  const VmProblem p = small_vm_problem();
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  double expected = 0.0;
  for (std::size_t v = 0; v < p.clusters.size(); ++v) {
    expected += plan.per_cluster_count[v] * p.clusters[v].price_per_hour;
  }
  EXPECT_NEAR(plan.cost_per_hour, expected, 1e-9);
  EXPECT_GE(plan.cost_per_hour, a.cost_per_hour - 1e-9);  // rounding up
}

TEST(Packing, ConsecutiveChunksShareInstances) {
  // Two chunks of 0.5 VMs each in one channel must share a single VM.
  VmProblem p;
  p.clusters = {{"only", 1.0, 1.0, 10}};
  p.vm_bandwidth = 1'000'000.0;
  p.budget_per_hour = 100.0;
  p.chunks = {{{0, 0}, 0.5e6}, {{0, 1}, 0.5e6}};
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  ASSERT_EQ(plan.instances.size(), 1u);
  EXPECT_EQ(plan.instances[0].slices.size(), 2u);
}

TEST(Packing, LargeChunkSplitsAcrossInstances) {
  VmProblem p;
  p.clusters = {{"only", 1.0, 1.0, 10}};
  p.vm_bandwidth = 1'000'000.0;
  p.budget_per_hour = 100.0;
  p.chunks = {{{0, 0}, 2.5e6}};  // 2.5 VMs
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  EXPECT_EQ(plan.per_cluster_count[0], 3);
  double total = 0.0;
  for (const VmInstance& inst : plan.instances) {
    for (const auto& [chunk, fraction] : inst.slices) total += fraction;
  }
  EXPECT_NEAR(total, 2.5, 1e-9);
}

TEST(Packing, SlicesWithinInstanceFollowChannelChunkOrder) {
  // The packer walks chunks in (channel, chunk) order, so a shared VM's
  // slices are consecutive in that order — the paper's "maximally allow
  // consecutive chunks in one channel to be served by the VM".
  VmProblem p;
  p.clusters = {{"only", 1.0, 1.0, 50}};
  p.vm_bandwidth = 1'000'000.0;
  p.budget_per_hour = 100.0;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      p.chunks.push_back({{c, i}, 0.3e6});
    }
  }
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  for (const VmInstance& inst : plan.instances) {
    for (std::size_t s = 1; s < inst.slices.size(); ++s) {
      const ChunkRef prev = p.chunks[inst.slices[s - 1].first].ref;
      const ChunkRef cur = p.chunks[inst.slices[s].first].ref;
      const bool ordered = prev.channel < cur.channel ||
                           (prev.channel == cur.channel && prev.chunk <= cur.chunk);
      EXPECT_TRUE(ordered) << "instance slices out of (channel, chunk) order";
    }
  }
}

TEST(Packing, SameChannelFractionsShareBeforeCrossingChannels) {
  // 0.3-VM fractions: chunks (0,0),(0,1),(0,2) fill the first VM to 0.9;
  // channel 1 starts in the second VM only because the first cannot hold
  // another 0.3... it can (0.9 + 0.3 > 1), so (1,0) opens instance 2.
  VmProblem p;
  p.clusters = {{"only", 1.0, 1.0, 50}};
  p.vm_bandwidth = 1'000'000.0;
  p.budget_per_hour = 100.0;
  p.chunks = {{{0, 0}, 0.3e6}, {{0, 1}, 0.3e6}, {{0, 2}, 0.3e6}, {{1, 0}, 0.3e6}};
  const VmAllocation a = solve_vm_greedy(p);
  const InstancePlan plan = pack_instances(p, a);
  ASSERT_EQ(plan.per_cluster_count[0], 2);
  // First instance holds exactly channel 0's three fractions plus the
  // 0.1-VM head of (1,0)'s share (fractions may straddle instances).
  const VmInstance& first = plan.instances.front();
  double channel0 = 0.0;
  for (const auto& [chunk, fraction] : first.slices) {
    if (p.chunks[chunk].ref.channel == 0) channel0 += fraction;
  }
  EXPECT_NEAR(channel0, 0.9, 1e-9);
}

TEST(VmAudit, DetectsOverCapacity) {
  VmProblem p = small_vm_problem();
  std::vector<std::vector<double>> z(p.chunks.size(),
                                     std::vector<double>(p.clusters.size(), 0.0));
  z[0][1] = p.clusters[1].max_vms + 5.0;  // over medium's N_v
  EXPECT_THROW((void)audit_vm_allocation(p, z), util::InvariantError);
}

TEST(VmProblemTotals, TotalDemandInVmUnits) {
  const VmProblem p = small_vm_problem();
  EXPECT_NEAR(p.total_vm_demand(), (10.0 + 20 + 30 + 40 + 50) * 1e6 / 1.25e6,
              1e-9);
}

}  // namespace
}  // namespace cloudmedia::core
