#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "predict/forecaster.h"
#include "sweep/goldens.h"
#include "sweep/param_grid.h"
#include "sweep/run_summary.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_diff.h"
#include "sweep/sweep_runner.h"
#include "sweep/thread_pool.h"
#include "testing/seeds.h"
#include "util/check.h"
#include "util/json.h"

namespace cloudmedia::sweep {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor must wait for every queued task
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

// -------------------------------------------------------------- ParamGrid

TEST(ParamGrid, EmptyGridIsOnePoint) {
  ParamGrid grid;
  EXPECT_EQ(grid.num_points(), 1u);
  EXPECT_TRUE(grid.point(0).coords.empty());
}

TEST(ParamGrid, CartesianProductDecodesInOrder) {
  ParamGrid grid;
  grid.add_axis("channels", {"4", "8"});
  grid.add_axis("mode", {"cs", "p2p"});
  ASSERT_EQ(grid.num_points(), 4u);
  // First axis slowest, last fastest.
  EXPECT_EQ(grid.point(0).label(), "channels=4,mode=cs");
  EXPECT_EQ(grid.point(1).label(), "channels=4,mode=p2p");
  EXPECT_EQ(grid.point(2).label(), "channels=8,mode=cs");
  EXPECT_EQ(grid.point(3).label(), "channels=8,mode=p2p");
}

TEST(ParamGrid, ParseSpecs) {
  const ParamGrid grid =
      ParamGrid::parse({"channels=4,8", "mode=cs,p2p", "arrival=0.5"});
  ASSERT_EQ(grid.axes().size(), 3u);
  EXPECT_EQ(grid.axes()[0].name, "channels");
  EXPECT_EQ(grid.axes()[1].values, (std::vector<std::string>{"cs", "p2p"}));
  EXPECT_EQ(grid.num_points(), 4u);
}

TEST(ParamGrid, RejectsBadSpecs) {
  EXPECT_THROW(ParamGrid::parse({"channels"}), util::PreconditionError);
  EXPECT_THROW(ParamGrid::parse({"=4"}), util::PreconditionError);
  EXPECT_THROW(ParamGrid::parse({"channels="}), util::PreconditionError);
  EXPECT_THROW(ParamGrid::parse({"channels=4,,8"}), util::PreconditionError);
  EXPECT_THROW(ParamGrid::parse({"no_such_param=1"}), util::PreconditionError);
  EXPECT_THROW(ParamGrid::parse({"mode=cs", "mode=p2p"}),
               util::PreconditionError);
}

TEST(ParamGrid, ApplyParameterMutatesConfig) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  apply_parameter(cfg, "channels", "7");
  apply_parameter(cfg, "mode", "p2p");
  apply_parameter(cfg, "strategy", "reactive");
  apply_parameter(cfg, "arrival", "0.25");
  EXPECT_EQ(cfg.workload.num_channels, 7);
  EXPECT_EQ(cfg.mode, core::StreamingMode::kP2p);
  EXPECT_EQ(cfg.strategy, expr::Strategy::kReactive);
  EXPECT_DOUBLE_EQ(cfg.workload.total_arrival_rate, 0.25);
}

TEST(ParamGrid, ApplyParameterRejectsJunk) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  EXPECT_THROW(apply_parameter(cfg, "bogus", "1"), util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "channels", "four"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "channels", "4x"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "mode", "hybrid"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "strategy", "magic"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "p2p_cap", "verbatim"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "forecaster", "oracle"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "region", "atlantis"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "chunk_minutes", "0"),
               util::PreconditionError);
  EXPECT_THROW(apply_parameter(cfg, "chunk_minutes", "500"),
               util::PreconditionError);
}

// ------------------------------------------ the figure-bench axes (PR 4)

TEST(ParamGrid, ChunkMinutesAppliesCompetingRisksTransform) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
  apply_parameter(cfg, "chunk_minutes", "10");
  EXPECT_DOUBLE_EQ(cfg.vod.chunk_duration, 600.0);
  EXPECT_EQ(cfg.vod.chunks_per_video, 10);  // 100-minute video
  EXPECT_EQ(cfg.workload.chunks_per_video, 10);
  // Competing exponential risks: jump at 1/15 per minute, leave at 1/37.
  const double rj = 1.0 / 15.0, rl = 1.0 / 37.0;
  const double event_prob = 1.0 - std::exp(-(rj + rl) * 10.0);
  EXPECT_NEAR(cfg.workload.behavior.jump_prob, event_prob * rj / (rj + rl),
              1e-12);
  EXPECT_NEAR(cfg.workload.behavior.leave_prob, event_prob * rl / (rj + rl),
              1e-12);
  EXPECT_LE(cfg.workload.behavior.jump_prob + cfg.workload.behavior.leave_prob,
            1.0);
  cfg.workload.behavior.validate();  // any T0 must yield a valid behaviour
}

TEST(ParamGrid, P2pCapAndForecasterApply) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
  apply_parameter(cfg, "p2p_cap", "literal");
  EXPECT_EQ(cfg.p2p.demand_cap, core::P2pDemandCap::kStreamingRateLiteral);
  apply_parameter(cfg, "p2p_cap", "bandwidth");
  EXPECT_EQ(cfg.p2p.demand_cap, core::P2pDemandCap::kProvisionedBandwidth);

  apply_parameter(cfg, "forecaster", "holt-winters");
  EXPECT_EQ(cfg.strategy, expr::Strategy::kForecast);
  EXPECT_EQ(cfg.forecaster.kind, predict::ForecasterKind::kHoltWinters);
  EXPECT_EQ(cfg.forecaster.period, 24);
}

TEST(ParamGrid, RegionAppliesFederationDerivation) {
  const expr::ExperimentConfig base =
      expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);

  expr::ExperimentConfig global = base;
  apply_parameter(global, "region", "global");  // consolidated: a no-op
  EXPECT_DOUBLE_EQ(global.workload.total_arrival_rate,
                   base.workload.total_arrival_rate);

  expr::ExperimentConfig asia = base;
  apply_parameter(asia, "region", "asia");  // 45% share, reference clock
  EXPECT_NEAR(asia.workload.total_arrival_rate,
              0.45 * base.workload.total_arrival_rate, 1e-12);
  EXPECT_NEAR(asia.vm_budget_per_hour, 0.45 * base.vm_budget_per_hour, 1e-12);
  EXPECT_EQ(asia.seed, base.seed);  // seeding stays the runner's job

  expr::ExperimentConfig europe = base;
  apply_parameter(europe, "region", "europe");  // 30% share, 1.1x VM prices
  EXPECT_NEAR(europe.workload.total_arrival_rate,
              0.30 * base.workload.total_arrival_rate, 1e-12);
  ASSERT_FALSE(europe.vm_clusters.empty());
  EXPECT_NEAR(europe.vm_clusters[0].price_per_hour,
              1.1 * base.vm_clusters[0].price_per_hour, 1e-12);
}

TEST(ParamGrid, UplinkShapeVariesSpreadOnly) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kP2p);
  apply_parameter(cfg, "uplink_shape", "8");
  EXPECT_DOUBLE_EQ(cfg.workload.uplink_shape, 8.0);
  // The mean pin is what makes the axis a pure-spread knob.
  EXPECT_DOUBLE_EQ(cfg.workload.uplink_mean_ratio, 1.0);
  cfg.workload.validate();
}

TEST(ParamGrid, NewAxesParseAndClassify) {
  const ParamGrid grid = ParamGrid::parse(
      {"chunk_minutes=2.5,5,10", "p2p_cap=literal,bandwidth",
       "forecaster=persistence,holt", "region=global,asia",
       "uplink_shape=1.5,8"});
  EXPECT_EQ(grid.num_points(), 3u * 2u * 2u * 2u * 2u);
  // Workload-shaping axes feed the per-run seed; system-side ones must not.
  EXPECT_TRUE(parameter_affects_workload("chunk_minutes"));
  EXPECT_TRUE(parameter_affects_workload("region"));
  EXPECT_TRUE(parameter_affects_workload("uplink_shape"));
  EXPECT_FALSE(parameter_affects_workload("p2p_cap"));
  EXPECT_FALSE(parameter_affects_workload("forecaster"));
  // p2p_cap/forecaster rows of the same workload share their seed.
  ParamGrid seed_grid;
  seed_grid.add_axis("p2p_cap", {"literal", "bandwidth"});
  EXPECT_EQ(SweepRunner::run_seed(42, seed_grid.point(0)),
            SweepRunner::run_seed(42, seed_grid.point(1)));
}

TEST(ParamGrid, EveryKnownParameterApplies) {
  // The registry must stay applyable end to end; representative values.
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  for (const std::string& name : known_parameters()) {
    (void)parameter_affects_workload(name);  // must not throw
    if (name == "mode") {
      apply_parameter(cfg, name, "p2p");
    } else if (name == "strategy") {
      apply_parameter(cfg, name, "clairvoyant");
    } else if (name == "capacity") {
      apply_parameter(cfg, name, "literal");
    } else if (name == "channels") {
      apply_parameter(cfg, name, "5");
    } else if (name == "p2p_cap") {
      apply_parameter(cfg, name, "bandwidth");
    } else if (name == "forecaster") {
      apply_parameter(cfg, name, "seasonal-ewma");
    } else if (name == "region") {
      apply_parameter(cfg, name, "asia");
    } else if (name == "uplink_shape") {
      apply_parameter(cfg, name, "3");
    } else if (name == "chunk_minutes") {
      apply_parameter(cfg, name, "5");
    } else if (name == "engine") {
      apply_parameter(cfg, name, "cohort");
    } else {
      apply_parameter(cfg, name, "0.5");
    }
  }
  cfg.reactive_margin = 1.2;  // 0.5 violates validate(); restore
  cfg.workload.behavior.validate();
}

// ------------------------------------------------------ per-run seeding

TEST(SweepRunner, SeedIgnoresSystemSideAxes) {
  ParamGrid grid;
  grid.add_axis("channels", {"4", "8"});
  grid.add_axis("mode", {"cs", "p2p"});
  // Same channels, different mode -> same workload -> same seed.
  EXPECT_EQ(SweepRunner::run_seed(42, grid.point(0)),
            SweepRunner::run_seed(42, grid.point(1)));
  // Different channels -> different workload stream.
  EXPECT_NE(SweepRunner::run_seed(42, grid.point(0)),
            SweepRunner::run_seed(42, grid.point(2)));
  // Base seed feeds in.
  EXPECT_NE(SweepRunner::run_seed(42, grid.point(0)),
            SweepRunner::run_seed(43, grid.point(0)));
}

TEST(SweepRunner, SeedIsStableAcrossProcesses) {
  // Pin the derivation: a silent change would invalidate archived sweeps.
  ParamGrid grid;
  grid.add_axis("channels", {"4"});
  const std::uint64_t seed = SweepRunner::run_seed(42, grid.point(0));
  EXPECT_EQ(seed, SweepRunner::run_seed(42, grid.point(0)));
  EXPECT_NE(seed, 42u);
}

// -------------------------------------------------------- ScenarioCatalog

TEST(ScenarioCatalog, RegistersTheTwelveBuiltins) {
  const std::vector<std::string> names = ScenarioCatalog::global().names();
  const std::set<std::string> expected = {
      "baseline_diurnal", "flash_crowd",       "weekend_surge",
      "churn_heavy",      "long_tail_catalog", "geo_skewed",
      "regional_outage",  "live_event_cliff",  "catalog_refresh",
      "startup_stampede", "recovery",          "stampede_recovery"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(ScenarioCatalog, UnknownNameThrowsWithListingAndSyntax) {
  try {
    (void)ScenarioCatalog::global().at("no_such_scenario");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("flash_crowd"), std::string::npos);
    // The error must teach the composition syntax, not just list names.
    EXPECT_NE(what.find("flash_crowd+churn_heavy"), std::string::npos);
  }
}

TEST(ScenarioCatalog, FindIsSingleLookup) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const Scenario* scenario = catalog.find("flash_crowd");
  ASSERT_NE(scenario, nullptr);
  EXPECT_EQ(scenario->name, "flash_crowd");
  EXPECT_EQ(&catalog.at("flash_crowd"), scenario);  // same map entry
  EXPECT_EQ(catalog.find("no_such_scenario"), nullptr);
  EXPECT_TRUE(catalog.contains("flash_crowd"));
  EXPECT_FALSE(catalog.contains("no_such_scenario"));
}

TEST(ScenarioCatalog, RejectsDuplicatesBadOpsAndPlusInNames) {
  ScenarioCatalog catalog = ScenarioCatalog::with_builtins();
  EXPECT_THROW(catalog.add({"flash_crowd", "dup", {}}),
               util::PreconditionError);
  // '+' is the composition operator, not a name character.
  EXPECT_THROW(catalog.add({"a+b", "composite-looking name", {}}),
               util::PreconditionError);
  EXPECT_THROW(
      catalog.add({"bad_op", "op without apply", {{"x", "d", true, nullptr}}}),
      util::PreconditionError);
  EXPECT_THROW(
      catalog.add({"unnamed_op",
                   "op without a name",
                   {{"", "d", true, [](expr::ExperimentConfig&) {}}}}),
      util::PreconditionError);
}

TEST(ScenarioCatalog, EveryOpIsNamedDocumentedAndClassified) {
  for (const std::string& name : ScenarioCatalog::global().names()) {
    SCOPED_TRACE(name);
    const Scenario& scenario = ScenarioCatalog::global().at(name);
    EXPECT_FALSE(scenario.description.empty());
    for (const ScenarioOp& op : scenario.ops) {
      EXPECT_FALSE(op.name.empty());
      EXPECT_FALSE(op.description.empty());
      EXPECT_NE(op.apply, nullptr);
    }
  }
  // The identity has no ops; every other builtin has at least one, and the
  // op split is in use on both sides (regional_outage carries a system op).
  EXPECT_TRUE(ScenarioCatalog::global().at("baseline_diurnal").ops.empty());
  const Scenario& outage = ScenarioCatalog::global().at("regional_outage");
  ASSERT_EQ(outage.ops.size(), 2u);
  EXPECT_TRUE(outage.ops[0].workload_shaping);
  EXPECT_FALSE(outage.ops[1].workload_shaping);
}

// Round-trip: every registered scenario must construct a valid config and
// survive 10 simulated minutes end to end.
TEST(ScenarioCatalog, EveryBuiltinRunsTenMinutes) {
  for (const std::string& name : ScenarioCatalog::global().names()) {
    SCOPED_TRACE(name);
    SweepSpec spec;
    spec.scenario = name;
    spec.base_seed = testing::kGoldenSeed;
    spec.warmup_hours = 0.0;
    spec.measure_hours = 10.0 / 60.0;
    const SweepResult result = SweepRunner::run(spec);
    ASSERT_EQ(result.runs.size(), 1u);
    EXPECT_GT(result.runs[0].sim_events, 0u);
  }
}

// ------------------------------------------------- scenario composition

TEST(ScenarioCatalog, ResolveSingleNameReturnsTheScenarioUnchanged) {
  const Scenario resolved = ScenarioCatalog::global().resolve("churn_heavy");
  EXPECT_EQ(resolved.name, "churn_heavy");
  EXPECT_EQ(resolved.ops.size(),
            ScenarioCatalog::global().at("churn_heavy").ops.size());
}

TEST(ScenarioCatalog, ResolveConcatenatesOpsLeftToRight) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const Scenario composed = catalog.resolve("flash_crowd+churn_heavy");
  EXPECT_EQ(composed.name, "flash_crowd+churn_heavy");
  const Scenario& flash = catalog.at("flash_crowd");
  const Scenario& churn = catalog.at("churn_heavy");
  ASSERT_EQ(composed.ops.size(), flash.ops.size() + churn.ops.size());
  for (std::size_t i = 0; i < flash.ops.size(); ++i) {
    EXPECT_EQ(composed.ops[i].name, flash.ops[i].name);
  }
  for (std::size_t i = 0; i < churn.ops.size(); ++i) {
    EXPECT_EQ(composed.ops[flash.ops.size() + i].name, churn.ops[i].name);
  }
  // Applying the composite == applying the parts in sequence.
  expr::ExperimentConfig via_composite =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  composed.apply(via_composite);
  expr::ExperimentConfig via_parts =
      expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
  flash.apply(via_parts);
  churn.apply(via_parts);
  EXPECT_DOUBLE_EQ(via_composite.workload.total_arrival_rate,
                   via_parts.workload.total_arrival_rate);
  EXPECT_DOUBLE_EQ(via_composite.workload.behavior.leave_prob,
                   via_parts.workload.behavior.leave_prob);
  EXPECT_EQ(via_composite.workload.diurnal.peaks().size(),
            via_parts.workload.diurnal.peaks().size());
}

TEST(ScenarioCatalog, BaselineIsTheIdentityOfTheAlgebra) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const expr::ExperimentConfig composed =
      catalog.make_config("baseline_diurnal+flash_crowd");
  const expr::ExperimentConfig plain = catalog.make_config("flash_crowd");
  EXPECT_DOUBLE_EQ(composed.workload.diurnal.base(),
                   plain.workload.diurnal.base());
  EXPECT_EQ(composed.workload.diurnal.peaks().size(),
            plain.workload.diurnal.peaks().size());
  EXPECT_DOUBLE_EQ(composed.workload.total_arrival_rate,
                   plain.workload.total_arrival_rate);
}

// Order sensitivity is part of the contract: last writer wins where parts
// touch the same field, and disjoint parts commute.
TEST(ScenarioCatalog, CompositionOrderPinnedWhereItMatters) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  // flash_crowd and weekend_surge both replace the diurnal pattern:
  // whichever comes second owns it (weekend's arrival scale applies in
  // both orders — it multiplies, it does not overwrite).
  const expr::ExperimentConfig fw =
      catalog.make_config("flash_crowd+weekend_surge");
  const expr::ExperimentConfig wf =
      catalog.make_config("weekend_surge+flash_crowd");
  const expr::ExperimentConfig weekend = catalog.make_config("weekend_surge");
  const expr::ExperimentConfig flash = catalog.make_config("flash_crowd");
  EXPECT_DOUBLE_EQ(fw.workload.diurnal.base(),
                   weekend.workload.diurnal.base());
  EXPECT_DOUBLE_EQ(wf.workload.diurnal.base(), flash.workload.diurnal.base());
  EXPECT_NE(fw.workload.diurnal.base(), wf.workload.diurnal.base());
  EXPECT_DOUBLE_EQ(fw.workload.total_arrival_rate,
                   wf.workload.total_arrival_rate);  // 1.15x either way
  // Disjoint parts commute: flash_crowd (diurnal) + churn_heavy
  // (behavior, arrival scale) give the same config in both orders.
  const expr::ExperimentConfig fc =
      catalog.make_config("flash_crowd+churn_heavy");
  const expr::ExperimentConfig cf =
      catalog.make_config("churn_heavy+flash_crowd");
  EXPECT_DOUBLE_EQ(fc.workload.diurnal.base(), cf.workload.diurnal.base());
  EXPECT_DOUBLE_EQ(fc.workload.total_arrival_rate,
                   cf.workload.total_arrival_rate);
  EXPECT_DOUBLE_EQ(fc.workload.behavior.jump_prob,
                   cf.workload.behavior.jump_prob);
}

TEST(ScenarioCatalog, ResolveRejectsJunkExpressions) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  EXPECT_THROW((void)catalog.resolve(""), util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("+"), util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd+"), util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("+flash_crowd"), util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd++churn_heavy"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd+no_such_scenario"),
               util::PreconditionError);
  try {
    (void)catalog.resolve("flash_crowd+");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("empty part"), std::string::npos);
  }
}

// ------------------------------------------------- catalog growth (PR 5)

TEST(ScenarioCatalog, RegionalOutageShapesSurvivorStack) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const expr::ExperimentConfig base = catalog.make_config("baseline_diurnal");
  const expr::ExperimentConfig outage = catalog.make_config("regional_outage");
  // Displaced audience: full arrival rate, blended clocks (2x the peaks).
  EXPECT_DOUBLE_EQ(outage.workload.total_arrival_rate,
                   base.workload.total_arrival_rate);
  EXPECT_EQ(outage.workload.diurnal.peaks().size(),
            2 * base.workload.diurnal.peaks().size());
  // Survivor budget slice: 55% of the global budgets.
  EXPECT_NEAR(outage.vm_budget_per_hour, 0.55 * base.vm_budget_per_hour,
              1e-12);
  EXPECT_NEAR(outage.storage_budget_per_hour,
              0.55 * base.storage_budget_per_hour, 1e-12);
}

TEST(ScenarioCatalog, LiveEventCliffShapesWallAndSynchronizedViewing) {
  const expr::ExperimentConfig cfg =
      ScenarioCatalog::global().make_config("live_event_cliff");
  ASSERT_EQ(cfg.workload.diurnal.peaks().size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.workload.diurnal.peaks()[0].amplitude, 8.0);
  EXPECT_LT(cfg.workload.diurnal.peaks()[0].width, 0.5);  // a wall, not a hill
  EXPECT_DOUBLE_EQ(cfg.workload.behavior.alpha, 1.0);  // synchronized start
  cfg.workload.validate();
  // The wall dwarfs the base: peak multiplier is dominated by the event.
  EXPECT_GT(cfg.workload.diurnal.max_multiplier(),
            8.0 * cfg.workload.diurnal.base());
}

TEST(ScenarioCatalog, CatalogRefreshEnablesRotation) {
  const expr::ExperimentConfig cfg =
      ScenarioCatalog::global().make_config("catalog_refresh");
  EXPECT_GT(cfg.workload.refresh_period_hours, 0.0);
  EXPECT_NE(cfg.workload.refresh_shift, 0);
  cfg.workload.validate();
  // And the default config keeps it off — the paper setup is static.
  const expr::ExperimentConfig base =
      ScenarioCatalog::global().make_config("baseline_diurnal");
  EXPECT_DOUBLE_EQ(base.workload.refresh_period_hours, 0.0);
}

TEST(ScenarioCatalog, StartupStampedeBurstsAtTimeZero) {
  const expr::ExperimentConfig cfg =
      ScenarioCatalog::global().make_config("startup_stampede");
  ASSERT_FALSE(cfg.workload.diurnal.peaks().empty());
  EXPECT_DOUBLE_EQ(cfg.workload.diurnal.peaks()[0].hour, 0.0);
  // The burst is live the instant the simulation starts — no ramp-in.
  EXPECT_GT(cfg.workload.diurnal.multiplier(0.0),
            4.0 * cfg.workload.diurnal.base());
  cfg.workload.validate();
}

// --------------------------------------------------- end-to-end determinism

SweepSpec small_grid_spec(unsigned threads) {
  SweepSpec spec;
  spec.scenario = "flash_crowd";
  spec.grid.add_axis("channels", {"3", "5"});
  spec.grid.add_axis("mode", {"cs", "p2p"});
  spec.base_seed = testing::kGoldenSeed;
  spec.threads = threads;
  spec.warmup_hours = 0.1;
  spec.measure_hours = 0.4;
  return spec;
}

TEST(SweepRunner, ThreadCountDoesNotChangeOutput) {
  const SweepResult serial = SweepRunner::run(small_grid_spec(1));
  const SweepResult parallel = SweepRunner::run(small_grid_spec(8));
  // The acceptance bar: byte-identical CSV and JSON whatever the fan-out.
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json().dump(), parallel.to_json().dump());
  ASSERT_EQ(serial.runs.size(), 4u);
  for (const RunSummary& run : serial.runs) {
    EXPECT_GT(run.sim_events, 0u);
    EXPECT_GE(run.mean_quality, 0.0);
    EXPECT_LE(run.mean_quality, 1.0);
  }
}

TEST(SweepRunner, CsvShapeMatchesGrid) {
  const SweepResult result = SweepRunner::run(small_grid_spec(2));
  const std::string csv = result.to_csv();
  // Header + one row per grid cell, each ending in a newline.
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + result.runs.size());
  EXPECT_EQ(csv.rfind("scenario,channels,mode,seed,mean_quality", 0), 0u);
  // cs and p2p rows of the same channel count share their seed column.
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.runs[0].seed, result.runs[1].seed);
  EXPECT_NE(result.runs[0].seed, result.runs[2].seed);
}

TEST(SweepRunner, KeepResultsRetainsSeries) {
  SweepSpec spec = small_grid_spec(2);
  spec.keep_results = true;
  const SweepResult result = SweepRunner::run(spec);
  ASSERT_EQ(result.results.size(), 4u);
  for (const expr::ExperimentResult& r : result.results) {
    EXPECT_FALSE(r.metrics.quality.empty());
  }
}

// The composed-scenario acceptance bar: a composite expression runs, its
// name is threaded into every row and both output headers, and the output
// is byte-identical on 1 thread and 8.
TEST(SweepRunner, ComposedScenarioIsThreadCountInvariant) {
  SweepSpec spec;
  spec.scenario = "flash_crowd+churn_heavy";
  spec.grid.add_axis("mode", {"cs", "p2p"});
  spec.base_seed = testing::kGoldenSeed;
  spec.warmup_hours = 0.05;
  spec.measure_hours = 0.2;
  spec.threads = 1;
  const SweepResult serial = SweepRunner::run(spec);
  spec.threads = 8;
  const SweepResult parallel = SweepRunner::run(spec);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json().dump(), parallel.to_json().dump());
  // Provenance: the composite expression is the scenario, everywhere.
  EXPECT_EQ(serial.scenario, "flash_crowd+churn_heavy");
  ASSERT_EQ(serial.runs.size(), 2u);
  for (const RunSummary& run : serial.runs) {
    EXPECT_EQ(run.scenario, "flash_crowd+churn_heavy");
    EXPECT_GT(run.sim_events, 0u);
  }
  EXPECT_NE(serial.to_csv().find("flash_crowd+churn_heavy,cs"),
            std::string::npos);
  EXPECT_NE(serial.to_json().dump().find("\"flash_crowd+churn_heavy\""),
            std::string::npos);
  // And the diff pipeline sees composite headers as ordinary strings: the
  // same sweep diffs clean against itself.
  EXPECT_TRUE(diff_sweeps(serial.to_json(), parallel.to_json()).identical());
}

TEST(SweepRunner, MalformedCompositeFailsFast) {
  SweepSpec spec;
  spec.scenario = "flash_crowd+";
  EXPECT_THROW((void)SweepRunner::run(spec), util::PreconditionError);
  spec.scenario = "flash_crowd+no_such_scenario";
  EXPECT_THROW((void)SweepRunner::run(spec), util::PreconditionError);
}

// ----------------------------------------- downsampled series retention

TEST(SweepRunner, SeriesStrideShrinksRetainedSeriesNotSummaries) {
  SweepSpec spec = small_grid_spec(2);
  spec.keep_results = true;
  const SweepResult full = SweepRunner::run(spec);
  spec.series_stride = 8;
  const SweepResult strided = SweepRunner::run(spec);

  // Summaries are computed before downsampling: CSV/JSON byte-identical.
  EXPECT_EQ(full.to_csv(), strided.to_csv());
  EXPECT_EQ(full.to_json().dump(), strided.to_json().dump());

  std::size_t full_samples = 0, strided_samples = 0;
  for (const expr::ExperimentResult& r : full.results) {
    full_samples += r.metrics.total_samples();
  }
  for (const expr::ExperimentResult& r : strided.results) {
    strided_samples += r.metrics.total_samples();
    EXPECT_FALSE(r.metrics.quality.empty());  // shape survives
  }
  // ceil(n/8) per series: at least a 4x drop on any non-trivial horizon.
  EXPECT_GT(strided_samples, 0u);
  EXPECT_LE(strided_samples * 4, full_samples);
  // Stride-retained samples are a prefix-stride subset: first sample kept.
  ASSERT_FALSE(strided.results.empty());
  EXPECT_EQ(strided.results[0].metrics.quality.time_at(0),
            full.results[0].metrics.quality.time_at(0));
}

TEST(SweepSpec, SeriesStrideFlagParsesAndValidates) {
  {
    const char* argv[] = {"prog", "--series-stride=16"};
    SweepSpec spec;
    spec.apply_flags(expr::Flags(2, argv));
    EXPECT_EQ(spec.series_stride, 16u);
  }
  {
    const char* argv[] = {"prog", "--series-stride=0"};
    SweepSpec spec;
    EXPECT_THROW(spec.apply_flags(expr::Flags(2, argv)),
                 util::PreconditionError);
  }
  SweepSpec spec;
  spec.series_stride = 0;
  EXPECT_THROW((void)SweepRunner::run(spec), util::PreconditionError);
}

TEST(SweepSpec, ApplyFlagsReadsScheduleAndValidatesThreads) {
  {
    const char* argv[] = {"prog", "--seed=7", "--threads=3", "--hours=2.5"};
    SweepSpec spec;
    spec.warmup_hours = 0.5;
    spec.apply_flags(expr::Flags(4, argv));
    EXPECT_EQ(spec.base_seed, 7u);
    EXPECT_EQ(spec.threads, 3u);
    EXPECT_DOUBLE_EQ(spec.measure_hours, 2.5);
    EXPECT_DOUBLE_EQ(spec.warmup_hours, 0.5);  // untouched default
  }
  {
    const char* argv[] = {"prog", "--threads=-1"};
    SweepSpec spec;
    EXPECT_THROW(spec.apply_flags(expr::Flags(2, argv)),
                 util::PreconditionError);
  }
  {
    const char* argv[] = {"prog", "--threads=99999"};
    SweepSpec spec;
    EXPECT_THROW(spec.apply_flags(expr::Flags(2, argv)),
                 util::PreconditionError);
  }
}

TEST(SweepRunner, UnknownScenarioFailsFast) {
  SweepSpec spec;
  spec.scenario = "no_such_scenario";
  EXPECT_THROW((void)SweepRunner::run(spec), util::PreconditionError);
}

// ------------------------------------------------------------- sharding

TEST(ShardSpec, ParsesKOverNAndRejectsJunk) {
  const ShardSpec shard = ShardSpec::parse("2/5");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 5u);
  EXPECT_EQ(shard.label(), "2/5");
  EXPECT_FALSE(shard.whole());
  EXPECT_TRUE(ShardSpec().whole());
  EXPECT_EQ(ShardSpec::parse("0/1").count, 1u);
  for (const std::string junk :
       {"", "1", "a/b", "1/", "/2", "1//2", "-1/2", " 1/2", "1/2 ", "1.0/2",
        "1/0", "2/2", "3/2", "99999999999999999999/2"}) {
    EXPECT_THROW((void)ShardSpec::parse(junk), util::PreconditionError)
        << "accepted '" << junk << "'";
  }
  // The syntax error teaches the k/N form.
  try {
    (void)ShardSpec::parse("5/2");
    FAIL();
  } catch (const util::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("k/N"), std::string::npos);
  }
}

TEST(ShardSpec, FlagRoundTripsThroughApplyFlags) {
  const char* argv[] = {"prog", "--shard=1/3"};
  SweepSpec spec;
  spec.apply_flags(expr::Flags(2, argv));
  EXPECT_EQ(spec.shard.index, 1u);
  EXPECT_EQ(spec.shard.count, 3u);
}

TEST(SweepRunner, ShardCellsPartitionEveryGridExactlyOnce) {
  // Disjoint, covering, ordered — for assorted totals and widths,
  // including N > cells (some shards legitimately own nothing).
  for (const std::size_t total : {0u, 1u, 4u, 10u, 17u, 100u}) {
    for (const std::size_t n : {1u, 2u, 3u, 5u, 7u, 23u}) {
      std::set<std::size_t> seen;
      for (std::size_t k = 0; k < n; ++k) {
        const std::vector<std::size_t> cells =
            SweepRunner::shard_cells(total, ShardSpec{k, n});
        std::size_t prev = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
          EXPECT_LT(cells[i], total);
          EXPECT_EQ(cells[i] % n, k);  // strided ownership
          if (i) {
            EXPECT_GT(cells[i], prev);
          }
          prev = cells[i];
          EXPECT_TRUE(seen.insert(cells[i]).second)
              << "cell " << cells[i] << " owned twice (total " << total
              << ", width " << n << ")";
        }
      }
      EXPECT_EQ(seen.size(), total) << "width " << n;
    }
  }
}

TEST(SweepSpec, SpecHashPinsScheduleButNotExecutionKnobs) {
  SweepSpec spec = small_grid_spec(1);
  const std::string hash = spec.spec_hash();
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(spec.spec_hash(), hash);  // stable

  // Execution knobs do not change what is computed, so they must not
  // change the hash — shards launched with different --threads merge.
  SweepSpec knobs = small_grid_spec(1);
  knobs.threads = 8;
  knobs.shard = ShardSpec{1, 4};
  knobs.series_stride = 8;
  EXPECT_EQ(knobs.spec_hash(), hash);

  // Every schedule-shaping field does.
  SweepSpec changed = small_grid_spec(1);
  changed.scenario = "churn_heavy";
  EXPECT_NE(changed.spec_hash(), hash);
  changed = small_grid_spec(1);
  changed.base_seed ^= 1;
  EXPECT_NE(changed.spec_hash(), hash);
  changed = small_grid_spec(1);
  changed.measure_hours += 0.1;
  EXPECT_NE(changed.spec_hash(), hash);
  changed = small_grid_spec(1);
  changed.warmup_hours += 0.1;
  EXPECT_NE(changed.spec_hash(), hash);
  changed = small_grid_spec(1);
  changed.grid = ParamGrid();
  changed.grid.add_axis("channels", {"3", "6"});
  changed.grid.add_axis("mode", {"cs", "p2p"});
  EXPECT_NE(changed.spec_hash(), hash);
}

TEST(SweepRunner, ShardedRunCarriesHeaderUnshardedStaysByteFrozen) {
  // Unsharded output must not grow a shard header — the committed goldens
  // pin that serialization.
  const SweepResult whole = SweepRunner::run(small_grid_spec(1));
  EXPECT_EQ(whole.to_json().dump().find("\"shard\""), std::string::npos);
  EXPECT_EQ(whole.to_json().dump().find("\"cell\""), std::string::npos);

  SweepSpec spec = small_grid_spec(1);
  spec.shard = ShardSpec{1, 2};
  const SweepResult shard = SweepRunner::run(spec);
  EXPECT_EQ(shard.runs.size(), 2u);
  EXPECT_EQ(shard.cell_indices, (std::vector<std::size_t>{1, 3}));
  const std::string dump = shard.to_json().dump(-1);
  EXPECT_NE(dump.find("\"shard\""), std::string::npos);
  EXPECT_NE(dump.find("\"spec_hash\""), std::string::npos);
  EXPECT_NE(dump.find("\"cell\":1"), std::string::npos);
  // Shard rows are the same bytes as the matching unsharded rows: same
  // global cells, same seeds, same metrics.
  EXPECT_EQ(shard.to_json().at("runs").items()[0].dump(),
            [&] {
              util::JsonValue run = whole.to_json().at("runs").items()[1];
              util::JsonValue tagged = util::JsonValue::object();
              tagged["cell"] = 1.0;
              for (const auto& [key, value] : run.members()) {
                tagged[key] = value;
              }
              return tagged.dump();
            }());
}

// ----------------------------------------- per-preset thread determinism
//
// One determinism check per figure/ablation preset: its grid — including
// the new axes — must produce byte-identical CSV on 1 thread and on 8.
// The horizon is cut far below the preset's golden schedule: this test
// guards the *axes* (does some applier or scenario hook break seed
// stability?); the full-schedule byte comparison lives in golden_test.

class PresetDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetDeterminism, ThreadCountDoesNotChangeOutput) {
  SweepSpec spec = golden_preset(GetParam()).spec;
  spec.warmup_hours = 0.05;
  spec.measure_hours = 0.2;
  spec.threads = 1;
  const SweepResult serial = SweepRunner::run(spec);
  spec.threads = 8;
  const SweepResult parallel = SweepRunner::run(spec);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json().dump(), parallel.to_json().dump());
  ASSERT_EQ(serial.runs.size(), spec.grid.num_points());
  for (const RunSummary& run : serial.runs) EXPECT_GT(run.sim_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    NewFigurePresets, PresetDeterminism,
    ::testing::Values("fig04_provisioning", "fig05_quality",
                      "fig07_bandwidth_scaling", "fig08_storage_utility",
                      "fig09_vm_utility", "fig10_vm_cost",
                      "fig11_peer_sufficiency", "ablation_boot_delay",
                      "ablation_chunk_size", "ablation_geo", "ablation_hetero",
                      "ablation_p2p_cap", "ablation_prediction",
                      "outage_transient"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ------------------------------------------------------------------ JSON

TEST(Json, DumpEscapingAndShape) {
  util::JsonValue root = util::JsonValue::object();
  root["name"] = "a\"b\\c\nd";
  root["count"] = 3;
  root["ok"] = true;
  root["items"].push_back(1.5);
  root["items"].push_back("x");
  EXPECT_EQ(root.dump(-1),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":3,\"ok\":true,"
            "\"items\":[1.5,\"x\"]}");
}

TEST(Json, PrettyPrintIsStable) {
  util::JsonValue root = util::JsonValue::object();
  root["a"] = 1;
  root["b"].push_back(2);
  EXPECT_EQ(root.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(util::format_number(3.0), "3");
  EXPECT_EQ(util::format_number(-41.0), "-41");
  EXPECT_EQ(util::format_number(0.125), "0.125");
  EXPECT_EQ(util::format_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(Json, NumberFormattingRoundTripsExactly) {
  // Shortest-round-trip formatting is what lets the golden diff compare
  // exact doubles out of files.
  for (double value : {1.0 / 3.0, 0.1, 931.5333333333333, 2.5e-15, -7.25e20}) {
    EXPECT_EQ(std::stod(util::format_number(value)), value);
  }
}

TEST(Json, ParseRoundTripsDump) {
  util::JsonValue root = util::JsonValue::object();
  root["name"] = "a\"b\\c\nd";
  root["count"] = 3;
  root["ratio"] = 0.125;
  root["ok"] = true;
  root["none"] = util::JsonValue();
  root["items"].push_back(1.5);
  root["items"].push_back("x");
  root["nested"]["k"] = "v";
  for (int indent : {-1, 2}) {
    const util::JsonValue parsed = util::JsonValue::parse(root.dump(indent));
    EXPECT_EQ(parsed.dump(indent), root.dump(indent));
  }
}

TEST(Json, ParseReadAccessors) {
  const util::JsonValue doc = util::JsonValue::parse(
      "{\"s\": \"hi\", \"n\": -2.5e2, \"b\": false, \"z\": null,"
      " \"a\": [1, 2, 3], \"u\": \"caf\\u00e9\"}");
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), -250.0);
  EXPECT_FALSE(doc.at("b").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  ASSERT_TRUE(doc.at("a").is_array());
  EXPECT_EQ(doc.at("a").items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").items()[1].as_number(), 2.0);
  EXPECT_EQ(doc.at("u").as_string(), "caf\xc3\xa9");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), util::PreconditionError);
  EXPECT_THROW((void)doc.at("s").as_number(), util::PreconditionError);
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1} trailing", "[1 2]", "{\"a\" 1}", "\"bad\\qescape\""}) {
    EXPECT_THROW((void)util::JsonValue::parse(bad), std::runtime_error)
        << "input: " << bad;
  }
}

// ------------------------------------------------------------ sweep diff

util::JsonValue sweep_doc(double quality, const std::string& seed,
                          const std::string& base_seed = "42") {
  util::JsonValue doc = util::JsonValue::object();
  doc["scenario"] = "flash_crowd";
  doc["base_seed"] = base_seed;
  util::JsonValue run = util::JsonValue::object();
  run["params"]["channels"] = "4";
  run["params"]["mode"] = "cs";
  run["seed"] = seed;
  run["mean_quality"] = quality;
  run["cost_per_hour"] = 12.5;
  doc["runs"].push_back(std::move(run));
  return doc;
}

TEST(SweepDiff, IdenticalDocumentsReportNoDeltas) {
  const util::JsonValue a = sweep_doc(0.75, "99");
  const SweepDiff diff = diff_sweeps(a, a);
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.cells_compared, 1u);
  EXPECT_EQ(diff.metrics_compared, 2u);
  EXPECT_EQ(diff.num_deltas(), 0u);
  EXPECT_NE(diff.report().find("identical"), std::string::npos);
}

TEST(SweepDiff, ReportsPerCellMetricDeltas) {
  const SweepDiff diff =
      diff_sweeps(sweep_doc(0.75, "99"), sweep_doc(0.5, "99"));
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.cells.size(), 1u);
  EXPECT_EQ(diff.cells[0].cell, "channels=4,mode=cs");
  EXPECT_FALSE(diff.cells[0].seed_mismatch);
  ASSERT_EQ(diff.cells[0].deltas.size(), 1u);
  EXPECT_EQ(diff.cells[0].deltas[0].metric, "mean_quality");
  EXPECT_DOUBLE_EQ(diff.cells[0].deltas[0].delta(), -0.25);
  EXPECT_NE(diff.report().find("DIFFERS"), std::string::npos);
  // The JSON report mirrors the text one.
  const util::JsonValue report = diff.to_json();
  EXPECT_FALSE(report.at("identical").as_bool());
  EXPECT_DOUBLE_EQ(report.at("num_deltas").as_number(), 1.0);
}

TEST(SweepDiff, ToleranceSuppressesSmallDeltas) {
  EXPECT_TRUE(
      diff_sweeps(sweep_doc(0.75, "99"), sweep_doc(0.76, "99"), 0.02)
          .identical());
  EXPECT_FALSE(
      diff_sweeps(sweep_doc(0.75, "99"), sweep_doc(0.78, "99"), 0.02)
          .identical());
}

TEST(SweepDiff, FlagsSeedAndHeaderMismatches) {
  const SweepDiff diff =
      diff_sweeps(sweep_doc(0.75, "99"), sweep_doc(0.75, "100", "43"));
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.cells.size(), 1u);
  EXPECT_TRUE(diff.cells[0].seed_mismatch);
  ASSERT_EQ(diff.notes.size(), 1u);
  EXPECT_NE(diff.notes[0].find("base_seed"), std::string::npos);
}

TEST(SweepDiff, UnmatchedCellsListedPerSide) {
  util::JsonValue a = sweep_doc(0.75, "99");
  util::JsonValue b = sweep_doc(0.75, "99");
  util::JsonValue extra = util::JsonValue::object();
  extra["params"]["channels"] = "8";
  extra["params"]["mode"] = "cs";
  extra["seed"] = "7";
  extra["mean_quality"] = 0.9;
  b["runs"].push_back(std::move(extra));
  const SweepDiff diff = diff_sweeps(a, b);
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_b[0], "channels=8,mode=cs");
  EXPECT_TRUE(diff.only_in_a.empty());
}

TEST(SweepDiff, MissingMetricReportedNotSkipped) {
  const util::JsonValue a = sweep_doc(0.75, "99");
  // b lacks cost_per_hour entirely.
  util::JsonValue b = util::JsonValue::object();
  b["scenario"] = "flash_crowd";
  b["base_seed"] = "42";
  util::JsonValue run = util::JsonValue::object();
  run["params"]["channels"] = "4";
  run["params"]["mode"] = "cs";
  run["seed"] = "99";
  run["mean_quality"] = 0.75;
  b["runs"].push_back(std::move(run));
  const SweepDiff diff = diff_sweeps(a, b);
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.cells.size(), 1u);
  ASSERT_EQ(diff.cells[0].deltas.size(), 1u);
  EXPECT_EQ(diff.cells[0].deltas[0].metric, "cost_per_hour");
  EXPECT_TRUE(diff.cells[0].deltas[0].b_missing);

  // The other direction too: A dropping a metric the golden (B) still has
  // must fail the gate, not pass it.
  const SweepDiff reverse = diff_sweeps(b, a);
  EXPECT_FALSE(reverse.identical());
  ASSERT_EQ(reverse.cells.size(), 1u);
  ASSERT_EQ(reverse.cells[0].deltas.size(), 1u);
  EXPECT_EQ(reverse.cells[0].deltas[0].metric, "cost_per_hour");
  EXPECT_TRUE(reverse.cells[0].deltas[0].a_missing);
  EXPECT_NE(reverse.report().find("(missing)"), std::string::npos);
}

TEST(SweepDiff, RejectsNonSweepDocuments) {
  EXPECT_THROW(
      (void)diff_sweeps(util::JsonValue::parse("{\"x\":1}"),
                        sweep_doc(0.5, "1")),
      std::runtime_error);
}

// End to end through files: a real sweep diffed against its own JSON is
// clean; the same grid at another seed differs in every cell.
TEST(SweepDiff, EndToEndRunVsPerturbedSeed) {
  SweepSpec spec = small_grid_spec(2);
  const SweepResult base = SweepRunner::run(spec);
  spec.base_seed = testing::kGoldenSeed + 1;
  const SweepResult perturbed = SweepRunner::run(spec);

  EXPECT_TRUE(diff_sweeps(base.to_json(), base.to_json()).identical());
  const SweepDiff diff = diff_sweeps(base.to_json(), perturbed.to_json());
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.cells_compared, base.runs.size());
  EXPECT_GT(diff.num_deltas(), 0u);
  for (const CellDiff& cell : diff.cells) EXPECT_TRUE(cell.seed_mismatch);
}

}  // namespace
}  // namespace cloudmedia::sweep
