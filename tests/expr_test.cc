#include <gtest/gtest.h>

#include <filesystem>

#include "expr/flags.h"
#include "expr/paper.h"
#include "expr/report.h"

namespace cloudmedia::expr {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesEqualsForm) {
  const Flags f = make_flags({"--hours=24", "--seed=7"});
  EXPECT_EQ(f.get("hours", 0.0), 24.0);
  EXPECT_EQ(f.get("seed", 0), 7);
}

TEST(Flags, ParsesSpaceForm) {
  const Flags f = make_flags({"--hours", "12"});
  EXPECT_EQ(f.get("hours", 0.0), 12.0);
}

TEST(Flags, BareFlagIsTrue) {
  const Flags f = make_flags({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_TRUE(f.get("verbose", false));
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.get("hours", 100.0), 100.0);
  EXPECT_EQ(f.get("name", std::string("x")), "x");
  EXPECT_FALSE(f.get("flag", false));
  EXPECT_EQ(f.get_ll("seed", 42), 42);
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make_flags({"--a=true"}).get("a", false));
  EXPECT_TRUE(make_flags({"--a=1"}).get("a", false));
  EXPECT_TRUE(make_flags({"--a=yes"}).get("a", false));
  EXPECT_FALSE(make_flags({"--a=no"}).get("a", true));
}

TEST(Flags, RejectsPositionalArguments) {
  EXPECT_THROW(make_flags({"positional"}), std::invalid_argument);
}

TEST(Flags, CollectsPositionalsWhenAllowed) {
  // tool_sweep --diff a.json b.json relies on this opt-in: flags parse as
  // usual, and non-flag tokens not consumed as a `--key value` value
  // collect in order.
  const std::vector<const char*> argv{"prog", "a.json", "--tol=0.5",
                                      "b.json"};
  const Flags f(static_cast<int>(argv.size()), argv.data(),
                /*allow_positionals=*/true);
  EXPECT_EQ(f.positionals(),
            (std::vector<std::string>{"a.json", "b.json"}));
  EXPECT_EQ(f.get("tol", 0.0), 0.5);
}

TEST(Flags, SpaceFormValueIsNotAPositional) {
  const std::vector<const char*> argv{"prog", "--out", "report.json",
                                      "a.json"};
  const Flags f(static_cast<int>(argv.size()), argv.data(),
                /*allow_positionals=*/true);
  EXPECT_EQ(f.get("out", std::string()), "report.json");
  EXPECT_EQ(f.positionals(), (std::vector<std::string>{"a.json"}));
}

TEST(PaperConstants, MatchTheEvaluationSection) {
  EXPECT_DOUBLE_EQ(paper::kQualityClientServer, 0.97);
  EXPECT_DOUBLE_EQ(paper::kQualityP2p, 0.95);
  EXPECT_DOUBLE_EQ(paper::kVmCostClientServer, 48.0);
  EXPECT_DOUBLE_EQ(paper::kVmCostP2p, 4.27);
  EXPECT_DOUBLE_EQ(paper::kStorageCostPerDay, 0.018);
  EXPECT_DOUBLE_EQ(paper::kVmBootSeconds, 25.0);
  EXPECT_EQ(paper::kFig11Ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(paper::kFig11Ratios[0], 0.9);
  EXPECT_DOUBLE_EQ(paper::kFig11Quality[2], 1.0);
}

TEST(Report, PrintsAndWritesCsv) {
  util::TimeSeries series;
  for (int i = 0; i < 10; ++i) series.add(i * 600.0, static_cast<double>(i));
  testing::internal::CaptureStdout();
  print_series_table("demo", {{"value", &series}}, 0.0, 6000.0, 3600.0,
                     "test_report_demo");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists("results/test_report_demo.csv"));
  std::filesystem::remove("results/test_report_demo.csv");
}

TEST(Report, ComparisonLineFormatsBothSides) {
  testing::internal::CaptureStdout();
  print_paper_comparison("avg quality", 0.981, 0.97, "");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("0.981"), std::string::npos);
  EXPECT_NE(out.find("0.970"), std::string::npos);
}

}  // namespace
}  // namespace cloudmedia::expr
