// Edge-case coverage for src/core/erlang.cc (ISSUE 1 satellite): zero load,
// single server, and very large server counts where a naive factorial-based
// Erlang formula would overflow. Complements the closed-form and invariant
// checks in erlang_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/erlang.h"
#include "util/check.h"

namespace cloudmedia::core {
namespace {

// --------------------------------------------------------------- zero load

TEST(ErlangEdge, ZeroLoadNeverBlocks) {
  for (int m : {1, 2, 10, 1000}) {
    EXPECT_DOUBLE_EQ(erlang_b(m, 0.0), 0.0) << "m=" << m;
    EXPECT_DOUBLE_EQ(erlang_c(m, 0.0), 0.0) << "m=" << m;
  }
}

TEST(ErlangEdge, ZeroServersZeroLoadBlocksByConvention) {
  // B(0, a) == 1 for every a, including a == 0: with no servers every
  // arrival is blocked, and the recursion's base case encodes that.
  EXPECT_DOUBLE_EQ(erlang_b(0, 0.0), 1.0);
}

TEST(ErlangEdge, ZeroArrivalsMetricsAreIdle) {
  const MmmMetrics m = mmm_metrics(0.0, 2.0, 5);
  EXPECT_DOUBLE_EQ(m.offered_load, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.prob_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_queue, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_system, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_sojourn, 0.5);  // pure service time 1/µ
}

// ------------------------------------------------------------ single server

TEST(ErlangEdge, SingleServerNearSaturation) {
  // M/M/1 closed forms survive ρ -> 1⁻: P(wait) = ρ, E[n] = ρ/(1-ρ).
  const double rho = 1.0 - 1e-9;
  const MmmMetrics m = mmm_metrics(rho, 1.0, 1);
  EXPECT_NEAR(m.prob_wait, rho, 1e-6);
  EXPECT_NEAR(m.expected_system * (1.0 - rho), rho, 1e-6);
  EXPECT_TRUE(std::isfinite(m.expected_system));
}

TEST(ErlangEdge, SingleServerTinyLoad) {
  const double a = 1e-12;
  EXPECT_NEAR(erlang_b(1, a), a, 1e-18);  // B(1,a) = a/(1+a) ~ a
  EXPECT_NEAR(erlang_c(1, a), a, 1e-18);  // C(1,a) = a
  EXPECT_EQ(min_servers(a, 1.0, 1.0), 1);
}

TEST(ErlangEdge, MinServersReturnsOneWhenOneSuffices) {
  // Light load with a loose target: the minimal stable m is 1.
  EXPECT_EQ(min_servers(0.1, 1.0, 1.0), 1);
}

// ---------------------------------------------------- large N / overflow

TEST(ErlangEdge, LargeServerCountsStayFiniteAndBounded) {
  // a^m / m! overflows double for m ≳ 170 in the naive formula; the
  // stable recursion must stay in [0, 1] far beyond that.
  for (int m : {171, 1000, 100000, 1000000}) {
    const double b = erlang_b(m, static_cast<double>(m) * 0.9);
    EXPECT_TRUE(std::isfinite(b)) << "m=" << m;
    EXPECT_GE(b, 0.0) << "m=" << m;
    EXPECT_LE(b, 1.0) << "m=" << m;
  }
}

TEST(ErlangEdge, LargeNHeavyLoadKnownRegimes) {
  // Critically loaded (a == m): B(m, m) ~ 1/sqrt(m·π/2) as m grows.
  const int m = 10000;
  const double b = erlang_b(m, static_cast<double>(m));
  EXPECT_NEAR(b, 1.0 / std::sqrt(static_cast<double>(m) * std::numbers::pi / 2.0),
              1e-4);
  // Deeply overloaded: blocking approaches 1 - m/a.
  EXPECT_NEAR(erlang_b(100, 10000.0), 1.0 - 100.0 / 10000.0, 1e-3);
  // Deeply underloaded: blocking is numerically zero, not NaN.
  EXPECT_NEAR(erlang_b(100000, 10.0), 0.0, 1e-12);
}

TEST(ErlangEdge, ErlangCNearStabilityBoundaryIsFiniteProbability) {
  const int m = 5000;
  const double a = static_cast<double>(m) * (1.0 - 1e-9);
  const double c = erlang_c(m, a);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

TEST(ErlangEdge, MinServersScalesToHugeLoads) {
  // λ = 10^6, µ = 1 → a = 10^6; the search must terminate fast and return
  // an m just above the offered load that meets the target.
  const double lambda = 1e6;
  const int m = min_servers(lambda, 1.0, 1.1e6);
  EXPECT_GT(m, static_cast<int>(lambda / 1.0));
  EXPECT_LE(mmm_metrics(lambda, 1.0, m).expected_system, 1.1e6);
  if (m > static_cast<int>(lambda) + 1) {
    EXPECT_GT(mmm_metrics(lambda, 1.0, m - 1).expected_system, 1.1e6);
  }
}

// ----------------------------------------------------------- preconditions

TEST(ErlangEdge, RejectsInvalidArguments) {
  EXPECT_THROW((void)erlang_b(-1, 1.0), util::PreconditionError);
  EXPECT_THROW((void)erlang_b(5, -0.1), util::PreconditionError);
  EXPECT_THROW((void)erlang_c(0, 0.0), util::PreconditionError);
  EXPECT_THROW((void)mmm_metrics(1.0, 0.0, 1), util::PreconditionError);
  EXPECT_THROW((void)min_servers(-1.0, 1.0, 5.0), util::PreconditionError);
  // Target at or below the offered load is unreachable for any finite m.
  EXPECT_THROW((void)min_servers(4.0, 1.0, 4.0), util::PreconditionError);
}

}  // namespace
}  // namespace cloudmedia::core
