// Scheduled system-event timeline (PR 6): fire-time parsing, `@` scenario
// composition, the config-mutation hook in the experiment loop, and the
// invariant that timed ops never reach the workload seed hash — a timeline
// replays the byte-identical viewer population of the plain run.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "expr/config.h"
#include "expr/runner.h"
#include "sweep/goldens.h"
#include "sweep/param_grid.h"
#include "sweep/scenario_catalog.h"
#include "sweep/sweep_runner.h"
#include "testing/seeds.h"
#include "util/check.h"

namespace cloudmedia::sweep {
namespace {

// ------------------------------------------------------ fire-time syntax

TEST(FireTime, ParseRoundTripsThroughEveryUnit) {
  EXPECT_DOUBLE_EQ(parse_fire_time("6h"), 6.0 * 3600.0);
  EXPECT_DOUBLE_EQ(parse_fire_time("30m"), 30.0 * 60.0);
  EXPECT_DOUBLE_EQ(parse_fire_time("90s"), 90.0);
  EXPECT_DOUBLE_EQ(parse_fire_time("0.5h"), 1800.0);
  EXPECT_DOUBLE_EQ(parse_fire_time("0s"), 0.0);

  EXPECT_EQ(format_fire_time(6.0 * 3600.0), "6h");
  EXPECT_EQ(format_fire_time(45.0 * 60.0), "45m");
  EXPECT_EQ(format_fire_time(90.0), "90s");
  for (const double seconds : {21600.0, 2700.0, 90.0, 1800.0, 9000.0}) {
    EXPECT_DOUBLE_EQ(parse_fire_time(format_fire_time(seconds)), seconds);
  }
}

TEST(FireTime, RejectsJunkWithTeachingErrors) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  // Direct parser junk.
  EXPECT_THROW((void)parse_fire_time(""), util::PreconditionError);
  EXPECT_THROW((void)parse_fire_time("-1h"), util::PreconditionError);
  EXPECT_THROW((void)parse_fire_time("6parsecs"), util::PreconditionError);
  EXPECT_THROW((void)parse_fire_time("6"), util::PreconditionError);
  EXPECT_THROW((void)parse_fire_time("h"), util::PreconditionError);
  EXPECT_THROW((void)parse_fire_time("nanh"), util::PreconditionError);
  // The same junk through resolve(), attached to a real scenario.
  EXPECT_THROW((void)catalog.resolve("flash_crowd@"), util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd@-1h"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd@6parsecs"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("flash_crowd@6h@7h"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("@6h"), util::PreconditionError);
  // The error must teach the syntax, not just refuse.
  try {
    (void)catalog.resolve("flash_crowd@6parsecs");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("<number><unit>"), std::string::npos);
    EXPECT_NE(what.find("regional_outage@6h"), std::string::npos);
  }
}

// ----------------------------------------------------- resolve() hygiene

TEST(Timeline, ResolveTrimsWhitespaceAroundPartsAndFireTimes) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  // The PR 5 resolver treated "flash_crowd " as an unknown scenario whose
  // trailing space was invisible in the error. Now padding is trimmed.
  const Scenario spaced = catalog.resolve("flash_crowd + churn_heavy");
  const Scenario tight = catalog.resolve("flash_crowd+churn_heavy");
  EXPECT_EQ(spaced.name, tight.name);
  EXPECT_EQ(spaced.ops.size(), tight.ops.size());
  EXPECT_EQ(catalog.resolve("  flash_crowd  ").name, "flash_crowd");
  EXPECT_EQ(catalog.resolve("regional_outage @ 6h").name,
            "regional_outage@6h");
}

TEST(Timeline, UnknownPartErrorQuotesTheName) {
  try {
    (void)ScenarioCatalog::global().resolve("flash_crowd+no_such_part");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("'no_such_part'"),
              std::string::npos);
  }
}

TEST(Timeline, DuplicatePartsRejectedUnlessFireTimesDiffer) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  // Pinned semantics: an exact repeat (same part, same fire time) would
  // silently double-apply multiplicative ops, so it is rejected...
  EXPECT_THROW((void)catalog.resolve("churn_heavy+churn_heavy"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("churn_heavy@2h+churn_heavy@2h"),
               util::PreconditionError);
  EXPECT_THROW((void)catalog.resolve("churn_heavy + churn_heavy"),
               util::PreconditionError);
  try {
    (void)catalog.resolve("churn_heavy+churn_heavy");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate part"), std::string::npos);
    EXPECT_NE(what.find("distinct fire times"), std::string::npos);
  }
  // ...while a repeat at distinct fire times is a legitimate schedule
  // (the arrival scale ramps twice).
  const Scenario ramp = catalog.resolve("churn_heavy@2h+churn_heavy@4h");
  EXPECT_EQ(ramp.name, "churn_heavy@2h+churn_heavy@4h");
  EXPECT_EQ(ramp.ops.size(),
            2 * catalog.at("churn_heavy").ops.size());
}

// ------------------------------------------------- timeline construction

TEST(Timeline, TimedOpsQueueOnTheConfigInsteadOfApplyingAtBuild) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const expr::ExperimentConfig base = catalog.make_config("baseline_diurnal");
  const expr::ExperimentConfig timed =
      catalog.make_config("regional_outage@6h+recovery@18h");
  // Nothing reshaped before t=0: budgets and diurnal match the baseline.
  EXPECT_DOUBLE_EQ(timed.vm_budget_per_hour, base.vm_budget_per_hour);
  EXPECT_DOUBLE_EQ(timed.storage_budget_per_hour,
                   base.storage_budget_per_hour);
  EXPECT_DOUBLE_EQ(timed.workload.diurnal.base(),
                   base.workload.diurnal.base());
  // Both outage ops fire at 6h, both recovery ops at 18h.
  ASSERT_EQ(timed.timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timed.timeline[0].fire_time, 6.0 * 3600.0);
  EXPECT_DOUBLE_EQ(timed.timeline[1].fire_time, 6.0 * 3600.0);
  EXPECT_DOUBLE_EQ(timed.timeline[2].fire_time, 18.0 * 3600.0);
  EXPECT_DOUBLE_EQ(timed.timeline[3].fire_time, 18.0 * 3600.0);
  EXPECT_FALSE(timed.timeline[0].name.empty());
  // The system/workload tag rides along (outage = workload + system op).
  EXPECT_TRUE(timed.timeline[0].workload_shaping);
  EXPECT_FALSE(timed.timeline[1].workload_shaping);
}

TEST(Timeline, RecoveryOpsRestoreThePreTimelineSnapshot) {
  const expr::ExperimentConfig timed = ScenarioCatalog::global().make_config(
      "regional_outage@1h+recovery@2h");
  expr::ExperimentConfig baseline = timed;
  baseline.timeline.clear();
  expr::ExperimentConfig live = baseline;
  // Fire the outage ops: budgets cut, diurnal reshaped.
  timed.timeline[0].apply(live, baseline);
  timed.timeline[1].apply(live, baseline);
  EXPECT_LT(live.vm_budget_per_hour, baseline.vm_budget_per_hour);
  // Fire the recovery ops: everything back to the pre-timeline snapshot.
  timed.timeline[2].apply(live, baseline);
  timed.timeline[3].apply(live, baseline);
  EXPECT_DOUBLE_EQ(live.vm_budget_per_hour, baseline.vm_budget_per_hour);
  EXPECT_DOUBLE_EQ(live.storage_budget_per_hour,
                   baseline.storage_budget_per_hour);
  EXPECT_DOUBLE_EQ(live.workload.diurnal.base(),
                   baseline.workload.diurnal.base());
  EXPECT_EQ(live.workload.diurnal.peaks().size(),
            baseline.workload.diurnal.peaks().size());
}

TEST(Timeline, PartOffsetShiftsAScheduleCarryingPart) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  // stampede_recovery carries its own internal fire time (subsides at 4h).
  const Scenario& stampede = catalog.at("stampede_recovery");
  ASSERT_FALSE(stampede.ops.empty());
  EXPECT_DOUBLE_EQ(stampede.ops.back().fire_time, 4.0 * 3600.0);
  // `part@T` shifts the whole part: untimed ops fire at T, the internal
  // 4h op keeps its relative schedule at T + 4h.
  const Scenario shifted = catalog.resolve("stampede_recovery@2h");
  EXPECT_DOUBLE_EQ(shifted.ops.front().fire_time, 2.0 * 3600.0);
  EXPECT_DOUBLE_EQ(shifted.ops.back().fire_time, 6.0 * 3600.0);
}

TEST(Timeline, UntimedRecoveryIsTheIdentity) {
  const ScenarioCatalog& catalog = ScenarioCatalog::global();
  const expr::ExperimentConfig base = catalog.make_config("baseline_diurnal");
  const expr::ExperimentConfig recovered = catalog.make_config("recovery");
  EXPECT_TRUE(recovered.timeline.empty());
  EXPECT_DOUBLE_EQ(recovered.vm_budget_per_hour, base.vm_budget_per_hour);
  EXPECT_DOUBLE_EQ(recovered.workload.total_arrival_rate,
                   base.workload.total_arrival_rate);
}

// A timeline op touching a field the running system bakes in at t=0 must
// fail fast — before the simulation starts — with a teaching error.
TEST(Timeline, FrozenFieldMutationIsRejectedBeforeTheRunStarts) {
  expr::ExperimentConfig config =
      ScenarioCatalog::global().make_config("baseline_diurnal");
  config.warmup_hours = 0.0;
  config.measure_hours = 2.0;
  expr::TimedConfigOp grow;
  grow.fire_time = 3600.0;
  grow.name = "test.grow_catalog";
  grow.workload_shaping = true;
  grow.apply = [](expr::ExperimentConfig& live,
                  const expr::ExperimentConfig&) {
    live.workload.num_channels += 1;
  };
  config.timeline.push_back(grow);
  try {
    (void)expr::ExperimentRunner::run(config);
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("test.grow_catalog"), std::string::npos);
    EXPECT_NE(what.find("num_channels"), std::string::npos);
  }
}

// ------------------------------------- seed-hash and population replay

TEST(Timeline, RunSeedIgnoresTimedOpsInTheScenarioExpression) {
  // Same base seed, same grid: the per-run seed must be identical with and
  // without `@`-ops — the hash covers workload-shaping *grid* coordinates
  // only, never the scenario expression.
  ParamGrid grid;
  grid.add_axis("mode", {"cs", "p2p"});

  SweepSpec plain;
  plain.scenario = "baseline_diurnal";
  plain.grid = grid;
  plain.base_seed = testing::kGoldenSeed;
  plain.warmup_hours = 0.0;
  plain.measure_hours = 10.0 / 60.0;

  SweepSpec timed = plain;
  timed.scenario = "regional_outage@45m+recovery@90m";

  const SweepResult plain_result = SweepRunner::run(plain);
  const SweepResult timed_result = SweepRunner::run(timed);
  ASSERT_EQ(plain_result.runs.size(), timed_result.runs.size());
  for (std::size_t i = 0; i < plain_result.runs.size(); ++i) {
    EXPECT_EQ(plain_result.runs[i].seed, timed_result.runs[i].seed);
  }
}

TEST(Timeline, TimedSystemOpReplaysTheExactViewerPopulation) {
  // A timed *system* op (budget cut) must not perturb the arrival streams:
  // the run with the op sees the byte-identical viewer population.
  expr::ExperimentConfig plain =
      ScenarioCatalog::global().make_config("baseline_diurnal");
  plain.warmup_hours = 0.0;
  plain.measure_hours = 2.0;
  plain.seed = testing::kGoldenSeed;

  expr::ExperimentConfig cut = plain;
  expr::TimedConfigOp op;
  op.fire_time = 3600.0;
  op.name = "test.budget_cut";
  op.workload_shaping = false;
  op.apply = [](expr::ExperimentConfig& live, const expr::ExperimentConfig&) {
    live.vm_budget_per_hour *= 0.25;
  };
  cut.timeline.push_back(op);

  const expr::ExperimentResult plain_result =
      expr::ExperimentRunner::run(plain);
  const expr::ExperimentResult cut_result = expr::ExperimentRunner::run(cut);
  // Identical population: every arrival lands at the same instant. (Not
  // departures — a starved run stalls playback, so viewers linger past the
  // horizon; that is system behavior, not a population change.)
  EXPECT_EQ(plain_result.metrics.counters.arrivals,
            cut_result.metrics.counters.arrivals);
  // ...and different provisioning: the cut demonstrably fired.
  EXPECT_LT(cut_result.mean_vm_cost_rate(), plain_result.mean_vm_cost_rate());
}

TEST(Timeline, TimedScenarioIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.scenario = "regional_outage@45m+recovery@90m";
  spec.grid.add_axis("mode", {"cs", "p2p"});
  spec.base_seed = testing::kGoldenSeed;
  spec.warmup_hours = 0.1;
  spec.measure_hours = 1.2;  // past the 1h boundary, so the outage fires
  spec.threads = 1;
  const SweepResult serial = SweepRunner::run(spec);
  spec.threads = 8;
  const SweepResult parallel = SweepRunner::run(spec);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial.to_json().dump(), parallel.to_json().dump());
}

// ------------------------------------------- controller re-convergence

TEST(Timeline, ControllerDipsAndReconvergesAroundABudgetOutage) {
  expr::ExperimentConfig config =
      ScenarioCatalog::global().make_config("baseline_diurnal");
  config.warmup_hours = 0.0;
  config.measure_hours = 3.5;
  config.seed = testing::kGoldenSeed;

  expr::TimedConfigOp collapse;
  collapse.fire_time = 40.0 * 60.0;  // lands at the 1h boundary
  collapse.name = "test.budget_collapse";
  collapse.workload_shaping = false;
  collapse.apply = [](expr::ExperimentConfig& live,
                      const expr::ExperimentConfig&) {
    live.vm_budget_per_hour *= 0.05;
  };
  expr::TimedConfigOp restore;
  restore.fire_time = 2.0 * 3600.0;
  restore.name = "test.budget_restore";
  restore.workload_shaping = false;
  restore.apply = [](expr::ExperimentConfig& live,
                     const expr::ExperimentConfig& baseline) {
    live.vm_budget_per_hour = baseline.vm_budget_per_hour;
  };
  config.timeline.push_back(restore);  // out of order on purpose:
  config.timeline.push_back(collapse);  // the runner sorts by fire time

  const expr::ExperimentResult result = expr::ExperimentRunner::run(config);
  const util::TimeSeries& reserved = result.metrics.reserved_mbps;
  const util::TimeSeries& quality = result.metrics.quality;

  // Ops land at provisioning boundaries: the 40-minute fire time takes
  // effect at hour 1, so [0.5h, 1h) is still the healthy plateau.
  const double reserved_before = reserved.mean_over(0.5 * 3600.0, 3600.0);
  const double reserved_during =
      reserved.mean_over(1.25 * 3600.0, 2.0 * 3600.0);
  const double reserved_after =
      reserved.mean_over(2.75 * 3600.0, 3.5 * 3600.0);
  EXPECT_LT(reserved_during, 0.3 * reserved_before);
  EXPECT_GT(reserved_after, 2.0 * reserved_during);

  const double quality_before = quality.mean_over(0.5 * 3600.0, 3600.0);
  const double quality_during = quality.mean_over(1.25 * 3600.0, 2.0 * 3600.0);
  const double quality_after = quality.mean_over(2.75 * 3600.0, 3.5 * 3600.0);
  EXPECT_LT(quality_during, quality_before);
  EXPECT_GT(quality_after, quality_during);
}

// -------------------------------------------------- golden registration

TEST(Timeline, OutageTransientPresetResolvesThroughTheTimedAlgebra) {
  const GoldenPreset& preset = golden_preset("outage_transient");
  EXPECT_EQ(preset.spec.scenario, "regional_outage@45m+recovery@90m");
  const expr::ExperimentConfig config =
      ScenarioCatalog::global().make_config(preset.spec.scenario);
  ASSERT_EQ(config.timeline.size(), 4u);
  // Both transitions fall inside the preset horizon (0.25 + 2.75 h): the
  // outage boundary at 1h and the recovery boundary at 2h.
  EXPECT_DOUBLE_EQ(config.timeline.front().fire_time, 45.0 * 60.0);
  EXPECT_DOUBLE_EQ(config.timeline.back().fire_time, 90.0 * 60.0);
  EXPECT_GT(preset.spec.warmup_hours + preset.spec.measure_hours, 2.0);
}

}  // namespace
}  // namespace cloudmedia::sweep
