// Streaming results store + shard merge: the distributed-sweeps acceptance
// bar. Streaming through ResultsStore must serialize byte-identically to a
// buffered run; shard outputs must partition the grid exactly and stitch
// back byte-identically at any thread count; and --merge must reject
// anything that is not the complete shard set of one sweep, with an error
// that teaches the fix.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "store/results_store.h"
#include "store/shard_merge.h"
#include "sweep/param_grid.h"
#include "sweep/run_summary.h"
#include "sweep/sweep_runner.h"
#include "testing/seeds.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rss.h"

namespace cloudmedia::store {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The canonical small sweep: 2x2 grid, short horizon, golden seed. Cheap
/// enough to run several times per test, rich enough that every cell's
/// summary differs.
sweep::SweepSpec small_spec(unsigned threads = 1) {
  sweep::SweepSpec spec;
  spec.scenario = "flash_crowd";
  spec.grid.add_axis("channels", {"3", "5"});
  spec.grid.add_axis("mode", {"cs", "p2p"});
  spec.base_seed = testing::kGoldenSeed;
  spec.threads = threads;
  spec.warmup_hours = 0.05;
  spec.measure_hours = 0.2;
  return spec;
}

/// Run one shard of `spec` streaming through a ResultsStore, as tool_sweep
/// does, and return the finalized shard result.
sweep::SweepResult run_shard(sweep::SweepSpec spec, std::size_t k,
                             std::size_t n, const std::string& base) {
  spec.shard = sweep::ShardSpec{k, n};
  StoreOptions options;
  options.base = base;
  ResultsStore results_store(options, spec);
  spec.sink = results_store.sink();
  (void)sweep::SweepRunner::run(spec);
  return results_store.finalize();
}

// --------------------------------------------------------- ResultsStore

TEST(ResultsStore, StreamingMatchesBufferedByteForByte) {
  const sweep::SweepResult buffered = sweep::SweepRunner::run(small_spec());

  sweep::SweepSpec spec = small_spec();
  StoreOptions options;
  options.base = temp_path("store_test_stream");
  // A 2-row buffer on a 4-cell sweep forces push() through the
  // backpressure path, not just the happy path.
  options.buffer_capacity = 2;
  options.batch_rows = 1;
  ResultsStore results_store(options, spec);
  spec.sink = results_store.sink();
  (void)sweep::SweepRunner::run(spec);
  const sweep::SweepResult streamed = results_store.finalize();

  EXPECT_EQ(streamed.to_csv(), buffered.to_csv());
  EXPECT_EQ(streamed.to_json().dump(), buffered.to_json().dump());
  EXPECT_EQ(results_store.rows_written(), 4u);
  EXPECT_LE(results_store.peak_buffered(), options.buffer_capacity);
}

TEST(ResultsStore, StreamFilesCarryHeaderAndEveryRow) {
  sweep::SweepSpec spec = small_spec();
  StoreOptions options;
  options.base = temp_path("store_test_files");
  ResultsStore results_store(options, spec);
  spec.sink = results_store.sink();
  (void)sweep::SweepRunner::run(spec);
  results_store.finish();

  // JSONL: header line first, then one row per cell with a "cell" tag.
  std::ifstream jsonl(results_store.jsonl_path());
  ASSERT_TRUE(jsonl.good());
  std::string line;
  ASSERT_TRUE(std::getline(jsonl, line));
  const util::JsonValue header = util::JsonValue::parse(line);
  EXPECT_EQ(header.at("type").as_string(), "header");
  EXPECT_EQ(header.at("scenario").as_string(), "flash_crowd");
  EXPECT_EQ(header.at("spec_hash").as_string(), small_spec().spec_hash());
  std::set<std::size_t> cells;
  while (std::getline(jsonl, line)) {
    const util::JsonValue row = util::JsonValue::parse(line);
    cells.insert(static_cast<std::size_t>(row.at("cell").as_number()));
    EXPECT_GT(row.at("sim_events").as_number(), 0.0);
  }
  EXPECT_EQ(cells, (std::set<std::size_t>{0, 1, 2, 3}));

  // Stream CSV: header plus one completion-order row per cell.
  std::ifstream csv(results_store.stream_csv_path());
  ASSERT_TRUE(csv.good());
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line.rfind("cell,scenario,", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(csv, line)) rows += !line.empty();
  EXPECT_EQ(rows, 4u);
}

TEST(ResultsStore, FinalizeRejectsInterruptedStream) {
  sweep::SweepSpec spec = small_spec();
  StoreOptions options;
  options.base = temp_path("store_test_interrupted");
  ResultsStore results_store(options, spec);
  // Push only one of the four expected rows, as if the sweep died.
  sweep::RunSummary row;
  row.scenario = spec.scenario;
  row.point = spec.grid.point(0);
  results_store.push(0, row);
  results_store.finish();
  try {
    (void)results_store.finalize();
    FAIL() << "finalize() accepted a truncated stream";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("interrupted"), std::string::npos);
  }
}

TEST(ResultsStore, CreatesMissingParentDirectories) {
  const std::string root = temp_path("store_test_nested");
  std::filesystem::remove_all(root);
  sweep::SweepSpec spec = small_spec();
  StoreOptions options;
  options.base = root + "/a/b/run";
  ResultsStore results_store(options, spec);
  spec.sink = results_store.sink();
  (void)sweep::SweepRunner::run(spec);
  results_store.finish();
  EXPECT_TRUE(std::filesystem::exists(root + "/a/b/run.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(root + "/a/b/run.stream.csv"));
  std::filesystem::remove_all(root);
}

TEST(ResultsStore, UnwritablePathFailsNamingThePath) {
  // A regular file where a directory component should be: mkdir fails.
  const std::string blocker = temp_path("store_test_blocker");
  std::ofstream(blocker) << "not a directory\n";
  sweep::SweepSpec spec = small_spec();
  StoreOptions options;
  options.base = blocker + "/sub/run";
  try {
    ResultsStore results_store(options, spec);
    FAIL() << "ResultsStore opened an output under a regular file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(blocker), std::string::npos);
  }
  std::filesystem::remove(blocker);
}

TEST(ResultsStore, SinkAndKeepResultsAreMutuallyExclusive) {
  sweep::SweepSpec spec = small_spec();
  spec.keep_results = true;
  spec.sink = [](std::size_t, sweep::RunSummary) {};
  EXPECT_THROW((void)sweep::SweepRunner::run(spec), util::PreconditionError);
}

// ----------------------------------------------------------- shard merge

TEST(ShardMerge, TwoAndFourShardsStitchByteIdentically) {
  const sweep::SweepResult whole = sweep::SweepRunner::run(small_spec());
  for (const std::size_t n : {2u, 4u}) {
    for (const unsigned threads : {1u, 8u}) {
      std::vector<util::JsonValue> docs;
      for (std::size_t k = 0; k < n; ++k) {
        const sweep::SweepResult shard = run_shard(
            small_spec(threads), k, n,
            temp_path("store_test_shard" + std::to_string(k)));
        docs.push_back(shard.to_json());
      }
      const sweep::SweepResult merged = merge_shards(docs);
      EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump())
          << n << " shards at " << threads << " threads";
      EXPECT_EQ(merged.to_csv(), whole.to_csv());
    }
  }
}

TEST(ShardMerge, MergeShardFilesRoundTripsThroughDisk) {
  const sweep::SweepResult whole = sweep::SweepRunner::run(small_spec());
  std::vector<std::string> paths;
  for (std::size_t k = 0; k < 2; ++k) {
    const std::string base = temp_path("store_test_file_shard" +
                                       std::to_string(k));
    const sweep::SweepResult shard = run_shard(small_spec(), k, 2, base);
    paths.push_back(base + ".json");
    util::write_json_file(paths.back(), shard.to_json());
  }
  const sweep::SweepResult merged = merge_shard_files(paths);
  EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());
  for (const std::string& path : paths) std::filesystem::remove(path);
}

TEST(ShardMerge, MoreShardsThanCellsStillCoversTheGrid) {
  // 7-way split of a 4-cell grid: shards 4..6 are legitimately empty.
  const sweep::SweepResult whole = sweep::SweepRunner::run(small_spec());
  std::vector<util::JsonValue> docs;
  for (std::size_t k = 0; k < 7; ++k) {
    docs.push_back(
        run_shard(small_spec(), k, 7,
                  temp_path("store_test_wide" + std::to_string(k)))
            .to_json());
  }
  const sweep::SweepResult merged = merge_shards(docs);
  EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());
}

/// Expect merge_shards(docs) to throw a PreconditionError mentioning
/// `fragment`.
void expect_merge_error(const std::vector<util::JsonValue>& docs,
                        const std::string& fragment) {
  try {
    (void)merge_shards(docs);
    FAIL() << "merge accepted inputs that should fail: " << fragment;
  } catch (const util::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ShardMerge, RejectsIncompatibleShardSets) {
  std::vector<util::JsonValue> docs;
  for (std::size_t k = 0; k < 2; ++k) {
    docs.push_back(
        run_shard(small_spec(), k, 2,
                  temp_path("store_test_rej" + std::to_string(k)))
            .to_json());
  }

  // Tampered base seed: mixing different workloads.
  std::vector<util::JsonValue> tampered = docs;
  tampered[1]["base_seed"] = std::string("999");
  expect_merge_error(tampered, "seed");

  // Tampered scenario.
  tampered = docs;
  tampered[1]["scenario"] = std::string("baseline_diurnal");
  expect_merge_error(tampered, "scenario");

  // Tampered spec hash (e.g. a different horizon).
  tampered = docs;
  tampered[1]["shard"]["spec_hash"] = std::string("0000000000000000");
  expect_merge_error(tampered, "spec hash");

  // A different grid: same shape, different axis values (checked before
  // the spec hash, which of course also differs).
  sweep::SweepSpec other = small_spec();
  other.grid = sweep::ParamGrid();
  other.grid.add_axis("channels", {"3", "6"});
  other.grid.add_axis("mode", {"cs", "p2p"});
  other.shard = sweep::ShardSpec{1, 2};
  {
    StoreOptions options;
    options.base = temp_path("store_test_rej_grid");
    ResultsStore results_store(options, other);
    other.sink = results_store.sink();
    (void)sweep::SweepRunner::run(other);
    tampered = docs;
    tampered[1] = results_store.finalize().to_json();
  }
  expect_merge_error(tampered, "grid");

  // The same shard twice.
  expect_merge_error({docs[0], docs[0]}, "more than once");

  // A missing shard.
  expect_merge_error({docs[0]}, "exactly one");

  // An unsharded document has nothing to stitch.
  const sweep::SweepResult whole = sweep::SweepRunner::run(small_spec());
  expect_merge_error({whole.to_json(), whole.to_json()}, "no shard header");

  // Not a sweep document at all.
  expect_merge_error({util::JsonValue::parse("{\"x\":1}"),
                      util::JsonValue::parse("{\"x\":1}")},
                     "not a sweep output");
}

// ------------------------------------------------------------------ util

TEST(Util, EnsureParentDirectoryCreatesNestedAndNamesFailures) {
  const std::string root = temp_path("store_test_parents");
  std::filesystem::remove_all(root);
  util::ensure_parent_directory(root + "/x/y/z.csv");
  EXPECT_TRUE(std::filesystem::is_directory(root + "/x/y"));
  // No directory component: nothing to create, nothing to throw.
  EXPECT_NO_THROW(util::ensure_parent_directory("bare_name.csv"));
  // A file blocking the directory path is an error naming the path.
  std::ofstream(root + "/x/y/file") << "block\n";
  try {
    util::ensure_parent_directory(root + "/x/y/file/sub/out.csv");
    FAIL() << "ensure_parent_directory tunneled through a regular file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(root + "/x/y/file"),
              std::string::npos);
  }
  std::filesystem::remove_all(root);
}

TEST(Util, RssProbesReturnPlausibleValues) {
  const double peak = util::peak_rss_mb();
  const double current = util::current_rss_mb();
  EXPECT_GT(peak, 0.0);
  EXPECT_GT(current, 0.0);
  // getrusage's high-water can never sit below what is resident right now
  // (allow slack for /proc sampling granularity).
  EXPECT_LE(current, peak * 1.5 + 16.0);
}

}  // namespace
}  // namespace cloudmedia::store
