// Tests for the geo-distributed federation (src/geo) — the paper's ongoing
// work of "expanding to cloud systems spanning different geographic
// locations" (Sec. VII).

#include <cmath>

#include <gtest/gtest.h>

#include "geo/federation.h"
#include "util/check.h"

namespace cloudmedia {
namespace {

geo::FederationConfig tiny_federation(core::StreamingMode mode) {
  geo::FederationConfig cfg = geo::FederationConfig::make_default(mode);
  cfg.base.warmup_hours = 1.0;
  cfg.base.measure_hours = 4.0;
  cfg.base.workload.num_channels = 4;
  cfg.base.workload.total_arrival_rate = 0.25;
  cfg.base.seed = 7;
  return cfg;
}

TEST(RegionSpec, ValidationCatchesBadRegions) {
  geo::RegionSpec region{"", 0.0, 0.5, 1.0, 1.0};
  EXPECT_THROW(region.validate(), util::PreconditionError);
  region = {"x", 0.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(region.validate(), util::PreconditionError);
  region = {"x", 0.0, 0.5, 0.0, 1.0};
  EXPECT_THROW(region.validate(), util::PreconditionError);
  region = {"x", 0.0, 0.5, 1.0, 1.0};
  EXPECT_NO_THROW(region.validate());
}

TEST(FederationConfig, SharesMustPartitionTheAudience) {
  geo::FederationConfig cfg =
      geo::FederationConfig::make_default(core::StreamingMode::kClientServer);
  EXPECT_NO_THROW(cfg.validate());
  cfg.regions[0].audience_share = 0.5;  // now sums to 1.05
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
  cfg.regions.clear();
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
}

TEST(FederationConfig, DefaultHasThreeStaggeredRegions) {
  const geo::FederationConfig cfg =
      geo::FederationConfig::make_default(core::StreamingMode::kP2p);
  ASSERT_EQ(cfg.regions.size(), 3u);
  double share = 0.0;
  for (const geo::RegionSpec& region : cfg.regions) share += region.audience_share;
  EXPECT_NEAR(share, 1.0, 1e-12);
  // Offsets differ so the diurnal peaks stagger.
  EXPECT_NE(cfg.regions[0].utc_offset_hours, cfg.regions[1].utc_offset_hours);
  EXPECT_NE(cfg.regions[1].utc_offset_hours, cfg.regions[2].utc_offset_hours);
}

TEST(RegionalConfig, ScalesArrivalsAndPricesAndBudgets) {
  geo::FederationConfig cfg = tiny_federation(core::StreamingMode::kP2p);
  cfg.regions = {{"east", 0.0, 0.6, 1.0, 1.0}, {"west", -8.0, 0.4, 1.5, 2.0}};
  cfg.budget_split = geo::BudgetSplit::kProportional;

  const expr::ExperimentConfig west =
      geo::FederationRunner::regional_config(cfg, 1);
  EXPECT_NEAR(west.workload.total_arrival_rate,
              cfg.base.workload.total_arrival_rate * 0.4, 1e-12);
  EXPECT_NEAR(west.vm_budget_per_hour, cfg.base.vm_budget_per_hour * 0.4,
              1e-12);
  EXPECT_NEAR(west.storage_budget_per_hour,
              cfg.base.storage_budget_per_hour * 0.4, 1e-12);
  for (std::size_t v = 0; v < west.vm_clusters.size(); ++v) {
    EXPECT_NEAR(west.vm_clusters[v].price_per_hour,
                cfg.base.vm_clusters[v].price_per_hour * 1.5, 1e-12);
  }
  for (std::size_t f = 0; f < west.nfs_clusters.size(); ++f) {
    EXPECT_NEAR(west.nfs_clusters[f].price_per_gb_hour,
                cfg.base.nfs_clusters[f].price_per_gb_hour * 2.0, 1e-12);
  }
  EXPECT_NE(west.seed, cfg.base.seed);
}

TEST(RegionalConfig, UncoordinatedSplitKeepsFullBudgets) {
  geo::FederationConfig cfg = tiny_federation(core::StreamingMode::kP2p);
  cfg.budget_split = geo::BudgetSplit::kUncoordinated;
  const expr::ExperimentConfig region =
      geo::FederationRunner::regional_config(cfg, 1);
  EXPECT_NEAR(region.vm_budget_per_hour, cfg.base.vm_budget_per_hour, 1e-12);
}

TEST(RegionalConfig, DiurnalPatternIsShiftedByUtcOffset) {
  geo::FederationConfig cfg = tiny_federation(core::StreamingMode::kP2p);
  cfg.regions = {{"ref", 0.0, 0.5, 1.0, 1.0}, {"west7", -7.0, 0.5, 1.0, 1.0}};
  const expr::ExperimentConfig ref =
      geo::FederationRunner::regional_config(cfg, 0);
  const expr::ExperimentConfig west =
      geo::FederationRunner::regional_config(cfg, 1);
  // The west region sees the reference pattern 7 hours later.
  for (double hour : {0.0, 6.0, 12.5, 20.5}) {
    EXPECT_NEAR(west.workload.diurnal.multiplier((hour + 7.0) * 3600.0),
                ref.workload.diurnal.multiplier(hour * 3600.0), 1e-9)
        << "hour " << hour;
  }
}

TEST(DiurnalShift, ShiftIsPeriodicAndInvertible) {
  const workload::DiurnalPattern base = workload::DiurnalPattern::paper_default();
  const workload::DiurnalPattern round_trip = base.shifted(31.0).shifted(-7.0);
  for (double hour = 0.0; hour < 24.0; hour += 0.5) {
    EXPECT_NEAR(round_trip.multiplier(hour * 3600.0),
                base.multiplier(hour * 3600.0), 1e-9);
  }
}

TEST(FederationRun, EndToEndAggregatesAreConsistent) {
  geo::FederationConfig cfg = tiny_federation(core::StreamingMode::kP2p);
  const geo::FederationResult result = geo::FederationRunner::run(cfg);

  ASSERT_EQ(result.regions.size(), cfg.regions.size());
  for (const geo::RegionResult& region : result.regions) {
    EXPECT_GT(region.result.mean_quality(), 0.5) << region.spec.name;
  }

  // Global mean = Σ regional means; peak ≤ Σ regional peaks.
  double sum_means = 0.0;
  for (const geo::RegionResult& region : result.regions) {
    sum_means += region.result.mean_vm_cost_rate();
  }
  EXPECT_NEAR(result.global_mean_cost(), sum_means, 1e-9);
  EXPECT_LE(result.global_peak_cost(), result.sum_of_regional_peaks() + 1e-9);
  EXPECT_GE(result.multiplexing_gain(), 1.0 - 1e-12);

  // Quality summaries are proper averages/minima.
  EXPECT_LE(result.min_quality(), result.weighted_quality() + 1e-12);
  EXPECT_LE(result.weighted_quality(), 1.0);

  // Cost series spans the measurement window hourly.
  const util::TimeSeries series = result.global_cost_series();
  EXPECT_EQ(series.size(),
            static_cast<std::size_t>(std::lround(
                (result.measure_end - result.measure_start) / 3600.0)));
}

TEST(FederationRun, DeterministicForAGivenSeed) {
  geo::FederationConfig cfg = tiny_federation(core::StreamingMode::kP2p);
  cfg.base.measure_hours = 2.0;
  const geo::FederationResult a = geo::FederationRunner::run(cfg);
  const geo::FederationResult b = geo::FederationRunner::run(cfg);
  EXPECT_DOUBLE_EQ(a.global_mean_cost(), b.global_mean_cost());
  EXPECT_DOUBLE_EQ(a.min_quality(), b.min_quality());
}

TEST(BudgetSplitName, RoundTrips) {
  EXPECT_EQ(geo::to_string(geo::BudgetSplit::kUncoordinated), "uncoordinated");
  EXPECT_EQ(geo::to_string(geo::BudgetSplit::kProportional), "proportional");
}

}  // namespace
}  // namespace cloudmedia
