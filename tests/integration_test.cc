// End-to-end tests of the full CloudMedia stack: workload -> swarms ->
// tracker -> controller -> cloud schedulers -> bandwidth pools. Scenarios
// are scaled down (few channels, minutes-scale runs) so the whole binary
// stays fast while still exercising every moving part.

#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_service.h"
#include "core/controller.h"
#include "expr/config.h"
#include "expr/runner.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vod/streaming_system.h"
#include "workload/scenario.h"

namespace cloudmedia {
namespace {

using core::StreamingMode;

/// A small, fast scenario: 3 channels, flat arrivals, ~110 concurrent users.
expr::ExperimentConfig small_config(StreamingMode mode) {
  expr::ExperimentConfig cfg = expr::ExperimentConfig::make_default(mode);
  cfg.workload.num_channels = 3;
  cfg.workload.total_arrival_rate = 0.08;
  cfg.workload.diurnal = workload::DiurnalPattern::flat();
  cfg.warmup_hours = 1.0;
  cfg.measure_hours = 3.0;
  cfg.seed = 7;
  return cfg;
}

// ----------------------------------------------------------- basic health

TEST(Integration, ClientServerRunsAndServesUsers) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_GT(r.metrics.counters.arrivals, 200);
  EXPECT_GT(r.metrics.counters.departures, 100);
  EXPECT_GT(r.metrics.counters.chunk_downloads, 500);
  EXPECT_GT(r.mean_concurrent_users(), 20.0);
  EXPECT_EQ(r.plans_rejected, 0);
  EXPECT_FALSE(r.metrics.quality.empty());
  EXPECT_FALSE(r.metrics.reserved_mbps.empty());
}

TEST(Integration, QualityIsHighWhenProvisionedByTheModel) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_GT(r.mean_quality(), 0.95);
}

TEST(Integration, ReservedCoversUsedInSteadyState) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_GT(r.reserved_covers_used_fraction(), 0.9);
  EXPECT_GT(r.mean_reserved_mbps(), r.mean_used_cloud_mbps());
}

TEST(Integration, ClientServerNeverUsesPeers) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_DOUBLE_EQ(r.mean_used_peer_mbps(), 0.0);
}

// ----------------------------------------------------------------- P2P

TEST(Integration, P2pOffloadsMostTrafficToPeers) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kP2p));
  EXPECT_GT(r.mean_used_peer_mbps(), r.mean_used_cloud_mbps());
  EXPECT_GT(r.mean_quality(), 0.9);
}

TEST(Integration, P2pReservesAndSpendsLessThanClientServer) {
  const expr::ExperimentResult cs =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  const expr::ExperimentResult p2p =
      expr::ExperimentRunner::run(small_config(StreamingMode::kP2p));
  EXPECT_LT(p2p.mean_reserved_mbps(), cs.mean_reserved_mbps());
  EXPECT_LT(p2p.mean_vm_cost_rate(), cs.mean_vm_cost_rate());
  EXPECT_LT(p2p.vm_cost_total, cs.vm_cost_total);
}

TEST(Integration, IdenticalWorkloadAcrossModes) {
  // The same seed must produce the same user population regardless of the
  // serving mode (the cross-mode comparability guarantee).
  const expr::ExperimentResult cs =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  const expr::ExperimentResult p2p =
      expr::ExperimentRunner::run(small_config(StreamingMode::kP2p));
  EXPECT_EQ(cs.metrics.counters.arrivals, p2p.metrics.counters.arrivals);
}

// ------------------------------------------------------------ determinism

TEST(Integration, SameSeedSameResults) {
  const expr::ExperimentConfig cfg = small_config(StreamingMode::kP2p);
  const expr::ExperimentResult a = expr::ExperimentRunner::run(cfg);
  const expr::ExperimentResult b = expr::ExperimentRunner::run(cfg);
  EXPECT_EQ(a.metrics.counters.arrivals, b.metrics.counters.arrivals);
  EXPECT_EQ(a.metrics.counters.chunk_downloads,
            b.metrics.counters.chunk_downloads);
  EXPECT_EQ(a.metrics.counters.late_downloads,
            b.metrics.counters.late_downloads);
  EXPECT_DOUBLE_EQ(a.vm_cost_total, b.vm_cost_total);
  ASSERT_EQ(a.metrics.quality.size(), b.metrics.quality.size());
  for (std::size_t i = 0; i < a.metrics.quality.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.quality.value_at(i), b.metrics.quality.value_at(i));
  }
}

TEST(Integration, DifferentSeedsDiffer) {
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  const expr::ExperimentResult a = expr::ExperimentRunner::run(cfg);
  cfg.seed = 8;
  const expr::ExperimentResult b = expr::ExperimentRunner::run(cfg);
  EXPECT_NE(a.metrics.counters.arrivals, b.metrics.counters.arrivals);
}

// --------------------------------------------------- provisioning policies

TEST(Integration, StaticPeakProvisioningIsConstantAndAdequate) {
  expr::ExperimentConfig static_cfg = small_config(StreamingMode::kClientServer);
  static_cfg.strategy = expr::Strategy::kStatic;
  const expr::ExperimentResult fixed = expr::ExperimentRunner::run(static_cfg);
  // The defining property of peak provisioning: the reservation never moves.
  const util::TimeSeries& reserved = fixed.metrics.reserved_mbps;
  ASSERT_FALSE(reserved.empty());
  for (std::size_t i = 0; i < reserved.size(); ++i) {
    if (reserved.time_at(i) < 3600.0) continue;  // skip the boot-up hour
    EXPECT_NEAR(reserved.value_at(i), fixed.mean_reserved_mbps(),
                1e-6 * fixed.mean_reserved_mbps());
  }
  EXPECT_GT(fixed.mean_quality(), 0.95);
}

TEST(Integration, ClairvoyantMatchesModelOnFlatWorkload) {
  // With flat arrivals the oracle and the measurement-driven model should
  // provision nearly identically.
  const expr::ExperimentConfig model_cfg = small_config(StreamingMode::kClientServer);
  expr::ExperimentConfig oracle_cfg = model_cfg;
  oracle_cfg.strategy = expr::Strategy::kClairvoyant;
  const expr::ExperimentResult model = expr::ExperimentRunner::run(model_cfg);
  const expr::ExperimentResult oracle = expr::ExperimentRunner::run(oracle_cfg);
  EXPECT_NEAR(oracle.mean_reserved_mbps() / model.mean_reserved_mbps(), 1.0, 0.15);
  EXPECT_GT(oracle.mean_quality(), 0.95);
}

TEST(Integration, ReactiveProvisioningRecoversFromColdStart) {
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  cfg.strategy = expr::Strategy::kReactive;
  cfg.streaming.bootstrap_plan = false;  // nothing served yet -> 0 reserved
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);
  // Hour 0 starves every arrival; the occupancy signal then pulls capacity
  // up and downloads flow. (Chasing served-bandwidth alone would deadlock
  // at zero forever — the cold-start pathology ReactivePolicy documents.)
  EXPECT_GT(r.mean_reserved_mbps(), 0.0);
  EXPECT_GT(r.metrics.counters.chunk_downloads, 0);
  // The stall shows up in quality relative to the model-driven run.
  const expr::ExperimentResult model =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_LE(r.mean_quality(), model.mean_quality() + 1e-9);
}

// --------------------------------------------------- model-vs-system checks

TEST(Integration, OccupancyTracksLittlesLaw) {
  // In the flat steady state, per-channel concurrent users should be close
  // to Λ_c × E[session chunks] × T0 (Little's law through the chunk walk).
  const expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  const workload::Workload workload(cfg.workload, cfg.seed);
  const expr::ExperimentResult r = expr::ExperimentRunner::run(cfg);

  const double expected_chunks = workload.expected_session_chunks();
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    const double rate = workload.channel_rate(c, 0.0);
    const double expected_users = rate * expected_chunks * cfg.vod.chunk_duration;
    const double measured = r.metrics.channels[static_cast<std::size_t>(c)]
                                .size.mean_over(r.measure_start, r.measure_end);
    EXPECT_NEAR(measured / expected_users, 1.0, 0.25)
        << "channel " << c << ": measured " << measured << " vs expected "
        << expected_users;
  }
}

TEST(Integration, UsedBandwidthMatchesDemandScale) {
  // Users consume at most r on average (buffered replays only reduce it).
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  const double users = r.mean_concurrent_users();
  const double demand_mbps = users * 0.4;  // r = 400 kbps
  EXPECT_LT(r.mean_used_cloud_mbps(), demand_mbps * 1.05);
  EXPECT_GT(r.mean_used_cloud_mbps(), demand_mbps * 0.5);
}

TEST(Integration, LateDownloadsAreRareUnderModelProvisioning) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_LT(static_cast<double>(r.metrics.counters.late_downloads),
            0.05 * static_cast<double>(r.metrics.counters.chunk_downloads));
}

TEST(Integration, VmChurnHappensAcrossTheRun) {
  const expr::ExperimentResult r =
      expr::ExperimentRunner::run(small_config(StreamingMode::kClientServer));
  EXPECT_GT(r.vm_boots, 0);
  EXPECT_EQ(r.plans_submitted, 1 + 4);  // bootstrap + one per hour
}

// ------------------------------------------------------ direct system pokes

TEST(StreamingSystem, PopulationConservation) {
  sim::Simulator sim;
  expr::ExperimentConfig cfg = small_config(StreamingMode::kP2p);
  const workload::Workload workload(cfg.workload, 3);

  cloud::CloudConfig cloud_cfg;
  cloud_cfg.sla = cloud::SlaTerms{100.0, 1.0, cfg.vm_clusters, cfg.nfs_clusters};
  cloud_cfg.vm = cloud::VmSchedulerConfig{0.0, cfg.vod.vm_bandwidth};
  cloud::CloudService cloud(sim, cloud_cfg);

  core::ControllerConfig controller_cfg{cfg.vm_clusters, cfg.nfs_clusters,
                                        100.0, 1.0};
  core::DemandEstimatorConfig est;
  est.mode = StreamingMode::kP2p;
  auto controller = std::make_unique<core::Controller>(
      cfg.vod, controller_cfg,
      std::make_unique<core::ModelBasedPolicy>(cfg.vod, est));

  vod::StreamingOptions options;
  options.mode = StreamingMode::kP2p;
  vod::StreamingSystem system(sim, workload, cfg.vod, cloud,
                              std::move(controller), options);
  system.start();
  sim.run_until(2.5 * 3600.0);

  const vod::SystemCounters& counters = system.metrics().counters;
  EXPECT_EQ(counters.arrivals - counters.departures,
            static_cast<long>(system.current_users()));

  // Position counts sum to the number of users currently in the system.
  long positions = 0;
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    for (int i = 0; i < cfg.vod.chunks_per_video; ++i) {
      positions += system.position_count(c, i);
      EXPECT_GE(system.owner_count(c, i), 0);
    }
  }
  EXPECT_EQ(positions, static_cast<long>(system.current_users()));

  // Channel membership partitions the population.
  std::size_t members = 0;
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    members += system.channel_users(c);
  }
  EXPECT_EQ(members, system.current_users());
}

TEST(StreamingSystem, EntryPointAdmitsEveryCloudBoundRequest) {
  // Sec. V-B: requests that need the cloud go through a tracker referral
  // <entry address, ports, ticket>; the entry point must admit all of them
  // (fresh single-use tickets) and forward ports onto provisioned VMs.
  for (const auto mode : {StreamingMode::kClientServer, StreamingMode::kP2p}) {
    sim::Simulator sim;
    expr::ExperimentConfig cfg = small_config(mode);
    const workload::Workload workload(cfg.workload, 5);

    cloud::CloudConfig cloud_cfg;
    cloud_cfg.sla =
        cloud::SlaTerms{100.0, 1.0, cfg.vm_clusters, cfg.nfs_clusters};
    cloud_cfg.vm = cloud::VmSchedulerConfig{0.0, cfg.vod.vm_bandwidth};
    cloud::CloudService cloud(sim, cloud_cfg);

    core::ControllerConfig controller_cfg{cfg.vm_clusters, cfg.nfs_clusters,
                                          100.0, 1.0};
    core::DemandEstimatorConfig est;
    est.mode = mode;
    auto controller = std::make_unique<core::Controller>(
        cfg.vod, controller_cfg,
        std::make_unique<core::ModelBasedPolicy>(cfg.vod, est));

    vod::StreamingOptions options;
    options.mode = mode;
    vod::StreamingSystem system(sim, workload, cfg.vod, cloud,
                                std::move(controller), options);
    system.start();
    sim.run_until(2.0 * 3600.0);

    const cloud::EntryPoint& entry = system.entry_point();
    EXPECT_GT(entry.issued(), 0);
    EXPECT_EQ(entry.redeemed(), entry.issued());  // all tickets fresh+valid
    EXPECT_EQ(entry.refused(), 0);
    // Ports forward onto the provisioned VMs once a plan is applied.
    ASSERT_NE(system.last_plan(), nullptr);
    if (!system.last_plan()->instances.instances.empty()) {
      EXPECT_TRUE(entry.forward(entry.config().ports.front()).has_value());
    }

    if (mode == StreamingMode::kClientServer) {
      // Every non-buffered retrieval start is cloud-bound in C/S, so
      // issued tickets = completed + in-flight + aborted-by-departure
      // downloads. Bound it: at least the completions, at most
      // completions plus one open download per arrival.
      const auto& counters = system.metrics().counters;
      EXPECT_GE(entry.issued(), counters.chunk_downloads);
      EXPECT_LE(entry.issued(), counters.chunk_downloads + counters.arrivals);
    } else {
      // The overlay absorbs most requests: referrals are a strict subset.
      EXPECT_LT(entry.issued(), system.metrics().counters.chunk_downloads);
    }
  }
}

TEST(StreamingSystem, QualityBoundsAndPlanPresence) {
  sim::Simulator sim;
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  const workload::Workload workload(cfg.workload, 5);

  cloud::CloudConfig cloud_cfg;
  cloud_cfg.sla = cloud::SlaTerms{100.0, 1.0, cfg.vm_clusters, cfg.nfs_clusters};
  cloud_cfg.vm = cloud::VmSchedulerConfig{25.0, cfg.vod.vm_bandwidth};
  cloud::CloudService cloud(sim, cloud_cfg);

  core::ControllerConfig controller_cfg{cfg.vm_clusters, cfg.nfs_clusters,
                                        100.0, 1.0};
  auto controller = std::make_unique<core::Controller>(
      cfg.vod, controller_cfg,
      std::make_unique<core::ModelBasedPolicy>(cfg.vod,
                                               core::DemandEstimatorConfig{}));

  vod::StreamingOptions options;
  vod::StreamingSystem system(sim, workload, cfg.vod, cloud,
                              std::move(controller), options);
  system.start();
  sim.run_until(1.5 * 3600.0);

  EXPECT_NE(system.last_plan(), nullptr);
  const double q = system.system_quality_now();
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
  for (int c = 0; c < cfg.workload.num_channels; ++c) {
    const double cq = system.channel_quality_now(c);
    EXPECT_GE(cq, 0.0);
    EXPECT_LE(cq, 1.0);
  }
  EXPECT_GE(system.cloud_rate_now(), 0.0);
  EXPECT_DOUBLE_EQ(system.peer_rate_now(), 0.0);  // client–server mode
}

TEST(StreamingSystem, StartTwiceIsRejected) {
  sim::Simulator sim;
  expr::ExperimentConfig cfg = small_config(StreamingMode::kClientServer);
  const workload::Workload workload(cfg.workload, 5);
  cloud::CloudConfig cloud_cfg;
  cloud_cfg.sla = cloud::SlaTerms{100.0, 1.0, cfg.vm_clusters, cfg.nfs_clusters};
  cloud_cfg.vm = cloud::VmSchedulerConfig{25.0, cfg.vod.vm_bandwidth};
  cloud::CloudService cloud(sim, cloud_cfg);
  auto controller = std::make_unique<core::Controller>(
      cfg.vod,
      core::ControllerConfig{cfg.vm_clusters, cfg.nfs_clusters, 100.0, 1.0},
      std::make_unique<core::ModelBasedPolicy>(cfg.vod,
                                               core::DemandEstimatorConfig{}));
  vod::StreamingSystem system(sim, workload, cfg.vod, cloud,
                              std::move(controller), vod::StreamingOptions{});
  system.start();
  EXPECT_THROW(system.start(), util::PreconditionError);
}

// ------------------------------------------------------------ expr helpers

TEST(ExperimentConfig, DefaultsAreValidAndPaperShaped) {
  const expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(StreamingMode::kClientServer);
  cfg.validate();
  EXPECT_EQ(cfg.workload.num_channels, 20);
  EXPECT_EQ(cfg.vm_clusters.size(), 3u);
  EXPECT_EQ(cfg.nfs_clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.vm_budget_per_hour, 100.0);
  EXPECT_DOUBLE_EQ(cfg.storage_budget_per_hour, 1.0);
  EXPECT_DOUBLE_EQ(cfg.vm_boot_delay, 25.0);
  EXPECT_DOUBLE_EQ(cfg.total_duration(), (4.0 + 100.0) * 3600.0);
}

TEST(ExperimentConfig, ValidateCatchesInconsistency) {
  expr::ExperimentConfig cfg =
      expr::ExperimentConfig::make_default(StreamingMode::kClientServer);
  cfg.workload.chunks_per_video = 7;
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
}

TEST(Strategy, Names) {
  EXPECT_EQ(expr::to_string(expr::Strategy::kModelBased), "model-based");
  EXPECT_EQ(expr::to_string(expr::Strategy::kReactive), "reactive");
  EXPECT_EQ(expr::to_string(expr::Strategy::kStatic), "static");
  EXPECT_EQ(expr::to_string(expr::Strategy::kClairvoyant), "clairvoyant");
}

}  // namespace
}  // namespace cloudmedia
