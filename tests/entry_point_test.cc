// Tests for the cloud entry point (src/cloud/entry_point): Sec. V-B's
// tracker referral 3-tuple <entry address, port list, ticket>, ticket
// verification, and the port-forwarding table.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/entry_point.h"
#include "util/check.h"

namespace cloudmedia {
namespace {

cloud::EntryPointConfig small_config() {
  cloud::EntryPointConfig cfg;
  cfg.address = "entry.cloudmedia.test";
  cfg.ports = {9000, 9001, 9002};
  cfg.ports_per_referral = 2;
  cfg.ticket_lifetime = 60.0;
  return cfg;
}

TEST(EntryPointConfig, ValidationCatchesBadValues) {
  cloud::EntryPointConfig cfg = small_config();
  cfg.ports.clear();
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
  cfg = small_config();
  cfg.ports_per_referral = 4;  // more than the pool
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
  cfg = small_config();
  cfg.ports = {0};
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
  cfg = small_config();
  cfg.ticket_lifetime = 0.0;
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
}

TEST(EntryPoint, ReferralCarriesAddressPortsAndTicket) {
  cloud::EntryPoint entry(small_config());
  const cloud::CloudReferral referral = entry.issue(0.0);
  EXPECT_EQ(referral.entry_address, "entry.cloudmedia.test");
  EXPECT_EQ(referral.ports.size(), 2u);
  EXPECT_NE(referral.ticket, 0u);
  EXPECT_EQ(entry.issued(), 1);
  EXPECT_EQ(entry.outstanding(), 1u);
}

TEST(EntryPoint, PortsRotateRoundRobinAcrossReferrals) {
  cloud::EntryPoint entry(small_config());
  const auto a = entry.issue(0.0);
  const auto b = entry.issue(0.0);
  const auto c = entry.issue(0.0);
  EXPECT_EQ(a.ports, (std::vector<int>{9000, 9001}));
  EXPECT_EQ(b.ports, (std::vector<int>{9002, 9000}));
  EXPECT_EQ(c.ports, (std::vector<int>{9001, 9002}));
}

TEST(EntryPoint, TicketsAreUniqueAcrossManyReferrals) {
  cloud::EntryPoint entry(small_config());
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 10'000; ++k) {
    const auto referral = entry.issue(0.0);
    EXPECT_TRUE(seen.insert(referral.ticket).second) << "k=" << k;
  }
}

TEST(EntryPoint, ValidTicketRedeemsExactlyOnce) {
  cloud::EntryPoint entry(small_config());
  const auto referral = entry.issue(10.0);
  EXPECT_EQ(entry.redeem(referral.ticket, 20.0), cloud::TicketStatus::kValid);
  EXPECT_EQ(entry.redeemed(), 1);
  // Second use of the same ticket is refused (single-use referrals).
  EXPECT_EQ(entry.redeem(referral.ticket, 21.0),
            cloud::TicketStatus::kUnknown);
  EXPECT_EQ(entry.refused(), 1);
}

TEST(EntryPoint, ForgedTicketIsRefused) {
  cloud::EntryPoint entry(small_config());
  (void)entry.issue(0.0);
  EXPECT_EQ(entry.redeem(0xdeadbeef, 1.0), cloud::TicketStatus::kUnknown);
  EXPECT_EQ(entry.redeemed(), 0);
  EXPECT_EQ(entry.refused(), 1);
}

TEST(EntryPoint, ExpiredTicketIsRefusedAndRemoved) {
  cloud::EntryPoint entry(small_config());  // lifetime 60 s
  const auto referral = entry.issue(100.0);
  EXPECT_EQ(entry.redeem(referral.ticket, 161.0),
            cloud::TicketStatus::kExpired);
  EXPECT_EQ(entry.outstanding(), 0u);
  // And it cannot be replayed as unknown-then-valid.
  EXPECT_EQ(entry.redeem(referral.ticket, 120.0),
            cloud::TicketStatus::kUnknown);
}

TEST(EntryPoint, TicketAtExactLifetimeBoundaryIsValid) {
  cloud::EntryPoint entry(small_config());
  const auto referral = entry.issue(0.0);
  EXPECT_EQ(entry.redeem(referral.ticket, 60.0), cloud::TicketStatus::kValid);
}

TEST(EntryPoint, SweepDropsOnlyExpiredTickets) {
  cloud::EntryPoint entry(small_config());
  (void)entry.issue(0.0);
  const auto fresh = entry.issue(50.0);
  entry.sweep(100.0);  // first ticket (issued at 0, lifetime 60) expires
  EXPECT_EQ(entry.outstanding(), 1u);
  EXPECT_EQ(entry.redeem(fresh.ticket, 100.0), cloud::TicketStatus::kValid);
}

TEST(EntryPoint, IssueSweepsExpiredTicketsAutomatically) {
  cloud::EntryPoint entry(small_config());
  (void)entry.issue(0.0);
  (void)entry.issue(0.0);
  (void)entry.issue(200.0);  // both earlier tickets are now expired
  EXPECT_EQ(entry.outstanding(), 1u);
}

TEST(EntryPoint, BookIsBoundedByMaxOutstanding) {
  cloud::EntryPointConfig cfg = small_config();
  cfg.max_outstanding = 8;
  cloud::EntryPoint entry(cfg);
  for (int k = 0; k < 100; ++k) (void)entry.issue(0.0);
  EXPECT_LE(entry.outstanding(), 8u);
  EXPECT_EQ(entry.issued(), 100);
}

TEST(PortForwarding, MapsAndUnmapsExternalPortsToVms) {
  cloud::EntryPoint entry(small_config());
  EXPECT_FALSE(entry.forward(9000).has_value());
  entry.map_port(9000, 42);
  entry.map_port(9001, 7);
  ASSERT_TRUE(entry.forward(9000).has_value());
  EXPECT_EQ(*entry.forward(9000), 42);
  EXPECT_EQ(*entry.forward(9001), 7);
  entry.unmap_port(9000);
  EXPECT_FALSE(entry.forward(9000).has_value());
  EXPECT_TRUE(entry.forward(9001).has_value());
}

TEST(PortForwarding, RemapOverwritesTheTarget) {
  cloud::EntryPoint entry(small_config());
  entry.map_port(9002, 1);
  entry.map_port(9002, 2);
  EXPECT_EQ(*entry.forward(9002), 2);
}

TEST(PortForwarding, RejectsPortsOutsideThePool) {
  cloud::EntryPoint entry(small_config());
  EXPECT_THROW(entry.map_port(1234, 0), util::PreconditionError);
}

TEST(TicketStatusName, AllValuesPrintable) {
  EXPECT_EQ(cloud::to_string(cloud::TicketStatus::kValid), "valid");
  EXPECT_EQ(cloud::to_string(cloud::TicketStatus::kUnknown), "unknown");
  EXPECT_EQ(cloud::to_string(cloud::TicketStatus::kExpired), "expired");
  EXPECT_EQ(cloud::to_string(cloud::TicketStatus::kAlreadyRedeemed),
            "already-redeemed");
}

}  // namespace
}  // namespace cloudmedia
