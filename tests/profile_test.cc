// The declarative experiment-profile schema (src/profile/): junk documents
// are rejected with teaching errors at load time, every committed
// profiles/*.json byte-round-trips through Profile -> SweepSpec -> Profile,
// the build-time embedded copies agree with the files on disk, the fuzzer
// is seed-deterministic, and the pinned fuzzer-found repro under
// profiles/fuzz/ keeps passing the invariant checker.
//
// The profiles directory is baked in at configure time
// (CLOUDMEDIA_PROFILE_DIR, tests/CMakeLists.txt), so the test runs from any
// working directory.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expr/flags.h"
#include "profile/embedded.h"
#include "profile/fuzzer.h"
#include "profile/invariants.h"
#include "profile/profile.h"
#include "sweep/goldens.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"

namespace cloudmedia::profile {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string profile_path(const std::string& name) {
  return std::string(CLOUDMEDIA_PROFILE_DIR) + "/" + name + ".json";
}

Profile parse(const std::string& text) {
  return Profile::from_json(util::JsonValue::parse(text));
}

/// The teaching-error contract: loading `text` must throw a
/// PreconditionError whose message contains every expected fragment.
void expect_rejected(const std::string& text,
                     const std::vector<std::string>& fragments) {
  try {
    (void)parse(text);
    ADD_FAILURE() << "accepted junk profile: " << text;
  } catch (const util::PreconditionError& error) {
    const std::string message = error.what();
    for (const std::string& fragment : fragments) {
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "error for " << text << " should mention '" << fragment
          << "', got: " << message;
    }
  }
}

TEST(ProfileSchema, UnknownKeyNamesItselfAndListsValidKeys) {
  expect_rejected(R"({"scenarios": "baseline_diurnal"})",
                  {"unknown profile key 'scenarios'", "valid keys:",
                   "scenario", "seed", "grid", "overrides", "shard"});
}

TEST(ProfileSchema, WrongTypesAreNamed) {
  expect_rejected(R"({"scenario": 7})", {"scenario", "expected a string",
                                         "got a number"});
  expect_rejected(R"({"warmup_hours": "soon"})",
                  {"warmup_hours", "expected a number", "got a string"});
  expect_rejected(R"({"grid": {"mode": ["cs"]}})",
                  {"grid", "expected an array", "got an object"});
  expect_rejected(R"({"overrides": ["engine=auto"]})",
                  {"overrides", "expected an object", "got an array"});
  expect_rejected(R"([1, 2])", {"must be a JSON object", "got an array"});
}

TEST(ProfileSchema, HorizonsMustBeFiniteAndPositive) {
  expect_rejected(R"({"measure_hours": -2})", {"measure_hours", "> 0"});
  expect_rejected(R"({"measure_hours": 0})", {"measure_hours", "> 0"});
  expect_rejected(R"({"warmup_hours": -0.5})", {"warmup_hours", ">= 0"});
}

TEST(ProfileSchema, SeedsRejectNonIntegersAndOverflow) {
  expect_rejected(R"({"seed": -1})", {"seed", "non-negative integer"});
  expect_rejected(R"({"seed": 1.5})", {"seed", "non-negative integer"});
  // 2^53 + epsilon territory: numeric seeds that cannot survive a double
  // round-trip must point at the decimal-string spelling.
  expect_rejected(R"({"seed": 18446744073709551615})",
                  {"seed", "decimal string"});
  expect_rejected(R"({"seed": "42x"})", {"seed", "not a decimal"});
  expect_rejected(R"({"seed": "99999999999999999999"})",
                  {"seed", "64 bits"});
  EXPECT_EQ(parse(R"({"seed": "18446744073709551615"})").seed,
            18446744073709551615ull);
}

TEST(ProfileSchema, MalformedScenarioExpressionsFailAtLoadTime) {
  EXPECT_THROW((void)parse(R"({"scenario": "no_such_scenario"})"),
               util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"scenario": "flash_crowd@notatime"})"),
               util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"scenario": "flash_crowd@-5m"})"),
               util::PreconditionError);
  // A timed op that mutates a frozen field (channel count) must be caught
  // by the load-time dry pass, not mid-sweep on a worker thread.
  EXPECT_THROW((void)parse(R"({"scenario": "long_tail_catalog@30m"})"),
               util::PreconditionError);
}

TEST(ProfileSchema, GridAxesAreRegistryValidated) {
  expect_rejected(R"({"grid": [{"name": "warp", "values": ["9"]}]})",
                  {"warp"});
  expect_rejected(R"({"grid": [{"name": "mode"}]})",
                  {"grid", "values"});
  expect_rejected(R"({"grid": [{"name": "mode", "values": []}]})",
                  {"grid", "non-empty"});
  expect_rejected(
      R"({"grid": [{"name": "mode", "values": ["cs"], "extra": 1}]})",
      {"grid", "unknown axis key 'extra'"});
  // Values may be numbers; they canonicalize through format_number.
  const Profile p = parse(R"({"grid": [{"name": "channels",
                                        "values": [8, "12"]}]})");
  ASSERT_EQ(p.grid.axes().size(), 1u);
  EXPECT_EQ(p.grid.axes()[0].values,
            (std::vector<std::string>{"8", "12"}));
}

TEST(ProfileSchema, OverridesRejectBadParametersAndValues) {
  EXPECT_THROW((void)parse(R"({"overrides": {"warp": "9"}})"),
               util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"overrides": {"mode": "warp"}})"),
               util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"overrides": {"chunk_minutes": "-3"}})"),
               util::PreconditionError);
}

TEST(ProfileSchema, ShardMustBeAProperSlice) {
  EXPECT_THROW((void)parse(R"({"shard": "3/2"})"), util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"shard": "2/2"})"), util::PreconditionError);
  EXPECT_THROW((void)parse(R"({"shard": "banana"})"), util::PreconditionError);
  const Profile p = parse(R"({"shard": "1/4"})");
  EXPECT_EQ(p.shard.index, 1u);
  EXPECT_EQ(p.shard.count, 4u);
}

TEST(ProfileSchema, SeriesStrideMustBePositiveInteger) {
  expect_rejected(R"({"series_stride": 0})", {"series_stride"});
  expect_rejected(R"({"series_stride": 2.5})", {"series_stride"});
}

TEST(ProfileSchema, DuplicateKeysAreLastWinsAtTheParser) {
  // util::JsonValue's object semantics: a repeated key overwrites (the
  // parser dedups before from_json sees the document). Pin it so a parser
  // change to duplicate-preserving surfaces here, where from_json's own
  // duplicate guard would start firing.
  EXPECT_EQ(parse(R"({"seed": "1", "seed": "2"})").seed, 2u);
}

// Every committed golden profile byte-round-trips: file bytes == embedded
// copy == to_json(from_json(file)) == the dump after a full trip through
// SweepSpec::from_profile / Profile::from_spec. This is the property that
// makes `tool_sweep --dump-profile` a lossless canonicalizer and keeps the
// goldens regenerable from profiles/*.json alone.
TEST(ProfileRoundTrip, AllCommittedProfilesAreByteStable) {
  const std::vector<EmbeddedProfile>& embedded = embedded_golden_profiles();
  ASSERT_GE(embedded.size(), 19u);
  for (const EmbeddedProfile& entry : embedded) {
    SCOPED_TRACE(entry.name);
    const std::string committed = read_file(profile_path(entry.name));
    EXPECT_EQ(committed, entry.json)
        << "embedded copy is stale — rerun cmake (EmbedProfiles.cmake)";
    const Profile p = parse(committed);
    EXPECT_EQ(p.name, entry.name)
        << "profile file stem and \"name\" field disagree";
    const std::string dumped = p.to_json().dump(2) + "\n";
    EXPECT_EQ(dumped, committed);
    const sweep::SweepSpec spec = sweep::SweepSpec::from_profile(p);
    const Profile back = Profile::from_spec(spec, p.name, p.description);
    EXPECT_EQ(back.to_json().dump(2) + "\n", committed);
  }
}

TEST(ProfileRoundTrip, GoldenPresetsCarryTheirProfile) {
  for (const sweep::GoldenPreset& preset : sweep::golden_presets()) {
    SCOPED_TRACE(preset.name);
    EXPECT_EQ(preset.profile.name, preset.name);
    EXPECT_EQ(preset.profile.seed, sweep::kGoldenSeed);
    // The spec is exactly what from_profile builds — no side-channel edits.
    EXPECT_EQ(Profile::from_spec(preset.spec).to_json().dump(2),
              Profile::from_spec(
                  sweep::SweepSpec::from_profile(preset.profile))
                  .to_json()
                  .dump(2));
  }
}

TEST(FlagsRequireKnown, SuggestsCloseFlagAndListsValid) {
  const char* argv[] = {"prog", "--sede=7"};
  const expr::Flags flags(2, argv);
  try {
    flags.require_known({"seed", "hours", "out"});
    FAIL() << "accepted unknown flag --sede";
  } catch (const util::PreconditionError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown flag --sede"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean --seed?"), std::string::npos)
        << message;
    EXPECT_NE(message.find("valid flags: --seed --hours --out"),
              std::string::npos)
        << message;
  }
}

TEST(FlagsRequireKnown, AcceptsDeclaredFlagsAndFarTyposGetNoSuggestion) {
  const char* argv[] = {"prog", "--seed=7", "--hours=2"};
  const expr::Flags flags(3, argv);
  EXPECT_NO_THROW(flags.require_known({"seed", "hours"}));
  const char* bad[] = {"prog", "--zzzzzzz=1"};
  const expr::Flags far(2, bad);
  try {
    far.require_known({"seed"});
    FAIL() << "accepted unknown flag --zzzzzzz";
  } catch (const util::PreconditionError& error) {
    EXPECT_EQ(std::string(error.what()).find("did you mean"),
              std::string::npos)
        << error.what();
  }
}

TEST(Fuzzer, SameSeedComposesIdenticalProfiles) {
  util::Rng a(12345), b(12345);
  for (int i = 0; i < 8; ++i) {
    const Profile pa = random_profile(a);
    const Profile pb = random_profile(b);
    EXPECT_EQ(pa.to_json().dump(2), pb.to_json().dump(2));
  }
}

TEST(Fuzzer, MinimizeDropsEverythingIrrelevant) {
  Profile failing;
  failing.scenario = "flash_crowd+churn_heavy";
  failing.overrides = {{"vm_budget", "50"}, {"boot_delay", "120"}};
  failing.grid.add_axis("mode", {"cs", "p2p"});
  failing.grid.add_axis("strategy", {"model", "static"});
  // Synthetic oracle: the "failure" only needs the vm_budget override.
  const auto still_fails = [](const Profile& candidate) {
    for (const auto& [name, value] : candidate.overrides) {
      if (name == "vm_budget") return true;
    }
    return false;
  };
  const Profile minimal = minimize_failing_profile(failing, still_fails);
  EXPECT_EQ(minimal.scenario, "baseline_diurnal");
  EXPECT_TRUE(minimal.grid.axes().empty());
  ASSERT_EQ(minimal.overrides.size(), 1u);
  EXPECT_EQ(minimal.overrides[0].first, "vm_budget");
}

// The pinned fuzzer-found repro: a 50 $/h vm budget with the static peak
// plan bills 50.55 $/h, legal only because the SLA admits one
// whole-instance rounding per cluster. Replaying it through the checker
// pins the billing/admission allowance contract (SlaNegotiator::admit) —
// if the envelope or the broker regress, this fails before tool_fuzz has
// to rediscover it.
TEST(FuzzRegression, PinnedBudgetRoundingProfileHoldsAllInvariants) {
  const Profile p = Profile::load(profile_path("fuzz/budget_rounding"));
  EXPECT_EQ(p.name, "budget_rounding");
  const InvariantReport report = check_profile_invariants(p, 2);
  EXPECT_EQ(report.cells, 1u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace cloudmedia::profile
