#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/distributions.h"
#include "workload/scenario.h"
#include "workload/viewing.h"

namespace cloudmedia::workload {
namespace {

// ----------------------------------------------------------------- zipf

TEST(Zipf, WeightsNormalizedAndDecreasing) {
  const std::vector<double> w = zipf_weights(20, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, ExponentZeroIsUniform) {
  const std::vector<double> w = zipf_weights(4, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(Zipf, KnownRatios) {
  const std::vector<double> w = zipf_weights(3, 1.0);
  EXPECT_NEAR(w[0] / w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[0] / w[2], 3.0, 1e-12);
}

// -------------------------------------------------------- bounded pareto

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedPareto dist(22'500.0, 1'250'000.0, 3.0);  // paper's uplink range
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, dist.lower());
    EXPECT_LE(x, dist.upper());
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  BoundedPareto dist(22'500.0, 1'250'000.0, 3.0);
  util::Rng rng(6);
  util::SummaryStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(dist.sample(rng));
  EXPECT_NEAR(stats.mean() / dist.mean(), 1.0, 0.02);
}

TEST(BoundedPareto, PaperParametersMeanIsBelowStreamingRate) {
  // The inconsistency DESIGN.md documents: the paper's literal Pareto
  // parameters give a mean uplink of ~0.27 Mbps = 0.67 r.
  BoundedPareto dist(22'500.0, 1'250'000.0, 3.0);
  EXPECT_NEAR(dist.mean() / 50'000.0, 0.675, 0.01);
}

TEST(BoundedPareto, ScaledToMeanHitsTarget) {
  BoundedPareto dist(22'500.0, 1'250'000.0, 3.0);
  const BoundedPareto scaled = dist.scaled_to_mean(50'000.0);
  EXPECT_NEAR(scaled.mean(), 50'000.0, 1e-6);
  EXPECT_DOUBLE_EQ(scaled.shape(), dist.shape());
  // Bound ratio preserved.
  EXPECT_NEAR(scaled.upper() / scaled.lower(), dist.upper() / dist.lower(),
              1e-9);
}

TEST(BoundedPareto, ShapeOneSpecialCase) {
  BoundedPareto dist(1.0, 10.0, 1.0);
  // E[X] = ln(H/L) / (1 - L/H) for k = 1.
  EXPECT_NEAR(dist.mean(), std::log(10.0) / 0.9, 1e-9);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 3.0), util::PreconditionError);
  EXPECT_THROW(BoundedPareto(2.0, 1.0, 3.0), util::PreconditionError);
  EXPECT_THROW(BoundedPareto(1.0, 2.0, 0.0), util::PreconditionError);
}

// ---------------------------------------------------------------- diurnal

TEST(Diurnal, FlatIsConstantOne) {
  const DiurnalPattern flat = DiurnalPattern::flat();
  for (int h = 0; h < 48; ++h) {
    EXPECT_DOUBLE_EQ(flat.multiplier(h * 3600.0), 1.0);
  }
}

TEST(Diurnal, PaperDefaultHasTwoPeaks) {
  const DiurnalPattern p = DiurnalPattern::paper_default();
  const double noon = p.multiplier(12.5 * 3600.0);
  const double evening = p.multiplier(20.5 * 3600.0);
  const double early = p.multiplier(4.0 * 3600.0);
  EXPECT_GT(noon, early * 1.5);
  EXPECT_GT(evening, noon);  // evening crowd is the larger one
}

TEST(Diurnal, PeriodicOver24h) {
  const DiurnalPattern p = DiurnalPattern::paper_default();
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(p.multiplier(h * 3600.0), p.multiplier((h + 24) * 3600.0), 1e-12);
  }
}

TEST(Diurnal, MeanMultiplierNearOne) {
  EXPECT_NEAR(DiurnalPattern::paper_default().mean_multiplier(), 1.0, 0.1);
}

TEST(Diurnal, MaxBoundsAllSamples) {
  const DiurnalPattern p = DiurnalPattern::paper_default();
  const double cap = p.max_multiplier();
  for (int m = 0; m < 24 * 60; ++m) {
    EXPECT_LE(p.multiplier(m * 60.0), cap + 1e-12);
  }
}

// ---------------------------------------------------------------- arrivals

TEST(PoissonArrivals, HomogeneousRateRecovered) {
  PoissonArrivals stream([](double) { return 2.0; }, 2.0, util::Rng(7));
  double t = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) t = stream.next_after(t);
  EXPECT_NEAR(n / t, 2.0, 0.05);
}

TEST(PoissonArrivals, ThinningMatchesTimeVaryingRate) {
  // Rate 1 in the first half-day, 3 in the second.
  const auto rate = [](double t) {
    return std::fmod(t, 86400.0) < 43200.0 ? 1.0 : 3.0;
  };
  PoissonArrivals stream(rate, 3.0, util::Rng(8));
  double t = 0.0;
  long first = 0, second = 0;
  while (t < 86400.0 * 20) {
    t = stream.next_after(t);
    (std::fmod(t, 86400.0) < 43200.0 ? first : second)++;
  }
  EXPECT_NEAR(static_cast<double>(second) / first, 3.0, 0.2);
}

TEST(PoissonArrivals, StrictlyIncreasing) {
  PoissonArrivals stream([](double) { return 5.0; }, 5.0, util::Rng(9));
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double next = stream.next_after(t);
    EXPECT_GT(next, t);
    t = next;
  }
}

// ---------------------------------------------------------------- viewing

TEST(Viewing, TransferMatrixRowsSubStochastic) {
  ViewingBehavior b;
  const util::Matrix p = b.transfer_matrix(20);
  for (std::size_t i = 0; i < 20; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_GE(p(i, j), 0.0);
      row += p(i, j);
    }
    EXPECT_LE(row, 1.0 + 1e-12);
    // Interior rows leak exactly the leave probability.
    if (i + 1 < 20) {
      EXPECT_NEAR(row, 1.0 - b.leave_prob, 1e-12);
    }
  }
}

TEST(Viewing, LastChunkOnlyJumps) {
  ViewingBehavior b;
  const util::Matrix p = b.transfer_matrix(5);
  double row = 0.0;
  for (std::size_t j = 0; j < 5; ++j) row += p(4, j);
  EXPECT_NEAR(row, b.jump_prob, 1e-12);
}

TEST(Viewing, EntryDistributionAlphaAtFirstChunk) {
  ViewingBehavior b;
  b.alpha = 0.6;
  const std::vector<double> e = b.entry_distribution(20);
  EXPECT_DOUBLE_EQ(e[0], 0.6);
  for (std::size_t i = 1; i < 20; ++i) EXPECT_NEAR(e[i], 0.4 / 19.0, 1e-12);
}

TEST(Viewing, SingleChunkChannel) {
  ViewingBehavior b;
  const util::Matrix p = b.transfer_matrix(1);
  EXPECT_DOUBLE_EQ(p(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b.entry_distribution(1)[0], 1.0);
}

TEST(Viewing, SampleNextFrequenciesMatchMatrix) {
  ViewingBehavior b;
  util::Rng rng(10);
  const int trials = 100'000;
  int leaves = 0, sequential = 0, jumps = 0;
  for (int i = 0; i < trials; ++i) {
    const auto next = b.sample_next(3, 20, rng);
    if (!next) {
      ++leaves;
    } else if (*next == 4) {
      ++sequential;
    } else {
      ++jumps;
    }
  }
  EXPECT_NEAR(leaves / static_cast<double>(trials), b.leave_prob, 0.01);
  // Sequential includes the jump mass that happens to land on chunk 4.
  const double jump_each = b.jump_prob / 19.0;
  EXPECT_NEAR(sequential / static_cast<double>(trials),
              1.0 - b.leave_prob - b.jump_prob + jump_each, 0.01);
  EXPECT_NEAR(jumps / static_cast<double>(trials), b.jump_prob - jump_each, 0.01);
}

TEST(Viewing, SampleNextNeverReturnsCurrentOnJump) {
  ViewingBehavior b;
  b.jump_prob = 1.0;
  b.leave_prob = 0.0;
  // leave_prob must be > 0 for validate(); bypass by sampling raw matrix.
  b.leave_prob = 1e-6;
  util::Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const auto next = b.sample_next(7, 20, rng);
    if (next) {
      EXPECT_NE(*next, 7);
    }
  }
}

TEST(Viewing, ValidationRejectsBadParameters) {
  ViewingBehavior b;
  b.leave_prob = 0.0;
  EXPECT_THROW(b.validate(), util::PreconditionError);
  b = ViewingBehavior{};
  b.jump_prob = 0.95;
  b.leave_prob = 0.1;
  EXPECT_THROW(b.validate(), util::PreconditionError);
}

TEST(SessionGenerator, WalksAreLegalAndTerminate) {
  SessionGenerator gen(ViewingBehavior{}, 20);
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<int> walk = gen.sample_walk(rng);
    ASSERT_FALSE(walk.empty());
    for (std::size_t k = 0; k < walk.size(); ++k) {
      EXPECT_GE(walk[k], 0);
      EXPECT_LT(walk[k], 20);
    }
  }
}

TEST(SessionGenerator, MeanWalkLengthMatchesAbsorbingChain) {
  WorkloadConfig cfg;
  cfg.num_channels = 1;
  const Workload workload(cfg, 13);
  const double analytic = workload.expected_session_chunks();

  SessionGenerator gen(cfg.behavior, cfg.chunks_per_video);
  util::Rng rng(13);
  util::SummaryStats lengths;
  for (int i = 0; i < 50'000; ++i) {
    lengths.add(static_cast<double>(gen.sample_walk(rng).size()));
  }
  EXPECT_NEAR(lengths.mean() / analytic, 1.0, 0.03);
}

// ---------------------------------------------------------------- workload

TEST(Workload, ChannelRatesFollowZipfAndDiurnal) {
  WorkloadConfig cfg;
  cfg.total_arrival_rate = 1.0;
  const Workload w(cfg, 1);
  const double t = 12.5 * 3600.0;
  // Rate ratios across channels equal Zipf weight ratios at any time.
  EXPECT_NEAR(w.channel_rate(0, t) / w.channel_rate(1, t), 2.0, 1e-9);
  double total = 0.0;
  for (int c = 0; c < cfg.num_channels; ++c) total += w.channel_rate(c, t);
  EXPECT_NEAR(total, cfg.diurnal.multiplier(t), 1e-9);
}

TEST(Workload, CatalogRefreshRotatesPopularityConservingTotal) {
  WorkloadConfig cfg;
  cfg.total_arrival_rate = 1.0;
  cfg.refresh_period_hours = 2.0;
  cfg.refresh_shift = 7;
  const Workload w(cfg, 1);
  const Workload static_w([] {
    WorkloadConfig c;
    c.total_arrival_rate = 1.0;
    return c;
  }(), 1);

  const double before = 1.0 * 3600.0;   // epoch 0: static mapping
  const double after = 3.0 * 3600.0;    // epoch 1: rotated by 7
  // Epoch 0 matches the static workload exactly.
  for (int c = 0; c < cfg.num_channels; ++c) {
    EXPECT_DOUBLE_EQ(w.channel_rate(c, before),
                     static_w.channel_rate(c, before));
  }
  // After the refresh, channel c serves rank (c + 7) mod n: the old rank-0
  // leader drops to rank 7's weight while channel 13 inherits rank 0.
  EXPECT_DOUBLE_EQ(w.channel_weight_at(0, after), w.channel_weight_at(7, before));
  EXPECT_DOUBLE_EQ(w.channel_weight_at(13, after),
                   w.channel_weight_at(0, before));
  EXPECT_LT(w.channel_rate(0, after), static_w.channel_rate(0, after));
  // The weights are a permutation: total arrival rate is conserved.
  double total_before = 0.0, total_after = 0.0;
  for (int c = 0; c < cfg.num_channels; ++c) {
    total_before += w.channel_weight_at(c, before);
    total_after += w.channel_weight_at(c, after);
  }
  EXPECT_NEAR(total_before, 1.0, 1e-9);
  EXPECT_NEAR(total_after, 1.0, 1e-9);
}

TEST(Workload, CatalogRefreshEnvelopeBoundsEveryEpoch) {
  WorkloadConfig cfg;
  cfg.refresh_period_hours = 1.0;
  cfg.refresh_shift = 3;
  const Workload w(cfg, 5);
  // The thinning envelope must bound the rate whatever rank the rotation
  // hands a channel — sampled across a week of epochs.
  for (int c = 0; c < cfg.num_channels; c += 5) {
    const double bound = w.channel_max_rate(c);
    for (double t = 0.0; t < 7.0 * 24.0 * 3600.0; t += 1800.0) {
      ASSERT_LE(w.channel_rate(c, t), bound * (1.0 + 1e-12));
    }
  }
}

TEST(Workload, CatalogRefreshArrivalStreamsStayDeterministic) {
  WorkloadConfig cfg;
  cfg.refresh_period_hours = 0.5;
  cfg.refresh_shift = 7;
  const Workload a(cfg, 7), b(cfg, 7);
  PoissonArrivals s1 = a.make_arrivals(2);
  PoissonArrivals s2 = b.make_arrivals(2);
  double t1 = 0.0, t2 = 0.0;
  for (int i = 0; i < 200; ++i) {
    t1 = s1.next_after(t1);
    t2 = s2.next_after(t2);
    ASSERT_DOUBLE_EQ(t1, t2);
  }
}

TEST(Workload, RefreshValidation) {
  WorkloadConfig cfg;
  cfg.refresh_period_hours = -1.0;
  EXPECT_THROW(cfg.validate(), util::PreconditionError);
}

TEST(Workload, SessionsDeterministicPerUserIndex) {
  WorkloadConfig cfg;
  const Workload a(cfg, 99), b(cfg, 99);
  for (std::uint64_t u = 0; u < 50; ++u) {
    const SessionScript sa = a.make_session(3, u);
    const SessionScript sb = b.make_session(3, u);
    EXPECT_EQ(sa.chunks, sb.chunks);
    EXPECT_DOUBLE_EQ(sa.uplink, sb.uplink);
  }
}

TEST(Workload, SessionsVaryAcrossUsers) {
  WorkloadConfig cfg;
  const Workload w(cfg, 99);
  int identical = 0;
  const SessionScript first = w.make_session(0, 0);
  for (std::uint64_t u = 1; u < 50; ++u) {
    identical += w.make_session(0, u).chunks == first.chunks;
  }
  EXPECT_LT(identical, 10);
}

TEST(Workload, ArrivalStreamsDeterministic) {
  WorkloadConfig cfg;
  const Workload w(cfg, 7);
  PoissonArrivals s1 = w.make_arrivals(2);
  PoissonArrivals s2 = w.make_arrivals(2);
  double t1 = 0.0, t2 = 0.0;
  for (int i = 0; i < 100; ++i) {
    t1 = s1.next_after(t1);
    t2 = s2.next_after(t2);
    EXPECT_DOUBLE_EQ(t1, t2);
  }
}

TEST(Workload, UplinkRescaledToRatio) {
  WorkloadConfig cfg;
  cfg.uplink_mean_ratio = 1.2;
  cfg.streaming_rate = 50'000.0;
  const Workload w(cfg, 7);
  EXPECT_NEAR(w.uplink_distribution().mean(), 60'000.0, 1e-6);
}

TEST(Workload, UplinkRatioZeroKeepsLiteralPareto) {
  WorkloadConfig cfg;
  cfg.uplink_mean_ratio = 0.0;
  const Workload w(cfg, 7);
  EXPECT_NEAR(w.uplink_distribution().mean() / 50'000.0, 0.675, 0.01);
}

TEST(Workload, ValidatesConfig) {
  WorkloadConfig cfg;
  cfg.num_channels = 0;
  EXPECT_THROW(Workload(cfg, 1), util::PreconditionError);
}

TEST(Workload, MaxRateBoundsInstantaneousRate) {
  WorkloadConfig cfg;
  const Workload w(cfg, 3);
  for (int c = 0; c < cfg.num_channels; c += 5) {
    const double cap = w.channel_max_rate(c);
    for (int minute = 0; minute < 24 * 60; minute += 7) {
      EXPECT_LE(w.channel_rate(c, minute * 60.0), cap + 1e-12);
    }
  }
}

TEST(Workload, ExpectedSessionChunksIsPlausible) {
  WorkloadConfig cfg;  // default behaviour: leave 0.12, jump 0.28
  const Workload w(cfg, 3);
  const double chunks = w.expected_session_chunks();
  EXPECT_GT(chunks, 2.0);
  EXPECT_LT(chunks, 12.0);
}

}  // namespace

TEST(BoundedPareto, QuantileIsTheInverseCdf) {
  const workload::BoundedPareto d(22'500.0, 1'250'000.0, 3.0);
  // Boundaries and interior: quantile(0) = lower; quantile(u) increases;
  // quantile(1-eps) approaches (but never exceeds) upper.
  EXPECT_DOUBLE_EQ(d.quantile(0.0), d.lower());
  double prev = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.01) {
    const double x = d.quantile(u);
    EXPECT_GE(x, prev);
    EXPECT_GE(x, d.lower() - 1e-9);
    EXPECT_LE(x, d.upper() + 1e-9);
    prev = x;
  }
  EXPECT_NEAR(d.quantile(1.0 - 1e-12), d.upper(), 1.0);
  EXPECT_THROW((void)d.quantile(1.0), util::PreconditionError);
  EXPECT_THROW((void)d.quantile(-0.1), util::PreconditionError);
}

TEST(BoundedPareto, QuantileMedianMatchesClosedForm) {
  // F(x) = (1 - (L/x)^k)/(1 - (L/H)^k) = 1/2 =>
  // x = L / (1 - (1 - (L/H)^k)/2)^(1/k).
  const double lower = 100.0, upper = 1e5, k = 3.0;
  const workload::BoundedPareto d(lower, upper, k);
  const double lk_hk = std::pow(lower / upper, k);
  const double expected = lower / std::pow(1.0 - 0.5 * (1.0 - lk_hk), 1.0 / k);
  EXPECT_NEAR(d.quantile(0.5), expected, 1e-9 * expected);
}

TEST(BoundedPareto, SampleDrawsThroughTheQuantile) {
  // sample() must be exactly quantile(U): same RNG stream, same values.
  const workload::BoundedPareto d(22'500.0, 1'250'000.0, 3.0);
  util::Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d.sample(a), d.quantile(b.uniform()));
  }
}

}  // namespace cloudmedia::workload
