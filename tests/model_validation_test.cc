// Model-vs-system validation: the analytical formulas of Sec. IV checked
// against direct stochastic simulation on our own event engine. This is
// the reproduction's strongest evidence that the queueing core is right:
// the Erlang/Jackson numbers and an independent discrete-event M/M/m match.

#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <vector>

#include "core/erlang.h"
#include "core/jackson.h"
#include "core/p2p.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "vod/service_pool.h"
#include "workload/viewing.h"

namespace cloudmedia {
namespace {

/// Direct event-driven M/M/m queue: Poisson arrivals, exponential service,
/// m servers, FIFO. Returns the time-averaged number in system.
double simulate_mmm(double lambda, double mu, int servers, double horizon,
                    std::uint64_t seed) {
  sim::Simulator sim;
  util::Rng arrivals_rng = util::Rng(seed).derive(1);
  util::Rng service_rng = util::Rng(seed).derive(2);

  int in_system = 0;
  int busy = 0;
  std::queue<int> waiting;  // tokens; FIFO
  double area = 0.0;
  double last = 0.0;

  const auto account = [&] {
    area += in_system * (sim.now() - last);
    last = sim.now();
  };

  std::function<void()> start_service = [&] {
    ++busy;
    sim.schedule_in(service_rng.exponential(1.0 / mu), [&] {
      account();
      --in_system;
      --busy;
      if (!waiting.empty()) {
        waiting.pop();
        start_service();
      }
    });
  };

  std::function<void()> schedule_arrival = [&] {
    sim.schedule_in(arrivals_rng.exponential(1.0 / lambda), [&] {
      account();
      ++in_system;
      if (busy < servers) {
        start_service();
      } else {
        waiting.push(0);
      }
      schedule_arrival();
    });
  };

  schedule_arrival();
  sim.run_until(horizon);
  account();
  return area / horizon;
}

class MmmValidation
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(MmmValidation, ErlangFormulaMatchesEventSimulation) {
  const auto [lambda, mu, servers] = GetParam();
  const double analytic =
      core::mmm_metrics(lambda, mu, servers).expected_system;
  // Long horizon + two seeds to keep flakiness negligible.
  const double sim1 = simulate_mmm(lambda, mu, servers, 400'000.0 / lambda, 11);
  const double sim2 = simulate_mmm(lambda, mu, servers, 400'000.0 / lambda, 12);
  const double measured = 0.5 * (sim1 + sim2);
  EXPECT_NEAR(measured / analytic, 1.0, 0.06)
      << "lambda=" << lambda << " mu=" << mu << " m=" << servers
      << " analytic=" << analytic << " measured=" << measured;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MmmValidation,
    ::testing::Values(std::make_tuple(0.5, 1.0, 1),    // M/M/1, rho=0.5
                      std::make_tuple(0.9, 1.0, 1),    // M/M/1, rho=0.9
                      std::make_tuple(1.6, 1.0, 2),    // M/M/2, rho=0.8
                      std::make_tuple(4.0, 1.0, 5),    // M/M/5, rho=0.8
                      std::make_tuple(2.0, 0.25, 12)   // paper-like a=8
                      ));

TEST(MmmValidation, SojournTargetHoldsInSimulation) {
  // The paper's sizing promise: with m = min_servers(λ, µ, λT0) the
  // simulated mean number in system is at most λT0 (mean sojourn <= T0).
  const double lambda = 0.08;
  const double mu = 1.0 / 12.0;  // paper service rate
  const double t0 = 300.0;
  const int m = core::min_servers(lambda, mu, lambda * t0);
  const double measured = simulate_mmm(lambda, mu, m, 6e6, 21);
  EXPECT_LE(measured, lambda * t0 * 1.05);
}

// ---------------------------------------------------------------- Jackson

TEST(JacksonValidation, QueuePopulationsMatchTrafficEquations) {
  // Simulate the open network directly: users walk the chunk chain per the
  // behaviour model with ample service capacity (dwell T0 per chunk), and
  // the measured per-chunk populations must match λ_i · T0.
  const int j = 10;
  const double t0 = 30.0;  // shortened chunk time for test speed
  const double external = 0.8;
  workload::ViewingBehavior behavior;
  const util::Matrix transfer = behavior.transfer_matrix(j);
  const std::vector<double> entry = behavior.entry_distribution(j);
  const std::vector<double> lambdas =
      core::solve_traffic_equations(transfer, entry, external);

  sim::Simulator sim;
  util::Rng rng(99);
  std::vector<double> area(j, 0.0);
  std::vector<int> population(j, 0);
  double last = 0.0;
  const auto account = [&] {
    for (int i = 0; i < j; ++i) area[i] += population[i] * (sim.now() - last);
    last = sim.now();
  };

  std::function<void(int)> enter = [&](int chunk) {
    account();
    ++population[chunk];
    sim.schedule_in(t0, [&, chunk] {
      account();
      --population[chunk];
      const auto next = behavior.sample_next(chunk, j, rng);
      if (next) enter(*next);
    });
  };
  std::function<void()> arrive = [&] {
    sim.schedule_in(rng.exponential(1.0 / external), [&] {
      enter(behavior.sample_entry(j, rng));
      arrive();
    });
  };
  arrive();
  const double horizon = 200'000.0;
  sim.run_until(horizon);
  account();

  for (int i = 0; i < j; ++i) {
    const double measured = area[i] / horizon;
    const double predicted = lambdas[static_cast<std::size_t>(i)] * t0;
    EXPECT_NEAR(measured / predicted, 1.0, 0.08)
        << "chunk " << i << ": measured " << measured << " predicted "
        << predicted;
  }
}

TEST(JacksonValidation, OwnershipMatchesProposition1) {
  // Same walk simulation, now tracking who owns chunk 0 while sitting in
  // queue j — the quantity Proposition 1 predicts (ν_0j fixed point).
  const int j = 6;
  const double t0 = 20.0;
  const double external = 1.0;
  workload::ViewingBehavior behavior;
  const util::Matrix transfer = behavior.transfer_matrix(j);
  const std::vector<double> entry = behavior.entry_distribution(j);
  const std::vector<double> lambdas =
      core::solve_traffic_equations(transfer, entry, external);
  std::vector<double> population_in(j);
  for (int i = 0; i < j; ++i) {
    population_in[static_cast<std::size_t>(i)] =
        lambdas[static_cast<std::size_t>(i)] * t0;
  }
  const core::ChunkAvailability availability =
      core::solve_chunk_availability(transfer, population_in);

  sim::Simulator sim;
  util::Rng rng(123);
  // measured time-average of: users in queue q that have visited chunk 0.
  std::vector<double> area(j, 0.0);
  std::vector<int> holders(j, 0);
  double last = 0.0;
  const auto account = [&] {
    for (int q = 0; q < j; ++q) area[q] += holders[q] * (sim.now() - last);
    last = sim.now();
  };

  struct Walker {
    bool owns0 = false;
  };
  std::function<void(std::shared_ptr<Walker>, int)> enter =
      [&](std::shared_ptr<Walker> w, int chunk) {
        account();
        if (w->owns0 && chunk != 0) ++holders[chunk];
        sim.schedule_in(t0, [&, w, chunk] {
          account();
          if (w->owns0 && chunk != 0) --holders[chunk];
          if (chunk == 0) w->owns0 = true;  // finished downloading chunk 0
          const auto next = behavior.sample_next(chunk, j, rng);
          if (next) enter(w, *next);
        });
      };
  std::function<void()> arrive = [&] {
    sim.schedule_in(rng.exponential(1.0 / external), [&] {
      enter(std::make_shared<Walker>(), behavior.sample_entry(j, rng));
      arrive();
    });
  };
  arrive();
  const double horizon = 120'000.0;
  sim.run_until(horizon);
  account();

  double measured_total = 0.0, predicted_total = 0.0;
  for (int q = 1; q < j; ++q) {
    measured_total += area[q] / horizon;
    predicted_total += availability.nu(0, static_cast<std::size_t>(q));
  }
  // Aggregate supplier count for chunk 0 (Eqn. 4) within 12%.
  EXPECT_NEAR(measured_total / predicted_total, 1.0, 0.12)
      << "measured " << measured_total << " predicted " << predicted_total;
}

// ----------------------------------------------------- ServicePool fuzzing

TEST(ServicePoolValidation, RandomizedOpsConserveBytes) {
  // Fuzz the pool with random capacity changes / arrivals and verify that
  // total bytes served (peer + cloud counters) equals bytes admitted minus
  // bytes still in flight, within float tolerance.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulator sim;
    util::Rng rng(seed);
    double bytes_admitted = 0.0;
    double bytes_completed = 0.0;
    vod::ServicePool pool(sim, 2'000.0,
                          [&](const vod::ServicePool::Completion&) {});

    // Track per-job size to account completed bytes.
    std::vector<double> sizes;
    pool.set_capacity(rng.uniform(0.0, 3'000.0), rng.uniform(0.0, 3'000.0));
    for (int step = 0; step < 200; ++step) {
      const double dt = rng.exponential(5.0);
      sim.run_until(sim.now() + dt);
      if (rng.bernoulli(0.6)) {
        const double bytes = rng.uniform(100.0, 20'000.0);
        bytes_admitted += bytes;
        pool.add_job(bytes, static_cast<std::uint64_t>(step));
      } else {
        pool.set_capacity(rng.uniform(0.0, 3'000.0), rng.uniform(0.0, 3'000.0));
      }
    }
    // Drain: give it ample capacity and let everything finish.
    pool.set_capacity(0.0, 1e9);
    sim.run_all();
    pool.sync();
    bytes_completed = pool.cloud_bytes_served() + pool.peer_bytes_served();
    EXPECT_EQ(pool.active_jobs(), 0u);
    EXPECT_NEAR(bytes_completed / std::max(1.0, bytes_admitted), 1.0, 1e-6)
        << "seed " << seed;
  }
}

TEST(ServicePoolValidation, RatesNeverExceedCapacityOrCap) {
  sim::Simulator sim;
  util::Rng rng(77);
  vod::ServicePool pool(sim, 1'000.0,
                        [](const vod::ServicePool::Completion&) {});
  for (int step = 0; step < 300; ++step) {
    sim.run_until(sim.now() + rng.exponential(2.0));
    if (rng.bernoulli(0.5)) {
      pool.add_job(rng.uniform(500.0, 5'000.0),
                   static_cast<std::uint64_t>(step));
    } else {
      pool.set_capacity(rng.uniform(0.0, 5'000.0), rng.uniform(0.0, 5'000.0));
    }
    EXPECT_LE(pool.total_rate(), pool.total_capacity() + 1e-9);
    EXPECT_LE(pool.total_rate(),
              pool.active_jobs() * 1'000.0 + 1e-9);  // per-job cap
    EXPECT_NEAR(pool.peer_rate() + pool.cloud_rate(), pool.total_rate(), 1e-9);
  }
}

}  // namespace
}  // namespace cloudmedia
