// Golden-snapshot regression tests: every frozen preset in
// src/sweep/goldens.cc must reproduce the checked-in goldens/<name>.{csv,json}
// byte for byte, whatever the thread count. A failure here means either a
// provisioning regression or an accidental Rng stream change — if the new
// behavior is intended, regenerate with scripts/regen-goldens.sh and commit
// the moved snapshots with an explanation.
//
// The goldens directory is baked in at configure time
// (CLOUDMEDIA_GOLDEN_DIR, tests/CMakeLists.txt), so the test runs from any
// working directory.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "sweep/goldens.h"
#include "sweep/sweep_diff.h"
#include "sweep/sweep_runner.h"
#include "testing/seeds.h"
#include "util/json.h"

namespace cloudmedia::sweep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open golden file " << path
                  << " (run scripts/regen-goldens.sh?)";
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_path(const std::string& name, const char* extension) {
  return std::string(CLOUDMEDIA_GOLDEN_DIR) + "/" + name + "." + extension;
}

TEST(Goldens, SeedMatchesTestingPolicy) {
  // One constant, two homes: src/sweep/goldens.h for the library and
  // tests/testing/seeds.h for the test-seeding policy.
  EXPECT_EQ(kGoldenSeed, testing::kGoldenSeed);
}

TEST(Goldens, PresetsAreRegisteredAndDistinct) {
  ASSERT_FALSE(golden_presets().empty());
  for (const GoldenPreset& preset : golden_presets()) {
    SCOPED_TRACE(preset.name);
    EXPECT_EQ(&golden_preset(preset.name), &preset);
    EXPECT_EQ(preset.spec.base_seed, kGoldenSeed);
    EXPECT_FALSE(preset.description.empty());
  }
  EXPECT_THROW((void)golden_preset("no_such_preset"), util::PreconditionError);
}

// Every figure and ablation of the paper's evaluation is a named preset —
// plus the scenario-algebra presets (a composed expression, the richest
// catalog primitive, and the timed-op transient): `tool_sweep
// --golden=<name>` must be able to reproduce any of them, and a rename is
// a deliberate interface change, not drift. (fig06 has no standalone
// entry in this list — it shipped first as fig06_modes.)
TEST(Goldens, EveryPaperFigureAndAblationHasAPreset) {
  const char* const kExpected[] = {
      "sweep_demo",          "fig06_modes",
      "ablation_strategies", "fig04_provisioning",
      "fig05_quality",       "fig07_bandwidth_scaling",
      "fig08_storage_utility", "fig09_vm_utility",
      "fig10_vm_cost",       "fig11_peer_sufficiency",
      "ablation_boot_delay", "ablation_chunk_size",
      "ablation_geo",        "ablation_hetero",
      "ablation_p2p_cap",    "ablation_prediction",
      "stress_flash_churn",  "regional_outage",
      "outage_transient",
  };
  EXPECT_GE(golden_presets().size(), 15u);
  EXPECT_EQ(golden_presets().size(), std::size(kExpected));
  for (const char* name : kExpected) {
    SCOPED_TRACE(name);
    EXPECT_NO_THROW((void)golden_preset(name));
  }
}

// The composed preset really is a composite: its spec names an expression
// the catalog resolves into the two parts' concatenated ops.
TEST(Goldens, ComposedPresetResolvesThroughTheAlgebra) {
  const GoldenPreset& preset = golden_preset("stress_flash_churn");
  EXPECT_EQ(preset.spec.scenario, "flash_crowd+churn_heavy");
  const Scenario resolved =
      ScenarioCatalog::global().resolve(preset.spec.scenario);
  EXPECT_EQ(resolved.ops.size(),
            ScenarioCatalog::global().at("flash_crowd").ops.size() +
                ScenarioCatalog::global().at("churn_heavy").ops.size());
}

// The tentpole acceptance bar: in-process runs of every preset match the
// committed snapshots exactly, on one thread and on many.
TEST(Goldens, EveryPresetMatchesCommittedSnapshotByteForByte) {
  for (const GoldenPreset& preset : golden_presets()) {
    SCOPED_TRACE(preset.name);
    SweepSpec spec = preset.spec;
    spec.threads = 1;
    const SweepResult serial = SweepRunner::run(spec);
    spec.threads = 8;
    const SweepResult parallel = SweepRunner::run(spec);

    const std::string csv = serial.to_csv();
    const std::string json = serial.to_json().dump(2) + "\n";
    EXPECT_EQ(csv, parallel.to_csv());
    EXPECT_EQ(json, parallel.to_json().dump(2) + "\n");
    EXPECT_EQ(csv, read_file(golden_path(preset.name, "csv")));
    EXPECT_EQ(json, read_file(golden_path(preset.name, "json")));
  }
}

// The same guarantee through the diff pipeline: a fresh run diffed against
// the committed JSON reports zero deltas, exercising the JSON parser and
// cell matching end to end.
TEST(Goldens, DiffAgainstCommittedSnapshotIsClean) {
  const GoldenPreset& preset = golden_preset("sweep_demo");
  SweepSpec spec = preset.spec;
  spec.threads = 2;
  const SweepResult result = SweepRunner::run(spec);
  const util::JsonValue committed =
      util::JsonValue::parse(read_file(golden_path(preset.name, "json")));
  const SweepDiff diff = diff_sweeps(result.to_json(), committed);
  EXPECT_TRUE(diff.identical()) << diff.report();
  EXPECT_EQ(diff.cells_compared, result.runs.size());
  EXPECT_GT(diff.metrics_compared, 0u);
}

// And the negative control: a perturbed seed must surface as non-zero
// per-cell deltas plus a seed mismatch, never as a silent pass.
TEST(Goldens, DiffReportsPerturbedSeed) {
  const GoldenPreset& preset = golden_preset("sweep_demo");
  SweepSpec spec = preset.spec;
  spec.threads = 2;
  spec.base_seed = kGoldenSeed + 1;
  const SweepResult perturbed = SweepRunner::run(spec);
  const util::JsonValue committed =
      util::JsonValue::parse(read_file(golden_path(preset.name, "json")));
  const SweepDiff diff = diff_sweeps(perturbed.to_json(), committed);
  EXPECT_FALSE(diff.identical());
  EXPECT_GT(diff.num_deltas(), 0u);
  ASSERT_FALSE(diff.cells.empty());
  EXPECT_TRUE(diff.cells.front().seed_mismatch);
  EXPECT_FALSE(diff.notes.empty());  // base_seed header mismatch
  const std::string report = diff.report();
  EXPECT_NE(report.find("DIFFERS"), std::string::npos);
}

}  // namespace
}  // namespace cloudmedia::sweep
