#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace cloudmedia::util {
namespace {

// ---------------------------------------------------------------- check.h

TEST(Check, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(CM_EXPECTS(1 == 2), PreconditionError);
  EXPECT_NO_THROW(CM_EXPECTS(1 == 1));
}

TEST(Check, EnsuresThrowsInvariantError) {
  EXPECT_THROW(CM_ENSURES(false), InvariantError);
  EXPECT_NO_THROW(CM_ENSURES(true));
}

TEST(Check, MessagesIncludeExpressionAndLocation) {
  try {
    CM_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

// ---------------------------------------------------------------- units.h

TEST(Units, BandwidthConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps(10.0), 1'250'000.0);
  EXPECT_DOUBLE_EQ(kbps(400.0), 50'000.0);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(to_kbps(kbps(180.0)), 180.0);
}

TEST(Units, DataSizes) {
  EXPECT_DOUBLE_EQ(megabytes(15.0), 15e6);
  EXPECT_DOUBLE_EQ(to_gigabytes(gigabytes(20.0)), 20.0);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(1.5)), 1.5);
}

TEST(Units, Time) {
  EXPECT_DOUBLE_EQ(minutes(5.0), 300.0);
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(days(1.0), 86400.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(7.5)), 7.5);
  EXPECT_DOUBLE_EQ(to_days(days(2.0)), 2.0);
}

TEST(Units, PaperChunkGeometry) {
  // r = 400 kbps, T0 = 5 min -> 15 MB chunks (Sec. VI-A).
  EXPECT_DOUBLE_EQ(kbps(400.0) * minutes(5.0), megabytes(15.0));
}

// ------------------------------------------------------------------ rng.h

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.uniform() == b.uniform();
  EXPECT_LT(equal, 5);
}

TEST(Rng, DeriveIsIndependentOfDrawOrder) {
  Rng root(42);
  Rng d1 = root.derive(7, 3);
  // Drawing from the root must not change derived streams.
  (void)root.uniform();
  Rng d2 = root.derive(7, 3);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(d1.uniform(), d2.uniform());
}

TEST(Rng, DeriveDistinguishesPurposeAndId) {
  Rng root(42);
  EXPECT_NE(root.derive(1, 0).uniform(), root.derive(2, 0).uniform());
  EXPECT_NE(root.derive(1, 0).uniform(), root.derive(1, 1).uniform());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  SummaryStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  Rng rng(17);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / 30'000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30'000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30'000.0, 0.6, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(1);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_index(weights), PreconditionError);
}

TEST(Rng, RejectsInvalidParameters) {
  Rng rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), PreconditionError);
  EXPECT_THROW((void)rng.bernoulli(1.5), PreconditionError);
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), PreconditionError);
}

TEST(Rng, Mix64ChangesValue) {
  EXPECT_NE(mix64(0), 0u);
  EXPECT_NE(mix64(1), mix64(2));
}

// --------------------------------------------------------------- matrix.h

TEST(Matrix, IdentitySolve) {
  const Matrix eye = Matrix::identity(3);
  const std::vector<double> b{1.0, 2.0, 3.0};
  const std::vector<double> x = solve_linear_system(eye, b);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Matrix, SolveKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const std::vector<double> x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveRequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const std::vector<double> x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW((void)solve_linear_system(a, {1.0, 2.0}), InvariantError);
}

TEST(Matrix, TransposeAndMultiply) {
  Matrix a(2, 3);
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), a(1, 2));

  const std::vector<double> ones{1.0, 1.0, 1.0};
  const std::vector<double> y = a.multiply(ones);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MatrixMultiplyAgainstHand) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a *= 5.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 5.0);
}

TEST(Matrix, InfNorm) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = -2;
  a(1, 0) = 0.5;
  a(1, 1) = 0.25;
  EXPECT_DOUBLE_EQ(a.inf_norm(), 3.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix a(2, 2);
  EXPECT_THROW((void)a.at(2, 0), PreconditionError);
  EXPECT_THROW((void)a.at(0, 2), PreconditionError);
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW((void)a.multiply(std::vector<double>{1.0}), PreconditionError);
  EXPECT_THROW((void)solve_linear_system(Matrix(2, 3), {1.0, 2.0}),
               PreconditionError);
}

// ---------------------------------------------------------------- stats.h

TEST(SummaryStats, MeanVarianceMinMax) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, MergeMatchesCombined) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 1.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SummaryStats, EmptyIsSafe) {
  const SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts;
  ts.add(0.0, 10.0);
  ts.add(10.0, 20.0);
  ts.add(20.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 15.0), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5.0, 25.0), 25.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 20.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 30.0);
}

TEST(TimeSeries, MaxAndPercentileOverWindow) {
  TimeSeries ts;
  ts.add(0.0, 10.0);
  ts.add(10.0, 40.0);
  ts.add(20.0, 30.0);
  ts.add(30.0, 20.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.0, 15.0), 40.0);
  EXPECT_DOUBLE_EQ(ts.max_over(15.0, 35.0), 30.0);
  EXPECT_DOUBLE_EQ(ts.max_over(100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(0.0, 40.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(0.0, 40.0, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(0.0, 40.0, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(ts.percentile_over(100.0, 200.0, 50.0), 0.0);
}

TEST(Percentile, LinearInterpolation) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);  // sorts
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
  EXPECT_THROW(percentile({1.0}, 101.0), PreconditionError);
}

TEST(TimeSeries, RejectsBackwardTime) {
  TimeSeries ts;
  ts.add(5.0, 1.0);
  EXPECT_THROW(ts.add(4.0, 1.0), PreconditionError);
}

TEST(TimeSeries, ResampleBuckets) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(i * 1.0, i * 1.0);
  const TimeSeries hourly = ts.resample(0.0, 5.0);
  ASSERT_EQ(hourly.size(), 2u);
  EXPECT_DOUBLE_EQ(hourly.value_at(0), 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(hourly.value_at(1), 7.0);  // mean of 5..9
}

TEST(TimeSeries, ResampleSkipsLeadingSamples) {
  TimeSeries ts;
  ts.add(0.0, 100.0);
  ts.add(10.0, 1.0);
  const TimeSeries out = ts.resample(10.0, 5.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.value_at(0), 1.0);
}

TEST(TimeSeries, StridedKeepsEveryKthSample) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(i * 1.0, i * 10.0);
  const TimeSeries out = ts.strided(3);
  ASSERT_EQ(out.size(), 4u);  // indices 0, 3, 6, 9
  EXPECT_DOUBLE_EQ(out.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(out.time_at(3), 9.0);
  EXPECT_DOUBLE_EQ(out.value_at(1), 30.0);
  // Stride 1 is the identity; stride beyond the size keeps the first
  // sample; the empty series stays empty.
  EXPECT_EQ(ts.strided(1).size(), ts.size());
  EXPECT_EQ(ts.strided(100).size(), 1u);
  EXPECT_TRUE(TimeSeries().strided(4).empty());
  EXPECT_THROW((void)ts.strided(0), PreconditionError);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatDataHasZeroSlope) {
  const LinearFit fit = linear_fit({1, 2, 3, 4}, {5, 5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

// ------------------------------------------------------------------ csv.h

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRowsToDisk) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"t", "v"});
    csv.write_row(std::vector<double>{1.0, 2.5});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "t,v");
  EXPECT_EQ(line2, "1,2.5");
  std::filesystem::remove(path);
}

TEST(Csv, EnsureDirectoryCreatesAndTolerandsExisting) {
  const std::string dir = "test_dir_a/test_dir_b";
  EXPECT_TRUE(ensure_directory(dir));
  EXPECT_TRUE(ensure_directory(dir));
  std::filesystem::remove_all("test_dir_a");
}

// ------------------------------------------------------------------ log.h

TEST(Log, ThresholdControlsEmission) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  CM_LOG(kInfo) << "suppressed";  // must not crash, body not evaluated
  set_log_threshold(before);
}

}  // namespace
}  // namespace cloudmedia::util
