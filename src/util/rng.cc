#include "util/rng.h"

#include "util/check.h"

namespace cloudmedia::util {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::derive(std::uint64_t purpose, std::uint64_t id) const noexcept {
  std::uint64_t s = mix64(seed_ ^ mix64(purpose));
  s = mix64(s ^ mix64(id + 0x517cc1b727220a95ULL));
  return Rng(s);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  CM_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  CM_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  CM_EXPECTS(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool Rng::bernoulli(double p) {
  CM_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  CM_EXPECTS(stddev >= 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CM_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CM_EXPECTS(w >= 0.0);
    total += w;
  }
  CM_EXPECTS(total > 0.0);
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: target == total
}

}  // namespace cloudmedia::util
