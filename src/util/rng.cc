#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cloudmedia::util {

namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// 64x64 -> 128-bit multiply. The fallback limb decomposition produces the
/// exact same bits as the __int128 path, so the stream does not depend on
/// which branch the compiler offers.
std::uint64_t mul_u64_wide(std::uint64_t a, std::uint64_t b,
                           std::uint64_t* hi) noexcept {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  *hi = static_cast<std::uint64_t>(product >> 64);
  return static_cast<std::uint64_t>(product);
#else
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo;
  const std::uint64_t p1 = a_lo * b_hi;
  const std::uint64_t p2 = a_hi * b_lo;
  const std::uint64_t p3 = a_hi * b_hi;
  const std::uint64_t mid = (p0 >> 32) + (p1 & 0xffffffffULL) + (p2 & 0xffffffffULL);
  *hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
  return (mid << 32) | (p0 & 0xffffffffULL);
#endif
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += kSplitMixGamma;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  // Four consecutive SplitMix64 outputs, the seeding the xoshiro authors
  // recommend. An all-zero state (the one xoshiro fixed point) cannot
  // survive the guard below.
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = mix64(seed + i * kSplitMixGamma);
  }
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = kSplitMixGamma;
  }
}

Rng Rng::derive(std::uint64_t purpose, std::uint64_t id) const noexcept {
  std::uint64_t s = mix64(seed_ ^ mix64(purpose));
  s = mix64(s ^ mix64(id + 0x517cc1b727220a95ULL));
  return Rng(s);
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256** 1.0 (Blackman & Vigna, public domain reference).
  const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded sampling: take the high
  // 64 bits of x*n, rejecting the sliver of low products that would bias
  // small residues (one modulo only on the rare rejection path).
  std::uint64_t hi = 0;
  std::uint64_t lo = mul_u64_wide(next_u64(), n, &hi);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    while (lo < threshold) {
      lo = mul_u64_wide(next_u64(), n, &hi);
    }
  }
  return hi;
}

double Rng::uniform() {
  // 53 high bits -> the canonical equidistributed double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CM_EXPECTS(lo <= hi);
  const double v = lo + uniform() * (hi - lo);
  // Rounding can land exactly on hi when the span is wide; keep the
  // half-open contract deterministically.
  return v < hi ? v : std::nextafter(hi, lo);
}

int Rng::uniform_int(int lo, int hi) {
  CM_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo));
  return static_cast<int>(static_cast<std::int64_t>(lo) +
                          static_cast<std::int64_t>(bounded(span + 1)));
}

double Rng::exponential(double mean) {
  CM_EXPECTS(mean > 0.0);
  // Inverse CDF: -mean * ln(1 - U). log1p keeps precision near U = 0.
  return -mean * std::log1p(-uniform());
}

bool Rng::bernoulli(double p) {
  CM_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  CM_EXPECTS(stddev >= 0.0);
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return mean + stddev * normal_spare_;
  }
  // Marsaglia polar method: draw points in the unit square until one lands
  // inside the unit circle, then transform the pair into two independent
  // standard normals (the second is cached for the next call).
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  normal_spare_ = v * factor;
  has_normal_spare_ = true;
  return mean + stddev * u * factor;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CM_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CM_EXPECTS(w >= 0.0);
    total += w;
  }
  CM_EXPECTS(total > 0.0);
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: target == total
}

}  // namespace cloudmedia::util
