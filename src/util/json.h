#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cloudmedia::util {

/// Render a double the way the sweep outputs need it: shortest-ish decimal
/// at 10 significant digits, integral values without a trailing ".0", and
/// non-finite values as "null" (JSON has no NaN/Inf). Shared by the CSV and
/// JSON emitters so a value formats identically in both files.
[[nodiscard]] std::string format_number(double value);

/// Minimal ordered JSON document builder (write-only: no parsing). Objects
/// preserve insertion order so emitted files are byte-stable run to run.
///
///   JsonValue root = JsonValue::object();
///   root["name"] = "sweep";
///   root["runs"].push_back(JsonValue::object());
///   std::string text = root.dump(2);
///
/// Numbers are stored as doubles; values that must survive at full 64-bit
/// precision (e.g. RNG seeds) should be stored as decimal strings.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}         // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}           // NOLINT
  JsonValue(std::string s)                                          // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}           // NOLINT

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Type type() const noexcept { return type_; }

  /// Append to an array (null coerces to an empty array first).
  void push_back(JsonValue value);
  /// Object member access; inserts a null member if missing (null coerces
  /// to an empty object first). Throws PreconditionError on non-objects.
  JsonValue& operator[](const std::string& key);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialize. indent < 0 emits one compact line; indent >= 0 pretty-
  /// prints with that many spaces per level and a trailing newline at the
  /// top call only if the caller adds one.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// JSON string escaping (quotes, backslashes, control chars).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Write `value.dump(indent)` plus a trailing newline to `path`; throws
/// std::runtime_error when the file cannot be opened.
void write_json_file(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace cloudmedia::util
