#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cloudmedia::util {

/// Render a double the way the sweep outputs need it: the shortest decimal
/// that round-trips to the same double (lossless, so golden-snapshot diffs
/// compare exact values), integral values without a trailing ".0", and
/// non-finite values as "null" (JSON has no NaN/Inf). Shared by the CSV and
/// JSON emitters so a value formats identically in both files.
[[nodiscard]] std::string format_number(double value);

/// Minimal ordered JSON document builder and reader. Objects preserve
/// insertion order so emitted files are byte-stable run to run.
///
///   JsonValue root = JsonValue::object();
///   root["name"] = "sweep";
///   root["runs"].push_back(JsonValue::object());
///   std::string text = root.dump(2);
///
///   JsonValue doc = JsonValue::parse(text);
///   double n = doc.at("runs").items().size();
///
/// Numbers are stored as doubles; values that must survive at full 64-bit
/// precision (e.g. RNG seeds) should be stored as decimal strings.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}         // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}           // NOLINT
  JsonValue(std::string s)                                          // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}           // NOLINT

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Parse a JSON document (the whole string must be one value plus
  /// whitespace). Throws std::runtime_error with a byte offset on
  /// malformed input.
  [[nodiscard]] static JsonValue parse(const std::string& text);
  /// parse() over a whole file; throws std::runtime_error when unreadable.
  [[nodiscard]] static JsonValue parse_file(const std::string& path);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed readers; throw PreconditionError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Array elements (throws unless is_array()).
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members in insertion order (throws unless is_object()).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;
  /// Object member lookup: nullptr when missing (throws unless is_object()).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws PreconditionError when missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Append to an array (null coerces to an empty array first).
  void push_back(JsonValue value);
  /// Object member access; inserts a null member if missing (null coerces
  /// to an empty object first). Throws PreconditionError on non-objects.
  JsonValue& operator[](const std::string& key);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialize. indent < 0 emits one compact line; indent >= 0 pretty-
  /// prints with that many spaces per level and a trailing newline at the
  /// top call only if the caller adds one.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// JSON string escaping (quotes, backslashes, control chars).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Write `value.dump(indent)` plus a trailing newline to `path`; throws
/// std::runtime_error when the file cannot be opened.
void write_json_file(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace cloudmedia::util
