#pragma once

namespace cloudmedia::util {

// The codebase uses plain doubles with fixed base units:
//   time       — seconds
//   data       — bytes
//   bandwidth  — bytes per second
//   money      — US dollars
//   rates      — per second
// The helpers below exist so call sites read in the paper's units
// (Mbps, GB, hours) while arithmetic stays in base units.

inline constexpr double kBitsPerByte = 8.0;

[[nodiscard]] constexpr double kbps(double v) { return v * 1e3 / kBitsPerByte; }
[[nodiscard]] constexpr double mbps(double v) { return v * 1e6 / kBitsPerByte; }
[[nodiscard]] constexpr double gbps(double v) { return v * 1e9 / kBitsPerByte; }

[[nodiscard]] constexpr double to_kbps(double bytes_per_s) {
  return bytes_per_s * kBitsPerByte / 1e3;
}
[[nodiscard]] constexpr double to_mbps(double bytes_per_s) {
  return bytes_per_s * kBitsPerByte / 1e6;
}

[[nodiscard]] constexpr double kilobytes(double v) { return v * 1e3; }
[[nodiscard]] constexpr double megabytes(double v) { return v * 1e6; }
[[nodiscard]] constexpr double gigabytes(double v) { return v * 1e9; }
[[nodiscard]] constexpr double to_gigabytes(double bytes) { return bytes / 1e9; }
[[nodiscard]] constexpr double to_megabytes(double bytes) { return bytes / 1e6; }

[[nodiscard]] constexpr double seconds(double v) { return v; }
[[nodiscard]] constexpr double minutes(double v) { return v * 60.0; }
[[nodiscard]] constexpr double hours(double v) { return v * 3600.0; }
[[nodiscard]] constexpr double days(double v) { return v * 86400.0; }
[[nodiscard]] constexpr double to_hours(double secs) { return secs / 3600.0; }
[[nodiscard]] constexpr double to_days(double secs) { return secs / 86400.0; }

}  // namespace cloudmedia::util
