#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace cloudmedia::util {

std::string format_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values (the common case for counters) print exactly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  CM_EXPECTS(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  CM_EXPECTS(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, JsonValue());
  return object_.back().second;
}

std::size_t JsonValue::size() const noexcept {
  switch (type_) {
    case Type::kArray: return array_.size();
    case Type::kObject: return object_.size();
    default: return 0;
  }
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

void write_json_file(const std::string& path, const JsonValue& value,
                     int indent) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json_file: cannot open " + path);
  out << value.dump(indent) << '\n';
}

}  // namespace cloudmedia::util
