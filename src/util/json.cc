#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/check.h"
#include "util/csv.h"

namespace cloudmedia::util {

std::string format_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values (the common case for counters) print exactly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  // Shortest decimal that parses back to the same double, so emitted files
  // are lossless: the golden-snapshot diff compares exact values, and even
  // 1-ulp provisioning drift moves the bytes instead of hiding under a
  // fixed-precision rounding.
  char buf[40];
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, result.ptr);
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

namespace {

/// Recursive-descent JSON parser over a [begin, end) byte range. Tracks the
/// current offset for error messages; depth-limited against stack abuse.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JsonValue::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out[key] = parse_value(depth + 1);
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value += static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    // BMP only — sweep documents never emit surrogate pairs; an unpaired
    // surrogate encodes as-is (WTF-8-style) rather than failing the parse.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    // from_chars, not stod: locale-independent, matching the to_chars
    // emitter — parsing our own files must not depend on LC_NUMERIC.
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const std::from_chars_result result = std::from_chars(first, last, value);
    if (result.ec != std::errc() || result.ptr != last) {
      fail("invalid number '" + std::string(first, last) + "'");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("JsonValue::parse_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

bool JsonValue::as_bool() const {
  CM_EXPECTS(type_ == Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  CM_EXPECTS(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  CM_EXPECTS(type_ == Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  CM_EXPECTS(type_ == Type::kArray);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  CM_EXPECTS(type_ == Type::kObject);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  CM_EXPECTS(type_ == Type::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw PreconditionError("JsonValue: missing member \"" + key + "\"");
  }
  return *value;
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  CM_EXPECTS(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  CM_EXPECTS(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, JsonValue());
  return object_.back().second;
}

std::size_t JsonValue::size() const noexcept {
  switch (type_) {
    case Type::kArray: return array_.size();
    case Type::kObject: return object_.size();
    default: return 0;
  }
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

void write_json_file(const std::string& path, const JsonValue& value,
                     int indent) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_json_file: cannot open '" + path +
                             "' for writing: " + std::strerror(errno));
  }
  out << value.dump(indent) << '\n';
  if (!out) {
    throw std::runtime_error("write_json_file: write to '" + path +
                             "' failed: " + std::strerror(errno));
  }
}

}  // namespace cloudmedia::util
