#pragma once

namespace cloudmedia::util {

/// Process peak resident set size in MiB (getrusage high-water mark).
/// Monotonic over the process lifetime — phase A's allocations are visible
/// in every later phase's reading, so benches that compare phases must run
/// the small phase first. Returns 0.0 where the platform has no probe.
[[nodiscard]] double peak_rss_mb();

/// Instantaneous resident set size in MiB (/proc/self/status VmRSS on
/// Linux). Unlike peak_rss_mb() this can go down after memory is released
/// back to the OS. Returns 0.0 where the platform has no probe.
[[nodiscard]] double current_rss_mb();

}  // namespace cloudmedia::util
