#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace cloudmedia::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Benches default to kWarn so figure output
/// stays clean; tests that exercise logging raise it locally.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Lightweight streaming logger: CM_LOG(kInfo) << "x=" << x;
/// The stream body is not evaluated when the level is below threshold.
#define CM_LOG(level)                                                       \
  if (static_cast<int>(::cloudmedia::util::LogLevel::level) <               \
      static_cast<int>(::cloudmedia::util::log_threshold()))                \
    ;                                                                       \
  else                                                                      \
    ::cloudmedia::util::LogMessage(::cloudmedia::util::LogLevel::level)

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) noexcept : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { detail::emit(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace cloudmedia::util
