#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace cloudmedia::util {

/// Streaming summary statistics (count / mean / variance via Welford,
/// min / max). Used for experiment reporting and statistical tests.
class SummaryStats {
 public:
  void add(double x) noexcept;
  void merge(const SummaryStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// An append-only (time, value) series with monotonically non-decreasing
/// timestamps. Provides the aggregations the figure benches need.
class TimeSeries {
 public:
  void add(double t, double v);

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] bool empty() const noexcept { return times_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] double time_at(std::size_t i) const;
  [[nodiscard]] double value_at(std::size_t i) const;

  /// Mean of values with t in [t0, t1).
  [[nodiscard]] double mean_over(double t0, double t1) const;
  /// Mean over the whole series.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max_value() const;
  /// Max of values with t in [t0, t1); 0 when the window is empty.
  [[nodiscard]] double max_over(double t0, double t1) const;
  /// Percentile (0..100, linear interpolation) of values with t in
  /// [t0, t1); 0 when the window is empty.
  [[nodiscard]] double percentile_over(double t0, double t1, double p) const;

  /// Bucket the series into fixed-width windows starting at t0; each output
  /// point is (window start, mean of samples in window). Empty windows are
  /// skipped.
  [[nodiscard]] TimeSeries resample(double t0, double width) const;

  /// Every `stride`-th sample (indices 0, stride, 2*stride, ...); the
  /// downsampled-retention primitive for memory-bounded sweeps. stride 1
  /// returns the series unchanged; stride must be >= 1.
  [[nodiscard]] TimeSeries strided(std::size_t stride) const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Percentile of a sample (p in [0, 100], linear interpolation between
/// order statistics, numpy-style). Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Ordinary least squares y = a + b x; used by the figure-7 bench to report
/// the linear growth of client-server bandwidth with channel size.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace cloudmedia::util
