#include "util/log.h"

#include <atomic>

namespace cloudmedia::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::clog << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace cloudmedia::util
