#pragma once

#include <cstddef>
#include <vector>

namespace cloudmedia::util {

/// Small dense row-major matrix of doubles, sized for the paper's
/// per-channel systems (J ≈ 20 chunks). Not a general linear-algebra
/// library: just what the Jackson traffic equations and Proposition 1
/// need — construction, transpose, mat-vec, and a pivoted linear solve.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& v) const;
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Max absolute row sum (infinity norm).
  [[nodiscard]] double inf_norm() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws InvariantError if A is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear_system(Matrix a,
                                                      std::vector<double> b);

}  // namespace cloudmedia::util
