#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cloudmedia::util {

/// Thrown when a CM_EXPECTS precondition is violated (API misuse).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a CM_ENSURES / CM_ASSERT internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr,
                                           const std::source_location& loc) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          loc.file_name() + ":" + std::to_string(loc.line()));
}

[[noreturn]] inline void fail_invariant(const char* expr,
                                        const std::source_location& loc) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       loc.file_name() + ":" + std::to_string(loc.line()));
}

}  // namespace detail

}  // namespace cloudmedia::util

/// Precondition check: violations indicate caller error and throw
/// PreconditionError. Always enabled (cost is negligible next to simulation
/// work, and silent contract violations are worse than branches).
#define CM_EXPECTS(cond)                                    \
  do {                                                      \
    if (!(cond)) {                                          \
      ::cloudmedia::util::detail::fail_precondition(        \
          #cond, ::std::source_location::current());        \
    }                                                       \
  } while (false)

/// Postcondition / internal invariant check; throws InvariantError.
#define CM_ENSURES(cond)                                    \
  do {                                                      \
    if (!(cond)) {                                          \
      ::cloudmedia::util::detail::fail_invariant(           \
          #cond, ::std::source_location::current());        \
    }                                                       \
  } while (false)

#define CM_ASSERT(cond) CM_ENSURES(cond)
