#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cloudmedia::util {

/// Minimal CSV writer used by the figure benches to dump series next to the
/// human-readable stdout report. Fields containing commas/quotes/newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);
  /// Convenience: formats doubles with enough precision for replotting.
  void write_row(const std::vector<double>& fields);
  void write_header(const std::vector<std::string>& names) { write_row(names); }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::string path_;
  std::ofstream out_;
};

/// Create directory (and parents) if missing; returns true on success or if
/// it already existed.
bool ensure_directory(const std::string& path);

/// Create the parent directory of `file_path` (and its ancestors) if
/// missing. A bare filename has no parent and is a no-op. Throws
/// std::runtime_error naming the directory when it cannot be created —
/// e.g. a path component is an existing regular file.
void ensure_parent_directory(const std::string& file_path);

}  // namespace cloudmedia::util
