#include "util/matrix.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace cloudmedia::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  CM_EXPECTS(rows > 0 && cols > 0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  CM_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CM_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  CM_EXPECTS(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  CM_EXPECTS(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CM_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CM_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Matrix::inf_norm() const noexcept {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row += std::abs((*this)(r, c));
    best = std::max(best, row);
  }
  return best;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  CM_EXPECTS(a.rows() == a.cols());
  CM_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    if (std::abs(a(pivot, col)) < 1e-12) {
      throw InvariantError("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

}  // namespace cloudmedia::util
