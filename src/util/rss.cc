#include "util/rss.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cloudmedia::util {

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

double current_rss_mb() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      long kib = 0;
      if (std::sscanf(line + 6, "%ld", &kib) == 1) {
        mb = static_cast<double>(kib) / 1024.0;
      }
      break;
    }
  }
  std::fclose(status);
  return mb;
#else
  // No cheap instantaneous probe off Linux; the high-water mark is the
  // best available answer.
  return peak_rss_mb();
#endif
}

}  // namespace cloudmedia::util
