#include "util/csv.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace cloudmedia::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::ostringstream line;
  line.precision(10);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line << ',';
    line << fields[i];
  }
  out_ << line.str() << '\n';
}

bool ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return !ec || std::filesystem::exists(path);
}

void ensure_parent_directory(const std::string& file_path) {
  const std::size_t slash = file_path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return;
  const std::string parent = file_path.substr(0, slash);
  if (!ensure_directory(parent)) {
    throw std::runtime_error("cannot create output directory '" + parent +
                             "' for '" + file_path +
                             "' (a path component may be an existing file)");
  }
}

}  // namespace cloudmedia::util
