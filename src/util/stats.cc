#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudmedia::util {

void SummaryStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::merge(const SummaryStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeSeries::add(double t, double v) {
  CM_EXPECTS(times_.empty() || t >= times_.back());
  times_.push_back(t);
  values_.push_back(v);
}

double TimeSeries::time_at(std::size_t i) const {
  CM_EXPECTS(i < times_.size());
  return times_[i];
}

double TimeSeries::value_at(std::size_t i) const {
  CM_EXPECTS(i < values_.size());
  return values_[i];
}

double TimeSeries::mean_over(double t0, double t1) const {
  CM_EXPECTS(t0 <= t1);
  double acc = 0.0;
  std::size_t n = 0;
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t0);
  for (auto it = lo; it != times_.end() && *it < t1; ++it) {
    acc += values_[static_cast<std::size_t>(it - times_.begin())];
    ++n;
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

double TimeSeries::mean() const {
  if (values_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc / static_cast<double>(values_.size());
}

double TimeSeries::max_value() const {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values_) best = std::max(best, v);
  return values_.empty() ? 0.0 : best;
}

double TimeSeries::max_over(double t0, double t1) const {
  CM_EXPECTS(t0 <= t1);
  double best = -std::numeric_limits<double>::infinity();
  bool any = false;
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t0);
  for (auto it = lo; it != times_.end() && *it < t1; ++it) {
    best = std::max(best, values_[static_cast<std::size_t>(it - times_.begin())]);
    any = true;
  }
  return any ? best : 0.0;
}

double TimeSeries::percentile_over(double t0, double t1, double p) const {
  CM_EXPECTS(t0 <= t1);
  std::vector<double> window;
  const auto lo = std::lower_bound(times_.begin(), times_.end(), t0);
  for (auto it = lo; it != times_.end() && *it < t1; ++it) {
    window.push_back(values_[static_cast<std::size_t>(it - times_.begin())]);
  }
  return percentile(std::move(window), p);
}

TimeSeries TimeSeries::resample(double t0, double width) const {
  CM_EXPECTS(width > 0.0);
  TimeSeries out;
  if (times_.empty()) return out;
  std::size_t i = 0;
  while (i < times_.size() && times_[i] < t0) ++i;
  while (i < times_.size()) {
    const double window =
        t0 + std::floor((times_[i] - t0) / width) * width;
    double acc = 0.0;
    std::size_t n = 0;
    while (i < times_.size() && times_[i] < window + width) {
      acc += values_[i];
      ++n;
      ++i;
    }
    out.add(window, acc / static_cast<double>(n));
  }
  return out;
}

TimeSeries TimeSeries::strided(std::size_t stride) const {
  CM_EXPECTS(stride >= 1);
  if (stride == 1) return *this;
  TimeSeries out;
  for (std::size_t i = 0; i < times_.size(); i += stride) {
    out.add(times_[i], values_[i]);
  }
  return out;
}

double percentile(std::vector<double> values, double p) {
  CM_EXPECTS(p >= 0.0 && p <= 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  CM_EXPECTS(x.size() == y.size());
  CM_EXPECTS(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) return fit;  // vertical data: report zeros
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace cloudmedia::util
