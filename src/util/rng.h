#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cloudmedia::util {

/// Seeded random-number façade over an owned xoshiro256** core.
///
/// Streams are derived, not shared: `Rng::derive(purpose, id)` produces an
/// independent generator keyed by (seed, purpose, id), so the same entity
/// (user, channel) sees the same randomness regardless of how unrelated
/// events interleave. This is what makes compared systems (client-server
/// vs. P2P vs. baseline provisioners) face identical workloads.
///
/// Every bit of the stream is specified by this class — the generator
/// (SplitMix64-seeded xoshiro256**) and every sampler (53-bit uniform,
/// Lemire-rejection bounded ints, inverse-CDF exponential, Marsaglia-polar
/// normal, cumulative-scan weighted index) are implemented here, not
/// delegated to std::<distribution>, whose algorithms are
/// implementation-defined. Integer draws are therefore bit-identical on
/// every toolchain; floating-point samplers additionally depend only on
/// IEEE-754 arithmetic and libm's log/log1p/sqrt rounding, so checked-in
/// golden sweep outputs survive a standard-library swap.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent stream keyed by (this seed, purpose, id).
  [[nodiscard]] Rng derive(std::uint64_t purpose, std::uint64_t id = 0) const noexcept;

  /// Next raw 64-bit word of the xoshiro256** stream. Fully specified —
  /// golden tests pin this sequence so silent generator changes fail.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform();
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive; unbiased (Lemire rejection).
  [[nodiscard]] int uniform_int(int lo, int hi);
  /// Exponential with the given mean (mean > 0); inverse CDF.
  [[nodiscard]] double exponential(double mean);
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p);
  /// Normal via the Marsaglia polar method (one spare cached per pair).
  [[nodiscard]] double normal(double mean, double stddev);
  /// Sample an index from non-negative weights (at least one positive).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  /// Unbiased uniform in [0, n), n >= 1.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) noexcept;

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  double normal_spare_ = 0.0;
  bool has_normal_spare_ = false;
};

/// SplitMix64 mix used for deriving stream seeds; exposed for tests.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace cloudmedia::util
