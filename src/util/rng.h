#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cloudmedia::util {

/// Seeded random-number façade over std::mt19937_64.
///
/// Streams are derived, not shared: `Rng::derive(purpose, id)` produces an
/// independent generator keyed by (seed, purpose, id), so the same entity
/// (user, channel) sees the same randomness regardless of how unrelated
/// events interleave. This is what makes compared systems (client-server
/// vs. P2P vs. baseline provisioners) face identical workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

  /// Derive an independent stream keyed by (this seed, purpose, id).
  [[nodiscard]] Rng derive(std::uint64_t purpose, std::uint64_t id = 0) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi);
  /// Exponential with the given mean (mean > 0).
  [[nodiscard]] double exponential(double mean);
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p);
  /// Standard normal.
  [[nodiscard]] double normal(double mean, double stddev);
  /// Sample an index from non-negative weights (at least one positive).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// SplitMix64 mix used for deriving stream seeds; exposed for tests.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace cloudmedia::util
