#include "core/p2p.h"

#include <algorithm>
#include <numeric>

#include "core/jackson.h"
#include "util/check.h"

namespace cloudmedia::core {

ChunkAvailability solve_chunk_availability(const util::Matrix& transfer,
                                           const std::vector<double>& population) {
  validate_transfer_matrix(transfer);
  const std::size_t j = transfer.rows();
  CM_EXPECTS(population.size() == j);
  for (double n : population) CM_EXPECTS(n >= 0.0);
  const std::vector<double>& expected_in_queue = population;

  ChunkAvailability out{util::Matrix(j, j), std::vector<double>(j, 0.0)};

  if (j == 1) {
    // A single chunk has no other queues to hold suppliers in.
    out.nu(0, 0) = expected_in_queue[0];
    return out;
  }

  for (std::size_t i = 0; i < j; ++i) {
    // Unknowns x_q = ν_{i, cols[q]} for the J-1 queues other than i:
    //   x_q = Σ_l ν_{i,l} P_{l,cols[q]}
    //       = ν_{i,i} P_{i,cols[q]} + Σ_p x_p P_{cols[p],cols[q]}
    // i.e. (I − P̃ᵀ) x = E[n_i] · P_{i,·restricted}, with P̃ the transfer
    // matrix restricted to the non-i queues.
    std::vector<std::size_t> cols;
    cols.reserve(j - 1);
    for (std::size_t q = 0; q < j; ++q)
      if (q != i) cols.push_back(q);

    util::Matrix a(j - 1, j - 1);
    std::vector<double> b(j - 1, 0.0);
    for (std::size_t q = 0; q < j - 1; ++q) {
      for (std::size_t p = 0; p < j - 1; ++p) {
        a(q, p) = (p == q ? 1.0 : 0.0) - transfer(cols[p], cols[q]);
      }
      b[q] = expected_in_queue[i] * transfer(i, cols[q]);
    }
    const std::vector<double> x = util::solve_linear_system(std::move(a), std::move(b));

    out.nu(i, i) = expected_in_queue[i];
    double total = 0.0;
    for (std::size_t q = 0; q < j - 1; ++q) {
      const double v = std::max(0.0, x[q]);  // clamp round-off
      out.nu(i, cols[q]) = v;
      total += v;
    }
    out.owners[i] = total;
  }
  return out;
}

P2pSupply solve_p2p_supply(const util::Matrix& transfer,
                           const ChannelCapacityPlan& capacity,
                           const std::vector<double>& population,
                           double peer_upload_mean, double streaming_rate,
                           const P2pOptions& options) {
  CM_EXPECTS(peer_upload_mean >= 0.0);
  CM_EXPECTS(streaming_rate > 0.0);
  const std::size_t j = transfer.rows();
  CM_EXPECTS(capacity.chunks.size() == j);
  const std::vector<double>& en = population;

  P2pSupply out;
  out.availability = solve_chunk_availability(transfer, en);
  out.peer_supply.assign(j, 0.0);
  out.cloud_residual.assign(j, 0.0);

  // Rarest first: ascending expected owner count (Sec. IV-C), index
  // tie-break for determinism.
  out.rarest_order.resize(j);
  std::iota(out.rarest_order.begin(), out.rarest_order.end(), std::size_t{0});
  std::stable_sort(out.rarest_order.begin(), out.rarest_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.availability.owners[a] < out.availability.owners[b];
                   });

  const double total_population = std::accumulate(en.begin(), en.end(), 0.0);

  // Eqn. (5) with the independence form of Ψ: a peer's expected upload
  // already pledged to rarer chunks is (Σ_{served so far} Γ)/N, so chunk
  // π_k can draw at most ν_{π_k} · (u − pledged_per_peer).
  double pledged_total = 0.0;
  for (std::size_t k = 0; k < j; ++k) {
    const std::size_t chunk = out.rarest_order[k];
    const double nu_k = out.availability.owners[chunk];
    double gamma = 0.0;
    if (nu_k > 0.0 && total_population > 0.0) {
      const double demand_cap =
          options.demand_cap == P2pDemandCap::kStreamingRateLiteral
              ? capacity.chunks[chunk].servers * streaming_rate
              : capacity.chunks[chunk].bandwidth;
      const double pledged_per_peer = pledged_total / total_population;
      const double available =
          nu_k * std::max(0.0, peer_upload_mean - pledged_per_peer);
      gamma = std::clamp(std::min(demand_cap, available), 0.0, available);
    }
    out.peer_supply[chunk] = gamma;
    pledged_total += gamma;
  }

  for (std::size_t i = 0; i < j; ++i) {
    out.cloud_residual[i] =
        std::max(0.0, capacity.chunks[i].bandwidth - out.peer_supply[i]);
  }
  return out;
}

}  // namespace cloudmedia::core
