#include "core/hetero.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace cloudmedia::core {

void PeerClass::validate() const {
  CM_EXPECTS(!name.empty());
  CM_EXPECTS(upload >= 0.0);
  CM_EXPECTS(fraction > 0.0 && fraction <= 1.0);
}

void validate_peer_classes(const std::vector<PeerClass>& classes) {
  CM_EXPECTS(!classes.empty());
  double total = 0.0;
  for (const PeerClass& c : classes) {
    c.validate();
    total += c.fraction;
  }
  CM_EXPECTS(std::abs(total - 1.0) < 1e-9);
}

double mean_upload(const std::vector<PeerClass>& classes) {
  validate_peer_classes(classes);
  double mean = 0.0;
  for (const PeerClass& c : classes) mean += c.fraction * c.upload;
  return mean;
}

std::vector<PeerClass> classes_from_quantiles(
    const std::function<double(double)>& quantile, int num_classes,
    int resolution) {
  CM_EXPECTS(quantile != nullptr);
  CM_EXPECTS(num_classes >= 1);
  CM_EXPECTS(resolution >= 1);

  std::vector<PeerClass> classes;
  classes.reserve(static_cast<std::size_t>(num_classes));
  const double bin = 1.0 / num_classes;
  for (int g = 0; g < num_classes; ++g) {
    // Conditional mean over the bin via midpoint sampling (exact enough for
    // provisioning; the overall mean is preserved to the same resolution).
    double acc = 0.0;
    for (int s = 0; s < resolution; ++s) {
      const double u = (g + (s + 0.5) / resolution) * bin;
      const double value = quantile(u);
      CM_ENSURES(value >= 0.0);
      acc += value;
    }
    classes.push_back(PeerClass{"q" + std::to_string(g + 1),
                                acc / resolution, bin});
  }
  return classes;
}

HeteroP2pSupply solve_hetero_p2p_supply(const util::Matrix& transfer,
                                        const ChannelCapacityPlan& capacity,
                                        const std::vector<double>& population,
                                        const std::vector<PeerClass>& classes,
                                        double streaming_rate,
                                        const P2pOptions& options) {
  validate_peer_classes(classes);
  CM_EXPECTS(streaming_rate > 0.0);
  const std::size_t j = transfer.rows();
  const std::size_t g_count = classes.size();
  CM_EXPECTS(capacity.chunks.size() == j);

  HeteroP2pSupply out;
  out.availability = solve_chunk_availability(transfer, population);
  out.peer_supply.assign(j, 0.0);
  out.cloud_residual.assign(j, 0.0);
  out.class_supply = util::Matrix(g_count, j);

  out.rarest_order.resize(j);
  std::iota(out.rarest_order.begin(), out.rarest_order.end(), std::size_t{0});
  std::stable_sort(out.rarest_order.begin(), out.rarest_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.availability.owners[a] <
                            out.availability.owners[b];
                   });

  const double total_population =
      std::accumulate(population.begin(), population.end(), 0.0);

  // Per-class running pledges, Σ of class g's Γ contributions so far.
  std::vector<double> pledged(g_count, 0.0);

  for (std::size_t k = 0; k < j; ++k) {
    const std::size_t chunk = out.rarest_order[k];
    const double nu_k = out.availability.owners[chunk];
    if (nu_k <= 0.0 || total_population <= 0.0) continue;

    const double demand_cap =
        options.demand_cap == P2pDemandCap::kStreamingRateLiteral
            ? capacity.chunks[chunk].servers * streaming_rate
            : capacity.chunks[chunk].bandwidth;

    // Remaining upload each class can still offer for this chunk: f_g·ν_k
    // owners, each with headroom u_g − (class pledges per class member).
    std::vector<double> avail(g_count, 0.0);
    double total_avail = 0.0;
    for (std::size_t g = 0; g < g_count; ++g) {
      const double members = classes[g].fraction * total_population;
      const double pledged_per_peer =
          members > 0.0 ? pledged[g] / members : 0.0;
      avail[g] = classes[g].fraction * nu_k *
                 std::max(0.0, classes[g].upload - pledged_per_peer);
      total_avail += avail[g];
    }
    if (total_avail <= 0.0) continue;

    const double gamma = std::min(demand_cap, total_avail);
    out.peer_supply[chunk] = gamma;
    for (std::size_t g = 0; g < g_count; ++g) {
      const double share = gamma * avail[g] / total_avail;
      out.class_supply(g, chunk) = share;
      pledged[g] += share;
    }
  }

  for (std::size_t i = 0; i < j; ++i) {
    out.cloud_residual[i] =
        std::max(0.0, capacity.chunks[i].bandwidth - out.peer_supply[i]);
  }
  return out;
}

}  // namespace cloudmedia::core
