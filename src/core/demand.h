#pragma once

#include <vector>

#include "core/capacity.h"
#include "core/p2p.h"
#include "core/params.h"
#include "util/matrix.h"

namespace cloudmedia::core {

/// Deployment mode of the VoD application (Sec. III-B).
enum class StreamingMode { kClientServer, kP2p };

/// What the tracking server measured for one channel during the last
/// provisioning interval (Sec. V-B: "the tracking server summarizes the
/// average user arrival rate Λ(c) ... as well as the viewing patterns
/// P(c)ij ... and sends these statistics to the controller").
struct ChannelObservation {
  double arrival_rate = 0.0;            ///< Λ̂, users/s
  util::Matrix transfer;                ///< P̂, J×J empirical transfer matrix
  std::vector<double> entry;            ///< empirical entry distribution
  std::vector<double> occupancy;        ///< current users per chunk queue
  std::vector<double> served_cloud_bandwidth;  ///< bytes/s, mean over interval
  double mean_peer_uplink = 0.0;        ///< û, bytes/s
};

/// The controller's per-channel output: the Sec.-IV pipeline end to end.
struct ChannelDemandEstimate {
  std::vector<double> arrival_rates;  ///< λ_i from the traffic equations
  ChannelCapacityPlan capacity;       ///< m_i, s_i = R·m_i
  std::vector<double> peer_supply;    ///< Γ_i (all zero in client–server)
  std::vector<double> cloud_demand;   ///< Δ_i = s_i − Γ_i (clamped at 0)
  double total_cloud_demand = 0.0;    ///< Σ Δ_i, bytes/s
};

struct DemandEstimatorConfig {
  StreamingMode mode = StreamingMode::kClientServer;
  CapacityModel capacity_model = CapacityModel::kChannelPooled;
  /// Also size demand on current queue occupancy (λ_i >= n_i / T0): keeps
  /// channels with lingering viewers but no fresh arrivals provisioned.
  /// See DESIGN.md; ablated in bench/ablation_strategies.
  bool occupancy_floor = true;
  /// How Eqn. (5) caps peer supply per chunk (see core/p2p.h).
  P2pOptions p2p;
};

/// Sec. IV end-to-end for one channel: traffic equations → Erlang sizing →
/// (P2P only) peer-supply subtraction.
class DemandEstimator {
 public:
  DemandEstimator(VodParameters params, DemandEstimatorConfig config);

  [[nodiscard]] ChannelDemandEstimate estimate(
      const ChannelObservation& observation) const;

  [[nodiscard]] const VodParameters& params() const noexcept { return params_; }
  [[nodiscard]] const DemandEstimatorConfig& config() const noexcept {
    return config_;
  }

 private:
  VodParameters params_;
  DemandEstimatorConfig config_;
  CapacityPlanner planner_;
};

}  // namespace cloudmedia::core
