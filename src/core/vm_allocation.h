#pragma once

#include <cstddef>
#include <vector>

#include "core/clusters.h"
#include "core/storage_rental.h"  // ChunkRef / ChunkDemand

namespace cloudmedia::core {

/// The optimal VM configuration problem of Sec. V-A2 (Eqn. (7)): choose
/// z_iv — the (possibly fractional) number of VMs from virtual cluster v
/// serving chunk i — maximizing Σ ũ_v z_iv subject to
///   Σ_v z_iv = Δ_i / R   (demand met per chunk),
///   Σ_i z_iv <= N_v      (cluster size),
///   Σ p̃_v z_iv <= B_M   (VM budget).
struct VmProblem {
  std::vector<VmClusterSpec> clusters;
  std::vector<ChunkDemand> chunks;   ///< demand = Δ_i, bytes/s
  double vm_bandwidth = 0.0;         ///< R, bytes/s
  double budget_per_hour = 0.0;      ///< B_M

  void validate() const;

  /// Total VMs demanded: Σ_i Δ_i / R.
  [[nodiscard]] double total_vm_demand() const;
};

struct VmAllocation {
  /// z[i][v]: VM count from cluster v serving chunk i (fractional allowed).
  std::vector<std::vector<double>> z;
  bool feasible = false;
  double total_utility = 0.0;   ///< Σ ũ_v z_iv
  double cost_per_hour = 0.0;   ///< Σ p̃_v z_iv (fractional VM-hours)
  /// Σ_i z_iv per cluster.
  std::vector<double> per_cluster_total;
};

/// The paper's VM configuration heuristic: clusters in decreasing marginal
/// utility per unit cost ũ_v/p̃_v; each chunk's demand filled from the best
/// cluster with spare VMs, cascading to the next, while the running budget
/// allows. Chunks are visited in decreasing Δ (the order the paper leaves
/// open; matches the storage heuristic).
[[nodiscard]] VmAllocation solve_vm_greedy(const VmProblem& problem);

/// Exact optimum of Eqn. (7). Because every chunk contributes to the
/// objective and the constraints only through Σ_i z_iv, the problem reduces
/// to a 3-constraint LP over per-cluster totals Z_v; we solve it exactly by
/// enumerating vertices of the feasible polytope. Used as the oracle for
/// heuristic-quality tests and the ablation bench.
[[nodiscard]] VmAllocation solve_vm_exact(const VmProblem& problem);

/// Audit: recompute utility/cost from z and throw if any constraint of
/// Eqn. (7) is violated.
[[nodiscard]] VmAllocation audit_vm_allocation(
    const VmProblem& problem, const std::vector<std::vector<double>>& z);

/// Aggregate VM utility of one channel (Fig. 9's per-channel series).
[[nodiscard]] double channel_vm_utility(const VmProblem& problem,
                                        const VmAllocation& allocation,
                                        int channel);

/// A concrete packing of fractional z_iv onto integer VM instances.
/// The paper: "its integer part corresponds to the number of VMs which will
/// be entirely used to serve chunk i, and the fractional part indicates the
/// fraction of bandwidth used to serve chunk i at a shared VM... we will
/// maximally allow consecutive chunks in one channel to be served by the
/// [shared] VM" (Sec. V-A2).
struct VmInstance {
  std::size_t cluster = 0;
  /// (chunk index into VmProblem::chunks, fraction of this VM) pairs.
  std::vector<std::pair<std::size_t, double>> slices;
};

struct InstancePlan {
  std::vector<VmInstance> instances;
  std::vector<int> per_cluster_count;   ///< booted VMs per cluster
  double cost_per_hour = 0.0;           ///< integer instances × price
};

/// Pack an allocation into instances: full VMs for integer parts, then
/// shared VMs filled with consecutive chunks of the same channel first.
[[nodiscard]] InstancePlan pack_instances(const VmProblem& problem,
                                          const VmAllocation& allocation);

}  // namespace cloudmedia::core
