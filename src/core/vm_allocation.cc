#include "core/vm_allocation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace cloudmedia::core {

namespace {
constexpr double kEps = 1e-9;
}

void VmProblem::validate() const {
  CM_EXPECTS(!clusters.empty());
  for (const VmClusterSpec& c : clusters) c.validate();
  CM_EXPECTS(vm_bandwidth > 0.0);
  CM_EXPECTS(budget_per_hour >= 0.0);
  for (const ChunkDemand& d : chunks) CM_EXPECTS(d.demand >= 0.0);
}

double VmProblem::total_vm_demand() const {
  double total = 0.0;
  for (const ChunkDemand& d : chunks) total += d.demand / vm_bandwidth;
  return total;
}

VmAllocation solve_vm_greedy(const VmProblem& problem) {
  problem.validate();
  const std::size_t v = problem.clusters.size();
  const std::size_t n = problem.chunks.size();

  // Clusters by decreasing marginal utility per unit cost ũ_v/p̃_v.
  std::vector<std::size_t> cluster_order(v);
  std::iota(cluster_order.begin(), cluster_order.end(), std::size_t{0});
  std::stable_sort(cluster_order.begin(), cluster_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.clusters[a].utility / problem.clusters[a].price_per_hour >
                            problem.clusters[b].utility / problem.clusters[b].price_per_hour;
                   });

  // Chunks by decreasing demand (the paper's storage heuristic order,
  // reused here so high-demand chunks win when the budget binds).
  std::vector<std::size_t> chunk_order(n);
  std::iota(chunk_order.begin(), chunk_order.end(), std::size_t{0});
  std::stable_sort(chunk_order.begin(), chunk_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.chunks[a].demand > problem.chunks[b].demand;
                   });

  VmAllocation out;
  out.z.assign(n, std::vector<double>(v, 0.0));
  out.per_cluster_total.assign(v, 0.0);
  out.feasible = true;

  std::vector<double> remaining(v);
  for (std::size_t i = 0; i < v; ++i)
    remaining[i] = static_cast<double>(problem.clusters[i].max_vms);
  double spent = 0.0;

  for (std::size_t idx : chunk_order) {
    double need = problem.chunks[idx].demand / problem.vm_bandwidth;
    for (std::size_t rank : cluster_order) {
      if (need <= kEps) break;
      const VmClusterSpec& spec = problem.clusters[rank];
      const double by_budget =
          std::max(0.0, (problem.budget_per_hour - spent) / spec.price_per_hour);
      const double take = std::min({need, remaining[rank], by_budget});
      if (take <= kEps) continue;
      out.z[idx][rank] += take;
      out.per_cluster_total[rank] += take;
      remaining[rank] -= take;
      spent += take * spec.price_per_hour;
      out.total_utility += take * spec.utility;
      need -= take;
    }
    if (need > kEps) out.feasible = false;  // budget or clusters exhausted
  }
  out.cost_per_hour = spent;
  return out;
}

namespace {

/// Exact optimum of the aggregate LP:
///   max Σ ũ_v Z_v  s.t.  Σ Z_v = D,  0 <= Z_v <= N_v,  Σ p̃_v Z_v <= B.
/// Vertices have at most two "free" coordinates (equality + possibly tight
/// budget); enumerate all bound patterns. Returns empty vector if
/// infeasible.
std::vector<double> solve_aggregate_lp(const std::vector<VmClusterSpec>& clusters,
                                       double demand, double budget) {
  const std::size_t v = clusters.size();
  std::vector<double> best;
  double best_utility = -1.0;

  const auto consider = [&](const std::vector<double>& z) {
    double sum = 0.0, cost = 0.0, utility = 0.0;
    for (std::size_t i = 0; i < v; ++i) {
      if (z[i] < -kEps || z[i] > static_cast<double>(clusters[i].max_vms) + kEps)
        return;
      sum += z[i];
      cost += z[i] * clusters[i].price_per_hour;
      utility += z[i] * clusters[i].utility;
    }
    if (std::abs(sum - demand) > 1e-6 * std::max(1.0, demand)) return;
    if (cost > budget + kEps * std::max(1.0, budget)) return;
    if (utility > best_utility) {
      best_utility = utility;
      best = z;
    }
  };

  if (demand <= kEps) return std::vector<double>(v, 0.0);

  // Bound pattern per variable: 0 = at lower (0), 1 = at upper (N), 2 = free.
  std::vector<int> pattern(v, 0);
  const std::uint64_t combos = static_cast<std::uint64_t>(std::pow(3.0, static_cast<double>(v)));
  for (std::uint64_t code = 0; code < combos; ++code) {
    std::uint64_t rest = code;
    std::vector<std::size_t> free_vars;
    double bound_sum = 0.0, bound_cost = 0.0;
    for (std::size_t i = 0; i < v; ++i) {
      pattern[i] = static_cast<int>(rest % 3);
      rest /= 3;
      if (pattern[i] == 1) {
        bound_sum += static_cast<double>(clusters[i].max_vms);
        bound_cost += static_cast<double>(clusters[i].max_vms) * clusters[i].price_per_hour;
      } else if (pattern[i] == 2) {
        free_vars.push_back(i);
      }
    }
    if (free_vars.size() > 2) continue;

    std::vector<double> z(v, 0.0);
    for (std::size_t i = 0; i < v; ++i)
      if (pattern[i] == 1) z[i] = static_cast<double>(clusters[i].max_vms);

    if (free_vars.empty()) {
      consider(z);
    } else if (free_vars.size() == 1) {
      z[free_vars[0]] = demand - bound_sum;
      consider(z);
    } else {
      // Two free variables: equality + tight budget.
      const std::size_t f = free_vars[0], g = free_vars[1];
      const double pf = clusters[f].price_per_hour;
      const double pg = clusters[g].price_per_hour;
      if (std::abs(pf - pg) < 1e-12) continue;  // degenerate; other vertices cover
      const double s = demand - bound_sum;
      const double c = budget - bound_cost;
      // Z_f + Z_g = s;  pf Z_f + pg Z_g = c.
      const double zf = (c - pg * s) / (pf - pg);
      z[f] = zf;
      z[g] = s - zf;
      consider(z);
    }
  }
  return best_utility < 0.0 ? std::vector<double>{} : best;
}

}  // namespace

VmAllocation solve_vm_exact(const VmProblem& problem) {
  problem.validate();
  const std::size_t v = problem.clusters.size();
  const std::size_t n = problem.chunks.size();
  CM_EXPECTS(v <= 12);  // 3^v bound patterns

  const std::vector<double> totals =
      solve_aggregate_lp(problem.clusters, problem.total_vm_demand(),
                         problem.budget_per_hour);

  VmAllocation out;
  out.z.assign(n, std::vector<double>(v, 0.0));
  out.per_cluster_total.assign(v, 0.0);
  if (totals.empty()) {
    out.feasible = false;
    return out;
  }

  // Distribute per-cluster totals over chunks (any split attains the same
  // objective); deterministic fill in chunk × cluster index order.
  std::vector<double> pool = totals;
  for (std::size_t i = 0; i < n; ++i) {
    double need = problem.chunks[i].demand / problem.vm_bandwidth;
    for (std::size_t c = 0; c < v && need > kEps; ++c) {
      const double take = std::min(need, pool[c]);
      if (take <= kEps) continue;
      out.z[i][c] = take;
      pool[c] -= take;
      need -= take;
    }
    CM_ENSURES(need <= 1e-6);
  }
  return audit_vm_allocation(problem, out.z);
}

VmAllocation audit_vm_allocation(const VmProblem& problem,
                                 const std::vector<std::vector<double>>& z) {
  problem.validate();
  const std::size_t v = problem.clusters.size();
  const std::size_t n = problem.chunks.size();
  CM_EXPECTS(z.size() == n);

  VmAllocation out;
  out.z = z;
  out.per_cluster_total.assign(v, 0.0);
  out.feasible = true;

  for (std::size_t i = 0; i < n; ++i) {
    CM_EXPECTS(z[i].size() == v);
    double row = 0.0;
    for (std::size_t c = 0; c < v; ++c) {
      CM_ENSURES(z[i][c] >= -kEps);
      row += z[i][c];
      out.per_cluster_total[c] += z[i][c];
      out.cost_per_hour += z[i][c] * problem.clusters[c].price_per_hour;
      out.total_utility += z[i][c] * problem.clusters[c].utility;
    }
    const double need = problem.chunks[i].demand / problem.vm_bandwidth;
    CM_ENSURES(row <= need + 1e-6 * std::max(1.0, need));
    if (row < need - 1e-6 * std::max(1.0, need)) out.feasible = false;
  }
  for (std::size_t c = 0; c < v; ++c) {
    CM_ENSURES(out.per_cluster_total[c] <=
               static_cast<double>(problem.clusters[c].max_vms) + 1e-6);
  }
  CM_ENSURES(out.cost_per_hour <= problem.budget_per_hour + 1e-6);
  return out;
}

double channel_vm_utility(const VmProblem& problem,
                          const VmAllocation& allocation, int channel) {
  CM_EXPECTS(allocation.z.size() == problem.chunks.size());
  double utility = 0.0;
  for (std::size_t i = 0; i < problem.chunks.size(); ++i) {
    if (problem.chunks[i].ref.channel != channel) continue;
    for (std::size_t c = 0; c < problem.clusters.size(); ++c) {
      utility += allocation.z[i][c] * problem.clusters[c].utility;
    }
  }
  return utility;
}

InstancePlan pack_instances(const VmProblem& problem,
                            const VmAllocation& allocation) {
  CM_EXPECTS(allocation.z.size() == problem.chunks.size());
  const std::size_t v = problem.clusters.size();

  InstancePlan plan;
  plan.per_cluster_count.assign(v, 0);

  // Visit chunks in (channel, chunk) order so same-channel consecutive
  // chunks land in the same shared VM whenever fractions allow.
  std::vector<std::size_t> order(problem.chunks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ChunkRef& ra = problem.chunks[a].ref;
    const ChunkRef& rb = problem.chunks[b].ref;
    if (ra.channel != rb.channel) return ra.channel < rb.channel;
    return ra.chunk < rb.chunk;
  });

  for (std::size_t c = 0; c < v; ++c) {
    // Sequential fill: each instance holds up to 1.0 VM of shares; a
    // chunk's share may straddle two instances (the paper already lets a
    // chunk be served by several VMs). Consecutive chunks of a channel are
    // adjacent in `order`, so they share VMs whenever fractions allow, and
    // the instance count is exactly ceil(Σ_i z_iv) — never above N_v.
    std::size_t open = SIZE_MAX;
    double open_left = 0.0;
    for (std::size_t idx : order) {
      double amount = allocation.z[idx][c];
      while (amount > kEps) {
        if (open == SIZE_MAX) {
          plan.instances.push_back(VmInstance{c, {}});
          ++plan.per_cluster_count[c];
          open = plan.instances.size() - 1;
          open_left = 1.0;
        }
        const double take = std::min(amount, open_left);
        plan.instances[open].slices.emplace_back(idx, take);
        amount -= take;
        open_left -= take;
        if (open_left <= kEps) open = SIZE_MAX;
      }
    }
  }

  for (std::size_t c = 0; c < v; ++c) {
    plan.cost_per_hour += static_cast<double>(plan.per_cluster_count[c]) *
                          problem.clusters[c].price_per_hour;
  }
  return plan;
}

}  // namespace cloudmedia::core
