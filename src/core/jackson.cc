#include "core/jackson.h"

#include "util/check.h"

namespace cloudmedia::core {

void validate_transfer_matrix(const util::Matrix& transfer) {
  CM_EXPECTS(transfer.rows() == transfer.cols());
  CM_EXPECTS(transfer.rows() >= 1);
  for (std::size_t i = 0; i < transfer.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < transfer.cols(); ++j) {
      CM_EXPECTS(transfer(i, j) >= 0.0);
      row += transfer(i, j);
    }
    CM_EXPECTS(row <= 1.0 + 1e-9);
  }
}

std::vector<double> solve_traffic_equations(const util::Matrix& transfer,
                                            const std::vector<double>& entry,
                                            double external_rate) {
  validate_transfer_matrix(transfer);
  CM_EXPECTS(entry.size() == transfer.rows());
  CM_EXPECTS(external_rate >= 0.0);
  double entry_sum = 0.0;
  for (double e : entry) {
    CM_EXPECTS(e >= 0.0);
    entry_sum += e;
  }
  CM_EXPECTS(entry_sum <= 1.0 + 1e-9);

  const std::size_t n = transfer.rows();
  util::Matrix a = util::Matrix::identity(n);
  a -= transfer.transpose();
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = external_rate * entry[i];
  std::vector<double> lambdas = util::solve_linear_system(std::move(a), std::move(b));
  for (double& l : lambdas) {
    // Guard against -0 / tiny negative round-off; genuine negatives would
    // mean the transfer matrix was not sub-stochastic.
    CM_ENSURES(l > -1e-9);
    if (l < 0.0) l = 0.0;
  }
  return lambdas;
}

double departure_flow(const util::Matrix& transfer,
                      const std::vector<double>& lambdas) {
  CM_EXPECTS(lambdas.size() == transfer.rows());
  double flow = 0.0;
  for (std::size_t i = 0; i < transfer.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < transfer.cols(); ++j) row += transfer(i, j);
    flow += lambdas[i] * (1.0 - row);
  }
  return flow;
}

}  // namespace cloudmedia::core
