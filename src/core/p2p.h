#pragma once

#include <vector>

#include "core/capacity.h"
#include "util/matrix.h"

namespace cloudmedia::core {

/// Expected chunk availability in the P2P overlay (Sec. IV-C).
///
/// ν_ij = expected number of peers currently in chunk queue j that have
/// chunk i buffered. Proposition 1 states the equilibrium fixed point
///   E[ν_ij] = Σ_l E[ν_il] · P_lj   (for j != i),
/// anchored by E[ν_ii] = E[n_i] (peers still retrieving chunk i are not
/// suppliers). ν_i = Σ_{j != i} ν_ij is the expected number of *suppliers*
/// of chunk i (the paper's Eqn. (4)).
struct ChunkAvailability {
  util::Matrix nu;              ///< J×J matrix, nu(i, j) = E[ν_ij]
  std::vector<double> owners;   ///< ν_i per chunk (Eqn. (4))
};

/// Solve Proposition 1 for every chunk: one (J-1)-dimensional linear system
/// per chunk i, unknowns {ν_ij}_{j != i}. `population` is the paper's
/// E[n_i] — the expected users occupying chunk queue i. At the paper's
/// equilibrium the sojourn in queue i is the playback time T0, so
/// E[n_i] = λ_i · T0 by Little's law; pass that (or a measured occupancy).
[[nodiscard]] ChunkAvailability solve_chunk_availability(
    const util::Matrix& transfer, const std::vector<double>& population);

/// How the per-chunk peer supply is capped in Eqn. (5).
enum class P2pDemandCap {
  /// Verbatim Eqn. (5): Γ_i <= m_i · r. Note r is the *streaming* rate
  /// while the provisioned requirement is m_i · R with R = 25 r in the
  /// paper's testbed, so this cap limits peer offload to r/R = 4 % of
  /// provisioned bandwidth — inconsistent with the paper's own Fig. 4/10
  /// (P2P uses ~10× less cloud than client–server). Kept for the ablation
  /// bench.
  kStreamingRateLiteral,
  /// Bandwidth-consistent cap: Γ_i <= s_i = m_i · R, i.e. peers may cover
  /// up to the chunk's full provisioned requirement. Default; reproduces
  /// the paper's reported P2P savings. See DESIGN.md.
  kProvisionedBandwidth,
};

struct P2pOptions {
  P2pDemandCap demand_cap = P2pDemandCap::kProvisionedBandwidth;
};

/// Result of the rarest-first peer-upload waterfall (the paper's Eqn. (5)).
struct P2pSupply {
  ChunkAvailability availability;
  std::vector<std::size_t> rarest_order;  ///< chunk indices, rarest first
  std::vector<double> peer_supply;        ///< Γ_i, bytes/s
  std::vector<double> cloud_residual;     ///< Δ_i = max(0, s_i − Γ_i), bytes/s
};

/// Compute Γ_i and the cloud residual Δ_i for one channel.
///
/// Eqn. (5): chunks are served rarest-first; the upload available to chunk
/// π_k is the owners' total capacity ν_{π_k}·u minus what those owners
/// already pledged to rarer chunks. The probability Ψ(π_j, π_k) that a peer
/// owns both chunks is approximated by ownership independence,
/// Ψ = (ν_j/N)(ν_k/N), under which the deduction collapses to
/// ν_{π_k} · Σ_{j<k} Γ_{π_j}/N (each peer's expected pledged upload).
///
/// `capacity` supplies m_i and s_i = R·m_i; `population` the queue
/// occupancies (see solve_chunk_availability); `peer_upload_mean` is u.
[[nodiscard]] P2pSupply solve_p2p_supply(const util::Matrix& transfer,
                                         const ChannelCapacityPlan& capacity,
                                         const std::vector<double>& population,
                                         double peer_upload_mean,
                                         double streaming_rate,
                                         const P2pOptions& options = {});

}  // namespace cloudmedia::core
