#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/demand.h"
#include "core/storage_rental.h"
#include "core/vm_allocation.h"

namespace cloudmedia::core {

/// Everything the tracker hands to the controller at the end of one
/// provisioning interval (Sec. V-B, Fig. 3).
struct TrackerReport {
  double interval_start = 0.0;   ///< seconds
  double interval_length = 0.0;  ///< T; paper uses 1 hour
  std::vector<ChannelObservation> channels;
};

/// Per-chunk cloud bandwidth demands, indexed [channel][chunk] (bytes/s),
/// plus (for model-based policies) the full Sec.-IV diagnostics.
struct DemandSet {
  std::vector<std::vector<double>> cloud_demand;
  std::vector<ChannelDemandEstimate> estimates;  ///< empty for baselines
};

/// Strategy that converts tracker measurements into next-interval cloud
/// bandwidth demand. The paper's algorithm is ModelBasedPolicy; the others
/// are baselines for the ablation benches.
class DemandPolicy {
 public:
  virtual ~DemandPolicy() = default;
  [[nodiscard]] virtual DemandSet estimate(const TrackerReport& report) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's policy: queueing-model demand from measured Λ̂ and P̂.
class ModelBasedPolicy final : public DemandPolicy {
 public:
  ModelBasedPolicy(VodParameters params, DemandEstimatorConfig config);
  [[nodiscard]] DemandSet estimate(const TrackerReport& report) override;
  [[nodiscard]] std::string name() const override { return "model-based"; }

 private:
  DemandEstimator estimator_;
};

/// Baseline: next interval = margin × last interval's observed load, where
/// observed load per chunk is max(measured cloud usage, occupancy · r) —
/// the two signals a usage-chasing autoscaler actually has. No queueing
/// model, no viewing-pattern analysis, no arrival prediction.
class ReactivePolicy final : public DemandPolicy {
 public:
  ReactivePolicy(VodParameters params, double margin);
  [[nodiscard]] DemandSet estimate(const TrackerReport& report) override;
  [[nodiscard]] std::string name() const override { return "reactive"; }

 private:
  VodParameters params_;
  double margin_;
};

/// Baseline: a fixed demand vector forever (peak provisioning).
class StaticPolicy final : public DemandPolicy {
 public:
  explicit StaticPolicy(std::vector<std::vector<double>> cloud_demand);
  [[nodiscard]] DemandSet estimate(const TrackerReport& report) override;
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  std::vector<std::vector<double>> demand_;
};

/// Extension beyond the paper — its own stated future work (Sec. V-B:
/// "more accurate prediction method based on historical data collected
/// over more intervals"). Predicts the next interval's arrival rate as a
/// blend of persistence (last interval, the paper's predictor) and a
/// seasonal estimate: an EWMA over previous days of the measured rate in
/// the same time-of-day slot. With a diurnal workload this anticipates the
/// flash crowds instead of trailing them by one interval.
class SeasonalPolicy final : public DemandPolicy {
 public:
  /// `period` is the seasonality period (default one day); `blend` is the
  /// weight on the seasonal estimate vs persistence once history exists;
  /// `ewma` is the day-over-day smoothing factor.
  SeasonalPolicy(VodParameters params, DemandEstimatorConfig config,
                 double period = 86'400.0, double blend = 0.7,
                 double ewma = 0.4);
  [[nodiscard]] DemandSet estimate(const TrackerReport& report) override;
  [[nodiscard]] std::string name() const override { return "seasonal"; }

  /// Current seasonal rate estimate for (channel, slot); negative = no
  /// history yet. Exposed for tests.
  [[nodiscard]] double seasonal_rate(int channel, int slot) const;

 private:
  DemandEstimator estimator_;
  double period_;
  double blend_;
  double ewma_;
  int slots_ = 0;
  /// [channel][slot] EWMA of measured rates; -1 marks "never observed".
  std::vector<std::vector<double>> history_;
};

/// Baseline: the paper's model fed with the *true* mean arrival rate of the
/// upcoming interval (an oracle for the prediction error ablation).
class ClairvoyantPolicy final : public DemandPolicy {
 public:
  /// `future_rate(channel, t0, t1)` returns the true mean external arrival
  /// rate of `channel` over [t0, t1).
  ClairvoyantPolicy(VodParameters params, DemandEstimatorConfig config,
                    std::function<double(int, double, double)> future_rate);
  [[nodiscard]] DemandSet estimate(const TrackerReport& report) override;
  [[nodiscard]] std::string name() const override { return "clairvoyant"; }

 private:
  DemandEstimator estimator_;
  std::function<double(int, double, double)> future_rate_;
};

/// The provisioning plan sent to the cloud through the broker: the answer
/// to "how many VMs from which virtual cluster, and which NFS cluster
/// stores which chunk" for the next interval.
struct ProvisioningPlan {
  DemandSet demand;
  StorageProblem storage_problem;
  StorageAssignment storage;
  VmProblem vm_problem;
  VmAllocation vm;
  InstancePlan instances;
  /// Realized per-chunk cloud bandwidth Σ_v z_iv · R, [channel][chunk].
  std::vector<std::vector<double>> chunk_cloud_bandwidth;
  double reserved_bandwidth = 0.0;   ///< Σ chunk_cloud_bandwidth, bytes/s
  double vm_cost_rate = 0.0;         ///< $/h for integer VM instances
  double storage_cost_rate = 0.0;    ///< $/h for assigned chunks
};

struct ControllerConfig {
  std::vector<VmClusterSpec> vm_clusters;
  std::vector<NfsClusterSpec> nfs_clusters;
  double vm_budget_per_hour = 100.0;      ///< B_M (paper Sec. VI-A)
  double storage_budget_per_hour = 1.0;   ///< B_S (paper Sec. VI-A)

  void validate() const;
};

/// The dynamic cloud provisioning controller of Sec. V-B: each interval,
/// turn tracker statistics into demand (policy), then solve the storage
/// rental and VM configuration problems and emit the plan.
class Controller {
 public:
  Controller(VodParameters params, ControllerConfig config,
             std::unique_ptr<DemandPolicy> policy);

  [[nodiscard]] ProvisioningPlan plan(const TrackerReport& report) const;

  /// Renegotiate the budget ceilings mid-run (the timed-scenario hook:
  /// regional_outage@6h cuts them, recovery@18h restores them). Takes
  /// effect from the next plan() — the controller re-reads its config
  /// every interval, exactly the Sec. V-B adaptivity loop.
  void set_budgets(double vm_budget_per_hour, double storage_budget_per_hour);

  [[nodiscard]] const ControllerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const VodParameters& params() const noexcept { return params_; }
  [[nodiscard]] const DemandPolicy& policy() const noexcept { return *policy_; }

 private:
  VodParameters params_;
  ControllerConfig config_;
  std::unique_ptr<DemandPolicy> policy_;
};

}  // namespace cloudmedia::core
