#pragma once

#include <cstddef>
#include <vector>

#include "core/clusters.h"

namespace cloudmedia::core {

/// Identifies chunk i of channel c across the whole library.
struct ChunkRef {
  int channel = 0;
  int chunk = 0;
};

/// One entry of the storage-rental instance: a chunk and its cloud demand
/// Δ_i^{(c)} (bytes/s), the weight in the objective of Eqn. (6).
struct ChunkDemand {
  ChunkRef ref;
  double demand = 0.0;
};

/// The optimal storage rental problem of Sec. V-A1 (Eqn. (6)):
/// place each chunk on exactly one NFS cluster, maximizing
/// Σ u_f Δ_i x_if subject to cluster capacities and the storage budget B_S.
struct StorageProblem {
  std::vector<NfsClusterSpec> clusters;
  std::vector<ChunkDemand> chunks;
  double chunk_bytes = 0.0;        ///< rT0, size of every chunk
  double budget_per_hour = 0.0;    ///< B_S

  void validate() const;
};

struct StorageAssignment {
  /// cluster index per chunk (parallel to StorageProblem::chunks);
  /// -1 where unassigned (only when infeasible).
  std::vector<int> cluster_of;
  bool feasible = false;
  double total_utility = 0.0;     ///< Σ u_f Δ_i x_if
  double cost_per_hour = 0.0;     ///< Σ p_f · rT0 · x_if
};

/// The paper's storage rental heuristic: chunks in decreasing Δ, clusters
/// in decreasing marginal utility per unit cost u_f/p_f; first-fit with a
/// running budget check. Infeasible (some chunk unplaced) signals that the
/// provider's budget is too low for current prices (Sec. V-A1).
[[nodiscard]] StorageAssignment solve_storage_greedy(const StorageProblem& problem);

/// Exact solution by depth-first branch-and-bound, for validating the
/// heuristic on small instances (clusters^chunks up to ~1e7 nodes).
[[nodiscard]] StorageAssignment solve_storage_exact(const StorageProblem& problem);

/// Objective/cost/constraint audit of an assignment; throws on a violated
/// constraint so tests can use it as an oracle.
[[nodiscard]] StorageAssignment audit_storage_assignment(
    const StorageProblem& problem, const std::vector<int>& cluster_of);

/// Aggregate storage utility of one channel under an assignment —
/// the per-channel series plotted in Fig. 8.
[[nodiscard]] double channel_storage_utility(const StorageProblem& problem,
                                             const StorageAssignment& assignment,
                                             int channel);

}  // namespace cloudmedia::core
