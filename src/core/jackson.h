#pragma once

#include <vector>

#include "util/matrix.h"

namespace cloudmedia::core {

/// The open Jackson network of Sec. IV-A, one network per video channel:
/// queue i is chunk i, external arrivals enter queue i with probability
/// entry[i] (α at the first chunk, uniform elsewhere), and jobs move
/// between queues according to the sub-stochastic chunk transfer matrix P.
///
/// Solves the paper's traffic equations (Eqn. (1)):
///   λ_i = entry_i · Λ + Σ_j λ_j P_ji
/// i.e. λ = (I − Pᵀ)^{-1} (Λ · entry).
///
/// `transfer` must be J×J with non-negative entries and row sums <= 1;
/// at least one row must leak probability (sum < 1) for the network to be
/// open — otherwise the linear system is singular and this throws.
[[nodiscard]] std::vector<double> solve_traffic_equations(
    const util::Matrix& transfer, const std::vector<double>& entry,
    double external_rate);

/// Total external departure flow Σ_i λ_i (1 − Σ_j P_ij). At equilibrium
/// this equals the external arrival rate Λ (conservation); exposed for
/// validation and tests.
[[nodiscard]] double departure_flow(const util::Matrix& transfer,
                                    const std::vector<double>& lambdas);

/// Validate that `transfer` is a sub-stochastic matrix (throws otherwise).
void validate_transfer_matrix(const util::Matrix& transfer);

}  // namespace cloudmedia::core
