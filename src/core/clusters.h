#pragma once

#include <string>
#include <vector>

#include "util/check.h"

namespace cloudmedia::core {

/// One virtual (VM) cluster of the IaaS cloud (Sec. III-A / Table II):
/// VMs of one configuration level, with a performance factor ũ_v, a rental
/// price p̃_v per VM-hour, and at most N_v concurrently provisioned VMs.
struct VmClusterSpec {
  std::string name;
  double utility = 1.0;          ///< ũ_v
  double price_per_hour = 0.0;   ///< p̃_v, $/VM/hour
  int max_vms = 0;               ///< N_v

  void validate() const {
    CM_EXPECTS(utility > 0.0);
    CM_EXPECTS(price_per_hour > 0.0);
    CM_EXPECTS(max_vms >= 0);
  }
};

/// One NFS storage cluster (Sec. III-A / Table III).
struct NfsClusterSpec {
  std::string name;
  double utility = 1.0;              ///< u_f
  double price_per_gb_hour = 0.0;    ///< p_f, $/GB/hour
  double capacity_bytes = 0.0;       ///< S_f

  [[nodiscard]] double price_per_byte_hour() const noexcept {
    return price_per_gb_hour / 1e9;
  }

  void validate() const {
    CM_EXPECTS(utility > 0.0);
    CM_EXPECTS(price_per_gb_hour > 0.0);
    CM_EXPECTS(capacity_bytes >= 0.0);
  }
};

/// Table II of the paper: Standard / Medium / Advanced virtual clusters.
[[nodiscard]] std::vector<VmClusterSpec> paper_vm_clusters();

/// Table III of the paper: Standard / High NFS clusters (20 GB each).
[[nodiscard]] std::vector<NfsClusterSpec> paper_nfs_clusters();

}  // namespace cloudmedia::core
