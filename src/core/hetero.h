#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/p2p.h"
#include "util/matrix.h"

namespace cloudmedia::core {

/// One class of peers sharing an upload capacity (DSL / cable / fiber…).
/// The paper's Sec. IV-C analysis assumes one homogeneous upload u and
/// notes it "can be readily extended to cases with heterogeneous
/// bandwidths"; this module is that extension.
struct PeerClass {
  std::string name;
  double upload = 0.0;    ///< u_g, bytes/s
  double fraction = 0.0;  ///< population share; fractions must sum to 1

  void validate() const;
};

/// Validate a class mix (each class valid, fractions sum to 1).
void validate_peer_classes(const std::vector<PeerClass>& classes);

/// Population-weighted mean upload Σ_g f_g u_g — the homogeneous u that a
/// mean-field reduction of the mix would use.
[[nodiscard]] double mean_upload(const std::vector<PeerClass>& classes);

/// Build `num_classes` equal-population classes from an upload-capacity
/// quantile function (inverse CDF on [0,1)). Class g's upload is the
/// conditional mean of the distribution over its quantile bin (numeric,
/// `resolution` samples per bin), so the class mix preserves the
/// distribution's overall mean. Use with BoundedPareto::quantile to
/// discretize the paper's Pareto uplinks.
[[nodiscard]] std::vector<PeerClass> classes_from_quantiles(
    const std::function<double(double)>& quantile, int num_classes,
    int resolution = 64);

/// Eqn. (5) generalized to a class mix.
struct HeteroP2pSupply {
  ChunkAvailability availability;
  std::vector<std::size_t> rarest_order;  ///< chunk indices, rarest first
  std::vector<double> peer_supply;        ///< Γ_i totals, bytes/s
  util::Matrix class_supply;              ///< [class][chunk] contribution
  std::vector<double> cloud_residual;     ///< Δ_i = max(0, s_i − Γ_i)
};

/// Heterogeneous rarest-first waterfall.
///
/// Class membership is independent of a peer's position in the channel, so
/// chunk i has f_g · ν_i expected class-g owners. Serving proceeds rarest
/// first as in Eqn. (5); within one chunk, demand is split across classes
/// in proportion to their *remaining* capacity (every owner pledges the
/// same fraction of its headroom — the natural generalization of the
/// paper's equal-share assumption, and exactly equal to it when all
/// classes have the same upload; a test asserts that degeneracy).
[[nodiscard]] HeteroP2pSupply solve_hetero_p2p_supply(
    const util::Matrix& transfer, const ChannelCapacityPlan& capacity,
    const std::vector<double>& population,
    const std::vector<PeerClass>& classes, double streaming_rate,
    const P2pOptions& options = {});

}  // namespace cloudmedia::core
