#pragma once

namespace cloudmedia::core {

/// Erlang-B blocking probability for m servers at offered load a = λ/µ,
/// via the numerically stable recursion B(0)=1,
/// B(k) = a·B(k-1) / (k + a·B(k-1)).
[[nodiscard]] double erlang_b(int servers, double offered_load);

/// Erlang-C waiting probability (the paper's Eqn. (2) normalization) for an
/// M/M/m queue; requires offered_load < servers (stability).
[[nodiscard]] double erlang_c(int servers, double offered_load);

/// Stationary metrics of an M/M/m/∞ queue.
struct MmmMetrics {
  double offered_load = 0.0;      ///< a = λ/µ
  double utilization = 0.0;       ///< ρ = a/m
  double prob_wait = 0.0;         ///< Erlang-C
  double expected_queue = 0.0;    ///< E[jobs waiting]
  double expected_system = 0.0;   ///< E[n] — the paper's Eqn. (3)
  double expected_wait = 0.0;     ///< E[time in queue]
  double expected_sojourn = 0.0;  ///< E[wait + service]
};

/// Metrics for arrival rate λ, per-server rate µ, m servers.
/// Requires λ >= 0, µ > 0, m >= 1 and λ < m·µ.
[[nodiscard]] MmmMetrics mmm_metrics(double lambda, double mu, int servers);

/// The paper's server-sizing iteration (Sec. IV-B): the smallest m such
/// that the M/M/m queue is stable and E[n] <= target_system_size — by
/// Little's law, the smallest m whose expected sojourn is <= target/λ.
/// Returns 0 when λ == 0. Requires target_system_size > λ/µ (equivalently
/// R > r in the paper's mapping), otherwise no finite m exists.
[[nodiscard]] int min_servers(double lambda, double mu,
                              double target_system_size);

}  // namespace cloudmedia::core
