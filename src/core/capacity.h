#pragma once

#include <vector>

#include "core/erlang.h"
#include "core/params.h"

namespace cloudmedia::core {

/// How chunk queues are mapped to server capacity.
enum class CapacityModel {
  /// The paper's Sec. IV-B verbatim: every chunk queue i gets its own
  /// integer m_i = min { m : E[n] <= λ_i T0 }. Faithful to the analysis,
  /// but reserves at least one whole VM-bandwidth R per active chunk.
  kPerChunkLiteral,
  /// Channel-pooled refinement (see DESIGN.md): the paper lets one VM
  /// serve several consecutive chunks of a channel (Sec. V-A2), i.e. a
  /// channel's VMs form one pool. We size one M/M/M queue on the channel's
  /// aggregate load (same Erlang machinery, same sojourn target T0) and
  /// split the resulting bandwidth across chunks in proportion to λ_i.
  /// This reproduces the paper's own reserved-bandwidth scale (Fig. 4).
  kChannelPooled,
};

/// Equilibrium capacity requirement for one chunk queue.
struct ChunkCapacity {
  double arrival_rate = 0.0;       ///< λ_i (jobs/s)
  double servers = 0.0;            ///< m_i; integer under kPerChunkLiteral
  double bandwidth = 0.0;          ///< s_i = R · m_i (bytes/s)
  double expected_in_queue = 0.0;  ///< E[n_i], the paper's Eqn. (3)
};

/// Capacity requirement for a whole channel.
struct ChannelCapacityPlan {
  CapacityModel model = CapacityModel::kChannelPooled;
  std::vector<ChunkCapacity> chunks;
  int total_servers = 0;          ///< Σ m_i (literal) or pooled M (pooled)
  double total_bandwidth = 0.0;   ///< Σ s_i = R · total_servers
  double total_arrival_rate = 0.0;
};

/// Sec. IV-B: server capacity needed for smooth playback in one channel,
/// given the per-chunk arrival rates from the traffic equations. In the
/// client–server mode the cloud must supply all of it (Δ_i = s_i); in the
/// P2P mode the peer supply of Sec. IV-C is subtracted first.
class CapacityPlanner {
 public:
  CapacityPlanner(VodParameters params, CapacityModel model);

  [[nodiscard]] ChannelCapacityPlan plan(
      const std::vector<double>& arrival_rates) const;

  [[nodiscard]] const VodParameters& params() const noexcept { return params_; }
  [[nodiscard]] CapacityModel model() const noexcept { return model_; }

 private:
  [[nodiscard]] ChannelCapacityPlan plan_literal(
      const std::vector<double>& arrival_rates) const;
  [[nodiscard]] ChannelCapacityPlan plan_pooled(
      const std::vector<double>& arrival_rates) const;

  VodParameters params_;
  CapacityModel model_;
};

}  // namespace cloudmedia::core
