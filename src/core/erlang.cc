#include "core/erlang.h"

#include <limits>

#include "util/check.h"

namespace cloudmedia::core {

double erlang_b(int servers, double offered_load) {
  CM_EXPECTS(servers >= 0);
  CM_EXPECTS(offered_load >= 0.0);
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(int servers, double offered_load) {
  CM_EXPECTS(servers >= 1);
  CM_EXPECTS(offered_load >= 0.0);
  CM_EXPECTS(offered_load < static_cast<double>(servers));
  if (offered_load == 0.0) return 0.0;
  const double b = erlang_b(servers, offered_load);
  const double m = static_cast<double>(servers);
  return m * b / (m - offered_load * (1.0 - b));
}

MmmMetrics mmm_metrics(double lambda, double mu, int servers) {
  CM_EXPECTS(lambda >= 0.0);
  CM_EXPECTS(mu > 0.0);
  CM_EXPECTS(servers >= 1);
  const double a = lambda / mu;
  CM_EXPECTS(a < static_cast<double>(servers));

  MmmMetrics out;
  out.offered_load = a;
  out.utilization = a / static_cast<double>(servers);
  if (lambda == 0.0) {
    out.expected_sojourn = 1.0 / mu;
    return out;
  }
  out.prob_wait = erlang_c(servers, a);
  out.expected_queue = out.prob_wait * out.utilization / (1.0 - out.utilization);
  // E[n] = E[queue] + E[busy servers]; E[busy] = a in a stable M/M/m.
  out.expected_system = out.expected_queue + a;
  out.expected_wait = out.expected_queue / lambda;  // Little on the queue
  out.expected_sojourn = out.expected_wait + 1.0 / mu;
  return out;
}

int min_servers(double lambda, double mu, double target_system_size) {
  CM_EXPECTS(lambda >= 0.0);
  CM_EXPECTS(mu > 0.0);
  if (lambda == 0.0) return 0;
  const double a = lambda / mu;
  // E[n] >= a for every m and E[n] -> a as m -> inf, so the target is
  // reachable iff it exceeds the offered load. In the paper's mapping the
  // target is λT0 = a·(R/r) > a because R > r.
  CM_EXPECTS(target_system_size > a);

  // The paper initializes m = 1 and increments until E[n] <= λT0
  // (Sec. IV-B); values of m <= a are unstable (E[n] = ∞), so start just
  // above the stability threshold. E[n] is strictly decreasing in m, so a
  // gallop + binary search finds the same minimal m as the paper's linear
  // scan in O(log(m - a)) evaluations instead of O(m - a) — each
  // evaluation is itself O(m), which matters for million-server loads.
  constexpr int kMaxServers = 1 << 24;
  const auto meets_target = [&](int m) {
    return mmm_metrics(lambda, mu, m).expected_system <= target_system_size;
  };
  const int first_stable = static_cast<int>(a) + 1;
  if (first_stable >= kMaxServers) {
    throw util::InvariantError("min_servers: no feasible m below cap");
  }
  if (meets_target(first_stable)) return first_stable;

  int below = first_stable;  // largest m known to miss the target
  int step = 1;
  int above = 0;  // smallest m known to meet it
  for (;;) {
    const int candidate = below + step;
    if (candidate >= kMaxServers) {
      throw util::InvariantError("min_servers: no feasible m below cap");
    }
    if (meets_target(candidate)) {
      above = candidate;
      break;
    }
    below = candidate;
    step *= 2;
  }
  while (above - below > 1) {
    const int mid = below + (above - below) / 2;
    if (meets_target(mid)) {
      above = mid;
    } else {
      below = mid;
    }
  }
  return above;
}

}  // namespace cloudmedia::core
