#include "core/demand.h"

#include <algorithm>

#include "core/jackson.h"
#include "util/check.h"

namespace cloudmedia::core {

DemandEstimator::DemandEstimator(VodParameters params,
                                 DemandEstimatorConfig config)
    : params_(params), config_(config), planner_(params, config.capacity_model) {
  params_.validate();
}

ChannelDemandEstimate DemandEstimator::estimate(
    const ChannelObservation& observation) const {
  const auto j = static_cast<std::size_t>(params_.chunks_per_video);
  CM_EXPECTS(observation.transfer.rows() == j);
  CM_EXPECTS(observation.entry.size() == j);
  CM_EXPECTS(observation.arrival_rate >= 0.0);

  // Measured P̂ can be degenerate: in a quiet hour every observed departure
  // from some chunk may lead to another chunk, so rows sum to 1 and the
  // traffic equations become singular (the model's equilibrium is genuinely
  // unbounded — users that "never leave"). Enforce a minimum leak: scale
  // the matrix so the largest row keeps at least kMinLeak exit probability,
  // which bounds expected visits per entry at 1/kMinLeak. Well-measured
  // matrices (the paper's leave probability is ~0.12) are untouched.
  constexpr double kMinLeak = 1e-3;
  double max_row = 0.0;
  for (std::size_t i = 0; i < j; ++i) {
    double row = 0.0;
    for (std::size_t q = 0; q < j; ++q) row += observation.transfer(i, q);
    max_row = std::max(max_row, row);
  }
  util::Matrix damped = observation.transfer;
  if (max_row > 1.0 - kMinLeak) {
    const double scale = (1.0 - kMinLeak) / max_row;
    for (std::size_t i = 0; i < j; ++i) {
      for (std::size_t q = 0; q < j; ++q) damped(i, q) *= scale;
    }
  }

  ChannelDemandEstimate out;
  out.arrival_rates = solve_traffic_equations(
      damped, observation.entry, observation.arrival_rate);

  if (config_.occupancy_floor && !observation.occupancy.empty()) {
    CM_EXPECTS(observation.occupancy.size() == j);
    // Little's-law inverse: n_i users dwelling ~T0 in the queue imply a
    // sustained chunk-request rate of n_i / T0 even with no new arrivals.
    for (std::size_t i = 0; i < j; ++i) {
      out.arrival_rates[i] =
          std::max(out.arrival_rates[i],
                   observation.occupancy[i] / params_.chunk_duration);
    }
  }

  out.capacity = planner_.plan(out.arrival_rates);
  out.peer_supply.assign(j, 0.0);
  out.cloud_demand.resize(j);

  if (config_.mode == StreamingMode::kP2p) {
    // Queue populations for the availability analysis: at the paper's
    // equilibrium the sojourn of queue i is the playback time T0, so
    // E[n_i] = λ_i · T0 (Little). The occupancy floor above already folds
    // in the measured position counts.
    std::vector<double> population(j);
    for (std::size_t i = 0; i < j; ++i) {
      population[i] = out.arrival_rates[i] * params_.chunk_duration;
    }
    const P2pSupply supply = solve_p2p_supply(
        damped, out.capacity, population, observation.mean_peer_uplink,
        params_.streaming_rate, config_.p2p);
    out.peer_supply = supply.peer_supply;
    out.cloud_demand = supply.cloud_residual;
  } else {
    for (std::size_t i = 0; i < j; ++i) {
      out.cloud_demand[i] = out.capacity.chunks[i].bandwidth;
    }
  }

  out.total_cloud_demand = 0.0;
  for (double d : out.cloud_demand) out.total_cloud_demand += d;
  return out;
}

}  // namespace cloudmedia::core
