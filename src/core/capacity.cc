#include "core/capacity.h"

#include "util/check.h"

namespace cloudmedia::core {

CapacityPlanner::CapacityPlanner(VodParameters params, CapacityModel model)
    : params_(params), model_(model) {
  params_.validate();
}

ChannelCapacityPlan CapacityPlanner::plan(
    const std::vector<double>& arrival_rates) const {
  CM_EXPECTS(!arrival_rates.empty());
  for (double l : arrival_rates) CM_EXPECTS(l >= 0.0);
  return model_ == CapacityModel::kPerChunkLiteral ? plan_literal(arrival_rates)
                                                   : plan_pooled(arrival_rates);
}

ChannelCapacityPlan CapacityPlanner::plan_literal(
    const std::vector<double>& arrival_rates) const {
  const double mu = params_.service_rate();
  const double t0 = params_.chunk_duration;

  ChannelCapacityPlan out;
  out.model = CapacityModel::kPerChunkLiteral;
  out.chunks.reserve(arrival_rates.size());
  for (double lambda : arrival_rates) {
    ChunkCapacity c;
    c.arrival_rate = lambda;
    const int m = min_servers(lambda, mu, lambda * t0);
    c.servers = static_cast<double>(m);
    c.bandwidth = params_.vm_bandwidth * c.servers;
    c.expected_in_queue =
        m > 0 ? mmm_metrics(lambda, mu, m).expected_system : 0.0;
    out.total_servers += m;
    out.total_bandwidth += c.bandwidth;
    out.total_arrival_rate += lambda;
    out.chunks.push_back(c);
  }
  return out;
}

ChannelCapacityPlan CapacityPlanner::plan_pooled(
    const std::vector<double>& arrival_rates) const {
  const double mu = params_.service_rate();
  const double t0 = params_.chunk_duration;

  ChannelCapacityPlan out;
  out.model = CapacityModel::kChannelPooled;
  out.chunks.resize(arrival_rates.size());
  double total = 0.0;
  for (double l : arrival_rates) total += l;
  out.total_arrival_rate = total;

  for (std::size_t i = 0; i < arrival_rates.size(); ++i) {
    out.chunks[i].arrival_rate = arrival_rates[i];
  }
  if (total <= 0.0) return out;

  const int pooled = min_servers(total, mu, total * t0);
  out.total_servers = pooled;
  out.total_bandwidth = params_.vm_bandwidth * static_cast<double>(pooled);
  const double sojourn = mmm_metrics(total, mu, pooled).expected_sojourn;

  for (std::size_t i = 0; i < arrival_rates.size(); ++i) {
    ChunkCapacity& c = out.chunks[i];
    const double share = arrival_rates[i] / total;
    c.servers = static_cast<double>(pooled) * share;
    c.bandwidth = out.total_bandwidth * share;
    // Little's law on the chunk's share of the pooled queue.
    c.expected_in_queue = arrival_rates[i] * sojourn;
  }
  return out;
}

}  // namespace cloudmedia::core
