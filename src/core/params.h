#pragma once

#include "util/check.h"

namespace cloudmedia::core {

/// The VoD application model of Sec. III-B, with the paper's experimental
/// values as defaults (Sec. VI-A): streaming rate r = 50 KB/s (400 kbps),
/// chunk playback time T0 = 5 min (so chunks are rT0 = 15 MB), J = 20
/// chunks per 100-minute video, and per-VM bandwidth R = 10 Mbps.
struct VodParameters {
  double streaming_rate = 50'000.0;    ///< r, bytes/s
  double chunk_duration = 300.0;       ///< T0, seconds
  int chunks_per_video = 20;           ///< J
  double vm_bandwidth = 1'250'000.0;   ///< R, bytes/s (10 Mbps); must be > r

  /// Chunk size rT0 in bytes (15 MB with paper defaults).
  [[nodiscard]] double chunk_bytes() const noexcept {
    return streaming_rate * chunk_duration;
  }

  /// Queueing service rate µ of one VM-server: R = µ · rT0 (Sec. IV-A),
  /// i.e. µ = R / (rT0) chunk-downloads per second.
  [[nodiscard]] double service_rate() const noexcept {
    return vm_bandwidth / chunk_bytes();
  }

  void validate() const {
    CM_EXPECTS(streaming_rate > 0.0);
    CM_EXPECTS(chunk_duration > 0.0);
    CM_EXPECTS(chunks_per_video >= 1);
    // R > r is required for feasibility: retrieval of a T0-chunk must be
    // able to finish within T0 (Sec. III-C).
    CM_EXPECTS(vm_bandwidth > streaming_rate);
  }
};

}  // namespace cloudmedia::core
