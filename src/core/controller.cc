#include "core/controller.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace cloudmedia::core {

ModelBasedPolicy::ModelBasedPolicy(VodParameters params,
                                   DemandEstimatorConfig config)
    : estimator_(params, config) {}

DemandSet ModelBasedPolicy::estimate(const TrackerReport& report) {
  DemandSet out;
  out.cloud_demand.reserve(report.channels.size());
  out.estimates.reserve(report.channels.size());
  for (const ChannelObservation& obs : report.channels) {
    ChannelDemandEstimate est = estimator_.estimate(obs);
    out.cloud_demand.push_back(est.cloud_demand);
    out.estimates.push_back(std::move(est));
  }
  return out;
}

ReactivePolicy::ReactivePolicy(VodParameters params, double margin)
    : params_(params), margin_(margin) {
  params_.validate();
  CM_EXPECTS(margin >= 1.0);
}

DemandSet ReactivePolicy::estimate(const TrackerReport& report) {
  const auto j = static_cast<std::size_t>(params_.chunks_per_video);
  DemandSet out;
  out.cloud_demand.reserve(report.channels.size());
  for (const ChannelObservation& obs : report.channels) {
    std::vector<double> demand(j, 0.0);
    for (std::size_t i = 0; i < j; ++i) {
      double load = 0.0;
      if (!obs.served_cloud_bandwidth.empty()) {
        CM_EXPECTS(obs.served_cloud_bandwidth.size() == j);
        load = obs.served_cloud_bandwidth[i];
      }
      if (!obs.occupancy.empty()) {
        CM_EXPECTS(obs.occupancy.size() == j);
        // Users currently parked at chunk i consume r each; this is what
        // lets a usage-chaser recover from a cold start or a stall (served
        // bandwidth alone is zero in both).
        load = std::max(load, obs.occupancy[i] * params_.streaming_rate);
      }
      demand[i] = load * margin_;
    }
    out.cloud_demand.push_back(std::move(demand));
  }
  return out;
}

StaticPolicy::StaticPolicy(std::vector<std::vector<double>> cloud_demand)
    : demand_(std::move(cloud_demand)) {
  CM_EXPECTS(!demand_.empty());
  for (const auto& channel : demand_) {
    for (double d : channel) CM_EXPECTS(d >= 0.0);
  }
}

DemandSet StaticPolicy::estimate(const TrackerReport& report) {
  CM_EXPECTS(report.channels.size() == demand_.size());
  DemandSet out;
  out.cloud_demand = demand_;
  return out;
}

SeasonalPolicy::SeasonalPolicy(VodParameters params,
                               DemandEstimatorConfig config, double period,
                               double blend, double ewma)
    : estimator_(params, config), period_(period), blend_(blend), ewma_(ewma) {
  CM_EXPECTS(period_ > 0.0);
  CM_EXPECTS(blend_ >= 0.0 && blend_ <= 1.0);
  CM_EXPECTS(ewma_ > 0.0 && ewma_ <= 1.0);
}

double SeasonalPolicy::seasonal_rate(int channel, int slot) const {
  if (channel < 0 || static_cast<std::size_t>(channel) >= history_.size())
    return -1.0;
  const auto& row = history_[static_cast<std::size_t>(channel)];
  if (slot < 0 || static_cast<std::size_t>(slot) >= row.size()) return -1.0;
  return row[static_cast<std::size_t>(slot)];
}

DemandSet SeasonalPolicy::estimate(const TrackerReport& report) {
  CM_EXPECTS(report.interval_length > 0.0);
  if (slots_ == 0) {
    slots_ = std::max(1, static_cast<int>(std::lround(period_ / report.interval_length)));
    history_.assign(report.channels.size(),
                    std::vector<double>(static_cast<std::size_t>(slots_), -1.0));
  }
  CM_EXPECTS(history_.size() == report.channels.size());

  const auto slot_of = [&](double t) {
    const double phase = std::fmod(t, period_);
    return static_cast<int>(phase / report.interval_length) % slots_;
  };
  const int measured_slot = slot_of(report.interval_start);
  const int next_slot = slot_of(report.interval_start + report.interval_length);

  DemandSet out;
  out.cloud_demand.reserve(report.channels.size());
  out.estimates.reserve(report.channels.size());
  for (std::size_t c = 0; c < report.channels.size(); ++c) {
    std::vector<double>& row = history_[c];
    double& slot_rate = row[static_cast<std::size_t>(measured_slot)];
    const double measured = report.channels[c].arrival_rate;
    slot_rate = slot_rate < 0.0 ? measured
                                : (1.0 - ewma_) * slot_rate + ewma_ * measured;

    ChannelObservation obs = report.channels[c];
    const double seasonal = row[static_cast<std::size_t>(next_slot)];
    // Persistence until the same slot has been seen at least once.
    obs.arrival_rate = seasonal < 0.0
                           ? measured
                           : (1.0 - blend_) * measured + blend_ * seasonal;
    ChannelDemandEstimate est = estimator_.estimate(obs);
    out.cloud_demand.push_back(est.cloud_demand);
    out.estimates.push_back(std::move(est));
  }
  return out;
}

ClairvoyantPolicy::ClairvoyantPolicy(
    VodParameters params, DemandEstimatorConfig config,
    std::function<double(int, double, double)> future_rate)
    : estimator_(params, config), future_rate_(std::move(future_rate)) {
  CM_EXPECTS(future_rate_ != nullptr);
}

DemandSet ClairvoyantPolicy::estimate(const TrackerReport& report) {
  const double t0 = report.interval_start + report.interval_length;
  const double t1 = t0 + report.interval_length;
  DemandSet out;
  out.cloud_demand.reserve(report.channels.size());
  out.estimates.reserve(report.channels.size());
  for (std::size_t c = 0; c < report.channels.size(); ++c) {
    // The oracle swaps the measured rate for the true mean rate of the
    // interval the plan will serve; viewing patterns stay as measured.
    ChannelObservation obs = report.channels[c];
    obs.arrival_rate = future_rate_(static_cast<int>(c), t0, t1);
    ChannelDemandEstimate est = estimator_.estimate(obs);
    out.cloud_demand.push_back(est.cloud_demand);
    out.estimates.push_back(std::move(est));
  }
  return out;
}

void ControllerConfig::validate() const {
  CM_EXPECTS(!vm_clusters.empty());
  CM_EXPECTS(!nfs_clusters.empty());
  for (const VmClusterSpec& c : vm_clusters) c.validate();
  for (const NfsClusterSpec& c : nfs_clusters) c.validate();
  CM_EXPECTS(vm_budget_per_hour >= 0.0);
  CM_EXPECTS(storage_budget_per_hour >= 0.0);
}

Controller::Controller(VodParameters params, ControllerConfig config,
                       std::unique_ptr<DemandPolicy> policy)
    : params_(params), config_(std::move(config)), policy_(std::move(policy)) {
  params_.validate();
  config_.validate();
  CM_EXPECTS(policy_ != nullptr);
}

void Controller::set_budgets(double vm_budget_per_hour,
                             double storage_budget_per_hour) {
  config_.vm_budget_per_hour = vm_budget_per_hour;
  config_.storage_budget_per_hour = storage_budget_per_hour;
  config_.validate();
}

ProvisioningPlan Controller::plan(const TrackerReport& report) const {
  const auto j = static_cast<std::size_t>(params_.chunks_per_video);

  ProvisioningPlan out;
  out.demand = policy_->estimate(report);
  CM_ENSURES(out.demand.cloud_demand.size() == report.channels.size());

  // Flatten [channel][chunk] demand for the two optimizers.
  std::vector<ChunkDemand> flat;
  flat.reserve(report.channels.size() * j);
  for (std::size_t c = 0; c < out.demand.cloud_demand.size(); ++c) {
    CM_ENSURES(out.demand.cloud_demand[c].size() == j);
    for (std::size_t i = 0; i < j; ++i) {
      flat.push_back(ChunkDemand{
          ChunkRef{static_cast<int>(c), static_cast<int>(i)},
          out.demand.cloud_demand[c][i]});
    }
  }

  // Storage rental (Sec. V-A1). Note every chunk must be stored regardless
  // of demand: the cloud is "the only persistent source of all original
  // videos" (Sec. III-B).
  out.storage_problem = StorageProblem{config_.nfs_clusters, flat,
                                       params_.chunk_bytes(),
                                       config_.storage_budget_per_hour};
  out.storage = solve_storage_greedy(out.storage_problem);
  out.storage_cost_rate = out.storage.cost_per_hour;

  // VM configuration (Sec. V-A2).
  out.vm_problem = VmProblem{config_.vm_clusters, flat, params_.vm_bandwidth,
                             config_.vm_budget_per_hour};
  out.vm = solve_vm_greedy(out.vm_problem);
  out.instances = pack_instances(out.vm_problem, out.vm);
  out.vm_cost_rate = out.instances.cost_per_hour;

  // Realized per-chunk bandwidth (what the schedulers will provide).
  out.chunk_cloud_bandwidth.assign(report.channels.size(),
                                   std::vector<double>(j, 0.0));
  for (std::size_t k = 0; k < flat.size(); ++k) {
    double vms = 0.0;
    for (double share : out.vm.z[k]) vms += share;
    const double bandwidth = vms * params_.vm_bandwidth;
    const ChunkRef ref = flat[k].ref;
    out.chunk_cloud_bandwidth[static_cast<std::size_t>(ref.channel)]
                             [static_cast<std::size_t>(ref.chunk)] = bandwidth;
    out.reserved_bandwidth += bandwidth;
  }
  return out;
}

}  // namespace cloudmedia::core
