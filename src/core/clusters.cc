#include "core/clusters.h"

namespace cloudmedia::core {

std::vector<VmClusterSpec> paper_vm_clusters() {
  return {
      {"standard", 0.6, 0.450, 75},
      {"medium", 0.8, 0.700, 30},
      {"advanced", 1.0, 0.800, 45},
  };
}

std::vector<NfsClusterSpec> paper_nfs_clusters() {
  return {
      {"standard", 0.8, 1.11e-4, 20e9},
      {"high", 1.0, 2.08e-4, 20e9},
  };
}

}  // namespace cloudmedia::core
