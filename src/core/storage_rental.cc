#include "core/storage_rental.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace cloudmedia::core {

void StorageProblem::validate() const {
  CM_EXPECTS(!clusters.empty());
  for (const NfsClusterSpec& c : clusters) c.validate();
  CM_EXPECTS(chunk_bytes > 0.0);
  CM_EXPECTS(budget_per_hour >= 0.0);
  for (const ChunkDemand& d : chunks) CM_EXPECTS(d.demand >= 0.0);
}

namespace {

struct ClusterState {
  std::size_t index;
  int slots;             ///< remaining chunk slots: floor(S_f / rT0)
  double cost_per_chunk; ///< p_f · rT0 per hour
  double utility;
};

std::vector<ClusterState> make_states(const StorageProblem& problem) {
  std::vector<ClusterState> states;
  states.reserve(problem.clusters.size());
  for (std::size_t f = 0; f < problem.clusters.size(); ++f) {
    const NfsClusterSpec& spec = problem.clusters[f];
    states.push_back(ClusterState{
        f,
        static_cast<int>(std::floor(spec.capacity_bytes / problem.chunk_bytes)),
        spec.price_per_byte_hour() * problem.chunk_bytes,
        spec.utility,
    });
  }
  return states;
}

}  // namespace

StorageAssignment solve_storage_greedy(const StorageProblem& problem) {
  problem.validate();

  std::vector<ClusterState> states = make_states(problem);
  // Clusters by decreasing marginal utility per unit cost u_f / p_f
  // (Sec. V-A1); name-independent deterministic tie-break by index.
  std::vector<std::size_t> cluster_order(states.size());
  std::iota(cluster_order.begin(), cluster_order.end(), std::size_t{0});
  std::stable_sort(cluster_order.begin(), cluster_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ra = states[a].utility / states[a].cost_per_chunk;
                     const double rb = states[b].utility / states[b].cost_per_chunk;
                     return ra > rb;
                   });

  // Chunks by decreasing demand Δ.
  std::vector<std::size_t> chunk_order(problem.chunks.size());
  std::iota(chunk_order.begin(), chunk_order.end(), std::size_t{0});
  std::stable_sort(chunk_order.begin(), chunk_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.chunks[a].demand > problem.chunks[b].demand;
                   });

  StorageAssignment out;
  out.cluster_of.assign(problem.chunks.size(), -1);
  out.feasible = true;
  double spent = 0.0;

  for (std::size_t idx : chunk_order) {
    bool placed = false;
    for (std::size_t rank : cluster_order) {
      ClusterState& s = states[rank];
      if (s.slots <= 0) continue;
      if (spent + s.cost_per_chunk > problem.budget_per_hour + 1e-12) continue;
      --s.slots;
      spent += s.cost_per_chunk;
      out.cluster_of[idx] = static_cast<int>(s.index);
      out.total_utility += s.utility * problem.chunks[idx].demand;
      placed = true;
      break;
    }
    if (!placed) out.feasible = false;  // budget or capacity exhausted
  }
  out.cost_per_hour = spent;
  return out;
}

namespace {

// Depth-first exact search. Chunks are visited in decreasing demand so the
// optimistic bound (remaining demand × best utility) prunes aggressively.
struct ExactSearch {
  const StorageProblem& problem;
  std::vector<ClusterState> states;
  std::vector<std::size_t> chunk_order;
  std::vector<double> suffix_demand;
  double best_utility = -1.0;
  std::vector<int> best_assignment;
  std::vector<int> current;
  double current_utility = 0.0;
  double current_cost = 0.0;
  double max_utility = 0.0;
  std::uint64_t nodes = 0;
  static constexpr std::uint64_t kNodeCap = 20'000'000;

  explicit ExactSearch(const StorageProblem& p)
      : problem(p), states(make_states(p)) {
    chunk_order.resize(p.chunks.size());
    std::iota(chunk_order.begin(), chunk_order.end(), std::size_t{0});
    std::stable_sort(chunk_order.begin(), chunk_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return p.chunks[a].demand > p.chunks[b].demand;
                     });
    suffix_demand.assign(p.chunks.size() + 1, 0.0);
    for (std::size_t k = p.chunks.size(); k-- > 0;) {
      suffix_demand[k] =
          suffix_demand[k + 1] + p.chunks[chunk_order[k]].demand;
    }
    for (const ClusterState& s : states)
      max_utility = std::max(max_utility, s.utility);
    current.assign(p.chunks.size(), -1);
  }

  void dfs(std::size_t depth) {
    if (++nodes > kNodeCap) {
      throw util::PreconditionError(
          "solve_storage_exact: instance too large for exact search");
    }
    if (depth == chunk_order.size()) {
      if (current_utility > best_utility) {
        best_utility = current_utility;
        best_assignment = current;
      }
      return;
    }
    // Optimistic bound: everything left placed at the best utility.
    if (current_utility + suffix_demand[depth] * max_utility <=
        best_utility + 1e-12) {
      return;
    }
    const std::size_t idx = chunk_order[depth];
    for (ClusterState& s : states) {
      if (s.slots <= 0) continue;
      if (current_cost + s.cost_per_chunk > problem.budget_per_hour + 1e-12)
        continue;
      --s.slots;
      current_cost += s.cost_per_chunk;
      current_utility += s.utility * problem.chunks[idx].demand;
      current[idx] = static_cast<int>(s.index);
      dfs(depth + 1);
      current[idx] = -1;
      current_utility -= s.utility * problem.chunks[idx].demand;
      current_cost -= s.cost_per_chunk;
      ++s.slots;
    }
  }
};

}  // namespace

StorageAssignment solve_storage_exact(const StorageProblem& problem) {
  problem.validate();
  ExactSearch search(problem);
  search.dfs(0);
  StorageAssignment out;
  if (search.best_utility < 0.0) {
    // No complete assignment exists under the budget/capacity.
    out.cluster_of.assign(problem.chunks.size(), -1);
    out.feasible = false;
    return out;
  }
  return audit_storage_assignment(problem, search.best_assignment);
}

StorageAssignment audit_storage_assignment(const StorageProblem& problem,
                                           const std::vector<int>& cluster_of) {
  problem.validate();
  CM_EXPECTS(cluster_of.size() == problem.chunks.size());
  std::vector<ClusterState> states = make_states(problem);

  StorageAssignment out;
  out.cluster_of = cluster_of;
  out.feasible = true;
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    const int f = cluster_of[i];
    if (f < 0) {
      out.feasible = false;
      continue;
    }
    CM_EXPECTS(static_cast<std::size_t>(f) < problem.clusters.size());
    ClusterState& s = states[static_cast<std::size_t>(f)];
    CM_ENSURES(s.slots > 0);  // capacity constraint
    --s.slots;
    out.cost_per_hour += s.cost_per_chunk;
    out.total_utility += s.utility * problem.chunks[i].demand;
  }
  CM_ENSURES(out.cost_per_hour <= problem.budget_per_hour + 1e-9);
  return out;
}

double channel_storage_utility(const StorageProblem& problem,
                               const StorageAssignment& assignment,
                               int channel) {
  CM_EXPECTS(assignment.cluster_of.size() == problem.chunks.size());
  double utility = 0.0;
  for (std::size_t i = 0; i < problem.chunks.size(); ++i) {
    if (problem.chunks[i].ref.channel != channel) continue;
    const int f = assignment.cluster_of[i];
    if (f < 0) continue;
    utility += problem.clusters[static_cast<std::size_t>(f)].utility *
               problem.chunks[i].demand;
  }
  return utility;
}

}  // namespace cloudmedia::core
