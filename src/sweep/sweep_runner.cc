#include "sweep/sweep_runner.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <future>
#include <mutex>
#include <vector>

#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"

namespace cloudmedia::sweep {

namespace {

[[noreturn]] void fail_shard_syntax(const std::string& text) {
  throw util::PreconditionError(
      "shard must be k/N with integers 0 <= k < N — shard 0/2 and 1/2 "
      "together cover the grid (given '" +
      text + "')");
}

/// Parse a base-10 std::size_t spanning exactly [begin, end); no sign, no
/// whitespace, no stray characters.
bool parse_size(const std::string& text, std::size_t begin, std::size_t end,
                std::size_t& out) {
  if (begin >= end) return false;
  std::size_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (!std::isdigit(c)) return false;
    if (value > (static_cast<std::size_t>(-1) - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}

}  // namespace

ShardSpec ShardSpec::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) fail_shard_syntax(text);
  ShardSpec shard;
  if (!parse_size(text, 0, slash, shard.index) ||
      !parse_size(text, slash + 1, text.size(), shard.count)) {
    fail_shard_syntax(text);
  }
  if (shard.count < 1 || shard.index >= shard.count) fail_shard_syntax(text);
  return shard;
}

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

void SweepSpec::apply_flags(const expr::Flags& flags) {
  base_seed = static_cast<std::uint64_t>(
      flags.get_ll("seed", static_cast<long long>(base_seed)));
  const long long requested =
      flags.get_ll("threads", static_cast<long long>(threads));
  if (requested < 0 || requested > 1024) {
    throw util::PreconditionError(
        "--threads must be in [0, 1024] (0 = hardware)");
  }
  threads = static_cast<unsigned>(requested);
  // Negation-style guards (!(x >= 0)) also catch NaN, which would sail
  // through `x < 0` and only explode later inside the runner.
  const double warmup = flags.get("warmup", warmup_hours);
  if (!(warmup >= 0.0) || !std::isfinite(warmup)) {
    throw util::PreconditionError(
        "--warmup must be a finite number of hours >= 0");
  }
  warmup_hours = warmup;
  const double hours = flags.get("hours", measure_hours);
  if (!(hours > 0.0) || !std::isfinite(hours)) {
    throw util::PreconditionError(
        "--hours must be a finite number of hours > 0");
  }
  measure_hours = hours;
  const long long stride = flags.get_ll(
      "series-stride", static_cast<long long>(series_stride));
  if (stride < 1) {
    throw util::PreconditionError("--series-stride must be >= 1");
  }
  series_stride = static_cast<std::size_t>(stride);
  if (flags.has("shard")) {
    shard = ShardSpec::parse(flags.get("shard", std::string()));
  }
}

std::string SweepSpec::spec_hash() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  const auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    // Field separator outside the byte alphabet, so ("ab","c") and
    // ("a","bc") hash differently.
    h ^= 0x1ffu;
    h *= 1099511628211ull;
  };
  mix(scenario);
  mix(std::to_string(base_seed));
  mix(util::format_number(warmup_hours));
  mix(util::format_number(measure_hours));
  // Overrides change what every cell computes, so they belong in the hash;
  // mixing only when present keeps override-free hashes identical to
  // pre-override builds (shard headers from old runs still merge).
  for (const auto& [name, value] : overrides) {
    mix("override:" + name);
    mix(value);
  }
  for (const ParamAxis& axis : grid.axes()) {
    mix(axis.name);
    for (const std::string& value : axis.values) mix(value);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::uint64_t SweepRunner::run_seed(std::uint64_t base_seed,
                                    const GridPoint& point) {
  return util::mix64(util::mix64(base_seed) ^ ParamGrid::workload_hash(point));
}

std::vector<std::size_t> SweepRunner::shard_cells(std::size_t total,
                                                  const ShardSpec& shard) {
  CM_EXPECTS(shard.count >= 1 && shard.index < shard.count);
  std::vector<std::size_t> cells;
  for (std::size_t i = shard.index; i < total; i += shard.count) {
    cells.push_back(i);
  }
  return cells;
}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const ScenarioCatalog& catalog) {
  CM_EXPECTS(spec.warmup_hours >= 0.0 && spec.measure_hours > 0.0);
  CM_EXPECTS(spec.series_stride >= 1);
  // Series cannot stream: a sink takes scalar rows only.
  CM_EXPECTS(!(spec.keep_results && spec.sink));
  const std::vector<std::size_t> cells =
      shard_cells(spec.grid.num_points(), spec.shard);
  const std::size_t n = cells.size();

  SweepResult result;
  result.scenario = spec.scenario;
  result.base_seed = spec.base_seed;
  result.axes = spec.grid.axes();
  result.shard_index = spec.shard.index;
  result.shard_count = spec.shard.count;
  result.total_cells = spec.grid.num_points();
  result.spec_hash = spec.spec_hash();
  if (!spec.shard.whole()) result.cell_indices = cells;
  if (!spec.sink) result.runs.resize(n);
  if (spec.keep_results) result.results.resize(n);

  // Resolve the scenario expression once, up front: an unknown or
  // malformed composite fails fast before spinning up workers, and every
  // run applies the same resolved op list.
  const Scenario scenario = catalog.resolve(spec.scenario);

  auto run_one = [&](std::size_t slot) {
    const std::size_t cell = cells[slot];
    const GridPoint point = spec.grid.point(cell);
    expr::ExperimentConfig config =
        expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
    scenario.apply(config);
    config.warmup_hours = spec.warmup_hours;
    config.measure_hours = spec.measure_hours;
    // Precedence, weakest to strongest: scenario < overrides < customize
    // < grid point. Overrides are spec-wide constants, so like the
    // scenario they stay out of the per-run seed.
    for (const auto& [name, value] : spec.overrides) {
      apply_parameter(config, name, value);
    }
    if (spec.customize) spec.customize(config);
    for (const auto& [name, value] : point.coords) {
      apply_parameter(config, name, value);
    }
    // Seeded from the *global* cell's workload coordinates, so every
    // shard layout replays the byte-identical viewer populations.
    config.seed = run_seed(spec.base_seed, point);
    expr::ExperimentResult run_result = expr::ExperimentRunner::run(config);
    RunSummary summary = RunSummary::from_result(spec.scenario, point,
                                                 config.seed, run_result);
    if (spec.sink) {
      spec.sink(cell, std::move(summary));
      return;
    }
    result.runs[slot] = std::move(summary);
    if (spec.keep_results) {
      // Summaries above already captured the full-resolution window stats;
      // retained series only need the shape.
      run_result.metrics.downsample(spec.series_stride);
      result.results[slot] = std::move(run_result);
    }
  };

  const unsigned threads =
      spec.threads == 0 ? ThreadPool::default_threads() : spec.threads;
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return result;
  }

  // One looping worker per thread, cells claimed off an atomic counter —
  // NOT one queued task per cell. A million-cell grid would otherwise hold
  // a million packaged tasks + futures resident before the first run
  // finishes; this keeps the runner's footprint O(threads), which is what
  // lets a streaming-sink sweep stay flat no matter the grid size.
  std::atomic<std::size_t> next_slot{0};
  std::mutex error_mutex;
  std::size_t first_error_slot = n;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= n) return;
      try {
        run_one(slot);
      } catch (...) {
        // Keep running the remaining cells (matching the old drain-every-
        // future behaviour) and report the failure that is first in grid
        // order, deterministically, regardless of completion order.
        std::lock_guard<std::mutex> lock(error_mutex);
        if (slot < first_error_slot) {
          first_error_slot = slot;
          first_error = std::current_exception();
        }
      }
    }
  };

  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    futures.push_back(pool.submit(worker));
  }
  for (std::future<void>& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace cloudmedia::sweep
