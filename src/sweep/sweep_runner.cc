#include "sweep/sweep_runner.h"

#include <cmath>
#include <future>
#include <vector>

#include "sweep/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace cloudmedia::sweep {

void SweepSpec::apply_flags(const expr::Flags& flags) {
  base_seed = static_cast<std::uint64_t>(
      flags.get_ll("seed", static_cast<long long>(base_seed)));
  const long long requested =
      flags.get_ll("threads", static_cast<long long>(threads));
  if (requested < 0 || requested > 1024) {
    throw util::PreconditionError(
        "--threads must be in [0, 1024] (0 = hardware)");
  }
  threads = static_cast<unsigned>(requested);
  // Negation-style guards (!(x >= 0)) also catch NaN, which would sail
  // through `x < 0` and only explode later inside the runner.
  const double warmup = flags.get("warmup", warmup_hours);
  if (!(warmup >= 0.0) || !std::isfinite(warmup)) {
    throw util::PreconditionError(
        "--warmup must be a finite number of hours >= 0");
  }
  warmup_hours = warmup;
  const double hours = flags.get("hours", measure_hours);
  if (!(hours > 0.0) || !std::isfinite(hours)) {
    throw util::PreconditionError(
        "--hours must be a finite number of hours > 0");
  }
  measure_hours = hours;
  const long long stride = flags.get_ll(
      "series-stride", static_cast<long long>(series_stride));
  if (stride < 1) {
    throw util::PreconditionError("--series-stride must be >= 1");
  }
  series_stride = static_cast<std::size_t>(stride);
}

std::uint64_t SweepRunner::run_seed(std::uint64_t base_seed,
                                    const GridPoint& point) {
  return util::mix64(util::mix64(base_seed) ^ ParamGrid::workload_hash(point));
}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const ScenarioCatalog& catalog) {
  CM_EXPECTS(spec.warmup_hours >= 0.0 && spec.measure_hours > 0.0);
  CM_EXPECTS(spec.series_stride >= 1);
  const std::size_t n = spec.grid.num_points();

  SweepResult result;
  result.scenario = spec.scenario;
  result.base_seed = spec.base_seed;
  result.axes = spec.grid.axes();
  result.runs.resize(n);
  if (spec.keep_results) result.results.resize(n);

  // Resolve the scenario expression once, up front: an unknown or
  // malformed composite fails fast before spinning up workers, and every
  // run applies the same resolved op list.
  const Scenario scenario = catalog.resolve(spec.scenario);

  auto run_one = [&](std::size_t index) {
    const GridPoint point = spec.grid.point(index);
    expr::ExperimentConfig config =
        expr::ExperimentConfig::make_default(core::StreamingMode::kClientServer);
    scenario.apply(config);
    config.warmup_hours = spec.warmup_hours;
    config.measure_hours = spec.measure_hours;
    if (spec.customize) spec.customize(config);
    for (const auto& [name, value] : point.coords) {
      apply_parameter(config, name, value);
    }
    config.seed = run_seed(spec.base_seed, point);
    expr::ExperimentResult run_result = expr::ExperimentRunner::run(config);
    result.runs[index] = RunSummary::from_result(spec.scenario, point,
                                                 config.seed, run_result);
    if (spec.keep_results) {
      // Summaries above already captured the full-resolution window stats;
      // retained series only need the shape.
      run_result.metrics.downsample(spec.series_stride);
      result.results[index] = std::move(run_result);
    }
  };

  const unsigned threads =
      spec.threads == 0 ? ThreadPool::default_threads() : spec.threads;
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return result;
  }

  ThreadPool pool(threads);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
  }
  // Drain every future before letting exceptions propagate so no worker is
  // left writing into `result` after run() unwinds.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace cloudmedia::sweep
