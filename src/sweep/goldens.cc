#include "sweep/goldens.h"

#include "profile/embedded.h"
#include "util/check.h"
#include "util/json.h"

namespace cloudmedia::sweep {

namespace {

/// Parse one embedded profiles/<name>.json into a preset, enforcing the
/// golden-layer contract on top of the profile schema: the file stem names
/// the preset (and its goldens/<name>.{csv,json} snapshots), so stem and
/// "name" field must agree; every snapshot is generated at kGoldenSeed;
/// and the description documents what regression the snapshot guards.
GoldenPreset make_preset(const profile::EmbeddedProfile& embedded) {
  GoldenPreset preset;
  preset.name = embedded.name;
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse(embedded.json);
    preset.profile = profile::Profile::from_json(doc);
  } catch (const std::exception& error) {
    throw util::PreconditionError("golden profile 'profiles/" + preset.name +
                                  ".json': " + error.what());
  }
  const auto contract = [&preset](const std::string& why) {
    throw util::PreconditionError("golden profile 'profiles/" + preset.name +
                                  ".json': " + why);
  };
  if (preset.profile.name != preset.name) {
    contract("its \"name\" field says '" + preset.profile.name +
             "' but the file stem says '" + preset.name +
             "' — the stem names the goldens/<name>.{csv,json} snapshots, "
             "so the two must agree");
  }
  if (preset.profile.description.empty()) {
    contract("needs a \"description\" saying what regression the golden "
             "snapshot guards");
  }
  if (preset.profile.seed != kGoldenSeed) {
    contract("golden snapshots are generated at seed " +
             std::to_string(kGoldenSeed) + ", got " +
             std::to_string(preset.profile.seed) +
             " (non-golden experiments belong in a profile outside "
             "profiles/)");
  }
  if (!preset.profile.shard.whole()) {
    contract("a golden profile covers the whole grid; shard with "
             "`tool_sweep --shard=k/N` at run time instead");
  }
  preset.description = preset.profile.description;
  preset.spec = SweepSpec::from_profile(preset.profile);
  return preset;
}

std::vector<GoldenPreset> build_presets() {
  std::vector<GoldenPreset> presets;
  for (const profile::EmbeddedProfile& embedded :
       profile::embedded_golden_profiles()) {
    presets.push_back(make_preset(embedded));
  }
  if (presets.empty()) {
    throw util::PreconditionError(
        "no golden profiles were embedded — profiles/*.json missing at "
        "build time?");
  }
  return presets;
}

}  // namespace

const std::vector<GoldenPreset>& golden_presets() {
  static const std::vector<GoldenPreset> presets = build_presets();
  return presets;
}

const GoldenPreset& golden_preset(const std::string& name) {
  for (const GoldenPreset& preset : golden_presets()) {
    if (preset.name == name) return preset;
  }
  std::string known;
  for (const GoldenPreset& preset : golden_presets()) {
    if (!known.empty()) known += ", ";
    known += preset.name;
  }
  throw util::PreconditionError("unknown golden preset '" + name +
                                "' (known: " + known + ")");
}

}  // namespace cloudmedia::sweep
