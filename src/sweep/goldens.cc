#include "sweep/goldens.h"

#include "util/check.h"

namespace cloudmedia::sweep {

namespace {

GoldenPreset make_preset(std::string name, std::string description,
                         std::string scenario, double warmup_hours,
                         double measure_hours) {
  GoldenPreset preset;
  preset.name = std::move(name);
  preset.description = std::move(description);
  preset.spec.scenario = std::move(scenario);
  preset.spec.base_seed = kGoldenSeed;
  preset.spec.threads = 0;  // output is thread-count-invariant by contract
  preset.spec.warmup_hours = warmup_hours;
  preset.spec.measure_hours = measure_hours;
  return preset;
}

std::vector<GoldenPreset> build_presets() {
  std::vector<GoldenPreset> presets;

  // The CI smoke demo grid: the paper's central C/S-vs-P2P comparison under
  // a flash crowd, at two channel counts.
  GoldenPreset demo = make_preset(
      "sweep_demo", "flash-crowd C/S vs P2P demo grid (the CI smoke sweep)",
      "flash_crowd", 0.25, 1.0);
  demo.spec.grid.add_axis("channels", {"4", "8"});
  demo.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(demo));

  // Downsized Fig. 6 family: both deployment modes over the diurnal
  // baseline, sharing one derived seed (mode is system-side).
  GoldenPreset fig06 = make_preset(
      "fig06_modes", "Fig. 6 family: C/S vs P2P on the diurnal baseline",
      "baseline_diurnal", 0.5, 2.0);
  fig06.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig06));

  // Downsized provisioning-strategy ablation: every strategy faces the
  // byte-identical workload, so any provisioning change moves a metric.
  GoldenPreset strategies = make_preset(
      "ablation_strategies", "provisioning-strategy ablation, shared workload",
      "baseline_diurnal", 0.5, 2.0);
  strategies.spec.grid.add_axis(
      "strategy",
      {"model", "model-nofloor", "reactive", "static", "seasonal", "clairvoyant"});
  presets.push_back(std::move(strategies));

  return presets;
}

}  // namespace

const std::vector<GoldenPreset>& golden_presets() {
  static const std::vector<GoldenPreset> presets = build_presets();
  return presets;
}

const GoldenPreset& golden_preset(const std::string& name) {
  for (const GoldenPreset& preset : golden_presets()) {
    if (preset.name == name) return preset;
  }
  std::string known;
  for (const GoldenPreset& preset : golden_presets()) {
    if (!known.empty()) known += ", ";
    known += preset.name;
  }
  throw util::PreconditionError("unknown golden preset '" + name +
                                "' (known: " + known + ")");
}

}  // namespace cloudmedia::sweep
