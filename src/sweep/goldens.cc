#include "sweep/goldens.h"

#include "util/check.h"

namespace cloudmedia::sweep {

namespace {

GoldenPreset make_preset(std::string name, std::string description,
                         std::string scenario, double warmup_hours,
                         double measure_hours) {
  GoldenPreset preset;
  preset.name = std::move(name);
  preset.description = std::move(description);
  preset.spec.scenario = std::move(scenario);
  preset.spec.base_seed = kGoldenSeed;
  preset.spec.threads = 0;  // output is thread-count-invariant by contract
  preset.spec.warmup_hours = warmup_hours;
  preset.spec.measure_hours = measure_hours;
  return preset;
}

std::vector<GoldenPreset> build_presets() {
  std::vector<GoldenPreset> presets;

  // The CI smoke demo grid: the paper's central C/S-vs-P2P comparison under
  // a flash crowd, at two channel counts.
  GoldenPreset demo = make_preset(
      "sweep_demo", "flash-crowd C/S vs P2P demo grid (the CI smoke sweep)",
      "flash_crowd", 0.25, 1.0);
  demo.spec.grid.add_axis("channels", {"4", "8"});
  demo.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(demo));

  // Downsized Fig. 6 family: both deployment modes over the diurnal
  // baseline, sharing one derived seed (mode is system-side).
  GoldenPreset fig06 = make_preset(
      "fig06_modes", "Fig. 6 family: C/S vs P2P on the diurnal baseline",
      "baseline_diurnal", 0.5, 2.0);
  fig06.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig06));

  // Downsized provisioning-strategy ablation: every strategy faces the
  // byte-identical workload, so any provisioning change moves a metric.
  GoldenPreset strategies = make_preset(
      "ablation_strategies", "provisioning-strategy ablation, shared workload",
      "baseline_diurnal", 0.5, 2.0);
  strategies.spec.grid.add_axis(
      "strategy",
      {"model", "model-nofloor", "reactive", "static", "seasonal", "clairvoyant"});
  presets.push_back(std::move(strategies));

  // ------------------------------------------------------------------ figures
  // One preset per paper figure, each the downsized grid its bench_* binary
  // runs at paper horizons. The preset horizons are deliberately short: the
  // golden gate replays every preset twice per commit.

  GoldenPreset fig04 = make_preset(
      "fig04_provisioning",
      "Fig. 4: reserved vs used cloud bandwidth, C/S vs P2P", "baseline_diurnal",
      0.5, 3.0);
  fig04.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig04));

  GoldenPreset fig05 = make_preset(
      "fig05_quality", "Fig. 5: average streaming quality, C/S vs P2P",
      "baseline_diurnal", 0.5, 2.5);
  fig05.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig05));

  GoldenPreset fig07 = make_preset(
      "fig07_bandwidth_scaling",
      "Fig. 7: provisioned bandwidth vs channel size, C/S vs P2P",
      "baseline_diurnal", 0.5, 1.5);
  fig07.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig07));

  GoldenPreset fig08 = make_preset(
      "fig08_storage_utility",
      "Fig. 8: storage-rental utility across channels (P2P)",
      "baseline_diurnal", 0.5, 2.0);
  fig08.spec.grid.add_axis("mode", {"p2p"});
  presets.push_back(std::move(fig08));

  GoldenPreset fig09 = make_preset(
      "fig09_vm_utility",
      "Fig. 9: VM-configuration utility across channels (P2P)",
      "baseline_diurnal", 0.25, 2.0);
  fig09.spec.grid.add_axis("mode", {"p2p"});
  presets.push_back(std::move(fig09));

  GoldenPreset fig10 = make_preset(
      "fig10_vm_cost", "Fig. 10: overall VM rental cost, C/S vs P2P",
      "baseline_diurnal", 0.25, 2.0);
  fig10.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(fig10));

  GoldenPreset fig11 = make_preset(
      "fig11_peer_sufficiency",
      "Fig. 11: P2P quality vs peer uplink / streaming-rate ratio",
      "baseline_diurnal", 0.25, 1.5);
  fig11.spec.grid.add_axis("mode", {"p2p"});
  fig11.spec.grid.add_axis("uplink_ratio", {"0.9", "1", "1.2"});
  presets.push_back(std::move(fig11));

  // ---------------------------------------------------------------- ablations

  GoldenPreset boot = make_preset(
      "ablation_boot_delay",
      "VM boot latency sweep (Sec. VI-C), shared workload", "baseline_diurnal",
      0.25, 1.5);
  boot.spec.grid.add_axis("mode", {"cs"});
  boot.spec.grid.add_axis("boot_delay", {"0", "25", "120", "600", "1800"});
  presets.push_back(std::move(boot));

  GoldenPreset chunk = make_preset(
      "ablation_chunk_size",
      "chunk duration T0 sweep over a 100-minute video (footnote 3)",
      "baseline_diurnal", 0.25, 1.0);
  chunk.spec.grid.add_axis("mode", {"p2p"});
  chunk.spec.grid.add_axis("chunk_minutes", {"2.5", "5", "10", "20"});
  presets.push_back(std::move(chunk));

  GoldenPreset geo = make_preset(
      "ablation_geo",
      "geo federation (Sec. VII): consolidated vs per-region deployments",
      "baseline_diurnal", 0.25, 2.0);
  geo.spec.grid.add_axis("mode", {"p2p"});
  geo.spec.grid.add_axis("region", {"global", "asia", "europe", "americas"});
  presets.push_back(std::move(geo));

  GoldenPreset hetero = make_preset(
      "ablation_hetero",
      "peer-uplink spread at fixed mean (Sec. IV-C heterogeneity)",
      "baseline_diurnal", 0.25, 1.5);
  hetero.spec.grid.add_axis("mode", {"p2p"});
  hetero.spec.grid.add_axis("uplink_shape", {"1.5", "3", "8"});
  presets.push_back(std::move(hetero));

  GoldenPreset p2p_cap = make_preset(
      "ablation_p2p_cap",
      "Eqn.-(5) peer-supply cap: literal vs bandwidth-consistent",
      "baseline_diurnal", 0.25, 1.5);
  p2p_cap.spec.grid.add_axis("mode", {"p2p"});
  p2p_cap.spec.grid.add_axis("p2p_cap", {"literal", "bandwidth"});
  presets.push_back(std::move(p2p_cap));

  GoldenPreset prediction = make_preset(
      "ablation_prediction",
      "arrival-rate forecaster sweep driving the controller (Sec. V-B)",
      "baseline_diurnal", 0.25, 2.0);
  prediction.spec.grid.add_axis("mode", {"cs"});
  prediction.spec.grid.add_axis(
      "forecaster", {"persistence", "moving-average", "holt", "seasonal-ewma",
                     "holt-winters"});
  presets.push_back(std::move(prediction));

  // ------------------------------------------------- scenario algebra (PR 5)
  // Two presets freeze the scenario layer itself: a composite expression
  // resolved through ScenarioCatalog::resolve (guarding the op-
  // concatenation semantics) and the richest new primitive (guarding the
  // catalog growth). Both compare C/S vs P2P so mode stays a shared-seed
  // system axis.

  GoldenPreset composed = make_preset(
      "stress_flash_churn",
      "composed scenario flash_crowd+churn_heavy: spiky arrivals and "
      "zapping viewers at once, C/S vs P2P",
      "flash_crowd+churn_heavy", 0.25, 1.0);
  composed.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(composed));

  GoldenPreset outage = make_preset(
      "regional_outage",
      "survivor stack absorbing a failed region's audience on a 55% "
      "budget slice, C/S vs P2P",
      "regional_outage", 0.25, 1.0);
  outage.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(outage));

  // --------------------------------------------- scheduled timeline (PR 6)
  // Freezes the timed-op machinery end to end: the outage collapses the
  // config at the hour-1 boundary (first boundary >= 45m) and the recovery
  // restores the pre-timeline snapshot at hour 2, inside a 3-hour run —
  // the controller visibly dips and re-converges, and the snapshot pins
  // both transitions byte-for-byte at any thread count.
  GoldenPreset transient = make_preset(
      "outage_transient",
      "mid-run regional outage at 45m healed by a timed recovery at 90m, "
      "C/S vs P2P",
      "regional_outage@45m+recovery@90m", 0.25, 2.75);
  transient.spec.grid.add_axis("mode", {"cs", "p2p"});
  presets.push_back(std::move(transient));

  return presets;
}

}  // namespace

const std::vector<GoldenPreset>& golden_presets() {
  static const std::vector<GoldenPreset> presets = build_presets();
  return presets;
}

const GoldenPreset& golden_preset(const std::string& name) {
  for (const GoldenPreset& preset : golden_presets()) {
    if (preset.name == name) return preset;
  }
  std::string known;
  for (const GoldenPreset& preset : golden_presets()) {
    if (!known.empty()) known += ", ";
    known += preset.name;
  }
  throw util::PreconditionError("unknown golden preset '" + name +
                                "' (known: " + known + ")");
}

}  // namespace cloudmedia::sweep
