#include "sweep/thread_pool.h"

#include <algorithm>

namespace cloudmedia::sweep {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::default_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace cloudmedia::sweep
