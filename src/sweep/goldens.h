#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/profile.h"
#include "sweep/sweep_runner.h"

namespace cloudmedia::sweep {

/// The seed every golden snapshot is generated at. Mirrors
/// cloudmedia::testing::kGoldenSeed (tests/testing/seeds.h); the golden
/// tests assert the two stay equal.
inline constexpr std::uint64_t kGoldenSeed = 42;

/// A named, frozen sweep whose CSV/JSON output is checked in under
/// goldens/<name>.{csv,json}. Each preset is defined by a committed
/// profiles/<name>.json (embedded at build time — see profile/embedded.h)
/// and is the single source of truth shared by `tool_sweep
/// --golden=<name>`, scripts/regen-goldens.sh, the golden_test
/// byte-comparison, and CI's threads-1-vs-N diff job.
///
/// Frozen means frozen: changing a profile's grid, horizon, or scenario —
/// or anything that perturbs the Rng stream it consumes — invalidates the
/// snapshot and requires a deliberate scripts/regen-goldens.sh commit.
struct GoldenPreset {
  std::string name;           ///< file stem under goldens/ and profiles/
  std::string description;    ///< what regression the snapshot guards
  profile::Profile profile;   ///< the declarative definition, as committed
  SweepSpec spec;             ///< SweepSpec::from_profile(profile)
};

/// All presets, in regeneration order (sorted by profile file name).
[[nodiscard]] const std::vector<GoldenPreset>& golden_presets();

/// Lookup by name; throws PreconditionError listing the valid names.
[[nodiscard]] const GoldenPreset& golden_preset(const std::string& name);

}  // namespace cloudmedia::sweep
