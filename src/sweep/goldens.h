#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep_runner.h"

namespace cloudmedia::sweep {

/// The seed every golden snapshot is generated at. Mirrors
/// cloudmedia::testing::kGoldenSeed (tests/testing/seeds.h); the golden
/// tests assert the two stay equal.
inline constexpr std::uint64_t kGoldenSeed = 42;

/// A named, frozen sweep specification whose CSV/JSON output is checked in
/// under goldens/<name>.{csv,json}. The spec is the single source of truth
/// shared by `tool_sweep --golden=<name>`, scripts/regen-goldens.sh, the
/// golden_test byte-comparison, and CI's threads-1-vs-N diff job.
///
/// Frozen means frozen: changing a preset's grid, horizon, or scenario —
/// or anything that perturbs the Rng stream it consumes — invalidates the
/// snapshot and requires a deliberate scripts/regen-goldens.sh commit.
struct GoldenPreset {
  std::string name;         ///< file stem under goldens/
  std::string description;  ///< what regression the snapshot guards
  SweepSpec spec;
};

/// All presets, in regeneration order.
[[nodiscard]] const std::vector<GoldenPreset>& golden_presets();

/// Lookup by name; throws PreconditionError listing the valid names.
[[nodiscard]] const GoldenPreset& golden_preset(const std::string& name);

}  // namespace cloudmedia::sweep
