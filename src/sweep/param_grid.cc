#include "sweep/param_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/federation.h"
#include "predict/forecaster.h"
#include "util/check.h"

namespace cloudmedia::sweep {

namespace {

double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw util::PreconditionError("sweep parameter " + name +
                                  ": not a number: '" + value + "'");
  }
}

int parse_int(const std::string& name, const std::string& value) {
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw util::PreconditionError("sweep parameter " + name +
                                  ": not an integer: '" + value + "'");
  }
}

struct ParameterEntry {
  const char* name;
  bool affects_workload;
  void (*apply)(expr::ExperimentConfig&, const std::string&);
};

void apply_mode(expr::ExperimentConfig& cfg, const std::string& value) {
  if (value == "cs") {
    cfg.mode = core::StreamingMode::kClientServer;
  } else if (value == "p2p") {
    cfg.mode = core::StreamingMode::kP2p;
  } else {
    throw util::PreconditionError("sweep parameter mode: expected cs|p2p, got '" +
                                  value + "'");
  }
}

void apply_strategy(expr::ExperimentConfig& cfg, const std::string& value) {
  if (value == "model") {
    cfg.strategy = expr::Strategy::kModelBased;
    cfg.occupancy_floor = true;
  } else if (value == "model-nofloor") {
    cfg.strategy = expr::Strategy::kModelBased;
    cfg.occupancy_floor = false;
  } else if (value == "reactive") {
    cfg.strategy = expr::Strategy::kReactive;
  } else if (value == "static") {
    cfg.strategy = expr::Strategy::kStatic;
  } else if (value == "seasonal") {
    cfg.strategy = expr::Strategy::kSeasonal;
  } else if (value == "clairvoyant") {
    cfg.strategy = expr::Strategy::kClairvoyant;
  } else if (value == "forecast") {
    cfg.strategy = expr::Strategy::kForecast;
  } else {
    throw util::PreconditionError(
        "sweep parameter strategy: expected model|model-nofloor|reactive|"
        "static|seasonal|clairvoyant|forecast, got '" + value + "'");
  }
}

void apply_capacity(expr::ExperimentConfig& cfg, const std::string& value) {
  if (value == "literal") {
    cfg.capacity_model = core::CapacityModel::kPerChunkLiteral;
  } else if (value == "pooled") {
    cfg.capacity_model = core::CapacityModel::kChannelPooled;
  } else {
    throw util::PreconditionError(
        "sweep parameter capacity: expected literal|pooled, got '" + value +
        "'");
  }
}

void apply_p2p_cap(expr::ExperimentConfig& cfg, const std::string& value) {
  if (value == "literal") {
    cfg.p2p.demand_cap = core::P2pDemandCap::kStreamingRateLiteral;
  } else if (value == "bandwidth") {
    cfg.p2p.demand_cap = core::P2pDemandCap::kProvisionedBandwidth;
  } else {
    throw util::PreconditionError(
        "sweep parameter p2p_cap: expected literal|bandwidth, got '" + value +
        "'");
  }
}

void apply_forecaster(expr::ExperimentConfig& cfg, const std::string& value) {
  predict::ForecasterKind kind;
  try {
    kind = predict::forecaster_kind_from_string(value);
  } catch (const util::PreconditionError&) {
    std::string known;
    for (const predict::ForecasterKind k : predict::all_forecaster_kinds()) {
      if (!known.empty()) known += "|";
      known += predict::to_string(k);
    }
    throw util::PreconditionError("sweep parameter forecaster: expected " +
                                  known + ", got '" + value + "'");
  }
  cfg.strategy = expr::Strategy::kForecast;
  cfg.forecaster.kind = kind;
  cfg.forecaster.period = 24;  // hourly cadence, daily season
}

// The chunk-size axis (ablation_chunk_size, paper footnote 3): T0 in
// minutes over a 100-minute video, so J = round(100 / T0). The physical
// viewing processes stay fixed across T0 — seeks fire at rate 1/15 min,
// departures at 1/37 min — and over one chunk the two exponential risks
// compete:
//   P(neither) = e^{-(rj+rl) T0},  P(jump) = rj/(rj+rl) · (1 − P(neither)),
// which keeps jump + leave <= 1 for any chunk duration.
void apply_chunk_minutes(expr::ExperimentConfig& cfg, const std::string& v) {
  const double t0_minutes = parse_double("chunk_minutes", v);
  if (!(t0_minutes > 0.0) || t0_minutes > 100.0) {
    throw util::PreconditionError(
        "sweep parameter chunk_minutes: expected (0, 100], got '" + v + "'");
  }
  constexpr double kVideoMinutes = 100.0;
  constexpr double kSeekIntervalMinutes = 15.0;
  constexpr double kLeaveIntervalMinutes = 37.0;  // mean viewing time
  cfg.vod.chunk_duration = t0_minutes * 60.0;
  cfg.vod.chunks_per_video =
      static_cast<int>(std::lround(kVideoMinutes / t0_minutes));
  cfg.workload.chunks_per_video = cfg.vod.chunks_per_video;
  const double rj = 1.0 / kSeekIntervalMinutes;
  const double rl = 1.0 / kLeaveIntervalMinutes;
  const double event_prob = 1.0 - std::exp(-(rj + rl) * t0_minutes);
  cfg.workload.behavior.jump_prob = event_prob * rj / (rj + rl);
  cfg.workload.behavior.leave_prob = event_prob * rl / (rj + rl);
}

// The geo axis (ablation_geo, paper Sec. VII): reshape the experiment into
// one region of the default three-region federation — its audience share,
// shifted diurnal clock, regional prices, and proportional budget slice —
// via the same derivation FederationRunner uses. "global" keeps the whole
// audience on one clock (the consolidated baseline).
void apply_region(expr::ExperimentConfig& cfg, const std::string& value) {
  if (value == "global") return;
  geo::FederationConfig federation =
      geo::FederationConfig::make_default(cfg.mode);
  federation.base = cfg;
  for (std::size_t k = 0; k < federation.regions.size(); ++k) {
    if (federation.regions[k].name != value) continue;
    const std::uint64_t seed = cfg.seed;
    cfg = geo::FederationRunner::regional_config(federation, k);
    cfg.seed = seed;  // seeding stays the runner's job, not the applier's
    return;
  }
  std::string known = "global";
  for (const geo::RegionSpec& region : federation.regions) {
    known += "|" + region.name;
  }
  throw util::PreconditionError("sweep parameter region: expected " + known +
                                ", got '" + value + "'");
}

const ParameterEntry kRegistry[] = {
    {"channels", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.num_channels = parse_int("channels", v);
     }},
    {"arrival", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.total_arrival_rate = parse_double("arrival", v);
     }},
    {"zipf", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.zipf_exponent = parse_double("zipf", v);
     }},
    {"uplink_ratio", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.uplink_mean_ratio = parse_double("uplink_ratio", v);
     }},
    {"jump", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.behavior.jump_prob = parse_double("jump", v);
     }},
    {"leave", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.behavior.leave_prob = parse_double("leave", v);
     }},
    {"alpha", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.workload.behavior.alpha = parse_double("alpha", v);
     }},
    {"uplink_shape", true,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       // Pareto tail exponent of the peer uplink. uplink_mean_ratio keeps
       // the mean pinned, so this axis varies *spread* at constant mean —
       // the ablation_hetero question.
       cfg.workload.uplink_shape = parse_double("uplink_shape", v);
     }},
    {"chunk_minutes", true, apply_chunk_minutes},
    {"region", true, apply_region},
    {"mode", false, apply_mode},
    {"strategy", false, apply_strategy},
    {"capacity", false, apply_capacity},
    {"vm_budget", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.vm_budget_per_hour = parse_double("vm_budget", v);
     }},
    {"storage_budget", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.storage_budget_per_hour = parse_double("storage_budget", v);
     }},
    {"boot_delay", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.vm_boot_delay = parse_double("boot_delay", v);
     }},
    {"p2p_cap", false, apply_p2p_cap},
    {"forecaster", false, apply_forecaster},
    {"reactive_margin", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.reactive_margin = parse_double("reactive_margin", v);
     }},
    // System-side: which simulation core runs the cell. Not a workload
    // axis — engine=discrete and engine=auto cells below the cohort
    // threshold replay the byte-identical viewer population.
    {"engine", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       try {
         cfg.engine = expr::engine_from_string(v);
       } catch (const util::PreconditionError&) {
         throw util::PreconditionError(
             "sweep parameter engine: expected discrete|cohort|auto, got '" +
             v + "'");
       }
     }},
    {"cohort_threshold", false,
     [](expr::ExperimentConfig& cfg, const std::string& v) {
       cfg.cohort_threshold = parse_double("cohort_threshold", v);
     }},
};

const ParameterEntry* find_parameter(const std::string& name) {
  for (const ParameterEntry& entry : kRegistry) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& hash, const std::string& bytes) {
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
}

[[noreturn]] void throw_unknown_parameter(const std::string& name) {
  std::string known;
  for (const std::string& parameter : known_parameters()) {
    if (!known.empty()) known += ", ";
    known += parameter;
  }
  throw util::PreconditionError("unknown sweep parameter '" + name +
                                "' (known: " + known + ")");
}

}  // namespace

void apply_parameter(expr::ExperimentConfig& config, const std::string& name,
                     const std::string& value) {
  const ParameterEntry* entry = find_parameter(name);
  if (entry == nullptr) throw_unknown_parameter(name);
  entry->apply(config, value);
}

bool parameter_affects_workload(const std::string& name) {
  const ParameterEntry* entry = find_parameter(name);
  CM_EXPECTS(entry != nullptr);
  return entry->affects_workload;
}

std::vector<std::string> known_parameters() {
  std::vector<std::string> names;
  for (const ParameterEntry& entry : kRegistry) names.emplace_back(entry.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string GridPoint::label() const {
  std::string text;
  for (const auto& [name, value] : coords) {
    if (!text.empty()) text += ',';
    text += name + "=" + value;
  }
  return text;
}

void ParamGrid::add_axis(std::string name, std::vector<std::string> values) {
  CM_EXPECTS(!values.empty());
  if (find_parameter(name) == nullptr) throw_unknown_parameter(name);
  for (const ParamAxis& axis : axes_) {
    if (axis.name == name) {
      throw util::PreconditionError("duplicate sweep axis '" + name + "'");
    }
  }
  axes_.push_back(ParamAxis{std::move(name), std::move(values)});
}

ParamGrid ParamGrid::parse(const std::vector<std::string>& specs) {
  ParamGrid grid;
  for (const std::string& spec : specs) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      throw util::PreconditionError("bad --grid spec '" + spec +
                                    "' (want name=v1,v2,...)");
    }
    std::vector<std::string> values;
    std::size_t start = eq + 1;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::size_t end = comma == std::string::npos ? spec.size() : comma;
      if (end == start) {
        throw util::PreconditionError("bad --grid spec '" + spec +
                                      "': empty value");
      }
      values.push_back(spec.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    grid.add_axis(spec.substr(0, eq), std::move(values));
  }
  return grid;
}

std::size_t ParamGrid::num_points() const noexcept {
  std::size_t n = 1;
  for (const ParamAxis& axis : axes_) n *= axis.values.size();
  return n;
}

GridPoint ParamGrid::point(std::size_t index) const {
  CM_EXPECTS(index < num_points());
  GridPoint point;
  point.coords.resize(axes_.size());
  // Mixed-radix decode, last axis fastest.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const std::vector<std::string>& values = axes_[a].values;
    point.coords[a] = {axes_[a].name, values[index % values.size()]};
    index /= values.size();
  }
  return point;
}

std::uint64_t ParamGrid::workload_hash(const GridPoint& point) {
  // Hashes *grid* coordinates only — scenario ops, timed or not, never
  // enter this hash. That is a load-bearing invariant: adding an `@`-timed
  // system op to a scenario expression (regional_outage@6h+recovery@18h)
  // must replay the byte-identical viewer population of the plain run, at
  // any --threads value (pinned by timeline_test.cc).
  std::uint64_t hash = kFnvOffset;
  for (const auto& [name, value] : point.coords) {
    if (!parameter_affects_workload(name)) continue;
    fnv_mix(hash, name);
    fnv_mix(hash, "=");
    fnv_mix(hash, value);
    fnv_mix(hash, ";");
  }
  return hash;
}

}  // namespace cloudmedia::sweep
