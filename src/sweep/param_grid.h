#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::sweep {

/// One named sweep axis: the parameter name and the values it takes, in
/// the order the caller listed them.
struct ParamAxis {
  std::string name;
  std::vector<std::string> values;
};

/// One cell of the cartesian product: (name, value) per axis, in axis
/// order.
struct GridPoint {
  std::vector<std::pair<std::string, std::string>> coords;

  /// "channels=4,mode=cs" — stable human/CSV label.
  [[nodiscard]] std::string label() const;
};

/// Apply one named parameter to an experiment config. Throws
/// util::PreconditionError on an unknown name or unparsable value. The
/// registry is the single source of truth for what `tool_sweep --grid`
/// and ParamGrid accept.
void apply_parameter(expr::ExperimentConfig& config, const std::string& name,
                     const std::string& value);

/// True when the parameter shapes the *workload* (arrival process, catalog,
/// viewing behaviour) rather than the serving system (mode, policy,
/// budgets). Only workload-shaping coordinates feed the per-run seed, so
/// runs that differ solely in system policy face byte-identical workloads —
/// the comparison discipline the figure benches rely on. Scenario ops
/// (ScenarioOp::workload_shaping) carry the same split for introspection,
/// but scenario names never feed the seed — only grid coordinates do.
[[nodiscard]] bool parameter_affects_workload(const std::string& name);

/// Registered parameter names, sorted (for --list-params and error text).
[[nodiscard]] std::vector<std::string> known_parameters();

/// Cartesian product of named parameter axes. The first axis varies
/// slowest, the last fastest; point(i) decodes index i in that mixed-radix
/// order, so enumeration order is deterministic and independent of how the
/// sweep is scheduled across threads.
class ParamGrid {
 public:
  /// Adds an axis. Throws on an empty value list, a duplicate axis, or a
  /// name missing from the parameter registry.
  void add_axis(std::string name, std::vector<std::string> values);

  /// Parse "name=v1,v2,..." specs (one per --grid occurrence).
  [[nodiscard]] static ParamGrid parse(const std::vector<std::string>& specs);

  [[nodiscard]] const std::vector<ParamAxis>& axes() const noexcept {
    return axes_;
  }
  /// Number of grid cells; 1 for the empty grid (a single unmodified run).
  [[nodiscard]] std::size_t num_points() const noexcept;
  [[nodiscard]] GridPoint point(std::size_t index) const;

  /// Hash of the workload-shaping coordinates of `point` (FNV-1a over
  /// "name=value" in axis order; system-side coordinates are skipped — see
  /// parameter_affects_workload).
  [[nodiscard]] static std::uint64_t workload_hash(const GridPoint& point);

 private:
  std::vector<ParamAxis> axes_;
};

}  // namespace cloudmedia::sweep
