#include "sweep/run_summary.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/check.h"
#include "util/csv.h"

namespace cloudmedia::sweep {

RunSummary RunSummary::from_result(std::string scenario, GridPoint point,
                                   std::uint64_t seed,
                                   const expr::ExperimentResult& r) {
  RunSummary s;
  s.scenario = std::move(scenario);
  s.point = std::move(point);
  s.seed = seed;
  const double t0 = r.measure_start;
  const double t1 = r.measure_end;
  s.mean_quality = r.mean_quality();
  s.p95_quality = r.metrics.quality.percentile_over(t0, t1, 95.0);
  s.p05_quality = r.metrics.quality.percentile_over(t0, t1, 5.0);
  s.mean_reserved_mbps = r.mean_reserved_mbps();
  s.mean_used_cloud_mbps = r.mean_used_cloud_mbps();
  s.mean_used_peer_mbps = r.mean_used_peer_mbps();
  s.cost_per_hour = r.mean_vm_cost_rate() + r.mean_storage_cost_rate();
  s.covered_fraction = r.reserved_covers_used_fraction();
  s.peak_users = r.metrics.concurrent_users.max_over(t0, t1);
  s.mean_users = r.mean_concurrent_users();
  s.arrivals = r.metrics.counters.arrivals;
  s.sim_events = r.sim_events;
  return s;
}

namespace {

const char* const kMetricColumns[] = {
    "mean_quality",        "p95_quality",          "p05_quality",
    "mean_reserved_mbps",  "mean_used_cloud_mbps", "mean_used_peer_mbps",
    "cost_per_hour",       "covered_fraction",     "peak_users",
    "mean_users",          "arrivals",             "sim_events",
};

std::vector<std::string> metric_values(const RunSummary& run) {
  return {
      util::format_number(run.mean_quality),
      util::format_number(run.p95_quality),
      util::format_number(run.p05_quality),
      util::format_number(run.mean_reserved_mbps),
      util::format_number(run.mean_used_cloud_mbps),
      util::format_number(run.mean_used_peer_mbps),
      util::format_number(run.cost_per_hour),
      util::format_number(run.covered_fraction),
      util::format_number(run.peak_users),
      util::format_number(run.mean_users),
      std::to_string(run.arrivals),
      std::to_string(run.sim_events),
  };
}

}  // namespace

std::vector<std::string> SweepResult::csv_header() const {
  std::vector<std::string> header;
  header.emplace_back("scenario");
  for (const ParamAxis& axis : axes) header.push_back(axis.name);
  header.emplace_back("seed");
  for (const char* column : kMetricColumns) header.emplace_back(column);
  return header;
}

std::vector<std::string> SweepResult::csv_row(const RunSummary& run) const {
  CM_EXPECTS(run.point.coords.size() == axes.size());
  std::vector<std::string> row;
  row.push_back(run.scenario);
  for (const auto& [name, value] : run.point.coords) row.push_back(value);
  row.push_back(std::to_string(run.seed));
  for (std::string& value : metric_values(run)) row.push_back(std::move(value));
  return row;
}

std::string SweepResult::to_csv() const {
  std::string out;
  auto append_line = [&out](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) out += ',';
      out += util::CsvWriter::escape(fields[i]);
    }
    out += '\n';
  };
  append_line(csv_header());
  for (const RunSummary& run : runs) append_line(csv_row(run));
  return out;
}

util::JsonValue RunSummary::to_json() const {
  util::JsonValue entry = util::JsonValue::object();
  util::JsonValue params = util::JsonValue::object();
  for (const auto& [name, value] : point.coords) params[name] = value;
  entry["params"] = std::move(params);
  entry["seed"] = std::to_string(seed);
  entry["mean_quality"] = mean_quality;
  entry["p95_quality"] = p95_quality;
  entry["p05_quality"] = p05_quality;
  entry["mean_reserved_mbps"] = mean_reserved_mbps;
  entry["mean_used_cloud_mbps"] = mean_used_cloud_mbps;
  entry["mean_used_peer_mbps"] = mean_used_peer_mbps;
  entry["cost_per_hour"] = cost_per_hour;
  entry["covered_fraction"] = covered_fraction;
  entry["peak_users"] = peak_users;
  entry["mean_users"] = mean_users;
  entry["arrivals"] = static_cast<double>(arrivals);
  entry["sim_events"] = static_cast<double>(sim_events);
  return entry;
}

RunSummary RunSummary::from_json(const util::JsonValue& entry,
                                 std::string scenario) {
  RunSummary s;
  s.scenario = std::move(scenario);
  for (const auto& [name, value] : entry.at("params").members()) {
    s.point.coords.emplace_back(name, value.as_string());
  }
  s.seed = std::stoull(entry.at("seed").as_string());
  s.mean_quality = entry.at("mean_quality").as_number();
  s.p95_quality = entry.at("p95_quality").as_number();
  s.p05_quality = entry.at("p05_quality").as_number();
  s.mean_reserved_mbps = entry.at("mean_reserved_mbps").as_number();
  s.mean_used_cloud_mbps = entry.at("mean_used_cloud_mbps").as_number();
  s.mean_used_peer_mbps = entry.at("mean_used_peer_mbps").as_number();
  s.cost_per_hour = entry.at("cost_per_hour").as_number();
  s.covered_fraction = entry.at("covered_fraction").as_number();
  s.peak_users = entry.at("peak_users").as_number();
  s.mean_users = entry.at("mean_users").as_number();
  s.arrivals = static_cast<long>(entry.at("arrivals").as_number());
  s.sim_events = static_cast<std::uint64_t>(entry.at("sim_events").as_number());
  return s;
}

util::JsonValue SweepResult::to_json() const {
  util::JsonValue root = util::JsonValue::object();
  root["scenario"] = scenario;
  // Decimal string: 64-bit seeds do not survive a double round-trip.
  root["base_seed"] = std::to_string(base_seed);
  if (shard_count > 1) {
    // Only shard outputs carry the header — unsharded documents (and the
    // committed goldens/) keep the pre-shard byte layout.
    util::JsonValue shard = util::JsonValue::object();
    shard["index"] = static_cast<double>(shard_index);
    shard["count"] = static_cast<double>(shard_count);
    shard["cells"] = static_cast<double>(runs.size());
    shard["total_cells"] = static_cast<double>(total_cells);
    shard["spec_hash"] = spec_hash;
    root["shard"] = std::move(shard);
  }
  util::JsonValue grid = util::JsonValue::array();
  for (const ParamAxis& axis : axes) {
    util::JsonValue entry = util::JsonValue::object();
    entry["name"] = axis.name;
    util::JsonValue values = util::JsonValue::array();
    for (const std::string& value : axis.values) values.push_back(value);
    entry["values"] = std::move(values);
    grid.push_back(std::move(entry));
  }
  root["grid"] = std::move(grid);
  util::JsonValue run_array = util::JsonValue::array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    util::JsonValue entry = util::JsonValue::object();
    if (shard_count > 1) {
      CM_EXPECTS(cell_indices.size() == runs.size());
      entry["cell"] = static_cast<double>(cell_indices[i]);
    }
    const util::JsonValue row = runs[i].to_json();
    for (const auto& [key, value] : row.members()) entry[key] = value;
    run_array.push_back(std::move(entry));
  }
  root["runs"] = std::move(run_array);
  return root;
}

SweepResult SweepResult::from_json(const util::JsonValue& doc) {
  SweepResult r;
  r.scenario = doc.at("scenario").as_string();
  r.base_seed = std::stoull(doc.at("base_seed").as_string());
  for (const util::JsonValue& entry : doc.at("grid").items()) {
    ParamAxis axis;
    axis.name = entry.at("name").as_string();
    for (const util::JsonValue& value : entry.at("values").items()) {
      axis.values.push_back(value.as_string());
    }
    r.axes.push_back(std::move(axis));
  }
  if (const util::JsonValue* shard = doc.find("shard")) {
    r.shard_index = static_cast<std::size_t>(shard->at("index").as_number());
    r.shard_count = static_cast<std::size_t>(shard->at("count").as_number());
    r.total_cells =
        static_cast<std::size_t>(shard->at("total_cells").as_number());
    r.spec_hash = shard->at("spec_hash").as_string();
  }
  for (const util::JsonValue& entry : doc.at("runs").items()) {
    if (r.shard_count > 1) {
      r.cell_indices.push_back(
          static_cast<std::size_t>(entry.at("cell").as_number()));
    }
    r.runs.push_back(RunSummary::from_json(entry, r.scenario));
  }
  if (r.total_cells == 0) r.total_cells = r.runs.size();
  return r;
}

void SweepResult::write_csv(const std::string& path) const {
  util::ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SweepResult: cannot open '" + path +
                             "' for writing: " + std::strerror(errno));
  }
  out << to_csv();
  if (!out) {
    throw std::runtime_error("SweepResult: write to '" + path +
                             "' failed: " + std::strerror(errno));
  }
}

void SweepResult::write_json(const std::string& path) const {
  util::write_json_file(path, to_json());
}

void SweepResult::write(const std::string& base) const {
  write_csv(base + ".csv");
  write_json(base + ".json");
}

}  // namespace cloudmedia::sweep
