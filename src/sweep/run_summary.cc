#include "sweep/run_summary.h"

#include <fstream>
#include <stdexcept>

#include "util/check.h"
#include "util/csv.h"

namespace cloudmedia::sweep {

RunSummary RunSummary::from_result(std::string scenario, GridPoint point,
                                   std::uint64_t seed,
                                   const expr::ExperimentResult& r) {
  RunSummary s;
  s.scenario = std::move(scenario);
  s.point = std::move(point);
  s.seed = seed;
  const double t0 = r.measure_start;
  const double t1 = r.measure_end;
  s.mean_quality = r.mean_quality();
  s.p95_quality = r.metrics.quality.percentile_over(t0, t1, 95.0);
  s.p05_quality = r.metrics.quality.percentile_over(t0, t1, 5.0);
  s.mean_reserved_mbps = r.mean_reserved_mbps();
  s.mean_used_cloud_mbps = r.mean_used_cloud_mbps();
  s.mean_used_peer_mbps = r.mean_used_peer_mbps();
  s.cost_per_hour = r.mean_vm_cost_rate() + r.mean_storage_cost_rate();
  s.covered_fraction = r.reserved_covers_used_fraction();
  s.peak_users = r.metrics.concurrent_users.max_over(t0, t1);
  s.mean_users = r.mean_concurrent_users();
  s.arrivals = r.metrics.counters.arrivals;
  s.sim_events = r.sim_events;
  return s;
}

namespace {

const char* const kMetricColumns[] = {
    "mean_quality",        "p95_quality",          "p05_quality",
    "mean_reserved_mbps",  "mean_used_cloud_mbps", "mean_used_peer_mbps",
    "cost_per_hour",       "covered_fraction",     "peak_users",
    "mean_users",          "arrivals",             "sim_events",
};

std::vector<std::string> metric_values(const RunSummary& run) {
  return {
      util::format_number(run.mean_quality),
      util::format_number(run.p95_quality),
      util::format_number(run.p05_quality),
      util::format_number(run.mean_reserved_mbps),
      util::format_number(run.mean_used_cloud_mbps),
      util::format_number(run.mean_used_peer_mbps),
      util::format_number(run.cost_per_hour),
      util::format_number(run.covered_fraction),
      util::format_number(run.peak_users),
      util::format_number(run.mean_users),
      std::to_string(run.arrivals),
      std::to_string(run.sim_events),
  };
}

}  // namespace

std::vector<std::string> SweepResult::csv_header() const {
  std::vector<std::string> header;
  header.emplace_back("scenario");
  for (const ParamAxis& axis : axes) header.push_back(axis.name);
  header.emplace_back("seed");
  for (const char* column : kMetricColumns) header.emplace_back(column);
  return header;
}

std::vector<std::string> SweepResult::csv_row(const RunSummary& run) const {
  CM_EXPECTS(run.point.coords.size() == axes.size());
  std::vector<std::string> row;
  row.push_back(run.scenario);
  for (const auto& [name, value] : run.point.coords) row.push_back(value);
  row.push_back(std::to_string(run.seed));
  for (std::string& value : metric_values(run)) row.push_back(std::move(value));
  return row;
}

std::string SweepResult::to_csv() const {
  std::string out;
  auto append_line = [&out](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) out += ',';
      out += util::CsvWriter::escape(fields[i]);
    }
    out += '\n';
  };
  append_line(csv_header());
  for (const RunSummary& run : runs) append_line(csv_row(run));
  return out;
}

util::JsonValue SweepResult::to_json() const {
  util::JsonValue root = util::JsonValue::object();
  root["scenario"] = scenario;
  // Decimal string: 64-bit seeds do not survive a double round-trip.
  root["base_seed"] = std::to_string(base_seed);
  util::JsonValue grid = util::JsonValue::array();
  for (const ParamAxis& axis : axes) {
    util::JsonValue entry = util::JsonValue::object();
    entry["name"] = axis.name;
    util::JsonValue values = util::JsonValue::array();
    for (const std::string& value : axis.values) values.push_back(value);
    entry["values"] = std::move(values);
    grid.push_back(std::move(entry));
  }
  root["grid"] = std::move(grid);
  util::JsonValue run_array = util::JsonValue::array();
  for (const RunSummary& run : runs) {
    util::JsonValue entry = util::JsonValue::object();
    util::JsonValue params = util::JsonValue::object();
    for (const auto& [name, value] : run.point.coords) params[name] = value;
    entry["params"] = std::move(params);
    entry["seed"] = std::to_string(run.seed);
    entry["mean_quality"] = run.mean_quality;
    entry["p95_quality"] = run.p95_quality;
    entry["p05_quality"] = run.p05_quality;
    entry["mean_reserved_mbps"] = run.mean_reserved_mbps;
    entry["mean_used_cloud_mbps"] = run.mean_used_cloud_mbps;
    entry["mean_used_peer_mbps"] = run.mean_used_peer_mbps;
    entry["cost_per_hour"] = run.cost_per_hour;
    entry["covered_fraction"] = run.covered_fraction;
    entry["peak_users"] = run.peak_users;
    entry["mean_users"] = run.mean_users;
    entry["arrivals"] = static_cast<double>(run.arrivals);
    entry["sim_events"] = static_cast<double>(run.sim_events);
    run_array.push_back(std::move(entry));
  }
  root["runs"] = std::move(run_array);
  return root;
}

void SweepResult::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SweepResult: cannot open " + path);
  out << to_csv();
}

void SweepResult::write_json(const std::string& path) const {
  util::write_json_file(path, to_json());
}

void SweepResult::write(const std::string& base) const {
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) util::ensure_directory(base.substr(0, slash));
  write_csv(base + ".csv");
  write_json(base + ".json");
}

}  // namespace cloudmedia::sweep
