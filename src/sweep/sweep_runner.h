#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "expr/flags.h"
#include "sweep/param_grid.h"
#include "sweep/run_summary.h"
#include "sweep/scenario_catalog.h"

namespace cloudmedia::sweep {

/// Everything that defines one sweep: the scenario expression, the grid,
/// the seed, and the schedule. Results are bitwise-identical for any
/// `threads` value because each run owns a private Simulator +
/// StreamingSystem and a seed derived only from (base_seed, workload
/// coordinates).
struct SweepSpec {
  /// A scenario name or composite expression ("flash_crowd+churn_heavy");
  /// resolved against the catalog up front, ops applied left to right.
  /// The expression is carried verbatim into RunSummary rows and the
  /// CSV/JSON scenario headers, so archived sweeps record their workload
  /// provenance.
  std::string scenario = "baseline_diurnal";
  ParamGrid grid;               ///< empty grid = one unmodified run
  std::uint64_t base_seed = 42;
  unsigned threads = 1;         ///< 0 = ThreadPool::default_threads()
  double warmup_hours = 1.0;
  double measure_hours = 6.0;
  /// Retain each run's full ExperimentResult (series data) in
  /// SweepResult::results. Off by default: summaries are cheap, series for
  /// a big grid are not.
  bool keep_results = false;
  /// With keep_results, retain only every k-th sample of each run's series
  /// (1 = full resolution). RunSummary scalars are computed from the full
  /// series *before* downsampling, so CSV/JSON output is unaffected — this
  /// only bounds the memory a big-grid keep_results sweep holds resident.
  std::size_t series_stride = 1;
  /// Extra config tweak applied after the scenario, before the grid point
  /// (benches use this for knobs that are not grid axes).
  std::function<void(expr::ExperimentConfig&)> customize;

  /// Read the shared schedule flags — --seed, --threads, --warmup,
  /// --hours, --series-stride — with the spec's current values as
  /// defaults. The one place the string-to-spec conversion (and its
  /// validation: --threads must be >= 0, 0 meaning "hardware";
  /// --series-stride must be >= 1) lives for every sweep binary.
  void apply_flags(const expr::Flags& flags);
};

/// Fans a ParamGrid out across a ThreadPool; one ExperimentRunner::run per
/// grid cell, results collected in grid order.
class SweepRunner {
 public:
  /// The per-run seed: base_seed mixed with the hash of the point's
  /// workload-shaping coordinates. Runs differing only in system policy
  /// (mode, strategy, budgets) share a seed and therefore replay the
  /// byte-identical user population.
  [[nodiscard]] static std::uint64_t run_seed(std::uint64_t base_seed,
                                              const GridPoint& point);

  /// Execute the sweep. Throws (first failure wins, in grid order) if any
  /// run throws.
  [[nodiscard]] static SweepResult run(
      const SweepSpec& spec,
      const ScenarioCatalog& catalog = ScenarioCatalog::global());
};

}  // namespace cloudmedia::sweep
