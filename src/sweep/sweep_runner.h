#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "expr/flags.h"
#include "sweep/param_grid.h"
#include "sweep/run_summary.h"
#include "sweep/scenario_catalog.h"

namespace cloudmedia::profile {
struct Profile;  // src/profile/profile.h — the declarative JSON schema
}  // namespace cloudmedia::profile

namespace cloudmedia::sweep {

/// A deterministic `k/N` slice of the flattened grid: shard k owns every
/// cell whose global index i satisfies `i % count == index` (strided, so
/// neighbouring — similarly expensive — cells spread across shards). The
/// N shards are disjoint and covering for every grid size, including
/// N > cells (trailing shards are then empty but still valid). Because
/// per-run seeds depend only on (base_seed, workload coordinates), a
/// sharded run replays exactly the cells the unsharded run would, and
/// `tool_sweep --merge` can stitch shard outputs back into a result
/// byte-identical to the single-process run.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// True for the default 1-shard spec covering the whole grid.
  [[nodiscard]] bool whole() const noexcept { return count == 1; }

  /// Parse "k/N" with 0 <= k < N (e.g. "0/2", "3/4"). Throws
  /// util::PreconditionError teaching the syntax on anything else.
  [[nodiscard]] static ShardSpec parse(const std::string& text);

  /// "k/N" — the canonical form parse() accepts.
  [[nodiscard]] std::string label() const;
};

/// Everything that defines one sweep: the scenario expression, the grid,
/// the seed, and the schedule. Results are bitwise-identical for any
/// `threads` value because each run owns a private Simulator +
/// StreamingSystem and a seed derived only from (base_seed, workload
/// coordinates).
struct SweepSpec {
  /// A scenario name or composite expression ("flash_crowd+churn_heavy");
  /// resolved against the catalog up front, ops applied left to right.
  /// The expression is carried verbatim into RunSummary rows and the
  /// CSV/JSON scenario headers, so archived sweeps record their workload
  /// provenance.
  std::string scenario = "baseline_diurnal";
  ParamGrid grid;               ///< empty grid = one unmodified run
  std::uint64_t base_seed = 42;
  unsigned threads = 1;         ///< 0 = ThreadPool::default_threads()
  double warmup_hours = 1.0;
  double measure_hours = 6.0;
  /// Retain each run's full ExperimentResult (series data) in
  /// SweepResult::results. Off by default: summaries are cheap, series for
  /// a big grid are not.
  bool keep_results = false;
  /// With keep_results, retain only every k-th sample of each run's series
  /// (1 = full resolution). RunSummary scalars are computed from the full
  /// series *before* downsampling, so CSV/JSON output is unaffected — this
  /// only bounds the memory a big-grid keep_results sweep holds resident.
  std::size_t series_stride = 1;
  /// Which slice of the grid this process runs (default: all of it). The
  /// slice is schedule-neutral: it changes which cells run here, never
  /// what any cell computes, so shard outputs merge byte-identically.
  ShardSpec shard;
  /// Fixed parameter assignments from the applier registry (the same one
  /// --grid axes use), applied to every cell after the scenario and before
  /// the cell's grid coordinates — so an axis beats an override of the
  /// same parameter. This is how a profile pins engine knobs or budgets
  /// without adding a one-value axis. Overrides are spec-wide constants:
  /// like the scenario they never feed per-run seeds, but they do enter
  /// spec_hash() (they change what the sweep computes).
  std::vector<std::pair<std::string, std::string>> overrides;
  /// Extra config tweak applied after the scenario and overrides, before
  /// the grid point (benches use this for knobs that are not grid axes).
  /// Code-only: a profile cannot express it, so --dump-profile drops it.
  std::function<void(expr::ExperimentConfig&)> customize;
  /// Streaming sink: when set, every completed row is handed off (with its
  /// global cell index) the moment its run finishes instead of
  /// accumulating in SweepResult::runs, so a million-cell sweep never
  /// holds all rows resident — see store::ResultsStore. Called
  /// concurrently from worker threads; must be thread-safe. Mutually
  /// exclusive with keep_results (series cannot stream).
  std::function<void(std::size_t cell, RunSummary row)> sink;

  /// THE construction entry point: build a spec from a declarative
  /// profile (golden presets, tool_sweep in every mode, the figure
  /// benches, and tool_fuzz all come through here). Validates the profile
  /// (teaching errors) and copies its declarative fields; execution knobs
  /// come back at their defaults (threads = 0 — hardware) for the caller
  /// or apply_flags to set. profile::Profile::from_spec is the inverse.
  [[nodiscard]] static SweepSpec from_profile(const profile::Profile& p);

  /// Read the shared schedule flags — --seed, --threads, --warmup,
  /// --hours, --series-stride, --shard — with the spec's current values
  /// as defaults. The one place the string-to-spec conversion (and its
  /// validation: --threads must be >= 0, 0 meaning "hardware";
  /// --series-stride must be >= 1; --shard must be k/N) lives for every
  /// sweep binary.
  void apply_flags(const expr::Flags& flags);

  /// Hash of what the sweep *computes*: scenario expression, base seed,
  /// horizon, and the full grid (axis names + values, in order).
  /// Schedule-neutral knobs (threads, shard, keep_results, series_stride)
  /// are excluded, so every shard of one logical sweep shares the hash —
  /// the header `tool_sweep --merge` uses to refuse mixing shards of
  /// different sweeps. 16 lowercase hex digits (FNV-1a 64).
  [[nodiscard]] std::string spec_hash() const;
};

/// Fans a ParamGrid out across a ThreadPool; one ExperimentRunner::run per
/// grid cell, results collected in grid order.
class SweepRunner {
 public:
  /// The per-run seed: base_seed mixed with the hash of the point's
  /// workload-shaping coordinates. Runs differing only in system policy
  /// (mode, strategy, budgets) share a seed and therefore replay the
  /// byte-identical user population.
  [[nodiscard]] static std::uint64_t run_seed(std::uint64_t base_seed,
                                              const GridPoint& point);

  /// The global cell indices shard `shard` owns out of `total` cells,
  /// ascending. Disjoint and covering across k = 0..N-1. Throws when
  /// shard.index >= shard.count.
  [[nodiscard]] static std::vector<std::size_t> shard_cells(
      std::size_t total, const ShardSpec& shard);

  /// Execute the sweep (or the spec's shard of it). Throws (first failure
  /// wins, in grid order) if any run throws. With spec.sink set,
  /// SweepResult::runs comes back empty — rows went to the sink.
  [[nodiscard]] static SweepResult run(
      const SweepSpec& spec,
      const ScenarioCatalog& catalog = ScenarioCatalog::global());
};

}  // namespace cloudmedia::sweep
