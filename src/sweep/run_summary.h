#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "expr/runner.h"
#include "sweep/param_grid.h"
#include "util/json.h"

namespace cloudmedia::sweep {

/// One run's SystemMetrics reduced to scalar summaries over the
/// measurement window. This is the machine-readable unit the sweep engine
/// emits per grid cell.
struct RunSummary {
  std::string scenario;
  GridPoint point;
  std::uint64_t seed = 0;

  double mean_quality = 0.0;
  double p95_quality = 0.0;   ///< 95th percentile of window quality samples
  double p05_quality = 0.0;   ///< low tail — the SLA-relevant end
  double mean_reserved_mbps = 0.0;  ///< billed cloud bandwidth
  double mean_used_cloud_mbps = 0.0;
  double mean_used_peer_mbps = 0.0;
  double cost_per_hour = 0.0;       ///< VM + storage $/h
  double covered_fraction = 0.0;    ///< reserved >= used sample fraction
  double peak_users = 0.0;
  double mean_users = 0.0;
  long arrivals = 0;
  std::uint64_t sim_events = 0;

  [[nodiscard]] static RunSummary from_result(std::string scenario,
                                              GridPoint point,
                                              std::uint64_t seed,
                                              const expr::ExperimentResult& r);

  /// The run as one JSON object — the entry schema of SweepResult::to_json
  /// "runs" and of the streaming store's JSONL rows: params (in axis
  /// order), seed (decimal string: 64 bits do not survive a double
  /// round-trip), then every metric column. Counters ride as JSON numbers,
  /// exact below 2^53 — far beyond any single run's event count.
  [[nodiscard]] util::JsonValue to_json() const;

  /// Inverse of to_json(): rebuild a row from an entry (unknown members —
  /// e.g. a shard "cell" index — are ignored; the scenario comes from the
  /// document header). from_json(to_json()) round-trips byte-identically
  /// through format_number, which is what makes merged shard output
  /// byte-match the single-process run.
  [[nodiscard]] static RunSummary from_json(const util::JsonValue& entry,
                                            std::string scenario);
};

/// A whole sweep: grid metadata plus one RunSummary per cell, in grid
/// order (deterministic regardless of worker count). Full per-run
/// ExperimentResults ride along only when the spec asked to keep them.
struct SweepResult {
  std::string scenario;
  std::uint64_t base_seed = 0;
  std::vector<ParamAxis> axes;
  std::vector<RunSummary> runs;
  std::vector<expr::ExperimentResult> results;  ///< empty unless kept

  /// Shard provenance (SweepSpec::shard). An unsharded result keeps the
  /// 0/1 defaults and empty cell_indices, and serializes byte-identically
  /// to pre-shard builds — the committed goldens/ stay valid. A shard
  /// result (shard_count > 1) carries a "shard" JSON header plus a per-run
  /// global "cell" index, which is what `tool_sweep --merge` validates and
  /// stitches on.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t total_cells = 0;  ///< full-grid cell count (all shards)
  std::string spec_hash;        ///< SweepSpec::spec_hash() of the producer
  std::vector<std::size_t> cell_indices;  ///< global cell per run (sharded)

  /// "scenario,<axis...>,seed,mean_quality,..." — axis columns in grid
  /// order.
  [[nodiscard]] std::vector<std::string> csv_header() const;
  [[nodiscard]] std::vector<std::string> csv_row(const RunSummary& run) const;
  /// The whole CSV as one string; deliberately in-memory so determinism
  /// tests can byte-compare without touching the filesystem.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] util::JsonValue to_json() const;

  /// Inverse of to_json() (shard header and per-run cell indices
  /// included). Retained series are not serialized, so results stays
  /// empty. Throws util::PreconditionError on a malformed document.
  [[nodiscard]] static SweepResult from_json(const util::JsonValue& doc);

  /// Write to_csv() / to_json() to files, creating missing parent
  /// directories; throws std::runtime_error naming the path when the
  /// target cannot be created or written.
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
  /// Write <base>.csv and <base>.json.
  void write(const std::string& base) const;
};

}  // namespace cloudmedia::sweep
