#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "expr/runner.h"
#include "sweep/param_grid.h"
#include "util/json.h"

namespace cloudmedia::sweep {

/// One run's SystemMetrics reduced to scalar summaries over the
/// measurement window. This is the machine-readable unit the sweep engine
/// emits per grid cell.
struct RunSummary {
  std::string scenario;
  GridPoint point;
  std::uint64_t seed = 0;

  double mean_quality = 0.0;
  double p95_quality = 0.0;   ///< 95th percentile of window quality samples
  double p05_quality = 0.0;   ///< low tail — the SLA-relevant end
  double mean_reserved_mbps = 0.0;  ///< billed cloud bandwidth
  double mean_used_cloud_mbps = 0.0;
  double mean_used_peer_mbps = 0.0;
  double cost_per_hour = 0.0;       ///< VM + storage $/h
  double covered_fraction = 0.0;    ///< reserved >= used sample fraction
  double peak_users = 0.0;
  double mean_users = 0.0;
  long arrivals = 0;
  std::uint64_t sim_events = 0;

  [[nodiscard]] static RunSummary from_result(std::string scenario,
                                              GridPoint point,
                                              std::uint64_t seed,
                                              const expr::ExperimentResult& r);
};

/// A whole sweep: grid metadata plus one RunSummary per cell, in grid
/// order (deterministic regardless of worker count). Full per-run
/// ExperimentResults ride along only when the spec asked to keep them.
struct SweepResult {
  std::string scenario;
  std::uint64_t base_seed = 0;
  std::vector<ParamAxis> axes;
  std::vector<RunSummary> runs;
  std::vector<expr::ExperimentResult> results;  ///< empty unless kept

  /// "scenario,<axis...>,seed,mean_quality,..." — axis columns in grid
  /// order.
  [[nodiscard]] std::vector<std::string> csv_header() const;
  [[nodiscard]] std::vector<std::string> csv_row(const RunSummary& run) const;
  /// The whole CSV as one string; deliberately in-memory so determinism
  /// tests can byte-compare without touching the filesystem.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] util::JsonValue to_json() const;

  /// Write to_csv() / to_json() to files (parent directories must exist).
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
  /// Write <base>.csv and <base>.json, creating parent directories.
  void write(const std::string& base) const;
};

}  // namespace cloudmedia::sweep
