#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace cloudmedia::sweep {

/// Fixed-size worker pool with a futures-based submit(). Tasks run FIFO;
/// the destructor drains every queued task before joining, so a scope
/// exit never drops submitted work. Results and exceptions travel through
/// the returned std::future.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// legally return 0).
  [[nodiscard]] static unsigned default_threads() noexcept;

  /// Enqueue a nullary callable; the future yields its result (or rethrows
  /// its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable targets and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cloudmedia::sweep
