#include "sweep/sweep_diff.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cloudmedia::sweep {

namespace {

std::string cell_label(const util::JsonValue& run) {
  const util::JsonValue* params =
      run.is_object() ? run.find("params") : nullptr;
  if (params == nullptr || !params->is_object() || params->members().empty()) {
    return "(single run)";
  }
  std::string label;
  for (const auto& [name, value] : params->members()) {
    if (!label.empty()) label += ',';
    label += name + '=' + (value.is_string() ? value.as_string() : value.dump(-1));
  }
  return label;
}

std::string header_string(const util::JsonValue& doc, const char* key) {
  const util::JsonValue* value = doc.is_object() ? doc.find(key) : nullptr;
  if (value == nullptr) return "(absent)";
  return value->is_string() ? value->as_string() : value->dump(-1);
}

const std::vector<util::JsonValue>& runs_of(const util::JsonValue& doc,
                                            const char* which) {
  const util::JsonValue* runs = doc.is_object() ? doc.find("runs") : nullptr;
  if (runs == nullptr || !runs->is_array()) {
    throw std::runtime_error(std::string("diff_sweeps: document ") + which +
                             " has no \"runs\" array (not a sweep JSON?)");
  }
  return runs->items();
}

std::string format_value(double value, bool missing) {
  return missing ? "(missing)" : util::format_number(value);
}

}  // namespace

std::size_t SweepDiff::num_deltas() const noexcept {
  std::size_t n = 0;
  for (const CellDiff& cell : cells) {
    n += cell.deltas.size() + (cell.seed_mismatch ? 1 : 0);
  }
  return n;
}

std::string SweepDiff::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "sweep diff: %zu cells, %zu metrics compared, tolerance %s\n",
                cells_compared, metrics_compared,
                util::format_number(tolerance).c_str());
  out += line;
  for (const std::string& note : notes) out += "  header: " + note + "\n";
  for (const std::string& cell : only_in_a) out += "  only in A: " + cell + "\n";
  for (const std::string& cell : only_in_b) out += "  only in B: " + cell + "\n";
  for (const CellDiff& cell : cells) {
    if (cell.seed_mismatch) {
      out += "  " + cell.cell + ": seed differs (workloads not comparable)\n";
    }
    for (const MetricDelta& delta : cell.deltas) {
      out += "  " + cell.cell + ": " + delta.metric + " " +
             format_value(delta.a, delta.a_missing) + " -> " +
             format_value(delta.b, delta.b_missing);
      if (!delta.a_missing && !delta.b_missing) {
        out += " (delta " + util::format_number(delta.delta()) + ")";
      }
      out += "\n";
    }
  }
  if (identical()) {
    out += "identical: no deltas beyond tolerance\n";
  } else {
    std::snprintf(line, sizeof line,
                  "DIFFERS: %zu deltas across %zu cells (+%zu unmatched)\n",
                  num_deltas(), cells.size(),
                  only_in_a.size() + only_in_b.size());
    out += line;
  }
  return out;
}

util::JsonValue SweepDiff::to_json() const {
  util::JsonValue root = util::JsonValue::object();
  root["identical"] = identical();
  root["tolerance"] = tolerance;
  root["cells_compared"] = static_cast<double>(cells_compared);
  root["metrics_compared"] = static_cast<double>(metrics_compared);
  root["num_deltas"] = static_cast<double>(num_deltas());
  util::JsonValue notes_json = util::JsonValue::array();
  for (const std::string& note : notes) notes_json.push_back(note);
  root["notes"] = std::move(notes_json);
  util::JsonValue a_only = util::JsonValue::array();
  for (const std::string& cell : only_in_a) a_only.push_back(cell);
  root["only_in_a"] = std::move(a_only);
  util::JsonValue b_only = util::JsonValue::array();
  for (const std::string& cell : only_in_b) b_only.push_back(cell);
  root["only_in_b"] = std::move(b_only);
  util::JsonValue cells_json = util::JsonValue::array();
  for (const CellDiff& cell : cells) {
    util::JsonValue entry = util::JsonValue::object();
    entry["cell"] = cell.cell;
    if (cell.seed_mismatch) entry["seed_mismatch"] = true;
    util::JsonValue deltas = util::JsonValue::array();
    for (const MetricDelta& delta : cell.deltas) {
      util::JsonValue d = util::JsonValue::object();
      d["metric"] = delta.metric;
      if (delta.a_missing) {
        d["a_missing"] = true;
      } else {
        d["a"] = delta.a;
      }
      if (delta.b_missing) {
        d["b_missing"] = true;
      } else {
        d["b"] = delta.b;
      }
      if (!delta.a_missing && !delta.b_missing) d["delta"] = delta.delta();
      deltas.push_back(std::move(d));
    }
    entry["deltas"] = std::move(deltas);
    cells_json.push_back(std::move(entry));
  }
  root["cells"] = std::move(cells_json);
  return root;
}

SweepDiff diff_sweeps(const util::JsonValue& a, const util::JsonValue& b,
                      double tolerance) {
  SweepDiff diff;
  diff.tolerance = tolerance;

  for (const char* key : {"scenario", "base_seed"}) {
    const std::string in_a = header_string(a, key);
    const std::string in_b = header_string(b, key);
    if (in_a != in_b) {
      diff.notes.push_back(std::string(key) + " \"" + in_a + "\" vs \"" +
                           in_b + "\"");
    }
  }

  const std::vector<util::JsonValue>& runs_a = runs_of(a, "A");
  const std::vector<util::JsonValue>& runs_b = runs_of(b, "B");

  // Cells are matched by grid coordinates, not array position, so sweeps
  // whose axes were reordered or extended still line up where they overlap.
  std::vector<std::string> b_labels;
  b_labels.reserve(runs_b.size());
  for (const util::JsonValue& run_b : runs_b) {
    b_labels.push_back(cell_label(run_b));
  }
  std::vector<bool> b_matched(runs_b.size(), false);
  for (const util::JsonValue& run_a : runs_a) {
    const std::string label = cell_label(run_a);
    const util::JsonValue* run_b = nullptr;
    for (std::size_t j = 0; j < runs_b.size(); ++j) {
      if (!b_matched[j] && b_labels[j] == label) {
        b_matched[j] = true;
        run_b = &runs_b[j];
        break;
      }
    }
    if (run_b == nullptr) {
      diff.only_in_a.push_back(label);
      continue;
    }

    ++diff.cells_compared;
    CellDiff cell;
    cell.cell = label;
    for (const auto& [metric, value_a] : run_a.members()) {
      if (metric == "params") continue;
      if (metric == "seed") {
        const util::JsonValue* seed_b = run_b->find("seed");
        const std::string sa = value_a.is_string() ? value_a.as_string()
                                                   : value_a.dump(-1);
        const std::string sb =
            seed_b == nullptr
                ? "(missing)"
                : (seed_b->is_string() ? seed_b->as_string() : seed_b->dump(-1));
        cell.seed_mismatch = sa != sb;
        continue;
      }
      if (!value_a.is_number()) continue;
      ++diff.metrics_compared;
      MetricDelta delta;
      delta.metric = metric;
      delta.a = value_a.as_number();
      const util::JsonValue* value_b = run_b->find(metric);
      if (value_b == nullptr || !value_b->is_number()) {
        delta.b_missing = true;
        cell.deltas.push_back(std::move(delta));
        continue;
      }
      delta.b = value_b->as_number();
      const bool both_nan = std::isnan(delta.a) && std::isnan(delta.b);
      if (!both_nan && !(std::fabs(delta.b - delta.a) <= tolerance)) {
        cell.deltas.push_back(std::move(delta));
      }
    }
    // Metrics present only in B (e.g. A's schema dropped a column) are a
    // difference too — scan the other direction.
    for (const auto& [metric, value_b] : run_b->members()) {
      if (metric == "params" || metric == "seed" || !value_b.is_number()) {
        continue;
      }
      const util::JsonValue* value_a = run_a.find(metric);
      if (value_a != nullptr && value_a->is_number()) continue;
      ++diff.metrics_compared;
      MetricDelta delta;
      delta.metric = metric;
      delta.b = value_b.as_number();
      delta.a_missing = true;
      cell.deltas.push_back(std::move(delta));
    }
    if (cell.seed_mismatch || !cell.deltas.empty()) {
      diff.cells.push_back(std::move(cell));
    }
  }
  for (std::size_t j = 0; j < runs_b.size(); ++j) {
    if (!b_matched[j]) diff.only_in_b.push_back(b_labels[j]);
  }
  return diff;
}

SweepDiff diff_sweep_files(const std::string& path_a, const std::string& path_b,
                           double tolerance) {
  return diff_sweeps(util::JsonValue::parse_file(path_a),
                     util::JsonValue::parse_file(path_b), tolerance);
}

}  // namespace cloudmedia::sweep
