#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::sweep {

/// One named, documented config transformation — the unit of the scenario
/// algebra. A scenario is an ordered list of these; composition
/// ("flash_crowd+churn_heavy") concatenates the parts' op lists, so a
/// composite's effect is exactly "apply every op, left to right".
///
/// `workload_shaping` mirrors the parameter-applier split in
/// src/sweep/param_grid.cc: true for ops that reshape the viewer
/// population (arrival pattern, catalog, viewing behaviour), false for
/// serving-side knobs (budgets, policies). The flag is introspective —
/// per-run seeds hash only *grid* coordinates, never scenario ops, so two
/// sweeps of the same grid face workloads shaped deterministically by
/// whatever scenario they name.
struct ScenarioOp {
  std::string name;         ///< e.g. "diurnal.flash_crowd"
  std::string description;  ///< what the op changes, for --list and docs
  bool workload_shaping = true;
  std::function<void(expr::ExperimentConfig&)> apply;
};

/// A named workload scenario: ordered ops applied on top of the
/// paper-default ExperimentConfig. Scenarios primarily shape the
/// *workload*; serving-side knobs (mode, strategy) stay sweepable on top
/// of any scenario, though a scenario may carry system-side ops too
/// (e.g. regional_outage's budget cut).
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ScenarioOp> ops;

  /// Apply every op, in order.
  void apply(expr::ExperimentConfig& config) const;
};

/// String-keyed registry of scenarios, so benches, tests, and tools select
/// workloads by name ("flash_crowd") or composite expression
/// ("flash_crowd+churn_heavy") instead of re-rolling config code.
class ScenarioCatalog {
 public:
  /// The built-in scenarios (baseline_diurnal, flash_crowd, weekend_surge,
  /// churn_heavy, long_tail_catalog, geo_skewed, regional_outage,
  /// live_event_cliff, catalog_refresh, startup_stampede).
  [[nodiscard]] static ScenarioCatalog with_builtins();
  /// Shared immutable instance of with_builtins().
  [[nodiscard]] static const ScenarioCatalog& global();

  /// Throws util::PreconditionError on a duplicate name, an unnamed op, a
  /// missing op apply function, or a '+' in the name ('+' is the
  /// composition operator). An empty op list is fine — it is the identity
  /// of the algebra (baseline_diurnal).
  void add(Scenario scenario);

  /// Single-lookup accessor: nullptr when `name` is not registered.
  /// contains() and at() are built on this, so callers never pay the old
  /// contains()-then-at() double map walk.
  [[nodiscard]] const Scenario* find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }
  /// Throws util::PreconditionError on an unknown name, listing the
  /// registered ones and the `a+b` composition syntax.
  [[nodiscard]] const Scenario& at(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Resolve a scenario expression: either a single registered name or a
  /// composite "a+b+..." whose ops are the parts' ops concatenated left to
  /// right (later ops overwrite what earlier ones set, so order matters
  /// where parts touch the same field). Deterministic; throws
  /// util::PreconditionError on an empty expression, an empty part
  /// ("flash_crowd+", "+"), or an unknown part.
  [[nodiscard]] Scenario resolve(const std::string& expression) const;

  /// ExperimentConfig::make_default(mode) with the resolved expression's
  /// ops applied ("flash_crowd" and "flash_crowd+churn_heavy" both work).
  [[nodiscard]] expr::ExperimentConfig make_config(
      const std::string& expression,
      core::StreamingMode mode = core::StreamingMode::kClientServer) const;

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace cloudmedia::sweep
