#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::sweep {

/// One named, documented config transformation — the unit of the scenario
/// algebra. A scenario is an ordered list of these; composition
/// ("flash_crowd+churn_heavy") concatenates the parts' op lists, so a
/// composite's effect is exactly "apply every op, left to right".
///
/// `workload_shaping` mirrors the parameter-applier split in
/// src/sweep/param_grid.cc: true for ops that reshape the viewer
/// population (arrival pattern, catalog, viewing behaviour), false for
/// serving-side knobs (budgets, policies). The flag is introspective —
/// per-run seeds hash only *grid* coordinates, never scenario ops, so two
/// sweeps of the same grid face workloads shaped deterministically by
/// whatever scenario they name.
struct ScenarioOp {
  ScenarioOp() = default;
  /// Not an aggregate on purpose: the trailing timed-op fields default so
  /// the catalog's many untimed `{name, description, tag, apply}` brace
  /// initializers stay warning-free under -Wmissing-field-initializers.
  ScenarioOp(std::string name_, std::string description_,
             bool workload_shaping_,
             std::function<void(expr::ExperimentConfig&)> apply_,
             double fire_time_ = 0.0,
             std::function<void(expr::ExperimentConfig&,
                                const expr::ExperimentConfig&)>
                 apply_at_fire_ = nullptr)
      : name(std::move(name_)),
        description(std::move(description_)),
        workload_shaping(workload_shaping_),
        apply(std::move(apply_)),
        fire_time(fire_time_),
        apply_at_fire(std::move(apply_at_fire_)) {}

  std::string name;         ///< e.g. "diurnal.flash_crowd"
  std::string description;  ///< what the op changes, for --list and docs
  bool workload_shaping = true;
  std::function<void(expr::ExperimentConfig&)> apply;

  /// When > 0 the op is *timed*: instead of reshaping the config before
  /// t=0, Scenario::apply queues it on ExperimentConfig::timeline and the
  /// runner fires it mid-run at the first provisioning-interval boundary
  /// >= fire_time (seconds). resolve() sets this from the `@6h` / `@30m`
  /// part suffix; `part@T` shifts every op of the part by T, so a part
  /// registered with internal fire times keeps its relative schedule.
  double fire_time = 0.0;
  /// Baseline-aware variant of `apply` for timed ops that need pre-op
  /// values (the `recovery` primitive restores budgets/diurnal from the
  /// baseline snapshot). When null, a timed op fires its plain `apply`.
  std::function<void(expr::ExperimentConfig& live,
                     const expr::ExperimentConfig& baseline)>
      apply_at_fire;
};

/// Parse a fire-time suffix ("6h", "30m", "90s") into seconds. The unit is
/// mandatory and the value must be finite and >= 0. Throws
/// util::PreconditionError with the full syntax on anything else
/// ("", "-1h", "6parsecs", "2d").
[[nodiscard]] double parse_fire_time(const std::string& text);

/// Inverse of parse_fire_time for display: "21600" -> "6h", "1800" ->
/// "30m", "90" -> "90s" (largest unit that divides evenly).
[[nodiscard]] std::string format_fire_time(double seconds);

/// A named workload scenario: ordered ops applied on top of the
/// paper-default ExperimentConfig. Scenarios primarily shape the
/// *workload*; serving-side knobs (mode, strategy) stay sweepable on top
/// of any scenario, though a scenario may carry system-side ops too
/// (e.g. regional_outage's budget cut).
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ScenarioOp> ops;

  /// Apply every op, in order. Untimed ops (fire_time <= 0) mutate the
  /// config immediately; timed ops are queued on config.timeline for the
  /// runner to fire mid-run.
  void apply(expr::ExperimentConfig& config) const;
};

/// String-keyed registry of scenarios, so benches, tests, and tools select
/// workloads by name ("flash_crowd") or composite expression
/// ("flash_crowd+churn_heavy") instead of re-rolling config code.
class ScenarioCatalog {
 public:
  /// The built-in scenarios (baseline_diurnal, flash_crowd, weekend_surge,
  /// churn_heavy, long_tail_catalog, geo_skewed, regional_outage,
  /// live_event_cliff, catalog_refresh, startup_stampede, recovery,
  /// stampede_recovery).
  [[nodiscard]] static ScenarioCatalog with_builtins();
  /// Shared immutable instance of with_builtins().
  [[nodiscard]] static const ScenarioCatalog& global();

  /// Throws util::PreconditionError on a duplicate name, an unnamed op, a
  /// missing op apply function, or a '+' in the name ('+' is the
  /// composition operator). An empty op list is fine — it is the identity
  /// of the algebra (baseline_diurnal).
  void add(Scenario scenario);

  /// Single-lookup accessor: nullptr when `name` is not registered.
  /// contains() and at() are built on this, so callers never pay the old
  /// contains()-then-at() double map walk.
  [[nodiscard]] const Scenario* find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }
  /// Throws util::PreconditionError on an unknown name, listing the
  /// registered ones and the `a+b` composition syntax.
  [[nodiscard]] const Scenario& at(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Resolve a scenario expression: either a single registered name or a
  /// composite "a+b+..." whose ops are the parts' ops concatenated left to
  /// right (later ops overwrite what earlier ones set, so order matters
  /// where parts touch the same field). Each part may carry an `@time`
  /// fire-time suffix ("regional_outage@6h+recovery@18h"): the part's ops
  /// are shifted to fire mid-run at that simulated time instead of
  /// reshaping the config before t=0. Whitespace around parts and around
  /// the `@` is trimmed. Deterministic; throws util::PreconditionError on
  /// an empty expression, an empty part ("flash_crowd+", "+"), an unknown
  /// part, a malformed fire time ("x@", "x@-1h", "x@6parsecs"), or an
  /// exact duplicate part (same name at the same fire time — repeating a
  /// part double-applies its multiplicative ops, so a repeat is only legal
  /// with distinct fire times, e.g. "churn_heavy@2h+churn_heavy@4h").
  [[nodiscard]] Scenario resolve(const std::string& expression) const;

  /// ExperimentConfig::make_default(mode) with the resolved expression's
  /// ops applied ("flash_crowd" and "flash_crowd+churn_heavy" both work).
  [[nodiscard]] expr::ExperimentConfig make_config(
      const std::string& expression,
      core::StreamingMode mode = core::StreamingMode::kClientServer) const;

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace cloudmedia::sweep
