#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::sweep {

/// A named, composable workload scenario: a tweak applied on top of the
/// paper-default ExperimentConfig. Scenarios shape the *workload*
/// (arrival pattern, catalog, viewing behaviour); serving-side knobs
/// (mode, strategy) stay sweepable on top of any scenario.
struct Scenario {
  std::string name;
  std::string description;
  std::function<void(expr::ExperimentConfig&)> tweak;
};

/// String-keyed registry of scenarios, so benches, tests, and tools select
/// workloads by name ("flash_crowd") instead of re-rolling config code.
class ScenarioCatalog {
 public:
  /// The built-in scenarios (baseline_diurnal, flash_crowd, weekend_surge,
  /// churn_heavy, long_tail_catalog, geo_skewed).
  [[nodiscard]] static ScenarioCatalog with_builtins();
  /// Shared immutable instance of with_builtins().
  [[nodiscard]] static const ScenarioCatalog& global();

  /// Throws util::PreconditionError on a duplicate name or missing tweak.
  void add(Scenario scenario);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Throws util::PreconditionError on an unknown name, listing the
  /// registered ones.
  [[nodiscard]] const Scenario& at(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// ExperimentConfig::make_default(mode) with the named scenario's tweak
  /// applied.
  [[nodiscard]] expr::ExperimentConfig make_config(
      const std::string& name,
      core::StreamingMode mode = core::StreamingMode::kClientServer) const;

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace cloudmedia::sweep
