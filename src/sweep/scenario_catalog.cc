#include "sweep/scenario_catalog.h"

#include "util/check.h"
#include "workload/distributions.h"

namespace cloudmedia::sweep {

namespace {

using workload::DiurnalPattern;

ScenarioCatalog build_builtins() {
  ScenarioCatalog catalog;

  catalog.add({"baseline_diurnal",
               "paper Sec. VI-A default: 20 Zipf channels, diurnal arrivals "
               "with two flash crowds",
               [](expr::ExperimentConfig&) {}});

  catalog.add({"flash_crowd",
               "quiet base load broken by two steep, short-lived crowds "
               "(3x spikes, ~25-minute sigma)",
               [](expr::ExperimentConfig& cfg) {
                 cfg.workload.diurnal = DiurnalPattern(
                     0.55, {{12.0, 3.0, 0.4}, {20.5, 3.4, 0.45}});
               }});

  catalog.add({"weekend_surge",
               "sustained high plateau with one broad evening peak — the "
               "all-day-viewing weekend shape",
               [](expr::ExperimentConfig& cfg) {
                 cfg.workload.diurnal =
                     DiurnalPattern(1.1, {{15.0, 0.8, 3.0}, {21.0, 1.2, 2.0}});
                 cfg.workload.total_arrival_rate *= 1.15;
               }});

  catalog.add({"churn_heavy",
               "zapping viewers: short sessions, frequent VCR jumps; arrival "
               "rate raised to hold population near the paper's scale",
               [](expr::ExperimentConfig& cfg) {
                 cfg.workload.behavior.leave_prob = 0.30;
                 cfg.workload.behavior.jump_prob = 0.40;
                 cfg.workload.behavior.alpha = 0.5;
                 cfg.workload.total_arrival_rate *= 2.4;
               }});

  catalog.add({"long_tail_catalog",
               "80 channels under a flatter Zipf (exponent 0.6): most "
               "channels sit in the thin tail the pooled sizing must protect",
               [](expr::ExperimentConfig& cfg) {
                 cfg.workload.num_channels = 80;
                 cfg.workload.zipf_exponent = 0.6;
               }});

  catalog.add({"geo_skewed",
               "two viewer populations 8 hours apart: each contributes the "
               "paper's two crowds at half amplitude, shifted by timezone",
               [](expr::ExperimentConfig& cfg) {
                 const DiurnalPattern base = DiurnalPattern::paper_default();
                 const DiurnalPattern shifted = base.shifted(8.0);
                 std::vector<DiurnalPattern::Peak> peaks;
                 for (DiurnalPattern::Peak peak : base.peaks()) {
                   peak.amplitude *= 0.5;
                   peaks.push_back(peak);
                 }
                 for (DiurnalPattern::Peak peak : shifted.peaks()) {
                   peak.amplitude *= 0.5;
                   peaks.push_back(peak);
                 }
                 cfg.workload.diurnal = DiurnalPattern(base.base(), peaks);
               }});

  return catalog;
}

}  // namespace

ScenarioCatalog ScenarioCatalog::with_builtins() { return build_builtins(); }

const ScenarioCatalog& ScenarioCatalog::global() {
  static const ScenarioCatalog catalog = build_builtins();
  return catalog;
}

void ScenarioCatalog::add(Scenario scenario) {
  CM_EXPECTS(!scenario.name.empty());
  CM_EXPECTS(scenario.tweak != nullptr);
  const auto [it, inserted] =
      scenarios_.emplace(scenario.name, std::move(scenario));
  if (!inserted) {
    throw util::PreconditionError("duplicate scenario '" + it->first + "'");
  }
}

bool ScenarioCatalog::contains(const std::string& name) const {
  return scenarios_.count(name) > 0;
}

const Scenario& ScenarioCatalog::at(const std::string& name) const {
  const auto it = scenarios_.find(name);
  if (it == scenarios_.end()) {
    std::string known;
    for (const std::string& registered : names()) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    throw util::PreconditionError("unknown scenario '" + name +
                                  "' (known: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(name);
  return out;  // std::map iterates sorted
}

expr::ExperimentConfig ScenarioCatalog::make_config(
    const std::string& name, core::StreamingMode mode) const {
  expr::ExperimentConfig config = expr::ExperimentConfig::make_default(mode);
  at(name).tweak(config);
  return config;
}

}  // namespace cloudmedia::sweep
