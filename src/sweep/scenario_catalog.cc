#include "sweep/scenario_catalog.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "util/check.h"
#include "workload/distributions.h"
#include "workload/viewing.h"

namespace cloudmedia::sweep {

namespace {

using workload::DiurnalPattern;

constexpr bool kWorkload = true;
constexpr bool kSystem = false;

std::string trim(const std::string& text) {
  const char* ws = " \t";
  const std::size_t begin = text.find_first_not_of(ws);
  if (begin == std::string::npos) return {};
  const std::size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

/// Blend two diurnal patterns: own-clock peaks at `own_share` amplitude
/// plus the same peaks shifted by `offset_hours` at `1 - own_share`. Used
/// by geo_skewed (50/50) and regional_outage (55/45 survivor/failed).
DiurnalPattern two_population_diurnal(double own_share, double offset_hours) {
  const DiurnalPattern base = DiurnalPattern::paper_default();
  const DiurnalPattern shifted = base.shifted(offset_hours);
  std::vector<DiurnalPattern::Peak> peaks;
  for (DiurnalPattern::Peak peak : base.peaks()) {
    peak.amplitude *= own_share;
    peaks.push_back(peak);
  }
  for (DiurnalPattern::Peak peak : shifted.peaks()) {
    peak.amplitude *= 1.0 - own_share;
    peaks.push_back(peak);
  }
  return DiurnalPattern(base.base(), peaks);
}

ScenarioCatalog build_builtins() {
  ScenarioCatalog catalog;

  // The identity of the algebra: paper defaults, no ops. Composing with it
  // ("baseline_diurnal+x") is the same as "x".
  catalog.add({"baseline_diurnal",
               "paper Sec. VI-A default: 20 Zipf channels, diurnal arrivals "
               "with two flash crowds",
               {}});

  catalog.add({"flash_crowd",
               "quiet base load broken by two steep, short-lived crowds "
               "(3x spikes, ~25-minute sigma)",
               {{"diurnal.flash_crowd",
                 "replace the diurnal pattern with a 0.55 base and two "
                 "sharp 3x/3.4x spikes at 12:00 and 20:30",
                 kWorkload,
                 [](expr::ExperimentConfig& cfg) {
                   cfg.workload.diurnal = DiurnalPattern(
                       0.55, {{12.0, 3.0, 0.4}, {20.5, 3.4, 0.45}});
                 }}}});

  catalog.add(
      {"weekend_surge",
       "sustained high plateau with one broad evening peak — the "
       "all-day-viewing weekend shape",
       {{"diurnal.weekend_plateau",
         "replace the diurnal pattern with a 1.1 base and two broad "
         "afternoon/evening bumps",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.diurnal =
               DiurnalPattern(1.1, {{15.0, 0.8, 3.0}, {21.0, 1.2, 2.0}});
         }},
        {"arrival.weekend_scale",
         "raise the aggregate arrival rate by 15%",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.total_arrival_rate *= 1.15;
         }}}});

  catalog.add(
      {"churn_heavy",
       "zapping viewers: short sessions, frequent VCR jumps; arrival "
       "rate raised to hold population near the paper's scale",
       {{"behavior.zapping",
         "short sessions (leave 0.30), frequent VCR jumps (jump 0.40), "
         "more mid-video entries (alpha 0.5)",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.behavior.leave_prob = 0.30;
           cfg.workload.behavior.jump_prob = 0.40;
           cfg.workload.behavior.alpha = 0.5;
         }},
        {"arrival.churn_scale",
         "raise the aggregate arrival rate 2.4x to hold the concurrent "
         "population near the paper's scale",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.total_arrival_rate *= 2.4;
         }}}});

  catalog.add({"long_tail_catalog",
               "80 channels under a flatter Zipf (exponent 0.6): most "
               "channels sit in the thin tail the pooled sizing must protect",
               {{"catalog.long_tail",
                 "grow the catalog to 80 channels under Zipf exponent 0.6",
                 kWorkload,
                 [](expr::ExperimentConfig& cfg) {
                   cfg.workload.num_channels = 80;
                   cfg.workload.zipf_exponent = 0.6;
                 }}}});

  catalog.add({"geo_skewed",
               "two viewer populations 8 hours apart: each contributes the "
               "paper's two crowds at half amplitude, shifted by timezone",
               {{"diurnal.two_timezones",
                 "split the audience 50/50 across clocks 8 hours apart, "
                 "each half contributing the paper's peaks at half amplitude",
                 kWorkload,
                 [](expr::ExperimentConfig& cfg) {
                   cfg.workload.diurnal = two_population_diurnal(0.5, 8.0);
                 }}}});

  // ------------------------------------------------ catalog growth (PR 5)

  catalog.add(
      {"regional_outage",
       "one region of the three-region federation collapses mid-peak: the "
       "surviving stack absorbs the failed region's audience on its "
       "8-hour-shifted clock, with only the survivor's budget slice",
       {{"outage.rerouted_audience",
         "keep the full global audience but blend diurnal clocks 55/45: "
         "the failed region's 45% share lands with peaks shifted 8 hours",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.diurnal = two_population_diurnal(0.55, 8.0);
         }},
        {"budget.survivor_slice",
         "cut VM and storage budgets to the surviving region's 55% "
         "proportional share (geo::BudgetSplit::kProportional)",
         kSystem,
         [](expr::ExperimentConfig& cfg) {
           cfg.vm_budget_per_hour *= 0.55;
           cfg.storage_budget_per_hour *= 0.55;
         }}}});

  catalog.add(
      {"live_event_cliff",
       "synchronized arrival wall at 20:00 followed by mass departure when "
       "the near-simultaneous sessions end together",
       {{"diurnal.event_wall",
         "near-flat 0.25 base with one 8x spike of ~12-minute sigma at "
         "20:00 — the whole audience arrives at once",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.diurnal = DiurnalPattern(0.25, {{20.0, 8.0, 0.2}});
         }},
        {"behavior.synchronized_viewing",
         "everyone starts at chunk 1 (alpha 1.0) and seeks rarely (jump "
         "0.05, leave 0.15), so departures cliff when the event ends",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.behavior.alpha = 1.0;
           cfg.workload.behavior.jump_prob = 0.05;
           cfg.workload.behavior.leave_prob = 0.15;
         }}}});

  catalog.add({"catalog_refresh",
               "channel popularity reshuffles every 2 simulated hours: a "
               "channel's rank rotates by 7, so demand history predicts the "
               "wrong channels right after each refresh",
               {{"catalog.refresh_rotation",
                 "rotate the channel-to-popularity-rank mapping by 7 ranks "
                 "every 2 hours (workload::WorkloadConfig refresh knobs)",
                 kWorkload,
                 [](expr::ExperimentConfig& cfg) {
                   cfg.workload.refresh_period_hours = 2.0;
                   cfg.workload.refresh_shift = 7;
                 }}}});

  catalog.add(
      {"startup_stampede",
       "cold start: a 5x arrival burst centred at t=0 hits a controller "
       "with no demand history, then decays to a quiet base",
       {{"diurnal.cold_start_burst",
         "quiet 0.3 base with one 5x burst of ~18-minute sigma centred at "
         "hour 0 — the stampede begins the instant the service opens",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.diurnal = DiurnalPattern(0.3, {{0.0, 5.0, 0.3}});
         }},
        {"behavior.fresh_audience",
         "almost every stampeder is a new viewer starting at chunk 1 "
         "(alpha 0.95) — no resume points in a cold catalog",
         kWorkload,
         [](expr::ExperimentConfig& cfg) {
           cfg.workload.behavior.alpha = 0.95;
         }}}});

  // ------------------------------------------------- timed events (PR 6)

  // The recovery primitive restores the *pre-timeline* snapshot: the config
  // as the runner saw it before any timed op fired (paper defaults plus
  // every untimed op, grid coordinate, and customize hook). Composed after
  // a timed disturbance ("regional_outage@6h+recovery@18h") it undoes the
  // disturbance; without a fire time nothing has diverged yet, so it is
  // the identity of the algebra like baseline_diurnal.
  catalog.add(
      {"recovery",
       "scheduled return to the pre-timeline config: restores workload "
       "shape and budgets to the values they had before any timed op "
       "fired; compose with a fire time (regional_outage@6h+recovery@18h) "
       "— untimed it is the identity",
       {{"timeline.recover_workload",
         "restore the arrival pattern, viewing behaviour, catalog "
         "popularity, and peer uplinks to their pre-timeline values",
         kWorkload,
         [](expr::ExperimentConfig&) {},  // untimed: nothing diverged yet
         0.0,
         [](expr::ExperimentConfig& live,
            const expr::ExperimentConfig& baseline) {
           live.workload = baseline.workload;
         }},
        {"timeline.recover_budgets",
         "restore the VM and storage budgets to their pre-timeline values "
         "(the SLA is renegotiated at the same boundary)",
         kSystem,
         [](expr::ExperimentConfig&) {},
         0.0,
         [](expr::ExperimentConfig& live,
            const expr::ExperimentConfig& baseline) {
           live.vm_budget_per_hour = baseline.vm_budget_per_hour;
           live.storage_budget_per_hour = baseline.storage_budget_per_hour;
         }}}});

  // startup_stampede reshapes the config at t=0 (its ops are untimed), so
  // the pre-timeline snapshot recovery restores *includes* the stampede —
  // healing it needs a bespoke timed op that puts back the paper-default
  // diurnal and entry mix instead of the recovery primitive.
  {
    Scenario stampede = catalog.at("startup_stampede");
    stampede.name = "stampede_recovery";
    stampede.description =
        "cold-start stampede the schedule heals: the 5x t=0 burst shapes "
        "the run until hour 4, when the crowd subsides to the paper "
        "baseline and the controller re-converges";
    stampede.ops.push_back(
        {"timeline.stampede_subsides",
         "at hour 4 the stampede is over: restore the paper-default "
         "diurnal pattern and entry mix (alpha back to the default)",
         kWorkload,
         [](expr::ExperimentConfig&) {},  // untimed form never applies
         4.0 * 3600.0,
         [](expr::ExperimentConfig& live, const expr::ExperimentConfig&) {
           live.workload.diurnal = DiurnalPattern::paper_default();
           live.workload.behavior.alpha = workload::ViewingBehavior{}.alpha;
         }});
    catalog.add(std::move(stampede));
  }

  return catalog;
}

}  // namespace

void Scenario::apply(expr::ExperimentConfig& config) const {
  for (const ScenarioOp& op : ops) {
    if (op.fire_time > 0.0) {
      expr::TimedConfigOp timed;
      timed.fire_time = op.fire_time;
      timed.name = op.name;
      timed.workload_shaping = op.workload_shaping;
      if (op.apply_at_fire) {
        timed.apply = op.apply_at_fire;
      } else {
        timed.apply = [fn = op.apply](expr::ExperimentConfig& live,
                                      const expr::ExperimentConfig&) {
          fn(live);
        };
      }
      config.timeline.push_back(std::move(timed));
    } else {
      op.apply(config);
    }
  }
}

double parse_fire_time(const std::string& text) {
  const auto bad = [&text](const std::string& why) {
    return util::PreconditionError(
        "bad fire time '" + text + "': " + why +
        " (syntax: <number><unit> with unit h, m, or s — e.g. "
        "regional_outage@6h, recovery@30m, catalog_refresh@90s)");
  };
  if (text.empty()) throw bad("missing time after '@'");
  const char unit = text.back();
  double scale = 0.0;
  if (unit == 'h') {
    scale = 3600.0;
  } else if (unit == 'm') {
    scale = 60.0;
  } else if (unit == 's') {
    scale = 1.0;
  } else {
    throw bad(std::string("unknown unit '") + unit + "'");
  }
  const std::string number = text.substr(0, text.size() - 1);
  if (number.empty()) throw bad("missing value before the unit");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    throw bad("'" + number + "' is not a number");
  }
  if (consumed != number.size()) throw bad("'" + number + "' is not a number");
  if (!std::isfinite(value) || value < 0.0) {
    throw bad("the value must be finite and >= 0");
  }
  return value * scale;
}

std::string format_fire_time(double seconds) {
  char buffer[64];
  double value = seconds;
  char unit = 's';
  if (seconds >= 3600.0 && std::fmod(seconds, 3600.0) == 0.0) {
    value = seconds / 3600.0;
    unit = 'h';
  } else if (seconds >= 60.0 && std::fmod(seconds, 60.0) == 0.0) {
    value = seconds / 60.0;
    unit = 'm';
  }
  std::snprintf(buffer, sizeof buffer, "%g%c", value, unit);
  return buffer;
}

ScenarioCatalog ScenarioCatalog::with_builtins() { return build_builtins(); }

const ScenarioCatalog& ScenarioCatalog::global() {
  static const ScenarioCatalog catalog = build_builtins();
  return catalog;
}

void ScenarioCatalog::add(Scenario scenario) {
  CM_EXPECTS(!scenario.name.empty());
  if (scenario.name.find('+') != std::string::npos) {
    throw util::PreconditionError("scenario name '" + scenario.name +
                                  "' contains '+', the composition operator");
  }
  for (const ScenarioOp& op : scenario.ops) {
    CM_EXPECTS(!op.name.empty());
    CM_EXPECTS(op.apply != nullptr);
    CM_EXPECTS(op.fire_time >= 0.0 && std::isfinite(op.fire_time));
  }
  const auto [it, inserted] =
      scenarios_.emplace(scenario.name, std::move(scenario));
  if (!inserted) {
    throw util::PreconditionError("duplicate scenario '" + it->first + "'");
  }
}

const Scenario* ScenarioCatalog::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const Scenario& ScenarioCatalog::at(const std::string& name) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    std::string known;
    for (const std::string& registered : names()) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    throw util::PreconditionError(
        "unknown scenario '" + name + "' (known: " + known +
        "; scenarios compose with '+', e.g. flash_crowd+churn_heavy)");
  }
  return *scenario;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(name);
  return out;  // std::map iterates sorted
}

Scenario ScenarioCatalog::resolve(const std::string& expression) const {
  struct Part {
    const Scenario* scenario;
    double offset;      ///< seconds; 0 = untimed
    std::string token;  ///< canonical form, e.g. "regional_outage@6h"
  };
  std::vector<Part> parts;
  std::set<std::pair<std::string, double>> seen;
  std::size_t start = 0;
  for (;;) {
    const std::size_t plus = expression.find('+', start);
    const std::size_t end = plus == std::string::npos ? expression.size() : plus;
    const std::string raw = expression.substr(start, end - start);
    const std::string token = trim(raw);
    if (token.empty()) {
      throw util::PreconditionError(
          "bad scenario expression '" + expression + "': empty part '" + raw +
          "' (syntax: name or name+name, parts applied left to right, each "
          "optionally timed with @<number><h|m|s> — e.g. "
          "flash_crowd+churn_heavy, regional_outage@6h+recovery@18h)");
    }
    std::string name = token;
    double offset = 0.0;
    const std::size_t at_pos = token.find('@');
    if (at_pos != std::string::npos) {
      if (token.find('@', at_pos + 1) != std::string::npos) {
        throw util::PreconditionError(
            "bad scenario part '" + token +
            "': more than one '@' (a part takes at most one fire time, "
            "e.g. regional_outage@6h)");
      }
      name = trim(token.substr(0, at_pos));
      if (name.empty()) {
        throw util::PreconditionError(
            "bad scenario part '" + token +
            "': missing scenario name before '@' (syntax: name@<number>"
            "<h|m|s>, e.g. regional_outage@6h)");
      }
      offset = parse_fire_time(trim(token.substr(at_pos + 1)));
    }
    const Scenario& scenario = at(name);
    if (!seen.emplace(name, offset).second) {
      const std::string canonical =
          offset > 0.0 ? name + "@" + format_fire_time(offset) : name;
      throw util::PreconditionError(
          "bad scenario expression '" + expression + "': duplicate part '" +
          canonical +
          "' — repeating a part double-applies its multiplicative ops "
          "(e.g. churn_heavy's arrival scale), so a repeat is only legal "
          "at distinct fire times (churn_heavy@2h+churn_heavy@4h)");
    }
    parts.push_back(
        {&scenario, offset,
         offset > 0.0 ? name + "@" + format_fire_time(offset) : name});
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  if (parts.size() == 1 && parts.front().offset == 0.0) {
    return *parts.front().scenario;
  }

  Scenario composed;
  composed.description = parts.size() == 1
                             ? "timed:"
                             : "composite (ops apply left to right):";
  for (const Part& part : parts) {
    if (!composed.name.empty()) composed.name += "+";
    composed.name += part.token;
    composed.description += " " + part.token;
    for (ScenarioOp op : part.scenario->ops) {
      // `part@T` shifts the whole part by T: untimed ops fire at T, ops
      // registered with their own fire time keep their relative schedule.
      op.fire_time += part.offset;
      composed.ops.push_back(std::move(op));
    }
  }
  return composed;
}

expr::ExperimentConfig ScenarioCatalog::make_config(
    const std::string& expression, core::StreamingMode mode) const {
  expr::ExperimentConfig config = expr::ExperimentConfig::make_default(mode);
  resolve(expression).apply(config);
  return config;
}

}  // namespace cloudmedia::sweep
