#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.h"

namespace cloudmedia::sweep {

/// One metric's value in both sweeps for one grid cell. `b_missing` /
/// `a_missing` mark a metric present in only one document — reported as a
/// schema difference in either direction, not silently skipped.
struct MetricDelta {
  std::string metric;
  double a = 0.0;
  double b = 0.0;
  bool b_missing = false;
  bool a_missing = false;
  [[nodiscard]] double delta() const noexcept { return b - a; }
};

/// One grid cell present in both sweeps with at least one difference.
struct CellDiff {
  std::string cell;  ///< "channels=4,mode=cs"; "(single run)" for empty grids
  bool seed_mismatch = false;  ///< per-run seeds differ: different workloads
  std::vector<MetricDelta> deltas;
};

/// Result of comparing two sweep JSON documents cell by cell.
struct SweepDiff {
  double tolerance = 0.0;
  std::size_t cells_compared = 0;
  std::size_t metrics_compared = 0;
  std::vector<std::string> notes;      ///< header mismatches (scenario, seed, grid)
  std::vector<std::string> only_in_a;  ///< cell labels missing from B
  std::vector<std::string> only_in_b;  ///< cell labels missing from A
  std::vector<CellDiff> cells;         ///< cells with deltas beyond tolerance

  [[nodiscard]] bool identical() const noexcept {
    return notes.empty() && only_in_a.empty() && only_in_b.empty() &&
           cells.empty();
  }
  [[nodiscard]] std::size_t num_deltas() const noexcept;

  /// Human-readable report, one line per delta; ends with a verdict line.
  [[nodiscard]] std::string report() const;
  /// Machine-readable mirror of report() (CI uploads this as an artifact).
  [[nodiscard]] util::JsonValue to_json() const;
};

/// Compare two sweep documents in the schema SweepResult::to_json emits:
/// cells keyed by scenario + grid coordinates, every numeric run member
/// compared with |B - A| > tolerance flagged, seeds compared exactly.
/// Throws std::runtime_error when either document lacks a "runs" array.
[[nodiscard]] SweepDiff diff_sweeps(const util::JsonValue& a,
                                    const util::JsonValue& b,
                                    double tolerance = 0.0);

/// diff_sweeps() over two files written by SweepResult::write_json.
[[nodiscard]] SweepDiff diff_sweep_files(const std::string& path_a,
                                         const std::string& path_b,
                                         double tolerance = 0.0);

}  // namespace cloudmedia::sweep
