#pragma once

#include <map>
#include <string>

namespace cloudmedia::expr {

/// Tiny command-line flag parser for the bench/example binaries:
/// accepts `--key=value` and `--key value`; bare `--key` means "true".
/// Unknown positional arguments throw (benches take no positionals).
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] int get(const std::string& key, int fallback) const;
  [[nodiscard]] long long get_ll(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cloudmedia::expr
