#pragma once

#include <map>
#include <string>
#include <vector>

namespace cloudmedia::expr {

/// Tiny command-line flag parser for the bench/example binaries:
/// accepts `--key=value` and `--key value`; bare `--key` means "true".
/// A flag may repeat (`--grid a=1 --grid b=2`): scalar getters return the
/// last occurrence, get_all() returns every occurrence in order.
/// Unknown positional arguments throw (benches take no positionals) unless
/// the caller opts in, in which case non-flag tokens that were not consumed
/// as a `--key value` value collect into positionals() in order.
class Flags {
 public:
  Flags(int argc, const char* const* argv, bool allow_positionals = false);

  /// Non-flag arguments, in command-line order (opt-in; see constructor).
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] int get(const std::string& key, int fallback) const;
  [[nodiscard]] long long get_ll(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;
  /// All values given for a repeated flag, in command-line order (empty
  /// when the flag is absent).
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const;

  /// Declared-flag registry: throw util::PreconditionError if any parsed
  /// flag is not in `known`. The error names the offending flag, suggests
  /// the closest declared names ("did you mean --hours?") when one is
  /// within edit distance 2, and lists every valid flag. Binaries call
  /// this once, right after construction, so `--serie-stride` dies with a
  /// teaching message instead of being silently ignored.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace cloudmedia::expr
