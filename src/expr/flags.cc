#include "expr/flags.h"

#include <stdexcept>

namespace cloudmedia::expr {

Flags::Flags(int argc, const char* const* argv, bool allow_positionals) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (!allow_positionals) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg].push_back(argv[++i]);
    } else {
      values_[arg].push_back("true");
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second.back();
}

double Flags::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second.back());
}

int Flags::get(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second.back());
}

long long Flags::get_ll(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second.back());
}

bool Flags::get(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second.back();
  return value == "true" || value == "1" || value == "yes";
}

std::vector<std::string> Flags::get_all(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

}  // namespace cloudmedia::expr
