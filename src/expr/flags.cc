#include "expr/flags.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace cloudmedia::expr {

namespace {

/// Plain Levenshtein distance, O(|a|*|b|); flag names are short.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

Flags::Flags(int argc, const char* const* argv, bool allow_positionals) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (!allow_positionals) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg].push_back(argv[++i]);
    } else {
      values_[arg].push_back("true");
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second.back();
}

double Flags::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second.back());
}

int Flags::get(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second.back());
}

long long Flags::get_ll(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second.back());
}

bool Flags::get(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second.back();
  return value == "true" || value == "1" || value == "yes";
}

std::vector<std::string> Flags::get_all(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

void Flags::require_known(const std::vector<std::string>& known) const {
  for (const auto& [key, unused] : values_) {
    (void)unused;
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string message = "unknown flag --" + key;
    // Suggest close declared names first; a typo is the common case.
    std::vector<std::string> close;
    for (const std::string& candidate : known) {
      if (edit_distance(key, candidate) <= 2) close.push_back(candidate);
    }
    if (!close.empty()) {
      message += " — did you mean ";
      for (std::size_t i = 0; i < close.size(); ++i) {
        if (i > 0) message += close.size() == 2 ? " or " : ", ";
        message += "--" + close[i];
      }
      message += "?";
    }
    message += " (valid flags:";
    for (const std::string& candidate : known) message += " --" + candidate;
    message += ")";
    throw util::PreconditionError(message);
  }
}

}  // namespace cloudmedia::expr
