#include "expr/config.h"

#include <cmath>

#include "util/check.h"

namespace cloudmedia::expr {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kModelBased: return "model-based";
    case Strategy::kReactive: return "reactive";
    case Strategy::kStatic: return "static";
    case Strategy::kClairvoyant: return "clairvoyant";
    case Strategy::kSeasonal: return "seasonal";
    case Strategy::kForecast: return "forecast";
  }
  return "?";
}

std::string to_string(Engine engine) {
  switch (engine) {
    case Engine::kDiscrete: return "discrete";
    case Engine::kCohort: return "cohort";
    case Engine::kAuto: return "auto";
  }
  return "?";
}

Engine engine_from_string(const std::string& text) {
  if (text == "discrete") return Engine::kDiscrete;
  if (text == "cohort") return Engine::kCohort;
  if (text == "auto") return Engine::kAuto;
  throw util::PreconditionError("unknown engine '" + text +
                                "' (expected discrete | cohort | auto)");
}

ExperimentConfig ExperimentConfig::make_default(core::StreamingMode mode) {
  ExperimentConfig cfg;
  cfg.mode = mode;

  // Paper Sec. VI-A: 20 channels, Zipf popularity, diurnal arrivals with
  // two flash crowds, 15-min mean seek interval. The aggregate arrival
  // rate (1.1 users/s, ~33-minute mean sessions, ~2200 concurrent users)
  // is calibrated so peak client–server demand fits Table II's actual VM
  // capacity of 150 VMs × 10 Mbps — the paper's "around 2500" users could
  // not be served by its own Table II at flash-crowd peaks; see
  // EXPERIMENTS.md. The mean peer uplink defaults to 1.0× the streaming
  // rate, the midpoint of the paper's own Fig.-11 sweep (DESIGN.md
  // explains why the literal Pareto parameters are rescaled).
  cfg.workload.num_channels = 20;
  cfg.workload.chunks_per_video = cfg.vod.chunks_per_video;
  cfg.workload.zipf_exponent = 1.0;
  cfg.workload.total_arrival_rate = 1.1;
  cfg.workload.streaming_rate = cfg.vod.streaming_rate;
  cfg.workload.uplink_mean_ratio = 1.0;

  cfg.streaming.mode = mode;
  return cfg;
}

void ExperimentConfig::validate() const {
  vod.validate();
  workload.validate();
  CM_EXPECTS(workload.chunks_per_video == vod.chunks_per_video);
  CM_EXPECTS(workload.streaming_rate == vod.streaming_rate);
  CM_EXPECTS(!vm_clusters.empty() && !nfs_clusters.empty());
  CM_EXPECTS(vm_budget_per_hour >= 0.0 && storage_budget_per_hour >= 0.0);
  CM_EXPECTS(vm_boot_delay >= 0.0);
  CM_EXPECTS(warmup_hours >= 0.0 && measure_hours > 0.0);
  CM_EXPECTS(reactive_margin >= 1.0);
  CM_EXPECTS(cohort_threshold > 0.0);
  CM_EXPECTS(cohort_window > 0.0);
  for (const TimedConfigOp& op : timeline) {
    if (!(op.fire_time > 0.0) || !std::isfinite(op.fire_time)) {
      throw util::PreconditionError(
          "timeline op '" + op.name +
          "' has a non-positive or non-finite fire time; timed scenario ops "
          "(name@6h) must fire strictly after t=0");
    }
    CM_EXPECTS(!op.name.empty());
    CM_EXPECTS(op.apply != nullptr);
  }
}

}  // namespace cloudmedia::expr
