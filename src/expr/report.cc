#include "expr/report.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "util/check.h"
#include "util/csv.h"

namespace cloudmedia::expr {

std::string results_dir() {
  const std::string dir = "results";
  util::ensure_directory(dir);
  return dir;
}

void print_series_table(const std::string& title,
                        const std::vector<SeriesColumn>& columns, double t0,
                        double t_end, double bucket_seconds,
                        const std::string& csv_name) {
  CM_EXPECTS(!columns.empty());
  CM_EXPECTS(bucket_seconds > 0.0);
  CM_EXPECTS(t_end > t0);

  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%10s", "hour");
  for (const SeriesColumn& col : columns) std::printf("  %18s", col.name.c_str());
  std::printf("\n");

  std::unique_ptr<util::CsvWriter> csv;
  if (!csv_name.empty()) {
    csv = std::make_unique<util::CsvWriter>(results_dir() + "/" + csv_name +
                                            ".csv");
    std::vector<std::string> header{"hour"};
    for (const SeriesColumn& col : columns) header.push_back(col.name);
    csv->write_header(header);
  }

  const int buckets =
      static_cast<int>(std::ceil((t_end - t0) / bucket_seconds));
  for (int b = 0; b < buckets; ++b) {
    const double w0 = t0 + b * bucket_seconds;
    const double w1 = std::min(t_end, w0 + bucket_seconds);
    std::printf("%10.1f", (w0 - t0) / 3600.0);
    std::vector<double> row{(w0 - t0) / 3600.0};
    for (const SeriesColumn& col : columns) {
      const double v = col.series ? col.series->mean_over(w0, w1) : 0.0;
      std::printf("  %18.3f", v);
      row.push_back(v);
    }
    std::printf("\n");
    if (csv) csv->write_row(row);
  }
  if (csv) std::printf("[csv] %s/%s.csv\n", results_dir().c_str(), csv_name.c_str());
}

void print_paper_comparison(const std::string& label, double measured,
                            double paper_value, const std::string& unit) {
  std::printf("%-46s measured %10.3f %-6s | paper %10.3f %-6s\n", label.c_str(),
              measured, unit.c_str(), paper_value, unit.c_str());
}

}  // namespace cloudmedia::expr
