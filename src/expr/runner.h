#pragma once

#include <cstdint>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::expr {

/// Everything a figure bench needs after one run.
struct ExperimentResult {
  vod::SystemMetrics metrics;
  double measure_start = 0.0;   ///< seconds; warmup boundary
  double measure_end = 0.0;     ///< seconds
  double vm_cost_total = 0.0;       ///< $ accrued over the whole run
  double storage_cost_total = 0.0;  ///< $
  long plans_submitted = 0;
  long plans_rejected = 0;
  long vm_boots = 0;
  long vm_shutdowns = 0;
  std::uint64_t sim_events = 0;     ///< discrete events the run processed
  /// Viewers still in the system when the horizon hit. The conservation
  /// invariant (tool_fuzz) checks arrivals == departures + final_users:
  /// exact for the discrete engine; the cohort engine rounds its fluid
  /// mass, so the checker allows it one viewer of slack per cohort.
  long final_users = 0;
  bool used_cohort_engine = false;  ///< which core the engine knob picked

  // --- summaries over the measurement window ----------------------------
  [[nodiscard]] double mean_quality() const;
  [[nodiscard]] double mean_reserved_mbps() const;
  [[nodiscard]] double mean_used_cloud_mbps() const;
  [[nodiscard]] double mean_used_peer_mbps() const;
  [[nodiscard]] double mean_vm_cost_rate() const;      ///< $/h
  [[nodiscard]] double mean_storage_cost_rate() const; ///< $/h
  [[nodiscard]] double mean_concurrent_users() const;
  /// Fraction of bandwidth samples where reserved >= used (prediction
  /// sufficiency, the Fig.-4 claim).
  [[nodiscard]] double reserved_covers_used_fraction() const;
};

/// Dry-run config.timeline against a scratch copy without simulating:
/// throws the runner's teaching PreconditionError when a timed op touches
/// a frozen field (mode, engine, channel count, the horizon, ...) or
/// leaves an invalid workload behind. The same check ExperimentRunner::run
/// performs before t=0, exposed so profile validation can reject a bad
/// timeline at load time instead of mid-sweep on a worker thread.
void validate_timeline(const ExperimentConfig& config);

/// Closed-form peak-population estimate: Σ_c channel_max_rate(c) ×
/// expected session length. The `auto` engine compares this against
/// ExperimentConfig::cohort_threshold to pick a simulation core before the
/// run starts (no RNG draws — the discrete path stays bit-identical).
[[nodiscard]] double estimated_peak_users(const ExperimentConfig& config);

/// Build + run one experiment end to end. Deterministic in config.seed.
class ExperimentRunner {
 public:
  [[nodiscard]] static ExperimentResult run(const ExperimentConfig& config);
};

}  // namespace cloudmedia::expr
