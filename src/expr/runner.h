#pragma once

#include <cstdint>
#include <vector>

#include "expr/config.h"

namespace cloudmedia::expr {

/// Everything a figure bench needs after one run.
struct ExperimentResult {
  vod::SystemMetrics metrics;
  double measure_start = 0.0;   ///< seconds; warmup boundary
  double measure_end = 0.0;     ///< seconds
  double vm_cost_total = 0.0;       ///< $ accrued over the whole run
  double storage_cost_total = 0.0;  ///< $
  long plans_submitted = 0;
  long plans_rejected = 0;
  long vm_boots = 0;
  long vm_shutdowns = 0;
  std::uint64_t sim_events = 0;     ///< discrete events the run processed

  // --- summaries over the measurement window ----------------------------
  [[nodiscard]] double mean_quality() const;
  [[nodiscard]] double mean_reserved_mbps() const;
  [[nodiscard]] double mean_used_cloud_mbps() const;
  [[nodiscard]] double mean_used_peer_mbps() const;
  [[nodiscard]] double mean_vm_cost_rate() const;      ///< $/h
  [[nodiscard]] double mean_storage_cost_rate() const; ///< $/h
  [[nodiscard]] double mean_concurrent_users() const;
  /// Fraction of bandwidth samples where reserved >= used (prediction
  /// sufficiency, the Fig.-4 claim).
  [[nodiscard]] double reserved_covers_used_fraction() const;
};

/// Closed-form peak-population estimate: Σ_c channel_max_rate(c) ×
/// expected session length. The `auto` engine compares this against
/// ExperimentConfig::cohort_threshold to pick a simulation core before the
/// run starts (no RNG draws — the discrete path stays bit-identical).
[[nodiscard]] double estimated_peak_users(const ExperimentConfig& config);

/// Build + run one experiment end to end. Deterministic in config.seed.
class ExperimentRunner {
 public:
  [[nodiscard]] static ExperimentResult run(const ExperimentConfig& config);
};

}  // namespace cloudmedia::expr
