#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/clusters.h"
#include "core/controller.h"
#include "core/params.h"
#include "predict/forecaster.h"
#include "vod/streaming_system.h"
#include "workload/scenario.h"

namespace cloudmedia::expr {

/// Which provisioning policy drives the controller. kForecast is the
/// paper's model driven by a pluggable predictor (see predict/policy.h);
/// pick the predictor with ExperimentConfig::forecaster.
enum class Strategy {
  kModelBased,
  kReactive,
  kStatic,
  kClairvoyant,
  kSeasonal,
  kForecast,
};

[[nodiscard]] std::string to_string(Strategy strategy);

/// Which simulation core executes the run.
///  - kDiscrete: every viewer is an individual Peer with its own heap
///    events — exact, and the default (all committed goldens use it).
///  - kCohort: statistically-identical viewers are batched into cohorts
///    with fluid pool demand — approximate, built for 10M-viewer scale.
///  - kAuto: pick per run — cohort when the estimated peak population
///    reaches `cohort_threshold`, the exact discrete path (bit-identical
///    to kDiscrete) below it.
enum class Engine {
  kDiscrete,
  kCohort,
  kAuto,
};

[[nodiscard]] std::string to_string(Engine engine);
/// Parse "discrete" | "cohort" | "auto"; throws PreconditionError otherwise.
[[nodiscard]] Engine engine_from_string(const std::string& text);

struct ExperimentConfig;

/// One scheduled mid-run config mutation — the runtime form of a scenario
/// op carrying an `@fire-time` suffix (sweep::ScenarioOp::fire_time). The
/// experiment loop applies pending ops, sorted by fire time, at the first
/// controller-interval boundary >= fire_time, then re-propagates the
/// mutated config into the live system (workload shape, budgets, SLA).
///
/// `apply(live, baseline)` mutates the running config in place; `baseline`
/// is a snapshot taken before any timeline op fired, so ops like the
/// `recovery` primitive can restore pre-outage values. `workload_shaping`
/// mirrors the scenario-op tag and is introspective only: timed ops never
/// enter ParamGrid::workload_hash / SweepRunner::run_seed, so a timeline
/// replays the byte-identical viewer population at any thread count.
struct TimedConfigOp {
  double fire_time = 0.0;   ///< seconds of simulated time; must be > 0
  std::string name;         ///< the scenario op's name, for errors and logs
  bool workload_shaping = true;
  std::function<void(ExperimentConfig& live, const ExperimentConfig& baseline)>
      apply;
};

/// A complete experiment: workload, VoD model, cloud menu, controller
/// policy, and schedule. Defaults reproduce the paper's Sec. VI-A setup;
/// see EXPERIMENTS.md for the two documented calibrations (population
/// scaled to Table II's actual VM capacity; peer-uplink mean expressed as
/// a ratio of r).
struct ExperimentConfig {
  core::VodParameters vod;                    ///< r, T0, J, R (paper values)
  workload::WorkloadConfig workload;          ///< set up in make_default()
  std::vector<core::VmClusterSpec> vm_clusters = core::paper_vm_clusters();
  std::vector<core::NfsClusterSpec> nfs_clusters = core::paper_nfs_clusters();
  double vm_budget_per_hour = 100.0;          ///< B_M
  double storage_budget_per_hour = 1.0;       ///< B_S

  core::StreamingMode mode = core::StreamingMode::kClientServer;
  core::CapacityModel capacity_model = core::CapacityModel::kChannelPooled;
  bool occupancy_floor = true;
  core::P2pOptions p2p;                       ///< Eqn.-(5) cap variant
  Strategy strategy = Strategy::kModelBased;
  double reactive_margin = 1.2;               ///< for Strategy::kReactive
  predict::ForecasterSpec forecaster;         ///< for Strategy::kForecast

  double vm_boot_delay = 25.0;                ///< Sec. VI-C measurement
  vod::StreamingOptions streaming;            ///< mode is overridden by `mode`

  double warmup_hours = 4.0;                  ///< excluded from summaries
  double measure_hours = 100.0;               ///< the paper's Fig.-4/5 window
  std::uint64_t seed = 42;

  /// Simulation core selection (structural: frozen at t=0, never on the
  /// timeline). kDiscrete by default so every committed golden replays
  /// byte-identically; kAuto routes to the cohort core only when
  /// `estimated_peak_users(config) >= cohort_threshold`.
  Engine engine = Engine::kDiscrete;
  double cohort_threshold = 250'000.0;  ///< viewers; kAuto switch point
  double cohort_window = 300.0;         ///< seconds per cohort arrival batch

  /// Scheduled mid-run mutations, filled by Scenario::apply from ops with
  /// an `@fire-time` suffix (e.g. "regional_outage@6h+recovery@18h"). The
  /// runner sorts by fire time and applies each at the first provisioning-
  /// interval boundary >= its fire time; ops past total_duration() never
  /// fire. Structural fields (mode, strategy, catalog size, cluster menus,
  /// seed, horizons) are frozen at t=0 — a timeline op that touches one is
  /// rejected before the simulation starts.
  std::vector<TimedConfigOp> timeline;

  /// Paper-default configuration for the given mode.
  [[nodiscard]] static ExperimentConfig make_default(core::StreamingMode mode);

  [[nodiscard]] double total_duration() const noexcept {
    return (warmup_hours + measure_hours) * 3600.0;
  }
  [[nodiscard]] double measure_start() const noexcept {
    return warmup_hours * 3600.0;
  }

  void validate() const;
};

}  // namespace cloudmedia::expr
