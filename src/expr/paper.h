#pragma once

#include <array>

namespace cloudmedia::expr::paper {

// Reference values reported in the paper's evaluation (Sec. VI), printed by
// the figure benches next to measured values and recorded in EXPERIMENTS.md.

/// Fig. 5: average streaming quality.
inline constexpr double kQualityClientServer = 0.97;
inline constexpr double kQualityP2p = 0.95;

/// Fig. 10: average VM rental cost, $/hour.
inline constexpr double kVmCostClientServer = 48.0;
inline constexpr double kVmCostP2p = 4.27;

/// Sec. VI-C: NFS storage cost, $/day.
inline constexpr double kStorageCostPerDay = 0.018;

/// Sec. VI-C: VM boot latency, seconds ("around 25 seconds").
inline constexpr double kVmBootSeconds = 25.0;

/// Fig. 11: mean-peer-upload/streaming-rate ratios and the reported
/// average streaming qualities.
inline constexpr std::array<double, 3> kFig11Ratios = {0.9, 1.0, 1.2};
inline constexpr std::array<double, 3> kFig11Quality = {0.95, 0.95, 1.0};

/// Fig. 8/9: the four representative channels' average sizes.
inline constexpr std::array<double, 4> kRepresentativeChannelSizes = {60.0, 100.0,
                                                                      200.0, 600.0};

/// Fig. 4 scale, for sanity context: reserved/used bandwidth is plotted in
/// the hundreds-to-~2200 Mbps range over ~100 hours.
inline constexpr double kFig4MaxMbps = 2200.0;

}  // namespace cloudmedia::expr::paper
