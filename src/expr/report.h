#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace cloudmedia::expr {

/// One named series to print/export, e.g. "C/S reserved (Mbps)".
struct SeriesColumn {
  std::string name;
  const util::TimeSeries* series = nullptr;
};

/// Print aligned hourly (or any-width) rows of several series to stdout —
/// the textual equivalent of a paper figure — and optionally mirror them
/// to `results/<csv_name>.csv`. Series are resampled into `bucket_seconds`
/// windows starting at `t0`; the time column is printed in hours since t0.
void print_series_table(const std::string& title,
                        const std::vector<SeriesColumn>& columns, double t0,
                        double t_end, double bucket_seconds,
                        const std::string& csv_name = "");

/// Print a "label: measured vs paper" summary line.
void print_paper_comparison(const std::string& label, double measured,
                            double paper_value, const std::string& unit);

/// Create/clean the results directory used by the benches ("results").
[[nodiscard]] std::string results_dir();

}  // namespace cloudmedia::expr
