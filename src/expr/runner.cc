#include "expr/runner.h"

#include <memory>

#include "cloud/cloud_service.h"
#include "core/demand.h"
#include "predict/policy.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace cloudmedia::expr {

namespace {

double mean_over_window(const util::TimeSeries& series, double t0, double t1) {
  return series.mean_over(t0, t1);
}

std::unique_ptr<core::DemandPolicy> make_policy(
    const ExperimentConfig& config, const workload::Workload& workload) {
  core::DemandEstimatorConfig estimator;
  estimator.mode = config.mode;
  estimator.capacity_model = config.capacity_model;
  estimator.occupancy_floor = config.occupancy_floor;
  estimator.p2p = config.p2p;

  switch (config.strategy) {
    case Strategy::kModelBased:
      return std::make_unique<core::ModelBasedPolicy>(config.vod, estimator);
    case Strategy::kReactive:
      return std::make_unique<core::ReactivePolicy>(config.vod,
                                                    config.reactive_margin);
    case Strategy::kStatic: {
      // Peak provisioning: the paper's model evaluated at the diurnal peak.
      core::DemandEstimator peak_estimator(config.vod, estimator);
      const workload::ViewingBehavior& behavior = config.workload.behavior;
      const int j = config.vod.chunks_per_video;
      core::ChannelObservation obs;
      obs.transfer = behavior.transfer_matrix(j);
      obs.entry = behavior.entry_distribution(j);
      obs.occupancy.assign(static_cast<std::size_t>(j), 0.0);
      obs.mean_peer_uplink = workload.uplink_distribution().mean();
      std::vector<std::vector<double>> demand;
      demand.reserve(static_cast<std::size_t>(workload.num_channels()));
      double total = 0.0;
      for (int c = 0; c < workload.num_channels(); ++c) {
        obs.arrival_rate = workload.channel_max_rate(c);
        demand.push_back(peak_estimator.estimate(obs).cloud_demand);
        for (double d : demand.back()) total += d;
      }
      // Channel peaks do not coincide, so their sum can exceed what the
      // cloud sells. A fixed plan must be purchasable: pro-rate everything
      // to the deliverable capacity, as an operator buying "peak" would.
      double available = 0.0;
      for (const core::VmClusterSpec& cluster : config.vm_clusters) {
        available += static_cast<double>(cluster.max_vms) * config.vod.vm_bandwidth;
      }
      if (total > available && total > 0.0) {
        const double scale = available / total;
        for (auto& channel : demand) {
          for (double& d : channel) d *= scale;
        }
      }
      return std::make_unique<core::StaticPolicy>(std::move(demand));
    }
    case Strategy::kSeasonal:
      return std::make_unique<core::SeasonalPolicy>(config.vod, estimator);
    case Strategy::kForecast:
      return std::make_unique<predict::ForecastPolicy>(config.vod, estimator,
                                                       config.forecaster);
    case Strategy::kClairvoyant:
      return std::make_unique<core::ClairvoyantPolicy>(
          config.vod, estimator,
          [&workload](int channel, double t0, double t1) {
            // True mean rate over the interval, 1-minute resolution.
            CM_EXPECTS(t1 > t0);
            double acc = 0.0;
            int n = 0;
            for (double t = t0; t < t1; t += 60.0) {
              acc += workload.channel_rate(channel, t);
              ++n;
            }
            return n > 0 ? acc / n : workload.channel_rate(channel, t0);
          });
  }
  throw util::PreconditionError("unknown strategy");
}

}  // namespace

double ExperimentResult::mean_quality() const {
  return mean_over_window(metrics.quality, measure_start, measure_end);
}
double ExperimentResult::mean_reserved_mbps() const {
  return mean_over_window(metrics.reserved_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_used_cloud_mbps() const {
  return mean_over_window(metrics.used_cloud_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_used_peer_mbps() const {
  return mean_over_window(metrics.used_peer_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_vm_cost_rate() const {
  return mean_over_window(metrics.vm_cost_rate, measure_start, measure_end);
}
double ExperimentResult::mean_storage_cost_rate() const {
  return mean_over_window(metrics.storage_cost_rate, measure_start, measure_end);
}
double ExperimentResult::mean_concurrent_users() const {
  return mean_over_window(metrics.concurrent_users, measure_start, measure_end);
}

double ExperimentResult::reserved_covers_used_fraction() const {
  const util::TimeSeries& reserved = metrics.reserved_mbps;
  const util::TimeSeries& used = metrics.used_cloud_mbps;
  std::size_t covered = 0, total = 0;
  for (std::size_t i = 0; i < std::min(reserved.size(), used.size()); ++i) {
    if (reserved.time_at(i) < measure_start || reserved.time_at(i) >= measure_end)
      continue;
    ++total;
    if (reserved.value_at(i) >= used.value_at(i) - 1e-9) ++covered;
  }
  return total ? static_cast<double>(covered) / static_cast<double>(total) : 1.0;
}

ExperimentResult ExperimentRunner::run(const ExperimentConfig& config) {
  config.validate();

  sim::Simulator simulator;
  const workload::Workload workload(config.workload, config.seed);

  cloud::CloudConfig cloud_config;
  cloud_config.sla = cloud::SlaTerms{config.vm_budget_per_hour,
                                     config.storage_budget_per_hour,
                                     config.vm_clusters, config.nfs_clusters};
  cloud_config.vm =
      cloud::VmSchedulerConfig{config.vm_boot_delay, config.vod.vm_bandwidth};
  cloud::CloudService cloud(simulator, cloud_config);

  core::ControllerConfig controller_config{
      config.vm_clusters, config.nfs_clusters, config.vm_budget_per_hour,
      config.storage_budget_per_hour};
  auto controller = std::make_unique<core::Controller>(
      config.vod, controller_config, make_policy(config, workload));

  vod::StreamingOptions options = config.streaming;
  options.mode = config.mode;
  vod::StreamingSystem system(simulator, workload, config.vod, cloud,
                              std::move(controller), options);
  system.start();
  simulator.run_until(config.total_duration());

  ExperimentResult result;
  result.metrics = system.metrics();
  result.measure_start = config.measure_start();
  result.measure_end = config.total_duration();
  result.vm_cost_total = cloud.billing().total("vm");
  result.storage_cost_total = cloud.billing().total("storage");
  result.plans_submitted =
      static_cast<long>(cloud.request_monitor().log().size());
  result.plans_rejected = result.metrics.counters.rejected_plans;
  result.vm_boots = cloud.vm_monitor().total_boots();
  result.vm_shutdowns = cloud.vm_monitor().total_shutdowns();
  result.sim_events = simulator.events_processed();
  return result;
}

}  // namespace cloudmedia::expr
