#include "expr/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "cloud/cloud_service.h"
#include "core/demand.h"
#include "predict/policy.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vod/cohort_system.h"

namespace cloudmedia::expr {

namespace {

double mean_over_window(const util::TimeSeries& series, double t0, double t1) {
  return series.mean_over(t0, t1);
}

std::unique_ptr<core::DemandPolicy> make_policy(
    const ExperimentConfig& config, const workload::Workload& workload) {
  core::DemandEstimatorConfig estimator;
  estimator.mode = config.mode;
  estimator.capacity_model = config.capacity_model;
  estimator.occupancy_floor = config.occupancy_floor;
  estimator.p2p = config.p2p;

  switch (config.strategy) {
    case Strategy::kModelBased:
      return std::make_unique<core::ModelBasedPolicy>(config.vod, estimator);
    case Strategy::kReactive:
      return std::make_unique<core::ReactivePolicy>(config.vod,
                                                    config.reactive_margin);
    case Strategy::kStatic: {
      // Peak provisioning: the paper's model evaluated at the diurnal peak.
      core::DemandEstimator peak_estimator(config.vod, estimator);
      const workload::ViewingBehavior& behavior = config.workload.behavior;
      const int j = config.vod.chunks_per_video;
      core::ChannelObservation obs;
      obs.transfer = behavior.transfer_matrix(j);
      obs.entry = behavior.entry_distribution(j);
      obs.occupancy.assign(static_cast<std::size_t>(j), 0.0);
      obs.mean_peer_uplink = workload.uplink_distribution().mean();
      std::vector<std::vector<double>> demand;
      demand.reserve(static_cast<std::size_t>(workload.num_channels()));
      double total = 0.0;
      for (int c = 0; c < workload.num_channels(); ++c) {
        obs.arrival_rate = workload.channel_max_rate(c);
        demand.push_back(peak_estimator.estimate(obs).cloud_demand);
        for (double d : demand.back()) total += d;
      }
      // Channel peaks do not coincide, so their sum can exceed what the
      // cloud sells. A fixed plan must be purchasable: pro-rate everything
      // to the deliverable capacity, as an operator buying "peak" would.
      double available = 0.0;
      for (const core::VmClusterSpec& cluster : config.vm_clusters) {
        available += static_cast<double>(cluster.max_vms) * config.vod.vm_bandwidth;
      }
      if (total > available && total > 0.0) {
        const double scale = available / total;
        for (auto& channel : demand) {
          for (double& d : channel) d *= scale;
        }
      }
      return std::make_unique<core::StaticPolicy>(std::move(demand));
    }
    case Strategy::kSeasonal:
      return std::make_unique<core::SeasonalPolicy>(config.vod, estimator);
    case Strategy::kForecast:
      return std::make_unique<predict::ForecastPolicy>(config.vod, estimator,
                                                       config.forecaster);
    case Strategy::kClairvoyant:
      return std::make_unique<core::ClairvoyantPolicy>(
          config.vod, estimator,
          [&workload](int channel, double t0, double t1) {
            // True mean rate over the interval, 1-minute resolution.
            CM_EXPECTS(t1 > t0);
            double acc = 0.0;
            int n = 0;
            for (double t = t0; t < t1; t += 60.0) {
              acc += workload.channel_rate(channel, t);
              ++n;
            }
            return n > 0 ? acc / n : workload.channel_rate(channel, t0);
          });
  }
  throw util::PreconditionError("unknown strategy");
}

void require_unchanged(bool unchanged, const std::string& op_name,
                       const char* field) {
  if (unchanged) return;
  throw util::PreconditionError(
      "timeline op '" + op_name + "' changed " + field +
      ", which is wired into the running system at t=0 and cannot change "
      "mid-run (timed scenario ops may reshape the arrival pattern, viewing "
      "behaviour, catalog popularity, peer uplinks, and the VM/storage "
      "budgets)");
}

/// The fields a timed op may NOT touch: everything the simulation bakes in
/// before t=0 — pool/menu sizing, the policy object, the RNG seed, the
/// schedule. Checked in a pre-run dry pass so a bad timeline fails fast
/// with a teaching error instead of silently no-opping mid-run.
void enforce_mid_run_mutable(const ExperimentConfig& before,
                             const ExperimentConfig& after,
                             const std::string& op_name) {
  require_unchanged(after.mode == before.mode, op_name, "mode");
  require_unchanged(after.capacity_model == before.capacity_model, op_name,
                    "capacity_model");
  require_unchanged(after.occupancy_floor == before.occupancy_floor, op_name,
                    "occupancy_floor");
  require_unchanged(after.strategy == before.strategy, op_name, "strategy");
  require_unchanged(after.reactive_margin == before.reactive_margin, op_name,
                    "reactive_margin");
  require_unchanged(after.vm_boot_delay == before.vm_boot_delay, op_name,
                    "vm_boot_delay");
  require_unchanged(after.seed == before.seed, op_name, "seed");
  require_unchanged(after.warmup_hours == before.warmup_hours &&
                        after.measure_hours == before.measure_hours,
                    op_name, "the measurement horizon");
  require_unchanged(after.vm_clusters.size() == before.vm_clusters.size() &&
                        after.nfs_clusters.size() == before.nfs_clusters.size(),
                    op_name, "the cluster menus");
  require_unchanged(after.workload.num_channels == before.workload.num_channels,
                    op_name, "workload.num_channels");
  require_unchanged(
      after.workload.chunks_per_video == before.workload.chunks_per_video,
      op_name, "workload.chunks_per_video");
  require_unchanged(
      after.workload.streaming_rate == before.workload.streaming_rate, op_name,
      "workload.streaming_rate");
  require_unchanged(after.engine == before.engine, op_name, "engine");
  require_unchanged(after.cohort_threshold == before.cohort_threshold, op_name,
                    "cohort_threshold");
  require_unchanged(after.cohort_window == before.cohort_window, op_name,
                    "cohort_window");
}

/// Dry-run the timeline against a scratch config: rejects ops that touch
/// frozen fields, validates every intermediate workload, and returns the
/// arrival-envelope headroom — the max, over timeline states and channels,
/// of channel_max_rate relative to the t=0 config. PoissonArrivals freezes
/// its thinning envelope at construction, so a mid-run rate increase must
/// be pre-paid here. An empty timeline returns exactly 1.0, which
/// multiplies bit-neutrally into the envelope (untimed runs keep their
/// arrival streams byte-identical).
double timeline_envelope_headroom(const std::vector<TimedConfigOp>& timeline,
                                  const ExperimentConfig& baseline) {
  if (timeline.empty()) return 1.0;
  double headroom = 1.0;
  const workload::Workload initial(baseline.workload, /*seed=*/0);
  ExperimentConfig scratch = baseline;
  for (const TimedConfigOp& op : timeline) {
    const ExperimentConfig before_op = scratch;
    op.apply(scratch, baseline);
    enforce_mid_run_mutable(before_op, scratch, op.name);
    scratch.workload.validate();
    const workload::Workload after(scratch.workload, /*seed=*/0);
    for (int c = 0; c < baseline.workload.num_channels; ++c) {
      const double base_rate = initial.channel_max_rate(c);
      if (base_rate > 0.0) {
        headroom = std::max(headroom, after.channel_max_rate(c) / base_rate);
      }
    }
  }
  return headroom;
}

}  // namespace

void validate_timeline(const ExperimentConfig& config) {
  ExperimentConfig baseline = config;
  baseline.timeline.clear();
  (void)timeline_envelope_headroom(config.timeline, baseline);
}

double estimated_peak_users(const ExperimentConfig& config) {
  // Little's law at the diurnal peak: peak concurrent population ≈
  // peak arrival rate × mean session duration. Channel peaks are summed
  // as if they coincided — an upper-leaning estimate, which is the right
  // bias for an engine switch (prefer the scalable core near the line).
  const workload::Workload workload(config.workload, /*seed=*/0);
  const double session_seconds =
      workload.expected_session_chunks() * config.vod.chunk_duration;
  double peak_rate = 0.0;
  for (int c = 0; c < config.workload.num_channels; ++c) {
    peak_rate += workload.channel_max_rate(c);
  }
  return peak_rate * session_seconds;
}

double ExperimentResult::mean_quality() const {
  return mean_over_window(metrics.quality, measure_start, measure_end);
}
double ExperimentResult::mean_reserved_mbps() const {
  return mean_over_window(metrics.reserved_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_used_cloud_mbps() const {
  return mean_over_window(metrics.used_cloud_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_used_peer_mbps() const {
  return mean_over_window(metrics.used_peer_mbps, measure_start, measure_end);
}
double ExperimentResult::mean_vm_cost_rate() const {
  return mean_over_window(metrics.vm_cost_rate, measure_start, measure_end);
}
double ExperimentResult::mean_storage_cost_rate() const {
  return mean_over_window(metrics.storage_cost_rate, measure_start, measure_end);
}
double ExperimentResult::mean_concurrent_users() const {
  return mean_over_window(metrics.concurrent_users, measure_start, measure_end);
}

double ExperimentResult::reserved_covers_used_fraction() const {
  const util::TimeSeries& reserved = metrics.reserved_mbps;
  const util::TimeSeries& used = metrics.used_cloud_mbps;
  std::size_t covered = 0, total = 0;
  for (std::size_t i = 0; i < std::min(reserved.size(), used.size()); ++i) {
    if (reserved.time_at(i) < measure_start || reserved.time_at(i) >= measure_end)
      continue;
    ++total;
    if (reserved.value_at(i) >= used.value_at(i) - 1e-9) ++covered;
  }
  return total ? static_cast<double>(covered) / static_cast<double>(total) : 1.0;
}

ExperimentResult ExperimentRunner::run(const ExperimentConfig& config) {
  config.validate();

  // `live` is the config the running system reads; timed ops mutate it at
  // their boundary. `baseline` is the pre-timeline snapshot handed to
  // baseline-aware ops (the recovery primitive restores values from it).
  ExperimentConfig live = config;
  std::stable_sort(live.timeline.begin(), live.timeline.end(),
                   [](const TimedConfigOp& a, const TimedConfigOp& b) {
                     return a.fire_time < b.fire_time;
                   });
  ExperimentConfig baseline = live;
  baseline.timeline.clear();

  // Dry pass: rejects timeline ops touching frozen fields and pre-pays the
  // arrival-envelope headroom for any mid-run rate increase. Exactly 1.0
  // (bit-neutral) when the timeline is empty.
  const double headroom = timeline_envelope_headroom(live.timeline, baseline);

  sim::Simulator simulator;
  workload::Workload workload(live.workload, live.seed, headroom);

  cloud::CloudConfig cloud_config;
  cloud_config.sla = cloud::SlaTerms{live.vm_budget_per_hour,
                                     live.storage_budget_per_hour,
                                     live.vm_clusters, live.nfs_clusters};
  cloud_config.vm =
      cloud::VmSchedulerConfig{live.vm_boot_delay, live.vod.vm_bandwidth};
  cloud::CloudService cloud(simulator, cloud_config);

  core::ControllerConfig controller_config{
      live.vm_clusters, live.nfs_clusters, live.vm_budget_per_hour,
      live.storage_budget_per_hour};
  auto controller = std::make_unique<core::Controller>(
      live.vod, controller_config, make_policy(live, workload));
  // The controller moves into whichever system is built; timeline ops still
  // need to renegotiate its budgets mid-run.
  core::Controller* controller_raw = controller.get();

  vod::StreamingOptions options = live.streaming;
  options.mode = live.mode;

  // Engine selection (kDiscrete by default — the exact per-peer path every
  // committed golden replays). kAuto estimates the peak population before
  // anything draws randomness, so routing below the threshold leaves the
  // discrete run bit-identical to engine=discrete.
  const bool use_cohort =
      live.engine == Engine::kCohort ||
      (live.engine == Engine::kAuto &&
       estimated_peak_users(live) >= live.cohort_threshold);

  std::unique_ptr<vod::StreamingSystem> discrete_system;
  std::unique_ptr<vod::CohortSystem> cohort_system;
  if (use_cohort) {
    vod::CohortOptions cohort_options;
    cohort_options.streaming = options;
    cohort_options.window = live.cohort_window;
    cohort_system = std::make_unique<vod::CohortSystem>(
        simulator, workload, live.vod, cloud, std::move(controller),
        cohort_options);
  } else {
    discrete_system = std::make_unique<vod::StreamingSystem>(
        simulator, workload, live.vod, cloud, std::move(controller), options);
  }

  // Schedule the timeline BEFORE system.start(): the simulator fires
  // equal-timestamp events in scheduling order, so a mutation scheduled
  // here precedes the provisioning pass of its own boundary — the first
  // post-fire plan already sees the mutated config. Each op lands at the
  // first controller-interval boundary >= its fire time (ISSUE semantics);
  // ops whose boundary falls past the horizon never fire.
  const double interval = options.provisioning_interval;
  for (const TimedConfigOp& op : live.timeline) {
    double boundary =
        std::ceil(op.fire_time / interval - 1e-9) * interval;
    boundary = std::max(boundary, interval);
    if (boundary > live.total_duration()) continue;
    simulator.schedule_at(
        boundary, [&live, &baseline, &workload, controller_raw, &cloud, &op] {
          op.apply(live, baseline);
          workload.set_config(live.workload);
          controller_raw->set_budgets(live.vm_budget_per_hour,
                                      live.storage_budget_per_hour);
          cloud.set_budgets(live.vm_budget_per_hour,
                            live.storage_budget_per_hour);
        });
  }

  if (cohort_system) {
    cohort_system->start();
  } else {
    discrete_system->start();
  }
  simulator.run_until(live.total_duration());

  ExperimentResult result;
  result.metrics =
      cohort_system ? cohort_system->metrics() : discrete_system->metrics();
  result.measure_start = live.measure_start();
  result.measure_end = live.total_duration();
  result.vm_cost_total = cloud.billing().total("vm");
  result.storage_cost_total = cloud.billing().total("storage");
  result.plans_submitted =
      static_cast<long>(cloud.request_monitor().log().size());
  result.plans_rejected = result.metrics.counters.rejected_plans;
  result.vm_boots = cloud.vm_monitor().total_boots();
  result.vm_shutdowns = cloud.vm_monitor().total_shutdowns();
  result.sim_events = simulator.events_processed();
  result.final_users = static_cast<long>(
      cohort_system ? cohort_system->current_users()
                    : discrete_system->current_users());
  result.used_cohort_engine = use_cohort;
  return result;
}

}  // namespace cloudmedia::expr
