#include "vod/streaming_system.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/log.h"
#include "util/units.h"

namespace cloudmedia::vod {

namespace {
constexpr std::uint64_t kSlotMask = 0xffffffffull;

std::uint64_t make_handle(std::uint32_t slot, std::uint32_t generation) noexcept {
  return static_cast<std::uint64_t>(slot) |
         (static_cast<std::uint64_t>(generation) << 32);
}
}  // namespace

StreamingSystem::StreamingSystem(sim::Simulator& simulator,
                                 const workload::Workload& workload,
                                 core::VodParameters params,
                                 cloud::CloudService& cloud,
                                 std::unique_ptr<core::Controller> controller,
                                 StreamingOptions options)
    : sim_(&simulator),
      workload_(&workload),
      params_(params),
      cloud_(&cloud),
      controller_(std::move(controller)),
      options_(options),
      num_channels_(workload.num_channels()),
      num_chunks_(params.chunks_per_video),
      tracker_(workload.num_channels(), params.chunks_per_video),
      entry_point_(options.entry) {
  params_.validate();
  CM_EXPECTS(controller_ != nullptr);
  CM_EXPECTS(workload.config().chunks_per_video == params.chunks_per_video);
  CM_EXPECTS(options_.provisioning_interval > 0.0);
  CM_EXPECTS(options_.rebalance_interval > 0.0);
  CM_EXPECTS(options_.sample_interval > 0.0);
  CM_EXPECTS(options_.quality_interval > 0.0 && options_.quality_window > 0.0);

  const std::size_t total =
      static_cast<std::size_t>(num_channels_) * static_cast<std::size_t>(num_chunks_);
  pools_.reserve(total);
  for (int c = 0; c < num_channels_; ++c) {
    for (int i = 0; i < num_chunks_; ++i) {
      pools_.push_back(std::make_unique<ServicePool>(
          simulator, params_.vm_bandwidth,
          [this, c, i](const ServicePool::Completion& completion) {
            handle_completion(c, i, completion);
          }));
    }
  }
  peer_capacity_.assign(total, 0.0);
  served_cloud_snapshot_.assign(total, 0.0);
  members_.resize(static_cast<std::size_t>(num_channels_));
  owner_count_.assign(static_cast<std::size_t>(num_channels_),
                      std::vector<int>(static_cast<std::size_t>(num_chunks_), 0));
  position_count_ = owner_count_;
  uplink_sum_.assign(static_cast<std::size_t>(num_channels_), 0.0);
  next_user_index_.assign(static_cast<std::size_t>(num_channels_), 0);
  last_arrival_time_.assign(static_cast<std::size_t>(num_channels_), 0.0);
  metrics_.channels.resize(static_cast<std::size_t>(num_channels_));

  cloud_->vm_scheduler().set_capacity_listener([this] { rebalance_capacity(); });
}

std::size_t StreamingSystem::pool_index(int channel, int chunk) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  CM_EXPECTS(chunk >= 0 && chunk < num_chunks_);
  return static_cast<std::size_t>(channel) * static_cast<std::size_t>(num_chunks_) +
         static_cast<std::size_t>(chunk);
}

ServicePool& StreamingSystem::pool(int channel, int chunk) {
  return *pools_[pool_index(channel, chunk)];
}

// --- peer slab -------------------------------------------------------------

std::uint32_t StreamingSystem::slot_of(const Peer& peer) const noexcept {
  return static_cast<std::uint32_t>(&peer - slab_.data());
}

std::uint64_t StreamingSystem::peer_handle(const Peer& peer) const noexcept {
  return make_handle(slot_of(peer), peer.generation);
}

Peer* StreamingSystem::find_peer_mut(std::uint64_t handle) noexcept {
  const auto slot = static_cast<std::size_t>(handle & kSlotMask);
  if (slot >= slab_.size()) return nullptr;
  Peer& peer = slab_[slot];
  // Generation guard: a handle taken before the peer departed no longer
  // matches once the slot is freed (and possibly recycled) — late events
  // carrying it fall into the same miss path the old map lookup had.
  if (!peer.live || peer.generation != static_cast<std::uint32_t>(handle >> 32)) {
    return nullptr;
  }
  return &peer;
}

const Peer* StreamingSystem::find_peer(std::uint64_t handle) const noexcept {
  return const_cast<StreamingSystem*>(this)->find_peer_mut(handle);
}

std::vector<std::uint64_t> StreamingSystem::channel_peer_handles(
    int channel) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  const auto& slots = members_[static_cast<std::size_t>(channel)];
  std::vector<std::uint64_t> handles;
  handles.reserve(slots.size());
  for (const std::uint32_t slot : slots) {
    handles.push_back(make_handle(slot, slab_[slot].generation));
  }
  return handles;  // members_ is id-sorted already
}

void StreamingSystem::start() {
  CM_EXPECTS(!started_);
  started_ = true;

  for (int c = 0; c < num_channels_; ++c) {
    arrivals_.push_back(workload_->make_arrivals(c));
  }
  for (int c = 0; c < num_channels_; ++c) {
    last_arrival_time_[static_cast<std::size_t>(c)] = sim_->now();
    schedule_next_arrival(c);
  }

  const double t0 = sim_->now();
  if (options_.bootstrap_plan) {
    sim_->schedule_at(t0, [this] {
      const core::ProvisioningPlan plan = controller_->plan(bootstrap_report());
      apply_plan(plan);
      record_plan_series(sim_->now());
    });
  }
  sim_->schedule_periodic(t0 + options_.provisioning_interval,
                          options_.provisioning_interval,
                          [this](double t) { run_provisioning(t); });
  sim_->schedule_periodic(t0 + options_.rebalance_interval,
                          options_.rebalance_interval,
                          [this](double) { rebalance_capacity(); });
  sim_->schedule_periodic(t0 + options_.sample_interval, options_.sample_interval,
                          [this](double t) { sample_bandwidth(t); });
  sim_->schedule_periodic(t0 + options_.quality_interval,
                          options_.quality_interval,
                          [this](double t) { sample_quality(t); });
}

// --- user lifecycle -------------------------------------------------------

void StreamingSystem::schedule_next_arrival(int channel) {
  const auto ch = static_cast<std::size_t>(channel);
  const double t = arrivals_[ch].next_after(last_arrival_time_[ch]);
  last_arrival_time_[ch] = t;
  sim_->schedule_at(t, [this, channel, t] { handle_arrival(channel, t); });
}

void StreamingSystem::handle_arrival(int channel, double time) {
  const auto ch = static_cast<std::size_t>(channel);
  const workload::SessionScript script =
      workload_->make_session(channel, next_user_index_[ch]++);
  CM_ENSURES(!script.chunks.empty());

  const std::uint64_t id = next_peer_id_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();  // LIFO: the hottest slot, still in cache
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Peer& peer = slab_[slot];
  CM_ENSURES(!peer.live);
  peer.id = id;
  peer.channel = channel;
  peer.uplink = script.uplink;
  peer.arrival_time = time;
  // assign() (not =) so a recycled slot reuses its walk/owned capacity.
  peer.walk.assign(script.chunks.begin(), script.chunks.end());
  peer.position = 0;
  peer.owned.assign(static_cast<std::size_t>(num_chunks_), false);
  peer.last_late = -1e300;
  peer.downloading = false;
  peer.download_start = 0.0;
  peer.job_id = 0;
  peer.live = true;  // generation was bumped when the slot was freed
  members_[ch].push_back(slot);  // id is the largest yet: stays sorted
  ++live_peers_;
  const int entry = peer.walk.front();

  uplink_sum_[ch] += peer.uplink;
  ++position_count_[ch][static_cast<std::size_t>(entry)];
  tracker_.record_arrival(channel, entry);
  ++metrics_.counters.arrivals;

  begin_chunk(peer);

  schedule_next_arrival(channel);
}

void StreamingSystem::begin_chunk(Peer& peer) {
  const int chunk = peer.walk[peer.position];
  if (peer.owned[static_cast<std::size_t>(chunk)]) {
    // Replay from the local buffer: instant retrieval, watch for T0.
    ++metrics_.counters.buffered_replays;
    const std::uint64_t handle = peer_handle(peer);
    sim_->schedule_in(params_.chunk_duration,
                      [this, handle] { handle_dwell_end(handle); });
    return;
  }
  // Sec. V-B admission path: with insufficient peer supply (no overlay
  // owner of the chunk; always, in client–server mode) the tracker refers
  // the peer to the cloud with <entry address, ports, ticket>, and the
  // entry point verifies the ticket before forwarding to a VM. Referral
  // and redemption happen within one event (the round trip is sub-second
  // against 5-minute chunks) — admission accounting, not a bandwidth
  // effect.
  const bool needs_cloud =
      options_.mode == core::StreamingMode::kClientServer ||
      owner_count(peer.channel, chunk) == 0;
  if (needs_cloud) {
    const cloud::CloudReferral referral = entry_point_.issue(sim_->now());
    const cloud::TicketStatus verdict =
        entry_point_.redeem(referral.ticket, sim_->now());
    CM_ENSURES(verdict == cloud::TicketStatus::kValid);
  }
  peer.downloading = true;
  peer.download_start = sim_->now();
  peer.job_id =
      pool(peer.channel, chunk).add_job(params_.chunk_bytes(), peer_handle(peer));
}

void StreamingSystem::handle_completion(int channel, int chunk,
                                        const ServicePool::Completion& completion) {
  Peer* found = find_peer_mut(completion.tag);
  if (found == nullptr) return;  // departed with an aborted job
  Peer& peer = *found;
  CM_ENSURES(peer.channel == channel);
  CM_ENSURES(peer.walk[peer.position] == chunk);

  peer.downloading = false;
  peer.job_id = 0;
  ++metrics_.counters.chunk_downloads;
  const bool late = completion.sojourn > params_.chunk_duration + 1e-9;
  if (late) {
    peer.last_late = sim_->now();
    ++metrics_.counters.late_downloads;
  }

  if (!peer.owned[static_cast<std::size_t>(chunk)]) {
    peer.owned[static_cast<std::size_t>(chunk)] = true;
    ++owner_count_[static_cast<std::size_t>(channel)][static_cast<std::size_t>(chunk)];
  }

  // The user watches the chunk for T0; a late download stalls playback, so
  // the dwell in this position is max(T0, sojourn) from download start.
  const double dwell_end =
      std::max(completion.enqueue_time + params_.chunk_duration, sim_->now());
  const std::uint64_t handle = completion.tag;
  sim_->schedule_at(dwell_end, [this, handle] { handle_dwell_end(handle); });
}

void StreamingSystem::handle_dwell_end(std::uint64_t handle) {
  Peer* peer = find_peer_mut(handle);
  if (peer == nullptr) return;
  advance_walk(*peer);
}

void StreamingSystem::advance_walk(Peer& peer) {
  const auto ch = static_cast<std::size_t>(peer.channel);
  const int from = peer.walk[peer.position];
  --position_count_[ch][static_cast<std::size_t>(from)];

  if (peer.position + 1 < peer.walk.size()) {
    ++peer.position;
    const int to = peer.walk[peer.position];
    ++position_count_[ch][static_cast<std::size_t>(to)];
    tracker_.record_transition(peer.channel, from, to);
    begin_chunk(peer);
  } else {
    tracker_.record_transition(peer.channel, from, std::nullopt);
    depart(peer);
  }
}

void StreamingSystem::depart(Peer& peer) {
  const auto ch = static_cast<std::size_t>(peer.channel);
  if (peer.downloading) {
    // Abort the in-flight retrieval: without this the pool keeps a ghost
    // job that holds a per-job capacity share forever and inflates
    // cloud_bytes_served (its completion would fire into a missing peer).
    pool(peer.channel, peer.walk[peer.position]).remove_job(peer.job_id);
    peer.downloading = false;
  }
  for (int i = 0; i < num_chunks_; ++i) {
    if (peer.owned[static_cast<std::size_t>(i)]) {
      --owner_count_[ch][static_cast<std::size_t>(i)];
    }
  }
  uplink_sum_[ch] -= peer.uplink;

  // Erase from the channel's id-sorted member vector (binary search on
  // the monotone peer id; the memmove is cheap next to a per-tick sort).
  std::vector<std::uint32_t>& members = members_[ch];
  const auto it = std::lower_bound(
      members.begin(), members.end(), peer.id,
      [this](std::uint32_t slot, std::uint64_t id) { return slab_[slot].id < id; });
  CM_ENSURES(it != members.end() && slab_[*it].id == peer.id);
  members.erase(it);

  ++metrics_.counters.departures;

  // Free the slot: bump the generation so outstanding handles (pending
  // dwell events, aborted pool jobs) go stale; walk/owned keep their
  // capacity for the next occupant.
  peer.live = false;
  ++peer.generation;
  free_slots_.push_back(slot_of(peer));
  --live_peers_;
}

std::size_t StreamingSystem::evict_channel(int channel) {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  const auto ch = static_cast<std::size_t>(channel);
  // Snapshot: members_ is kept sorted by peer id, so this is already the
  // ascending-id order the old sorted-id map walk produced; depart()
  // mutates the member vector underneath the loop.
  const std::vector<std::uint32_t> slots = members_[ch];
  for (const std::uint32_t slot : slots) {
    Peer& peer = slab_[slot];
    const int current = peer.walk[peer.position];
    --position_count_[ch][static_cast<std::size_t>(current)];
    tracker_.record_transition(channel, current, std::nullopt);
    depart(peer);
  }
  // Pending dwell/completion events for evicted peers carry stale
  // generations and are ignored when they fire.
  return slots.size();
}

double StreamingSystem::uplink_sum(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  return uplink_sum_[static_cast<std::size_t>(channel)];
}

// --- provisioning loop ------------------------------------------------------

core::TrackerReport StreamingSystem::bootstrap_report() const {
  // Window-labelling: see the declaration — interval_start is the start of
  // the described window, here the upcoming [now, now+T) forecast.
  core::TrackerReport report;
  report.interval_start = sim_->now();
  report.interval_length = options_.provisioning_interval;
  report.channels.resize(static_cast<std::size_t>(num_channels_));
  const workload::ViewingBehavior& behavior = workload_->config().behavior;
  const util::Matrix transfer = behavior.transfer_matrix(num_chunks_);
  const std::vector<double> entry = behavior.entry_distribution(num_chunks_);
  const double uplink_mean = workload_->uplink_distribution().mean();
  for (int c = 0; c < num_channels_; ++c) {
    core::ChannelObservation& obs = report.channels[static_cast<std::size_t>(c)];
    obs.arrival_rate = workload_->channel_rate(c, sim_->now());
    obs.transfer = transfer;
    obs.entry = entry;
    obs.occupancy.assign(static_cast<std::size_t>(num_chunks_), 0.0);
    obs.served_cloud_bandwidth.assign(static_cast<std::size_t>(num_chunks_), 0.0);
    obs.mean_peer_uplink = uplink_mean;
  }
  return report;
}

void StreamingSystem::run_provisioning(double now) {
  const double interval = options_.provisioning_interval;

  std::vector<std::vector<double>> occupancy(
      static_cast<std::size_t>(num_channels_),
      std::vector<double>(static_cast<std::size_t>(num_chunks_), 0.0));
  std::vector<double> mean_uplink(static_cast<std::size_t>(num_channels_), 0.0);
  std::vector<std::vector<double>> served(
      static_cast<std::size_t>(num_channels_),
      std::vector<double>(static_cast<std::size_t>(num_chunks_), 0.0));

  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    for (int i = 0; i < num_chunks_; ++i) {
      occupancy[ch][static_cast<std::size_t>(i)] =
          static_cast<double>(position_count_[ch][static_cast<std::size_t>(i)]);
      ServicePool& p = pool(c, i);
      p.sync();
      const std::size_t key = pool_index(c, i);
      served[ch][static_cast<std::size_t>(i)] =
          (p.cloud_bytes_served() - served_cloud_snapshot_[key]) / interval;
      served_cloud_snapshot_[key] = p.cloud_bytes_served();
    }
    mean_uplink[ch] = members_[ch].empty()
                          ? workload_->uplink_distribution().mean()
                          : uplink_sum_[ch] / static_cast<double>(members_[ch].size());
  }

  const core::TrackerReport report =
      tracker_.harvest(now - interval, interval, occupancy, mean_uplink, served);
  const core::ProvisioningPlan plan = controller_->plan(report);
  apply_plan(plan);
  record_plan_series(now);
}

void StreamingSystem::apply_plan(const core::ProvisioningPlan& plan) {
  if (!cloud_->submit_plan(plan, num_channels_, num_chunks_)) {
    ++metrics_.counters.rejected_plans;
    CM_LOG(kWarn) << "cloud rejected provisioning plan at t=" << sim_->now();
    return;
  }
  last_plan_ = std::make_shared<core::ProvisioningPlan>(plan);
  // Pool capacities refresh through the VM scheduler's listener.

  // Refresh the entry point's port-forwarding table onto the provisioned
  // instances (Sec. V-B: verified requests are "forwarded to the VMs in
  // the cloud ... using the port-forwarding technique").
  const std::vector<int>& ports = entry_point_.config().ports;
  const std::size_t vm_count = plan.instances.instances.size();
  for (std::size_t k = 0; k < ports.size(); ++k) {
    if (vm_count == 0) {
      entry_point_.unmap_port(ports[k]);
    } else {
      entry_point_.map_port(ports[k], static_cast<int>(k % vm_count));
    }
  }
}

void StreamingSystem::record_plan_series(double now) {
  if (!last_plan_) return;
  const core::ProvisioningPlan& plan = *last_plan_;
  metrics_.vm_cost_rate.add(now, cloud_->vm_cost_rate());
  metrics_.storage_cost_rate.add(now, cloud_->storage_cost_rate());
  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    ChannelSeries& series = metrics_.channels[ch];
    double provisioned = 0.0;
    for (double b : plan.chunk_cloud_bandwidth[ch]) provisioned += b;
    series.provisioned_mbps.add(now, util::to_mbps(provisioned));
    series.storage_utility.add(
        now, core::channel_storage_utility(plan.storage_problem, plan.storage, c));
    series.vm_utility.add(now,
                          core::channel_vm_utility(plan.vm_problem, plan.vm, c));
  }
}

void StreamingSystem::rebalance_capacity() {
  // Two re-splits per channel, mirroring the real schedulers:
  //  - Cloud: a VM serves whichever of its (consecutive) chunks is being
  //    requested (Sec. V-A2), so the channel's planned cloud bandwidth is
  //    re-split across chunks in proportion to active requests, with a
  //    small standby weight so fresh requests are never starved until the
  //    next tick.
  //  - Peers (P2P mode): rarest-first allocation of owners' uplinks to
  //    active demand (Sec. IV-C), residual split as standby over owned
  //    chunks.
  const double r = params_.streaming_rate;
  std::vector<double> remaining;
  std::vector<double> standby_share;
  // owners_by_chunk[ck] = member indices (ascending) owning chunk ck,
  // rebuilt per channel in one pass over each peer's bitmap. The waterfall
  // then touches only actual owners instead of re-scanning every member's
  // bitmap for every chunk — the float sums still accumulate in ascending
  // member order, so they are bit-identical to the full filtered scans.
  std::vector<std::vector<std::uint32_t>> owners_by_chunk(
      static_cast<std::size_t>(num_chunks_));

  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);

    // --- cloud share: follow current requests --------------------------
    double channel_cloud = 0.0;
    double weight_total = 0.0;
    std::vector<double> weight(static_cast<std::size_t>(num_chunks_), 0.0);
    for (int i = 0; i < num_chunks_; ++i) {
      channel_cloud += cloud_->chunk_capacity(c, i);
      const double w =
          static_cast<double>(pools_[pool_index(c, i)]->active_jobs()) +
          options_.standby_weight;
      weight[static_cast<std::size_t>(i)] = w;
      weight_total += w;
    }
    std::vector<double> cloud_alloc(static_cast<std::size_t>(num_chunks_), 0.0);
    if (channel_cloud > 0.0 && weight_total > 0.0) {
      for (int i = 0; i < num_chunks_; ++i) {
        cloud_alloc[static_cast<std::size_t>(i)] =
            channel_cloud * weight[static_cast<std::size_t>(i)] / weight_total;
      }
    }

    // --- peer share: rarest-first waterfall (P2P only) ------------------
    std::vector<double> peer_alloc(static_cast<std::size_t>(num_chunks_), 0.0);
    if (options_.mode == core::StreamingMode::kP2p && !members_[ch].empty()) {
      // members_ is sorted by ascending peer id — the deterministic order
      // every float summation below accumulates in.
      const std::vector<std::uint32_t>& channel_slots = members_[ch];
      const std::size_t n = channel_slots.size();
      remaining.assign(n, 0.0);
      standby_share.assign(n, 0.0);
      for (auto& owners : owners_by_chunk) owners.clear();
      for (std::size_t p = 0; p < n; ++p) {
        const Peer& peer = slab_[channel_slots[p]];
        remaining[p] = peer.uplink;
        for (int i = 0; i < num_chunks_; ++i) {
          if (peer.owned[static_cast<std::size_t>(i)]) {
            owners_by_chunk[static_cast<std::size_t>(i)].push_back(
                static_cast<std::uint32_t>(p));
          }
        }
      }

      // Chunks by rareness (ascending owner count).
      std::vector<int> order(static_cast<std::size_t>(num_chunks_));
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return owner_count_[ch][static_cast<std::size_t>(a)] <
               owner_count_[ch][static_cast<std::size_t>(b)];
      });

      for (int chunk : order) {
        const auto ck = static_cast<std::size_t>(chunk);
        const double demand =
            static_cast<double>(pools_[pool_index(c, chunk)]->active_jobs()) * r;
        if (demand <= 0.0 || owner_count_[ch][ck] == 0) continue;
        const std::vector<std::uint32_t>& owners = owners_by_chunk[ck];
        double available = 0.0;
        for (const std::uint32_t p : owners) available += remaining[p];
        if (available <= 0.0) continue;
        const double supply = std::min(demand, available);
        const double keep = 1.0 - supply / available;
        for (const std::uint32_t p : owners) remaining[p] *= keep;
        peer_alloc[ck] = supply;
      }

      // Standby: split each peer's residual upload evenly over its chunks.
      // share = remaining / owned-count is fixed per peer here, so adding
      // it chunk-major through the owner lists reproduces the peer-major
      // scan exactly (per chunk, contributions still arrive in ascending
      // member order).
      for (std::size_t p = 0; p < n; ++p) {
        standby_share[p] = 0.0;
        if (remaining[p] <= 0.0) continue;
        const Peer& peer = slab_[channel_slots[p]];
        const int owned = std::accumulate(peer.owned.begin(), peer.owned.end(), 0);
        if (owned == 0) continue;
        standby_share[p] = remaining[p] / static_cast<double>(owned);
      }
      for (int i = 0; i < num_chunks_; ++i) {
        const auto ck = static_cast<std::size_t>(i);
        for (const std::uint32_t p : owners_by_chunk[ck]) {
          if (standby_share[p] != 0.0) peer_alloc[ck] += standby_share[p];
        }
      }
    }

    for (int i = 0; i < num_chunks_; ++i) {
      const std::size_t key = pool_index(c, i);
      peer_capacity_[key] = peer_alloc[static_cast<std::size_t>(i)];
      pools_[key]->set_capacity(peer_capacity_[key],
                                cloud_alloc[static_cast<std::size_t>(i)]);
    }
  }
}

// --- metrics ---------------------------------------------------------------

double StreamingSystem::cloud_rate_now() const {
  double rate = 0.0;
  for (const auto& p : pools_) rate += p->cloud_rate();
  return rate;
}

double StreamingSystem::peer_rate_now() const {
  double rate = 0.0;
  for (const auto& p : pools_) rate += p->peer_rate();
  return rate;
}

void StreamingSystem::sample_bandwidth(double now) {
  metrics_.reserved_mbps.add(now, util::to_mbps(cloud_->reserved_bandwidth()));
  metrics_.used_cloud_mbps.add(now, util::to_mbps(cloud_rate_now()));
  metrics_.used_peer_mbps.add(now, util::to_mbps(peer_rate_now()));
  metrics_.concurrent_users.add(now, static_cast<double>(live_peers_));
  for (int c = 0; c < num_channels_; ++c) {
    metrics_.channels[static_cast<std::size_t>(c)].size.add(
        now, static_cast<double>(members_[static_cast<std::size_t>(c)].size()));
  }
}

bool StreamingSystem::peer_is_smooth(const Peer& peer) const {
  const double now = sim_->now();
  if (peer.last_late > now - options_.quality_window) return false;
  // An in-flight download already past its deadline is a stall in progress.
  if (peer.downloading && now - peer.download_start > params_.chunk_duration) {
    return false;
  }
  return true;
}

double StreamingSystem::system_quality_now() const {
  if (live_peers_ == 0) return 1.0;
  std::size_t smooth = 0;
  for (const Peer& peer : slab_) {
    if (peer.live && peer_is_smooth(peer)) ++smooth;
  }
  return static_cast<double>(smooth) / static_cast<double>(live_peers_);
}

double StreamingSystem::channel_quality_now(int channel) const {
  const auto ch = static_cast<std::size_t>(channel);
  if (members_[ch].empty()) return 1.0;
  std::size_t smooth = 0;
  for (const std::uint32_t slot : members_[ch]) {
    if (peer_is_smooth(slab_[slot])) ++smooth;
  }
  return static_cast<double>(smooth) / static_cast<double>(members_[ch].size());
}

void StreamingSystem::sample_quality(double now) {
  metrics_.quality.add(now, system_quality_now());
  for (int c = 0; c < num_channels_; ++c) {
    metrics_.channels[static_cast<std::size_t>(c)].quality.add(
        now, channel_quality_now(c));
  }
}

std::size_t StreamingSystem::channel_users(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  return members_[static_cast<std::size_t>(channel)].size();
}

int StreamingSystem::owner_count(int channel, int chunk) const {
  return owner_count_[static_cast<std::size_t>(channel)]
                     [static_cast<std::size_t>(chunk)];
}

int StreamingSystem::position_count(int channel, int chunk) const {
  return position_count_[static_cast<std::size_t>(channel)]
                        [static_cast<std::size_t>(chunk)];
}

std::size_t SystemMetrics::total_samples() const noexcept {
  std::size_t n = reserved_mbps.size() + used_cloud_mbps.size() +
                  used_peer_mbps.size() + quality.size() +
                  vm_cost_rate.size() + storage_cost_rate.size() +
                  concurrent_users.size();
  for (const ChannelSeries& series : channels) {
    n += series.size.size() + series.quality.size() +
         series.provisioned_mbps.size() + series.storage_utility.size() +
         series.vm_utility.size();
  }
  return n;
}

void SystemMetrics::downsample(std::size_t stride) {
  CM_EXPECTS(stride >= 1);
  if (stride == 1) return;
  for (util::TimeSeries* series :
       {&reserved_mbps, &used_cloud_mbps, &used_peer_mbps, &quality,
        &vm_cost_rate, &storage_cost_rate, &concurrent_users}) {
    *series = series->strided(stride);
  }
  for (ChannelSeries& series : channels) {
    series.size = series.size.strided(stride);
    series.quality = series.quality.strided(stride);
    series.provisioned_mbps = series.provisioned_mbps.strided(stride);
    series.storage_utility = series.storage_utility.strided(stride);
    series.vm_utility = series.vm_utility.strided(stride);
  }
}

}  // namespace cloudmedia::vod
