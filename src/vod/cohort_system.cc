#include "vod/cohort_system.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/check.h"
#include "util/log.h"
#include "util/units.h"

namespace cloudmedia::vod {

namespace {
/// Floor for a pool rate when estimating sojourns (a starved pool would
/// otherwise divide by zero; the dwell clamp below bounds the result).
constexpr double kRateFloor = 1e-9;
/// A download can stretch its position dwell to at most this many chunk
/// durations (mirrors how badly a starved discrete viewer can stall before
/// provisioning reacts within one interval).
constexpr double kMaxStallFactor = 4.0;
}  // namespace

CohortSystem::CohortSystem(sim::Simulator& simulator,
                           const workload::Workload& workload,
                           core::VodParameters params,
                           cloud::CloudService& cloud,
                           std::unique_ptr<core::Controller> controller,
                           CohortOptions options)
    : sim_(&simulator),
      workload_(&workload),
      params_(params),
      cloud_(&cloud),
      controller_(std::move(controller)),
      options_(options),
      num_channels_(workload.num_channels()),
      num_chunks_(params.chunks_per_video),
      tracker_(workload.num_channels(), params.chunks_per_video),
      entry_point_(options.streaming.entry) {
  params_.validate();
  CM_EXPECTS(controller_ != nullptr);
  CM_EXPECTS(workload.config().chunks_per_video == params.chunks_per_video);
  CM_EXPECTS(options_.streaming.provisioning_interval > 0.0);
  CM_EXPECTS(options_.streaming.rebalance_interval > 0.0);
  CM_EXPECTS(options_.streaming.sample_interval > 0.0);
  CM_EXPECTS(options_.window > 0.0);
  CM_EXPECTS(options_.min_mass > 0.0);

  const std::size_t total = static_cast<std::size_t>(num_channels_) *
                            static_cast<std::size_t>(num_chunks_);
  pools_.reserve(total);
  for (std::size_t k = 0; k < total; ++k) {
    // The cohort engine never enqueues discrete jobs, so the completion
    // handler is unreachable; pools exist for capacity splitting, fluid
    // processor sharing, and byte accounting.
    pools_.push_back(std::make_unique<ServicePool>(
        simulator, params_.vm_bandwidth,
        [](const ServicePool::Completion&) {}));
  }
  served_cloud_snapshot_.assign(total, 0.0);
  fluid_share_.assign(total, 0.0);
  channel_mass_.assign(static_cast<std::size_t>(num_channels_), 0.0);
  metrics_.channels.resize(static_cast<std::size_t>(num_channels_));
  refresh_behavior_cache();

  cloud_->vm_scheduler().set_capacity_listener([this] { rebalance_capacity(); });
}

std::size_t CohortSystem::pool_index(int channel, int chunk) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  CM_EXPECTS(chunk >= 0 && chunk < num_chunks_);
  return static_cast<std::size_t>(channel) * static_cast<std::size_t>(num_chunks_) +
         static_cast<std::size_t>(chunk);
}

std::size_t CohortSystem::cell(std::size_t slot, int chunk) const {
  return slot * static_cast<std::size_t>(num_chunks_) +
         static_cast<std::size_t>(chunk);
}

ServicePool& CohortSystem::pool(int channel, int chunk) {
  return *pools_[pool_index(channel, chunk)];
}

std::size_t CohortSystem::current_users() const noexcept {
  return static_cast<std::size_t>(std::llround(std::max(0.0, total_mass_)));
}

double CohortSystem::channel_viewer_mass(int channel) const {
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  return channel_mass_[static_cast<std::size_t>(channel)];
}

void CohortSystem::refresh_behavior_cache() {
  const workload::ViewingBehavior& behavior = workload_->config().behavior;
  transfer_ = behavior.transfer_matrix(num_chunks_);
  entry_dist_ = behavior.entry_distribution(num_chunks_);
  leave_row_.assign(static_cast<std::size_t>(num_chunks_), 0.0);
  for (int j = 0; j < num_chunks_; ++j) {
    double row = 0.0;
    for (int k = 0; k < num_chunks_; ++k) {
      row += transfer_(static_cast<std::size_t>(j), static_cast<std::size_t>(k));
    }
    leave_row_[static_cast<std::size_t>(j)] = std::max(0.0, 1.0 - row);
  }
}

void CohortSystem::start() {
  CM_EXPECTS(!started_);
  started_ = true;

  for (int c = 0; c < num_channels_; ++c) {
    arrivals_.push_back(workload_->make_cohort_arrivals(c, options_.window));
  }

  const double t0 = sim_->now();
  const vod::StreamingOptions& streaming = options_.streaming;
  if (streaming.bootstrap_plan) {
    sim_->schedule_at(t0, [this] {
      const core::ProvisioningPlan plan = controller_->plan(bootstrap_report());
      apply_plan(plan);
      record_plan_series(sim_->now());
    });
  }
  // Arrival windows: the tick at t covers [t, t + window).
  sim_->schedule_periodic(t0, options_.window,
                          [this](double t) { window_tick(t); });
  sim_->schedule_periodic(t0 + streaming.provisioning_interval,
                          streaming.provisioning_interval,
                          [this](double t) { run_provisioning(t); });
  sim_->schedule_periodic(t0 + streaming.rebalance_interval,
                          streaming.rebalance_interval,
                          [this](double) { rebalance_capacity(); });
  sim_->schedule_periodic(t0 + streaming.sample_interval,
                          streaming.sample_interval,
                          [this](double t) { sample_bandwidth(t); });
  sim_->schedule_periodic(t0 + streaming.quality_interval,
                          streaming.quality_interval,
                          [this](double t) { sample_quality(t); });
}

std::size_t CohortSystem::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::size_t slot = live_.size();
  live_.push_back(0);
  generation_.push_back(0);
  channel_of_.push_back(0);
  alive_.push_back(0.0);
  uplink_rate_.push_back(0.0);
  occ_.resize(occ_.size() + static_cast<std::size_t>(num_chunks_), 0.0);
  owned_.resize(owned_.size() + static_cast<std::size_t>(num_chunks_), 0.0);
  return slot;
}

void CohortSystem::window_tick(double now) {
  refresh_behavior_cache();
  const double uplink_mean = workload_->uplink_distribution().mean();

  std::vector<std::pair<double, sim::Simulator::Callback>> batch;
  for (int c = 0; c < num_channels_; ++c) {
    const long long n = arrivals_[static_cast<std::size_t>(c)].sample_count(now);
    if (n <= 0) continue;

    const std::size_t slot = allocate_slot();
    live_[slot] = 1;
    ++live_cohorts_;
    channel_of_[slot] = c;
    const auto mass = static_cast<double>(n);
    alive_[slot] = mass;
    uplink_rate_[slot] = uplink_mean;
    for (int j = 0; j < num_chunks_; ++j) {
      const double m = mass * entry_dist_[static_cast<std::size_t>(j)];
      occ_[cell(slot, j)] = m;
      owned_[cell(slot, j)] = 0.0;
      if (m > 0.0) tracker_.record_arrival(c, j, m);
    }
    arrivals_count_ += n;
    channel_mass_[static_cast<std::size_t>(c)] += mass;
    total_mass_ += mass;

    // Batch admission: one referral round trip stands in for the cohort
    // (the entry point is admission accounting, not bandwidth).
    const cloud::CloudReferral referral = entry_point_.issue(now);
    const cloud::TicketStatus verdict =
        entry_point_.redeem(referral.ticket, now);
    CM_ENSURES(verdict == cloud::TicketStatus::kValid);

    // First transition after one nominal dwell; the transition itself
    // re-estimates subsequent dwells from live pool rates. All first
    // transitions of this window go to the heap as one bulk batch.
    const std::uint32_t generation = generation_[slot];
    batch.emplace_back(now + params_.chunk_duration,
                       [this, slot, generation] { transition(slot, generation); });
  }
  if (!batch.empty()) sim_->schedule_bulk(std::move(batch));
  sync_counters();
}

double CohortSystem::download_mass(std::size_t slot, int chunk) const {
  const double alive = alive_[slot];
  if (alive <= 0.0) return 0.0;
  const double occ = occ_[cell(slot, chunk)];
  const double own_prob = std::min(1.0, owned_[cell(slot, chunk)] / alive);
  return occ * (1.0 - own_prob);
}

void CohortSystem::transition(std::size_t slot, std::uint32_t generation) {
  if (slot >= live_.size() || !live_[slot] || generation_[slot] != generation) {
    return;  // stale event from a recycled slot
  }
  const int c = channel_of_[slot];
  const double alive = alive_[slot];
  if (alive < options_.min_mass) {
    retire(slot);
    return;
  }

  const auto j_count = static_cast<std::size_t>(num_chunks_);
  std::vector<double> dl(j_count, 0.0);
  std::vector<double> next_occ(j_count, 0.0);
  double dl_total = 0.0;
  double replay_total = 0.0;
  double dwell_weighted = 0.0;

  // Phase 1 — the position each viewer just finished: split occupancy into
  // fresh downloads vs buffered replays, estimate the dwell the download
  // cost (the pool's current fluid rate decides whether it stalled), and
  // absorb the downloaded chunks into ownership.
  for (int j = 0; j < num_chunks_; ++j) {
    const double occ = occ_[cell(slot, j)];
    if (occ <= 0.0) continue;
    const double d = download_mass(slot, j);
    const double replay = occ - d;
    dl[static_cast<std::size_t>(j)] = d;
    dl_total += d;
    replay_total += replay;
    dwell_weighted += replay * params_.chunk_duration;
    if (d > 0.0) {
      const ServicePool& p = *pools_[pool_index(c, j)];
      const double rate = std::max(p.per_job_rate(), kRateFloor);
      const double sojourn = params_.chunk_bytes() / rate;
      if (sojourn > params_.chunk_duration + 1e-9) late_mass_ += d;
      const double dwell =
          std::clamp(sojourn, params_.chunk_duration,
                     kMaxStallFactor * params_.chunk_duration);
      dwell_weighted += d * dwell;
    }
  }
  downloads_mass_ += dl_total;
  replays_mass_ += replay_total;

  // Phase 2 — advance every viewer through the ground-truth transfer
  // matrix at once, reporting the same (now weighted) flows the discrete
  // engine's per-peer record_transition calls produce.
  double stay_total = 0.0;
  for (int j = 0; j < num_chunks_; ++j) {
    const double occ = occ_[cell(slot, j)];
    if (occ <= 0.0) continue;
    for (int k = 0; k < num_chunks_; ++k) {
      const double flow =
          occ * transfer_(static_cast<std::size_t>(j), static_cast<std::size_t>(k));
      if (flow <= 0.0) continue;
      next_occ[static_cast<std::size_t>(k)] += flow;
      stay_total += flow;
      tracker_.record_transition(c, j, k, flow);
    }
    const double leave = occ * leave_row_[static_cast<std::size_t>(j)];
    if (leave > 0.0) tracker_.record_transition(c, j, std::nullopt, leave);
  }
  const double departed = std::max(0.0, alive - stay_total);
  departures_mass_ += departed;

  // Ownership: downloads convert occupancy into owned chunks, then the
  // whole vector scales by the survival ratio (leavers take their buffers
  // with them; ownership within a cohort is independent of who leaves).
  const double survival = std::min(1.0, stay_total / alive);
  for (int j = 0; j < num_chunks_; ++j) {
    const double mid = std::min(
        alive, owned_[cell(slot, j)] + dl[static_cast<std::size_t>(j)]);
    owned_[cell(slot, j)] = mid * survival;
    occ_[cell(slot, j)] = next_occ[static_cast<std::size_t>(j)];
  }
  alive_[slot] = stay_total;
  channel_mass_[static_cast<std::size_t>(c)] += stay_total - alive;
  total_mass_ += stay_total - alive;
  sync_counters();

  if (stay_total < options_.min_mass) {
    retire(slot);
    return;
  }
  const double total_flow = dl_total + replay_total;
  const double dwell = total_flow > 0.0 ? dwell_weighted / total_flow
                                        : params_.chunk_duration;
  const std::uint32_t gen = generation_[slot];
  sim_->schedule_in(dwell, [this, slot, gen] { transition(slot, gen); });
}

void CohortSystem::retire(std::size_t slot) {
  const int c = channel_of_[slot];
  const double residual = std::max(0.0, alive_[slot]);
  // Sub-min_mass residue departs without per-chunk flows — it is below the
  // engine's resolution by construction.
  departures_mass_ += residual;
  channel_mass_[static_cast<std::size_t>(c)] -= residual;
  total_mass_ -= residual;
  alive_[slot] = 0.0;
  for (int j = 0; j < num_chunks_; ++j) {
    occ_[cell(slot, j)] = 0.0;
    owned_[cell(slot, j)] = 0.0;
  }
  live_[slot] = 0;
  ++generation_[slot];
  --live_cohorts_;
  free_slots_.push_back(slot);
  sync_counters();
}

void CohortSystem::sync_counters() {
  metrics_.counters.arrivals = static_cast<long>(arrivals_count_);
  metrics_.counters.departures = std::lround(departures_mass_);
  metrics_.counters.chunk_downloads = std::lround(downloads_mass_);
  metrics_.counters.late_downloads = std::lround(late_mass_);
  metrics_.counters.buffered_replays = std::lround(replays_mass_);
}

// --- provisioning loop ------------------------------------------------------

core::TrackerReport CohortSystem::bootstrap_report() const {
  // Same prior and window-labelling convention as
  // StreamingSystem::bootstrap_report (see its declaration).
  core::TrackerReport report;
  report.interval_start = sim_->now();
  report.interval_length = options_.streaming.provisioning_interval;
  report.channels.resize(static_cast<std::size_t>(num_channels_));
  const workload::ViewingBehavior& behavior = workload_->config().behavior;
  const util::Matrix transfer = behavior.transfer_matrix(num_chunks_);
  const std::vector<double> entry = behavior.entry_distribution(num_chunks_);
  const double uplink_mean = workload_->uplink_distribution().mean();
  for (int c = 0; c < num_channels_; ++c) {
    core::ChannelObservation& obs = report.channels[static_cast<std::size_t>(c)];
    obs.arrival_rate = workload_->channel_rate(c, sim_->now());
    obs.transfer = transfer;
    obs.entry = entry;
    obs.occupancy.assign(static_cast<std::size_t>(num_chunks_), 0.0);
    obs.served_cloud_bandwidth.assign(static_cast<std::size_t>(num_chunks_), 0.0);
    obs.mean_peer_uplink = uplink_mean;
  }
  return report;
}

void CohortSystem::run_provisioning(double now) {
  const double interval = options_.streaming.provisioning_interval;

  std::vector<std::vector<double>> occupancy(
      static_cast<std::size_t>(num_channels_),
      std::vector<double>(static_cast<std::size_t>(num_chunks_), 0.0));
  std::vector<double> mean_uplink(static_cast<std::size_t>(num_channels_), 0.0);
  std::vector<std::vector<double>> served(
      static_cast<std::size_t>(num_channels_),
      std::vector<double>(static_cast<std::size_t>(num_chunks_), 0.0));
  std::vector<double> uplink_weighted(static_cast<std::size_t>(num_channels_),
                                      0.0);

  for (std::size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    const auto ch = static_cast<std::size_t>(channel_of_[slot]);
    for (int j = 0; j < num_chunks_; ++j) {
      occupancy[ch][static_cast<std::size_t>(j)] += occ_[cell(slot, j)];
    }
    uplink_weighted[ch] += alive_[slot] * uplink_rate_[slot];
  }
  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    for (int i = 0; i < num_chunks_; ++i) {
      ServicePool& p = pool(c, i);
      p.sync();
      const std::size_t key = pool_index(c, i);
      served[ch][static_cast<std::size_t>(i)] =
          (p.cloud_bytes_served() - served_cloud_snapshot_[key]) / interval;
      served_cloud_snapshot_[key] = p.cloud_bytes_served();
    }
    mean_uplink[ch] = channel_mass_[ch] > 0.0
                          ? uplink_weighted[ch] / channel_mass_[ch]
                          : workload_->uplink_distribution().mean();
  }

  const core::TrackerReport report =
      tracker_.harvest(now - interval, interval, occupancy, mean_uplink, served);
  const core::ProvisioningPlan plan = controller_->plan(report);
  apply_plan(plan);
  record_plan_series(now);
}

void CohortSystem::apply_plan(const core::ProvisioningPlan& plan) {
  if (!cloud_->submit_plan(plan, num_channels_, num_chunks_)) {
    ++metrics_.counters.rejected_plans;
    CM_LOG(kWarn) << "cloud rejected provisioning plan at t=" << sim_->now();
    return;
  }
  last_plan_ = std::make_shared<core::ProvisioningPlan>(plan);
  const std::vector<int>& ports = entry_point_.config().ports;
  const std::size_t vm_count = plan.instances.instances.size();
  for (std::size_t k = 0; k < ports.size(); ++k) {
    if (vm_count == 0) {
      entry_point_.unmap_port(ports[k]);
    } else {
      entry_point_.map_port(ports[k], static_cast<int>(k % vm_count));
    }
  }
}

void CohortSystem::record_plan_series(double now) {
  if (!last_plan_) return;
  const core::ProvisioningPlan& plan = *last_plan_;
  metrics_.vm_cost_rate.add(now, cloud_->vm_cost_rate());
  metrics_.storage_cost_rate.add(now, cloud_->storage_cost_rate());
  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    ChannelSeries& series = metrics_.channels[ch];
    double provisioned = 0.0;
    for (double b : plan.chunk_cloud_bandwidth[ch]) provisioned += b;
    series.provisioned_mbps.add(now, util::to_mbps(provisioned));
    series.storage_utility.add(
        now, core::channel_storage_utility(plan.storage_problem, plan.storage, c));
    series.vm_utility.add(now,
                          core::channel_vm_utility(plan.vm_problem, plan.vm, c));
  }
}

void CohortSystem::rebalance_capacity() {
  // The fluid analogue of StreamingSystem::rebalance_capacity: demand per
  // (channel, chunk) is the download-active mass scaled by a duty factor
  // (the fraction of its dwell a downloading viewer actually occupies the
  // pool: sojourn / dwell, 1 when the pool is at or below the streaming
  // rate), fed to the pools as fluid job counts; the cloud share re-splits
  // across chunks by fluid demand + standby weight, and in P2P mode the
  // aggregate cohort uplink waterfalls rarest-first over ownership mass.
  const double r = params_.streaming_rate;
  const double t0 = params_.chunk_duration;
  const auto j_count = static_cast<std::size_t>(num_chunks_);

  std::vector<double> dl_mass(pools_.size(), 0.0);
  std::vector<double> owned_mass(pools_.size(), 0.0);
  std::vector<double> channel_uplink(static_cast<std::size_t>(num_channels_),
                                     0.0);
  for (std::size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    const int c = channel_of_[slot];
    for (int j = 0; j < num_chunks_; ++j) {
      dl_mass[pool_index(c, j)] += download_mass(slot, j);
      owned_mass[pool_index(c, j)] += owned_[cell(slot, j)];
    }
    channel_uplink[static_cast<std::size_t>(c)] +=
        alive_[slot] * uplink_rate_[slot];
  }

  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);

    // Fluid job counts: previous per-job rate estimates the duty factor
    // (starved pools → duty 1, over-provisioned pools → sojourn/T0 < 1).
    std::vector<double> fluid(j_count, 0.0);
    for (int j = 0; j < num_chunks_; ++j) {
      const std::size_t key = pool_index(c, j);
      const double m = dl_mass[key];
      if (m <= 0.0) {
        fluid[static_cast<std::size_t>(j)] = 0.0;
        continue;
      }
      const double prev_rate = std::max(pools_[key]->per_job_rate(), kRateFloor);
      const double duty =
          std::min(1.0, (params_.chunk_bytes() / prev_rate) / t0);
      fluid[static_cast<std::size_t>(j)] = m * duty;
    }

    // Cloud share follows fluid demand (+ standby), as the discrete engine
    // follows active jobs.
    double channel_cloud = 0.0;
    double weight_total = 0.0;
    std::vector<double> weight(j_count, 0.0);
    for (int j = 0; j < num_chunks_; ++j) {
      channel_cloud += cloud_->chunk_capacity(c, j);
      const double w = fluid[static_cast<std::size_t>(j)] +
                       options_.streaming.standby_weight;
      weight[static_cast<std::size_t>(j)] = w;
      weight_total += w;
    }
    std::vector<double> cloud_alloc(j_count, 0.0);
    if (channel_cloud > 0.0 && weight_total > 0.0) {
      for (int j = 0; j < num_chunks_; ++j) {
        cloud_alloc[static_cast<std::size_t>(j)] =
            channel_cloud * weight[static_cast<std::size_t>(j)] / weight_total;
      }
    }

    // Peer share: rarest-first waterfall over ownership mass. The channel's
    // aggregate uplink supplies chunks ascending by owners; each chunk may
    // draw at most the uplink fraction its owners hold.
    std::vector<double> peer_alloc(j_count, 0.0);
    if (options_.streaming.mode == core::StreamingMode::kP2p &&
        channel_mass_[ch] > 0.0 && channel_uplink[ch] > 0.0) {
      double total_owned = 0.0;
      for (int j = 0; j < num_chunks_; ++j) {
        total_owned += owned_mass[pool_index(c, j)];
      }
      if (total_owned > 0.0) {
        std::vector<int> order(j_count);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
          return owned_mass[pool_index(c, a)] < owned_mass[pool_index(c, b)];
        });
        double remaining = channel_uplink[ch];
        for (int chunk : order) {
          const std::size_t key = pool_index(c, chunk);
          if (owned_mass[key] <= 0.0) continue;
          const double demand = fluid[static_cast<std::size_t>(chunk)] * r;
          const double available =
              channel_uplink[ch] * owned_mass[key] / total_owned;
          const double give = std::min({demand, available, remaining});
          if (give <= 0.0) continue;
          peer_alloc[static_cast<std::size_t>(chunk)] = give;
          remaining -= give;
        }
        // Residual uplink stands by over owned chunks, like the discrete
        // engine's per-peer residual split.
        if (remaining > 0.0) {
          for (int j = 0; j < num_chunks_; ++j) {
            peer_alloc[static_cast<std::size_t>(j)] +=
                remaining * owned_mass[pool_index(c, j)] / total_owned;
          }
        }
      }
    }

    for (int j = 0; j < num_chunks_; ++j) {
      const std::size_t key = pool_index(c, j);
      fluid_share_[key] = fluid[static_cast<std::size_t>(j)];
      pools_[key]->set_capacity(peer_alloc[static_cast<std::size_t>(j)],
                                cloud_alloc[static_cast<std::size_t>(j)]);
      pools_[key]->set_fluid_jobs(fluid[static_cast<std::size_t>(j)]);
    }
  }
}

// --- metrics ---------------------------------------------------------------

void CohortSystem::sample_bandwidth(double now) {
  double cloud_rate = 0.0;
  double peer_rate = 0.0;
  for (const auto& p : pools_) {
    cloud_rate += p->cloud_rate();
    peer_rate += p->peer_rate();
  }
  metrics_.reserved_mbps.add(now, util::to_mbps(cloud_->reserved_bandwidth()));
  metrics_.used_cloud_mbps.add(now, util::to_mbps(cloud_rate));
  metrics_.used_peer_mbps.add(now, util::to_mbps(peer_rate));
  metrics_.concurrent_users.add(now, total_mass_);
  peak_mass_ = std::max(peak_mass_, total_mass_);
  for (int c = 0; c < num_channels_; ++c) {
    metrics_.channels[static_cast<std::size_t>(c)].size.add(
        now, channel_mass_[static_cast<std::size_t>(c)]);
  }
}

void CohortSystem::sample_quality(double now) {
  // Fluid quality: the mass currently downloading from a pool whose
  // per-job rate is below the streaming rate is stalled; smooth fraction =
  // 1 − stalled/total. Instantaneous (the discrete engine's per-viewer
  // quality_window bookkeeping has no cheap fluid analogue).
  const double r = params_.streaming_rate;
  std::vector<double> stalled(static_cast<std::size_t>(num_channels_), 0.0);
  for (std::size_t slot = 0; slot < live_.size(); ++slot) {
    if (!live_[slot]) continue;
    const int c = channel_of_[slot];
    for (int j = 0; j < num_chunks_; ++j) {
      const double m = download_mass(slot, j);
      if (m <= 0.0) continue;
      if (pools_[pool_index(c, j)]->per_job_rate() < r * (1.0 - 1e-9)) {
        stalled[static_cast<std::size_t>(c)] += m;
      }
    }
  }
  double stalled_total = 0.0;
  for (int c = 0; c < num_channels_; ++c) {
    const auto ch = static_cast<std::size_t>(c);
    stalled_total += stalled[ch];
    const double mass = channel_mass_[ch];
    const double q =
        mass > 0.0 ? 1.0 - std::min(1.0, stalled[ch] / mass) : 1.0;
    metrics_.channels[ch].quality.add(now, q);
  }
  const double q = total_mass_ > 0.0
                       ? 1.0 - std::min(1.0, stalled_total / total_mass_)
                       : 1.0;
  metrics_.quality.add(now, q);
}

}  // namespace cloudmedia::vod
