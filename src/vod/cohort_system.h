#pragma once

#include <memory>
#include <vector>

#include "cloud/cloud_service.h"
#include "cloud/entry_point.h"
#include "core/controller.h"
#include "sim/simulator.h"
#include "util/matrix.h"
#include "vod/service_pool.h"
#include "vod/streaming_system.h"
#include "vod/tracker.h"
#include "workload/cohort.h"
#include "workload/scenario.h"

namespace cloudmedia::vod {

/// Knobs of the cohort engine on top of the shared streaming options.
struct CohortOptions {
  StreamingOptions streaming;
  /// Arrival batching window: all of a channel's arrivals within one window
  /// become one cohort (one Poisson count draw, one arena slot).
  double window = 300.0;
  /// A cohort whose surviving mass drops below this retires (its residual
  /// folds into the departure count and the slot is recycled).
  double min_mass = 1e-3;
};

/// The cohort/fluid simulation core: the same CloudMedia deployment as
/// StreamingSystem (tracker + controller loop, SLA'd cloud, entry point,
/// per-(channel, chunk) ServicePools), but viewers are aggregated.
///
/// Statistically-identical viewers — same channel, same arrival window —
/// form one cohort: a struct-of-arrays arena slot holding the cohort's
/// occupancy mass per chunk position and its expected ownership mass per
/// chunk. One heap event per cohort *transition* advances every viewer in
/// the cohort through the ground-truth transfer matrix at once; download
/// demand drives the pools as fluid job counts (ServicePool::set_fluid_jobs)
/// rather than per-viewer discrete jobs. Cost: O(cohorts · J²) per window
/// instead of O(viewers) heap events — a 10M-peak-viewer day runs in
/// seconds (bench/cohort_smoke.cc).
///
/// What is exact and what is fluid:
///  - exact: arrival counts (Poisson per channel-window), the provisioning
///    loop (same Tracker/Controller/CloudService code paths, weighted
///    tracker flows), cost accounting, pool byte accounting.
///  - fluid approximations: per-chunk flows use expected values of the
///    transfer matrix instead of sampled walks; ownership within a cohort
///    uses an independence approximation (owned/alive as a probability);
///    quality is mass-based (stalled mass over total mass) instead of
///    per-viewer smoothness bookkeeping.
/// Small-N runs wanting exactness should use the discrete engine — the
/// expr runner's `auto` engine does precisely that below the population
/// threshold.
class CohortSystem {
 public:
  CohortSystem(sim::Simulator& simulator, const workload::Workload& workload,
               core::VodParameters params, cloud::CloudService& cloud,
               std::unique_ptr<core::Controller> controller,
               CohortOptions options);

  /// Schedule the window ticks and periodic tasks; then drive the simulator.
  void start();

  [[nodiscard]] const SystemMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] SystemMetrics& metrics() noexcept { return metrics_; }

  // --- introspection (tests, benches) -----------------------------------
  /// Rounded viewer mass currently in the system.
  [[nodiscard]] std::size_t current_users() const noexcept;
  [[nodiscard]] double current_viewer_mass() const noexcept { return total_mass_; }
  [[nodiscard]] double channel_viewer_mass(int channel) const;
  [[nodiscard]] double peak_viewer_mass() const noexcept { return peak_mass_; }
  [[nodiscard]] long long viewers_admitted() const noexcept { return arrivals_count_; }
  [[nodiscard]] double departures_mass() const noexcept { return departures_mass_; }
  [[nodiscard]] std::size_t live_cohorts() const noexcept { return live_cohorts_; }
  [[nodiscard]] ServicePool& pool(int channel, int chunk);
  [[nodiscard]] Tracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] core::Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] cloud::EntryPoint& entry_point() noexcept { return entry_point_; }
  [[nodiscard]] const core::ProvisioningPlan* last_plan() const noexcept {
    return last_plan_ ? last_plan_.get() : nullptr;
  }

 private:
  void window_tick(double now);
  void transition(std::size_t slot, std::uint32_t generation);
  void retire(std::size_t slot);
  [[nodiscard]] std::size_t allocate_slot();
  void refresh_behavior_cache();

  void run_provisioning(double now);
  [[nodiscard]] core::TrackerReport bootstrap_report() const;
  void apply_plan(const core::ProvisioningPlan& plan);
  void record_plan_series(double now);
  void rebalance_capacity();
  void sample_bandwidth(double now);
  void sample_quality(double now);
  void sync_counters();

  /// Mass of cohort `slot` currently downloading chunk j (occupancy that
  /// does not yet own the chunk, under the independence approximation).
  [[nodiscard]] double download_mass(std::size_t slot, int chunk) const;
  [[nodiscard]] std::size_t pool_index(int channel, int chunk) const;
  [[nodiscard]] std::size_t cell(std::size_t slot, int chunk) const;

  sim::Simulator* sim_;
  const workload::Workload* workload_;
  core::VodParameters params_;
  cloud::CloudService* cloud_;
  std::unique_ptr<core::Controller> controller_;
  CohortOptions options_;

  int num_channels_;
  int num_chunks_;

  std::vector<std::unique_ptr<ServicePool>> pools_;  ///< C × J
  std::vector<double> served_cloud_snapshot_;        ///< bytes at interval start
  std::vector<double> fluid_share_;                  ///< last fluid job count

  Tracker tracker_;
  cloud::EntryPoint entry_point_;

  // SoA cohort arena. A slot is live iff live_[slot]; freed slots recycle
  // through free_slots_ and bump generation_ so stale transition events
  // from a previous tenancy are ignored.
  std::vector<char> live_;
  std::vector<std::uint32_t> generation_;
  std::vector<int> channel_of_;
  std::vector<double> alive_;        ///< surviving viewer mass
  std::vector<double> uplink_rate_;  ///< mean per-viewer uplink (bytes/s)
  std::vector<double> occ_;          ///< [slot · J + j] position mass
  std::vector<double> owned_;        ///< [slot · J + j] ownership mass
  std::vector<std::size_t> free_slots_;
  std::size_t live_cohorts_ = 0;

  // Ground-truth behaviour cache (refreshed every window tick: set_config
  // can reshape it mid-run).
  util::Matrix transfer_;
  std::vector<double> entry_dist_;
  std::vector<double> leave_row_;

  std::vector<workload::CohortArrivals> arrivals_;  ///< per channel
  std::vector<double> channel_mass_;                ///< per channel
  double total_mass_ = 0.0;
  double peak_mass_ = 0.0;

  long long arrivals_count_ = 0;
  double departures_mass_ = 0.0;
  double downloads_mass_ = 0.0;
  double late_mass_ = 0.0;
  double replays_mass_ = 0.0;

  std::shared_ptr<core::ProvisioningPlan> last_plan_;
  SystemMetrics metrics_;
  bool started_ = false;
};

}  // namespace cloudmedia::vod
