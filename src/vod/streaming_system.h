#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/cloud_service.h"
#include "cloud/entry_point.h"
#include "core/controller.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "vod/service_pool.h"
#include "vod/tracker.h"
#include "workload/scenario.h"

namespace cloudmedia::vod {

/// Runtime knobs of the emulated CloudMedia deployment.
struct StreamingOptions {
  core::StreamingMode mode = core::StreamingMode::kClientServer;
  /// The paper runs the provisioning algorithm every T = 1 hour (Sec. V-B).
  double provisioning_interval = 3600.0;
  /// How often bandwidth is re-split across a channel's chunks: the cloud
  /// share follows current requests (VMs serve whichever of their chunks
  /// is asked for, Sec. V-A2), and in P2P mode peer upload follows the
  /// rarest-first scheduler (Sec. IV-C).
  double rebalance_interval = 30.0;
  /// Standby weight an idle chunk keeps when the channel's cloud bandwidth
  /// is re-split (so a fresh request is not starved until the next tick).
  double standby_weight = 0.25;
  /// Bandwidth / population sampling cadence for the metrics series.
  double sample_interval = 60.0;
  /// Streaming quality is "the percentage of users ... with smooth
  /// playback in the past 5 minutes" (Sec. VI-B).
  double quality_interval = 300.0;
  double quality_window = 300.0;
  /// Issue an initial plan at t = 0 from the provider's prior knowledge
  /// (ground-truth arrival rates), as the paper's provider does when first
  /// deploying ("based on the application's empirical user scale and
  /// viewing pattern information", Sec. V-B).
  bool bootstrap_plan = true;
  /// The cloud's public access point (Sec. V-B): referral tickets and the
  /// port-forwarding table, exercised on every chunk request that needs
  /// cloud service. Pure admission accounting — bandwidth is unaffected.
  cloud::EntryPointConfig entry;
};

/// One peer (VoD user). Owned chunks stay buffered until departure
/// (Sec. III-B: the playback buffer caches any one video entirely).
///
/// Peers live in a slab (see StreamingSystem): the object is recycled
/// across sessions — `id` is the stable monotone public identity, while
/// `generation`/`live` are slab bookkeeping. `walk` and `owned` keep
/// their capacity across reuse, so steady-state arrivals allocate
/// nothing.
struct Peer {
  std::uint64_t id = 0;
  int channel = 0;
  double uplink = 0.0;          ///< bytes/s contributed in P2P mode
  double arrival_time = 0.0;
  std::vector<int> walk;        ///< predetermined chunk walk
  std::size_t position = 0;     ///< index into walk
  std::vector<bool> owned;      ///< buffered chunks
  double last_late = -1e300;    ///< completion time of last late retrieval
  bool downloading = false;
  double download_start = 0.0;
  std::uint64_t job_id = 0;     ///< in-flight pool job (when downloading)

  // --- slab bookkeeping (maintained by StreamingSystem) ----------------
  std::uint32_t generation = 0; ///< bumped on free; stale handles miss
  bool live = false;
};

/// Per-channel metric series (the scatter sources for Figs. 6–9).
struct ChannelSeries {
  util::TimeSeries size;               ///< concurrent users
  util::TimeSeries quality;            ///< smooth fraction
  util::TimeSeries provisioned_mbps;   ///< cloud bandwidth assigned
  util::TimeSeries storage_utility;    ///< Σ u_f Δ_i x_if (Fig. 8)
  util::TimeSeries vm_utility;         ///< Σ ũ_v z_iv (Fig. 9)
};

struct SystemCounters {
  long arrivals = 0;
  long departures = 0;
  long chunk_downloads = 0;
  long late_downloads = 0;
  long buffered_replays = 0;  ///< revisits served from the local buffer
  long rejected_plans = 0;    ///< SLA-rejected submissions
};

struct SystemMetrics {
  util::TimeSeries reserved_mbps;      ///< billed cloud bandwidth (Fig. 4)
  util::TimeSeries used_cloud_mbps;    ///< instantaneous cloud rate (Fig. 4)
  util::TimeSeries used_peer_mbps;     ///< instantaneous peer rate
  util::TimeSeries quality;            ///< system smooth fraction (Fig. 5)
  util::TimeSeries vm_cost_rate;       ///< $/h (Fig. 10)
  util::TimeSeries storage_cost_rate;  ///< $/h
  util::TimeSeries concurrent_users;
  std::vector<ChannelSeries> channels;
  SystemCounters counters;

  /// Total samples retained across every series (system + per-channel) —
  /// the memory-footprint proxy the sweep retention tests assert on.
  [[nodiscard]] std::size_t total_samples() const noexcept;

  /// Keep every `stride`-th sample of every series (counters untouched).
  /// This is the `keep_results` memory valve: a big-grid sweep that only
  /// needs series *shapes* can shrink its resident results ~stride-fold.
  void downsample(std::size_t stride);
};

/// The full CloudMedia system (Fig. 3): user swarms and P2P overlays on one
/// side, the cloud infrastructure on the other, the tracker + controller
/// loop in between. Deterministic for a given Workload seed.
///
/// Peer storage is a generation-guarded slab (the same pattern as
/// CohortSystem's SoA arena): peers occupy recycled slots in one
/// contiguous vector, each channel keeps a dense vector of member slots
/// sorted by peer id, and every scheduled event or pool job tags
/// the peer by handle = slot | (generation << 32). A handle from a
/// departed session fails the generation check and the event is dropped —
/// the same miss semantics the old unordered_map gave, without any
/// hashing on the arrival/completion/dwell hot path. Public peer `id`s
/// remain monotone and are what every order-sensitive path (eviction,
/// rarest-first rebalance) sorts by, so iteration order — and therefore
/// every float summation — is explicit rather than hash-layout-accidental.
class StreamingSystem {
 public:
  StreamingSystem(sim::Simulator& simulator, const workload::Workload& workload,
                  core::VodParameters params, cloud::CloudService& cloud,
                  std::unique_ptr<core::Controller> controller,
                  StreamingOptions options);

  /// Schedule arrival streams and periodic tasks. Call once, then drive the
  /// simulator (sim.run_until(...)).
  void start();

  [[nodiscard]] const SystemMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] SystemMetrics& metrics() noexcept { return metrics_; }

  // --- introspection (tests, benches) -----------------------------------
  [[nodiscard]] std::size_t current_users() const noexcept { return live_peers_; }
  [[nodiscard]] std::size_t channel_users(int channel) const;
  [[nodiscard]] int owner_count(int channel, int chunk) const;
  [[nodiscard]] int position_count(int channel, int chunk) const;
  [[nodiscard]] ServicePool& pool(int channel, int chunk);
  [[nodiscard]] Tracker& tracker() noexcept { return tracker_; }
  /// The provisioning controller (mutable: the experiment runner's timed
  /// scenario ops renegotiate its budgets mid-run).
  [[nodiscard]] core::Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] cloud::EntryPoint& entry_point() noexcept { return entry_point_; }
  [[nodiscard]] const cloud::EntryPoint& entry_point() const noexcept {
    return entry_point_;
  }
  [[nodiscard]] const core::ProvisioningPlan* last_plan() const noexcept {
    return last_plan_ ? last_plan_.get() : nullptr;
  }
  /// Instantaneous smooth-playback fraction (1.0 when no users).
  [[nodiscard]] double system_quality_now() const;
  [[nodiscard]] double channel_quality_now(int channel) const;
  /// Sum of instantaneous cloud rates across pools (bytes/s).
  [[nodiscard]] double cloud_rate_now() const;
  [[nodiscard]] double peer_rate_now() const;

  /// Visit every live peer (slab order — ascending slot, not id).
  template <typename Fn>
  void for_each_peer(Fn&& fn) const {
    for (const Peer& peer : slab_) {
      if (peer.live) fn(peer);
    }
  }
  /// Resolve a generation-guarded peer handle; nullptr if the peer has
  /// departed (even when its slot has since been recycled).
  [[nodiscard]] const Peer* find_peer(std::uint64_t handle) const noexcept;
  /// The handle events/pool jobs carry for `peer` in its current session.
  [[nodiscard]] std::uint64_t peer_handle(const Peer& peer) const noexcept;
  /// Member handles of `channel`, sorted by monotone peer id — the
  /// deterministic order eviction and the rarest-first rebalance use.
  [[nodiscard]] std::vector<std::uint64_t> channel_peer_handles(int channel) const;

  [[nodiscard]] double uplink_sum(int channel) const;

  /// Force every current member of `channel` to leave immediately —
  /// mid-download departures abort their in-flight pool job. Models an
  /// operator pulling a channel (and exercises the depart-while-downloading
  /// path, which the organic lifecycle — depart only after a completed
  /// chunk — never reaches). Returns how many peers were evicted.
  std::size_t evict_channel(int channel);

  /// The provider's prior at deployment time (Sec. V-B's "empirical user
  /// scale and viewing pattern information").
  ///
  /// Window-labelling convention: `interval_start` is the start of the
  /// window the report describes. The bootstrap prior describes the
  /// *upcoming* window [now, now+T) — a forecast — so it stamps
  /// `interval_start = now`. A periodic harvest describes the
  /// *just-measured* window [now−T, now), so run_provisioning stamps
  /// `interval_start = now − T`. The two agree: the t=0 bootstrap and the
  /// first harvest (at t=T) both label window [0, T), one as a prior and
  /// one as a measurement — consumers (SeasonalPolicy's time-of-day slot,
  /// ClairvoyantPolicy's look-ahead anchor) treat interval_start uniformly
  /// and never see a negative time.
  [[nodiscard]] core::TrackerReport bootstrap_report() const;

 private:
  void schedule_next_arrival(int channel);
  void handle_arrival(int channel, double time);
  void begin_chunk(Peer& peer);
  void handle_completion(int channel, int chunk,
                         const ServicePool::Completion& completion);
  void handle_dwell_end(std::uint64_t handle);
  void advance_walk(Peer& peer);
  void depart(Peer& peer);

  [[nodiscard]] Peer* find_peer_mut(std::uint64_t handle) noexcept;
  [[nodiscard]] std::uint32_t slot_of(const Peer& peer) const noexcept;

  void run_provisioning(double now);
  void apply_plan(const core::ProvisioningPlan& plan);
  void record_plan_series(double now);
  void rebalance_capacity();
  void sample_bandwidth(double now);
  void sample_quality(double now);

  [[nodiscard]] std::size_t pool_index(int channel, int chunk) const;
  [[nodiscard]] bool peer_is_smooth(const Peer& peer) const;

  sim::Simulator* sim_;
  const workload::Workload* workload_;
  core::VodParameters params_;
  cloud::CloudService* cloud_;
  std::unique_ptr<core::Controller> controller_;
  StreamingOptions options_;

  int num_channels_;
  int num_chunks_;

  std::vector<std::unique_ptr<ServicePool>> pools_;  ///< C × J
  std::vector<double> peer_capacity_;                ///< current P2P share per pool
  std::vector<double> served_cloud_snapshot_;        ///< bytes at interval start

  Tracker tracker_;
  cloud::EntryPoint entry_point_;

  // Peer slab: slot-indexed, LIFO free list, generation-guarded handles
  // (see the class comment). members_ holds each channel's live slots
  // sorted by ascending peer id: arrivals append (ids are monotone, so the
  // back is always the largest) and departures binary-search-erase, which
  // keeps the rebalance/eviction iteration order free — no per-tick sort.
  std::vector<Peer> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_peers_ = 0;
  std::vector<std::vector<std::uint32_t>> members_;         ///< per channel
  std::vector<std::vector<int>> owner_count_;               ///< [channel][chunk]
  std::vector<std::vector<int>> position_count_;            ///< [channel][chunk]
  std::vector<double> uplink_sum_;                          ///< per channel

  std::vector<workload::PoissonArrivals> arrivals_;
  std::vector<std::uint64_t> next_user_index_;
  std::vector<double> last_arrival_time_;
  std::uint64_t next_peer_id_ = 1;

  std::shared_ptr<core::ProvisioningPlan> last_plan_;
  SystemMetrics metrics_;
  bool started_ = false;
};

}  // namespace cloudmedia::vod
