#include "vod/service_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace cloudmedia::vod {

namespace {
/// Completion tolerance in bytes; pools serve megabyte-scale chunks.
constexpr double kEpsBytes = 1e-5;

/// Once the dead prefix holds this many entries *and* outnumbers the live
/// jobs, slide the live tail down. Amortized O(1) per completion; the
/// floor keeps tiny pools from memmoving on every other event.
constexpr std::size_t kCompactMinDead = 64;

/// Smallest representable time step from `now` (one double ULP). Work that
/// would complete within a few of these cannot be scheduled as a future
/// event — `now + dt` rounds back to `now` and the timer would spin at a
/// frozen clock. Completion checks therefore treat anything within
/// 4 quanta of service as done.
double time_quantum(double now) noexcept {
  return std::nextafter(std::abs(now), std::numeric_limits<double>::infinity()) -
         std::abs(now);
}
}

ServicePool::ServicePool(sim::Simulator& simulator, double per_job_cap,
                         CompletionHandler on_complete)
    : sim_(&simulator),
      per_job_cap_(per_job_cap),
      on_complete_(std::move(on_complete)),
      last_update_(simulator.now()) {
  CM_EXPECTS(per_job_cap_ > 0.0);
  CM_EXPECTS(on_complete_ != nullptr);
}

double ServicePool::per_job_rate() const noexcept {
  if (active_jobs() == 0 && fluid_jobs_ <= 0.0) return 0.0;
  const double n = static_cast<double>(active_jobs()) + fluid_jobs_;
  return std::min(per_job_cap_, total_capacity() / n);
}

double ServicePool::total_rate() const noexcept {
  return per_job_rate() * (static_cast<double>(active_jobs()) + fluid_jobs_);
}

double ServicePool::peer_rate() const noexcept {
  return std::min(total_rate(), peer_cap_);
}

double ServicePool::cloud_rate() const noexcept {
  return std::max(0.0, total_rate() - peer_cap_);
}

void ServicePool::advance() {
  const double now = sim_->now();
  const double dt = now - last_update_;
  if (dt > 0.0 && (active_jobs() != 0 || fluid_jobs_ > 0.0)) {
    const double rate = per_job_rate();
    service_level_ += rate * dt;
    const double total =
        rate * (static_cast<double>(active_jobs()) + fluid_jobs_);
    const double peer = std::min(total, peer_cap_);
    peer_bytes_ += peer * dt;
    cloud_bytes_ += (total - peer) * dt;
  }
  last_update_ = now;
  maybe_rebase();
}

void ServicePool::compact() {
  jobs_.erase(jobs_.begin(),
              jobs_.begin() + static_cast<std::ptrdiff_t>(head_));
  head_ = 0;
}

void ServicePool::maybe_rebase() {
  // service_level_ only matters *relative to the outstanding targets*, but
  // it accumulates without bound (≈ per-job rate × busy time). Once its
  // magnitude passes ~2^35 bytes, one double ULP exceeds kEpsBytes and
  // `level += rate·dt` can round to zero progress — the pool then
  // reschedules the same completion forever at an unmoving clock (a
  // livelock that froze week-long simulations around t = 2^17 s). Rebase
  // to zero whenever it is safe or the magnitude approaches the danger
  // zone; at the 1e9 threshold the ULP is ~2.4e-7, two orders below the
  // completion tolerance.
  if (active_jobs() == 0) {
    jobs_.clear();
    head_ = 0;
    service_level_ = 0.0;
    return;
  }
  constexpr double kRebaseThreshold = 1e9;
  if (service_level_ < kRebaseThreshold) return;
  const double base = service_level_;
  // In-place: same doubles, same ascending order as the old map rebuild,
  // minus the node churn. Dead entries are dropped first so the loop only
  // touches live jobs.
  compact();
  for (JobRec& job : jobs_) job.target -= base;
  service_level_ = 0.0;
}

void ServicePool::sync() { advance(); }

void ServicePool::reschedule() {
  if (pending_ != sim::kInvalidEvent) {
    sim_->cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
  if (active_jobs() == 0) return;
  const double rate = per_job_rate();
  if (rate <= 0.0) return;  // starved: resumes when capacity returns
  const double next_target = jobs_[head_].target;
  double dt = std::max(0.0, (next_target - service_level_) / rate);
  // Defensive progress guarantee: a timer that lands back on `now` (dt
  // below the clock's resolution) would re-run this path forever with a
  // frozen clock. The completion tolerance in on_timer() makes this
  // unreachable; keep the guard in case a caller path misses it.
  while (sim_->now() + dt == sim_->now()) {
    dt = dt > 0.0 ? 2.0 * dt : time_quantum(sim_->now());
  }
  pending_ = sim_->schedule_in(dt, [this] { on_timer(); });
}

void ServicePool::on_timer() {
  pending_ = sim::kInvalidEvent;
  advance();
  std::vector<Completion> done;
  // Tolerance: the byte floor, plus whatever service the simulator clock
  // cannot resolve at this rate (see time_quantum above).
  const double eps =
      std::max(kEpsBytes, per_job_rate() * 4.0 * time_quantum(sim_->now()));
  while (head_ < jobs_.size() &&
         jobs_[head_].target <= service_level_ + eps) {
    const JobRec& rec = jobs_[head_];
    Completion c;
    c.job_id = rec.id;
    c.tag = rec.tag;
    c.enqueue_time = rec.enqueue_time;
    c.sojourn = sim_->now() - rec.enqueue_time;
    ++head_;
    done.push_back(c);
  }
  if (head_ >= kCompactMinDead && head_ * 2 >= jobs_.size()) compact();
  reschedule();
  // Handlers run on a consistent pool; they may re-enter via add_job.
  for (const Completion& c : done) on_complete_(c);
}

void ServicePool::set_capacity(double peer_capacity, double cloud_capacity) {
  CM_EXPECTS(peer_capacity >= 0.0);
  CM_EXPECTS(cloud_capacity >= 0.0);
  advance();
  peer_cap_ = peer_capacity;
  cloud_cap_ = cloud_capacity;
  reschedule();
}

void ServicePool::set_fluid_jobs(double jobs) {
  CM_EXPECTS(jobs >= 0.0 && std::isfinite(jobs));
  advance();
  fluid_jobs_ = jobs;
  reschedule();
}

std::uint64_t ServicePool::add_job(double bytes, std::uint64_t tag) {
  CM_EXPECTS(bytes > 0.0);
  advance();
  const std::uint64_t id = next_job_id_++;
  const double target = service_level_ + bytes;
  const JobRec rec{target, id, tag, sim_->now()};
  if (active_jobs() == 0 || jobs_.back().target <= target) {
    // Fast path: the new target ties or beats the current maximum, and the
    // fresh id breaks any tie upward — append keeps (target, id) order.
    jobs_.push_back(rec);
  } else {
    const auto pos = std::upper_bound(
        jobs_.begin() + static_cast<std::ptrdiff_t>(head_), jobs_.end(), rec,
        [](const JobRec& a, const JobRec& b) {
          if (a.target != b.target) return a.target < b.target;
          return a.id < b.id;
        });
    jobs_.insert(pos, rec);
  }
  reschedule();
  return id;
}

bool ServicePool::remove_job(std::uint64_t job_id) {
  const auto match = [job_id](const JobRec& job) { return job.id == job_id; };
  auto it = std::find_if(jobs_.begin() + static_cast<std::ptrdiff_t>(head_),
                         jobs_.end(), match);
  if (it == jobs_.end()) return false;
  advance();
  // advance() may have rebased (which compacts and shifts indices); the job
  // is still present — rebase never drops live entries — so re-find it.
  it = std::find_if(jobs_.begin() + static_cast<std::ptrdiff_t>(head_),
                    jobs_.end(), match);
  jobs_.erase(it);
  reschedule();
  return true;
}

}  // namespace cloudmedia::vod
