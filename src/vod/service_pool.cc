#include "vod/service_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace cloudmedia::vod {

namespace {
/// Completion tolerance in bytes; pools serve megabyte-scale chunks.
constexpr double kEpsBytes = 1e-5;

/// Smallest representable time step from `now` (one double ULP). Work that
/// would complete within a few of these cannot be scheduled as a future
/// event — `now + dt` rounds back to `now` and the timer would spin at a
/// frozen clock. Completion checks therefore treat anything within
/// 4 quanta of service as done.
double time_quantum(double now) noexcept {
  return std::nextafter(std::abs(now), std::numeric_limits<double>::infinity()) -
         std::abs(now);
}
}

ServicePool::ServicePool(sim::Simulator& simulator, double per_job_cap,
                         CompletionHandler on_complete)
    : sim_(&simulator),
      per_job_cap_(per_job_cap),
      on_complete_(std::move(on_complete)),
      last_update_(simulator.now()) {
  CM_EXPECTS(per_job_cap_ > 0.0);
  CM_EXPECTS(on_complete_ != nullptr);
}

double ServicePool::per_job_rate() const noexcept {
  if (jobs_.empty() && fluid_jobs_ <= 0.0) return 0.0;
  const double n = static_cast<double>(jobs_.size()) + fluid_jobs_;
  return std::min(per_job_cap_, total_capacity() / n);
}

double ServicePool::total_rate() const noexcept {
  return per_job_rate() * (static_cast<double>(jobs_.size()) + fluid_jobs_);
}

double ServicePool::peer_rate() const noexcept {
  return std::min(total_rate(), peer_cap_);
}

double ServicePool::cloud_rate() const noexcept {
  return std::max(0.0, total_rate() - peer_cap_);
}

void ServicePool::advance() {
  const double now = sim_->now();
  const double dt = now - last_update_;
  if (dt > 0.0 && (!jobs_.empty() || fluid_jobs_ > 0.0)) {
    const double rate = per_job_rate();
    service_level_ += rate * dt;
    const double total =
        rate * (static_cast<double>(jobs_.size()) + fluid_jobs_);
    const double peer = std::min(total, peer_cap_);
    peer_bytes_ += peer * dt;
    cloud_bytes_ += (total - peer) * dt;
  }
  last_update_ = now;
  maybe_rebase();
}

void ServicePool::maybe_rebase() {
  // service_level_ only matters *relative to the outstanding targets*, but
  // it accumulates without bound (≈ per-job rate × busy time). Once its
  // magnitude passes ~2^35 bytes, one double ULP exceeds kEpsBytes and
  // `level += rate·dt` can round to zero progress — the pool then
  // reschedules the same completion forever at an unmoving clock (a
  // livelock that froze week-long simulations around t = 2^17 s). Rebase
  // to zero whenever it is safe or the magnitude approaches the danger
  // zone; at the 1e9 threshold the ULP is ~2.4e-7, two orders below the
  // completion tolerance.
  if (jobs_.empty()) {
    service_level_ = 0.0;
    return;
  }
  constexpr double kRebaseThreshold = 1e9;
  if (service_level_ < kRebaseThreshold) return;
  const double base = service_level_;
  std::map<JobKey, Job> rebased;
  auto hint = rebased.end();
  for (const auto& [key, job] : jobs_) {
    hint = rebased.emplace_hint(hint, JobKey{key.first - base, key.second},
                                job);
  }
  jobs_ = std::move(rebased);
  for (auto& [id, target] : target_of_) target -= base;
  service_level_ = 0.0;
}

void ServicePool::sync() { advance(); }

void ServicePool::reschedule() {
  if (pending_ != sim::kInvalidEvent) {
    sim_->cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
  if (jobs_.empty()) return;
  const double rate = per_job_rate();
  if (rate <= 0.0) return;  // starved: resumes when capacity returns
  const double next_target = jobs_.begin()->first.first;
  double dt = std::max(0.0, (next_target - service_level_) / rate);
  // Defensive progress guarantee: a timer that lands back on `now` (dt
  // below the clock's resolution) would re-run this path forever with a
  // frozen clock. The completion tolerance in on_timer() makes this
  // unreachable; keep the guard in case a caller path misses it.
  while (sim_->now() + dt == sim_->now()) {
    dt = dt > 0.0 ? 2.0 * dt : time_quantum(sim_->now());
  }
  pending_ = sim_->schedule_in(dt, [this] { on_timer(); });
}

void ServicePool::on_timer() {
  pending_ = sim::kInvalidEvent;
  advance();
  std::vector<Completion> done;
  // Tolerance: the byte floor, plus whatever service the simulator clock
  // cannot resolve at this rate (see time_quantum above).
  const double eps =
      std::max(kEpsBytes, per_job_rate() * 4.0 * time_quantum(sim_->now()));
  while (!jobs_.empty() &&
         jobs_.begin()->first.first <= service_level_ + eps) {
    const auto it = jobs_.begin();
    Completion c;
    c.job_id = it->first.second;
    c.tag = it->second.tag;
    c.enqueue_time = it->second.enqueue_time;
    c.sojourn = sim_->now() - it->second.enqueue_time;
    target_of_.erase(c.job_id);
    jobs_.erase(it);
    done.push_back(c);
  }
  reschedule();
  // Handlers run on a consistent pool; they may re-enter via add_job.
  for (const Completion& c : done) on_complete_(c);
}

void ServicePool::set_capacity(double peer_capacity, double cloud_capacity) {
  CM_EXPECTS(peer_capacity >= 0.0);
  CM_EXPECTS(cloud_capacity >= 0.0);
  advance();
  peer_cap_ = peer_capacity;
  cloud_cap_ = cloud_capacity;
  reschedule();
}

void ServicePool::set_fluid_jobs(double jobs) {
  CM_EXPECTS(jobs >= 0.0 && std::isfinite(jobs));
  advance();
  fluid_jobs_ = jobs;
  reschedule();
}

std::uint64_t ServicePool::add_job(double bytes, std::uint64_t tag) {
  CM_EXPECTS(bytes > 0.0);
  advance();
  const std::uint64_t id = next_job_id_++;
  const double target = service_level_ + bytes;
  jobs_.emplace(JobKey{target, id}, Job{tag, sim_->now()});
  target_of_.emplace(id, target);
  reschedule();
  return id;
}

bool ServicePool::remove_job(std::uint64_t job_id) {
  const auto it = target_of_.find(job_id);
  if (it == target_of_.end()) return false;
  advance();
  jobs_.erase(JobKey{it->second, job_id});
  target_of_.erase(it);
  reschedule();
  return true;
}

}  // namespace cloudmedia::vod
