#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace cloudmedia::vod {

/// Bandwidth pool serving the concurrent retrievals of one (channel, chunk).
///
/// Processor sharing with a per-connection cap: `n` active downloads each
/// progress at min(per_job_cap, capacity / n) — what an Apache-style
/// streaming server actually does, as opposed to the M/M/m FIFO of the
/// paper's *model* (the model-vs-system gap is part of what the evaluation
/// validates; see DESIGN.md).
///
/// Capacity has two components: peer upload (P2P overlay) and cloud VMs.
/// Peers are drawn on first ("resort to streaming servers only when deemed
/// necessary", Sec. III-B): the instantaneous cloud rate is
/// max(0, total_rate − peer_capacity).
///
/// Implementation: all jobs share one rate, so a job completes when the
/// pool's cumulative per-job service level reaches (level at enqueue +
/// chunk bytes). Jobs live in a vector sorted ascending by (target, id)
/// with a dead prefix marker: completions just advance `head_` (no erase,
/// no rebuild), and because chunks in one pool are near-uniform in size,
/// the common add_job is an O(1) push_back — new targets are almost always
/// the largest outstanding. The previous design kept a std::map plus a
/// parallel id→target hash map and paid a node allocation per job and a
/// full map rebuild per rebase; the vector rebases in place with the same
/// doubles in the same order, so results are bit-identical.
class ServicePool {
 public:
  struct Completion {
    std::uint64_t job_id = 0;
    std::uint64_t tag = 0;          ///< caller context (peer id)
    double enqueue_time = 0.0;
    double sojourn = 0.0;           ///< wait + download time
  };
  using CompletionHandler = std::function<void(const Completion&)>;

  /// `per_job_cap`: max bytes/s a single download may receive (the paper's
  /// per-VM bandwidth R bounds one connection).
  ServicePool(sim::Simulator& simulator, double per_job_cap,
              CompletionHandler on_complete);

  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  /// Update capacity components (bytes/s) as of now.
  void set_capacity(double peer_capacity, double cloud_capacity);

  /// Enqueue a download of `bytes`; returns a job id.
  std::uint64_t add_job(double bytes, std::uint64_t tag);
  /// Abort a job (no completion fires). Returns false if unknown.
  bool remove_job(std::uint64_t job_id);

  /// Fluid load from the cohort engine: a (fractional) count of
  /// statistically-identical downloads sharing this pool alongside any
  /// discrete jobs. Fluid jobs enter the processor-sharing denominator and
  /// the byte accounting, but have no per-job identity and never complete —
  /// the cohort engine advances its occupancy mass itself and re-sets this
  /// figure each rebalance tick. 0.0 (the default) is bit-neutral: every
  /// rate and byte the discrete engine computes is unchanged.
  void set_fluid_jobs(double jobs);
  [[nodiscard]] double fluid_jobs() const noexcept { return fluid_jobs_; }

  [[nodiscard]] std::size_t active_jobs() const noexcept {
    return jobs_.size() - head_;
  }
  [[nodiscard]] double peer_capacity() const noexcept { return peer_cap_; }
  [[nodiscard]] double cloud_capacity() const noexcept { return cloud_cap_; }
  [[nodiscard]] double total_capacity() const noexcept {
    return peer_cap_ + cloud_cap_;
  }

  /// Instantaneous service rates (bytes/s).
  [[nodiscard]] double total_rate() const noexcept;
  [[nodiscard]] double peer_rate() const noexcept;
  [[nodiscard]] double cloud_rate() const noexcept;
  /// Rate each (discrete or fluid) job currently receives:
  /// min(per_job_cap, capacity / (discrete + fluid jobs)); 0 when idle.
  [[nodiscard]] double per_job_rate() const noexcept;

  /// Cumulative bytes served, split by source (advanced lazily; exact as
  /// of the last event, which is what the hourly tracker needs).
  [[nodiscard]] double cloud_bytes_served() const noexcept { return cloud_bytes_; }
  [[nodiscard]] double peer_bytes_served() const noexcept { return peer_bytes_; }

  /// Advance internal accounting to now (e.g. before reading byte counters
  /// at a sampling instant).
  void sync();

 private:
  struct JobRec {
    double target;         ///< service level at which this job completes
    std::uint64_t id;
    std::uint64_t tag;
    double enqueue_time;
  };

  void advance();
  void maybe_rebase();
  void reschedule();
  void on_timer();
  /// Drop the dead prefix [0, head_) so indices restart at the live jobs.
  void compact();

  sim::Simulator* sim_;
  double per_job_cap_;
  CompletionHandler on_complete_;

  double peer_cap_ = 0.0;
  double cloud_cap_ = 0.0;
  double fluid_jobs_ = 0.0;
  double service_level_ = 0.0;  ///< cumulative per-job bytes served
  double last_update_ = 0.0;
  double cloud_bytes_ = 0.0;
  double peer_bytes_ = 0.0;

  std::uint64_t next_job_id_ = 1;
  // Ascending by (target, id); entries before head_ are completed/removed.
  // Ids are allocated monotonically, so push_back keeps the order whenever
  // the new target ties or exceeds the current maximum (the common case:
  // fixed chunk bytes means targets enqueue in nondecreasing order).
  std::vector<JobRec> jobs_;
  std::size_t head_ = 0;
  sim::EventId pending_ = sim::kInvalidEvent;
};

}  // namespace cloudmedia::vod
