#include "vod/tracker.h"

#include <cmath>

#include "util/check.h"

namespace cloudmedia::vod {

Tracker::Tracker(int num_channels, int num_chunks)
    : num_channels_(num_channels), num_chunks_(num_chunks) {
  CM_EXPECTS(num_channels >= 1);
  CM_EXPECTS(num_chunks >= 1);
  counts_.resize(static_cast<std::size_t>(num_channels));
  for (ChannelCounts& c : counts_) {
    c.entries.assign(static_cast<std::size_t>(num_chunks), 0.0);
    c.transitions.assign(
        static_cast<std::size_t>(num_chunks),
        std::vector<double>(static_cast<std::size_t>(num_chunks), 0.0));
    c.leaves.assign(static_cast<std::size_t>(num_chunks), 0.0);
  }
}

Tracker::ChannelCounts& Tracker::channel(int c) {
  CM_EXPECTS(c >= 0 && c < num_channels_);
  return counts_[static_cast<std::size_t>(c)];
}

const Tracker::ChannelCounts& Tracker::channel(int c) const {
  CM_EXPECTS(c >= 0 && c < num_channels_);
  return counts_[static_cast<std::size_t>(c)];
}

void Tracker::record_arrival(int channel_id, int entry_chunk, double weight) {
  CM_EXPECTS(entry_chunk >= 0 && entry_chunk < num_chunks_);
  CM_EXPECTS(weight >= 0.0);
  ChannelCounts& c = channel(channel_id);
  c.arrivals += weight;
  c.entries[static_cast<std::size_t>(entry_chunk)] += weight;
}

void Tracker::record_transition(int channel_id, int from,
                                std::optional<int> to, double weight) {
  CM_EXPECTS(from >= 0 && from < num_chunks_);
  CM_EXPECTS(weight >= 0.0);
  ChannelCounts& c = channel(channel_id);
  if (to) {
    CM_EXPECTS(*to >= 0 && *to < num_chunks_);
    c.transitions[static_cast<std::size_t>(from)][static_cast<std::size_t>(*to)] +=
        weight;
  } else {
    c.leaves[static_cast<std::size_t>(from)] += weight;
  }
}

core::TrackerReport Tracker::harvest(
    double interval_start, double interval_length,
    const std::vector<std::vector<double>>& occupancy,
    const std::vector<double>& mean_uplink,
    const std::vector<std::vector<double>>& served_cloud_bandwidth) {
  CM_EXPECTS(interval_length > 0.0);
  CM_EXPECTS(occupancy.size() == static_cast<std::size_t>(num_channels_));
  CM_EXPECTS(mean_uplink.size() == static_cast<std::size_t>(num_channels_));
  CM_EXPECTS(served_cloud_bandwidth.size() ==
             static_cast<std::size_t>(num_channels_));

  const auto j = static_cast<std::size_t>(num_chunks_);
  core::TrackerReport report;
  report.interval_start = interval_start;
  report.interval_length = interval_length;
  report.channels.resize(static_cast<std::size_t>(num_channels_));

  for (int ch = 0; ch < num_channels_; ++ch) {
    ChannelCounts& c = channel(ch);
    core::ChannelObservation& obs =
        report.channels[static_cast<std::size_t>(ch)];

    obs.arrival_rate = c.arrivals / interval_length;

    obs.entry.assign(j, 0.0);
    if (c.arrivals > 0.0) {
      for (std::size_t i = 0; i < j; ++i) {
        obs.entry[i] = c.entries[i] / c.arrivals;
      }
    } else {
      // No arrivals: the entry distribution is moot (Λ̂ = 0); keep it a
      // valid distribution for the traffic equations.
      obs.entry[0] = 1.0;
    }

    obs.transfer = util::Matrix(j, j);
    for (std::size_t from = 0; from < j; ++from) {
      double row_total = c.leaves[from];
      for (std::size_t to = 0; to < j; ++to) row_total += c.transitions[from][to];
      if (row_total <= 0.0) continue;  // unobserved chunk: row stays zero
      for (std::size_t to = 0; to < j; ++to) {
        obs.transfer(from, to) = c.transitions[from][to] / row_total;
      }
    }

    obs.occupancy = occupancy[static_cast<std::size_t>(ch)];
    obs.mean_peer_uplink = mean_uplink[static_cast<std::size_t>(ch)];
    obs.served_cloud_bandwidth =
        served_cloud_bandwidth[static_cast<std::size_t>(ch)];

    // Reset for the next interval.
    c.arrivals = 0.0;
    std::fill(c.entries.begin(), c.entries.end(), 0.0);
    std::fill(c.leaves.begin(), c.leaves.end(), 0.0);
    for (auto& row : c.transitions) std::fill(row.begin(), row.end(), 0.0);
  }
  return report;
}

long Tracker::arrivals(int channel_id) const {
  return std::lround(channel(channel_id).arrivals);
}

long Tracker::transitions(int channel_id, int from, int to) const {
  CM_EXPECTS(from >= 0 && from < num_chunks_ && to >= 0 && to < num_chunks_);
  return std::lround(
      channel(channel_id)
          .transitions[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)]);
}

long Tracker::leaves(int channel_id, int from) const {
  CM_EXPECTS(from >= 0 && from < num_chunks_);
  return std::lround(channel(channel_id).leaves[static_cast<std::size_t>(from)]);
}

}  // namespace cloudmedia::vod
