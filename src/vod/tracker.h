#pragma once

#include <optional>
#include <vector>

#include "core/controller.h"

namespace cloudmedia::vod {

/// The tracking server of Sec. V-B: besides brokering peer lists (implicit
/// in our swarm state), it "summarizes the average user arrival rate Λ(c)
/// to each channel ... as well as the viewing patterns P(c)ij" over each
/// provisioning interval and reports them to the controller.
///
/// Counters accumulate between harvests; `harvest` converts them into a
/// core::TrackerReport (empirical Λ̂, entry distribution, transfer matrix
/// P̂) and resets them for the next interval.
class Tracker {
 public:
  Tracker(int num_channels, int num_chunks);

  void record_arrival(int channel, int entry_chunk);
  /// `to` empty = the user left the channel after `from`.
  void record_transition(int channel, int from, std::optional<int> to);

  /// Build the report for the interval [interval_start, interval_start +
  /// interval_length) and reset counters. The caller supplies the
  /// instantaneous snapshots the tracker cannot count by itself:
  /// per-chunk occupancy, per-channel mean peer uplink, and the mean cloud
  /// bandwidth served per chunk over the interval.
  [[nodiscard]] core::TrackerReport harvest(
      double interval_start, double interval_length,
      const std::vector<std::vector<double>>& occupancy,
      const std::vector<double>& mean_uplink,
      const std::vector<std::vector<double>>& served_cloud_bandwidth);

  [[nodiscard]] long arrivals(int channel) const;
  [[nodiscard]] long transitions(int channel, int from, int to) const;
  [[nodiscard]] long leaves(int channel, int from) const;
  [[nodiscard]] int num_channels() const noexcept { return num_channels_; }
  [[nodiscard]] int num_chunks() const noexcept { return num_chunks_; }

 private:
  struct ChannelCounts {
    long arrivals = 0;
    std::vector<long> entries;                  ///< per entry chunk
    std::vector<std::vector<long>> transitions; ///< [from][to]
    std::vector<long> leaves;                   ///< per from-chunk
  };

  [[nodiscard]] ChannelCounts& channel(int c);
  [[nodiscard]] const ChannelCounts& channel(int c) const;

  int num_channels_;
  int num_chunks_;
  std::vector<ChannelCounts> counts_;
};

}  // namespace cloudmedia::vod
