#pragma once

#include <optional>
#include <vector>

#include "core/controller.h"

namespace cloudmedia::vod {

/// The tracking server of Sec. V-B: besides brokering peer lists (implicit
/// in our swarm state), it "summarizes the average user arrival rate Λ(c)
/// to each channel ... as well as the viewing patterns P(c)ij" over each
/// provisioning interval and reports them to the controller.
///
/// Counters accumulate between harvests; `harvest` converts them into a
/// core::TrackerReport (empirical Λ̂, entry distribution, transfer matrix
/// P̂) and resets them for the next interval.
class Tracker {
 public:
  Tracker(int num_channels, int num_chunks);

  /// `weight` lets the cohort engine record a whole batch of
  /// statistically-identical viewers in one call; the discrete engine's
  /// default of 1.0 keeps every harvest byte-identical (integer-valued
  /// doubles below 2^53 add and divide exactly like the longs they were).
  void record_arrival(int channel, int entry_chunk, double weight = 1.0);
  /// `to` empty = the user left the channel after `from`.
  void record_transition(int channel, int from, std::optional<int> to,
                         double weight = 1.0);

  /// Build the report for the interval [interval_start, interval_start +
  /// interval_length) and reset counters. The caller supplies the
  /// instantaneous snapshots the tracker cannot count by itself:
  /// per-chunk occupancy, per-channel mean peer uplink, and the mean cloud
  /// bandwidth served per chunk over the interval.
  [[nodiscard]] core::TrackerReport harvest(
      double interval_start, double interval_length,
      const std::vector<std::vector<double>>& occupancy,
      const std::vector<double>& mean_uplink,
      const std::vector<std::vector<double>>& served_cloud_bandwidth);

  /// Rounded views of the (possibly weighted) counters; exact for the
  /// discrete engine's unit-weight recording.
  [[nodiscard]] long arrivals(int channel) const;
  [[nodiscard]] long transitions(int channel, int from, int to) const;
  [[nodiscard]] long leaves(int channel, int from) const;
  [[nodiscard]] int num_channels() const noexcept { return num_channels_; }
  [[nodiscard]] int num_chunks() const noexcept { return num_chunks_; }

 private:
  struct ChannelCounts {
    double arrivals = 0.0;
    std::vector<double> entries;                  ///< per entry chunk
    std::vector<std::vector<double>> transitions; ///< [from][to]
    std::vector<double> leaves;                   ///< per from-chunk
  };

  [[nodiscard]] ChannelCounts& channel(int c);
  [[nodiscard]] const ChannelCounts& channel(int c) const;

  int num_channels_;
  int num_chunks_;
  std::vector<ChannelCounts> counts_;
};

}  // namespace cloudmedia::vod
