#pragma once

#include <string>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/stats.h"

namespace cloudmedia::cloud {

/// Usage-time billing (Sec. III-A: "services are charged by usage time,
/// following the charging model of ... Amazon EC2 and S3").
///
/// Each category (e.g. "vm", "storage") has a piecewise-constant $/hour
/// rate; the meter integrates dollars over simulated time and records the
/// rate series that Fig. 10 plots.
class CostMeter {
 public:
  explicit CostMeter(sim::Simulator& simulator) : sim_(&simulator) {}

  /// Change the category's rate as of now().
  void set_rate(const std::string& category, double dollars_per_hour);

  [[nodiscard]] double current_rate(const std::string& category) const;
  /// Total dollars accrued by the category up to now().
  [[nodiscard]] double total(const std::string& category) const;
  /// Total across all categories.
  [[nodiscard]] double grand_total() const;
  /// The recorded (time, $/h) rate-change series.
  [[nodiscard]] const util::TimeSeries& rate_series(const std::string& category) const;

 private:
  struct Account {
    double rate = 0.0;          ///< $/h
    double accrued = 0.0;       ///< $ up to last_change
    double last_change = 0.0;   ///< seconds
    util::TimeSeries series;
  };

  [[nodiscard]] double accrued_to_now(const Account& account) const;

  sim::Simulator* sim_;
  std::unordered_map<std::string, Account> accounts_;
};

}  // namespace cloudmedia::cloud
