#pragma once

#include <memory>

#include "cloud/billing.h"
#include "cloud/broker.h"
#include "cloud/nfs_scheduler.h"
#include "cloud/vm_scheduler.h"
#include "core/controller.h"
#include "sim/simulator.h"

namespace cloudmedia::cloud {

/// The IaaS cloud of Sec. III-A, wired per Fig. 1: the consumer submits a
/// provisioning plan through the Broker; the Request Monitor logs it; the
/// SLA Negotiator validates it; the VM and NFS schedulers carry it out;
/// the VM Monitor tracks instance churn; the cost meter bills usage time.
struct CloudConfig {
  SlaTerms sla;
  VmSchedulerConfig vm;
};

class CloudService {
 public:
  CloudService(sim::Simulator& simulator, CloudConfig config);

  /// Broker entry point: submit the consumer's plan for the next interval.
  /// Returns false (and changes nothing) if the SLA negotiator rejects it.
  bool submit_plan(const core::ProvisioningPlan& plan, int num_channels,
                   int chunks_per_video);

  /// Bandwidth currently deliverable to a chunk.
  [[nodiscard]] double chunk_capacity(int channel, int chunk) const {
    return vm_scheduler_.chunk_capacity(channel, chunk);
  }
  /// Billed (reserved) bandwidth, bytes/s.
  [[nodiscard]] double reserved_bandwidth() const {
    return vm_scheduler_.reserved_bandwidth();
  }

  [[nodiscard]] double vm_cost_rate() const { return vm_scheduler_.cost_rate(); }
  [[nodiscard]] double storage_cost_rate() const { return nfs_scheduler_.cost_rate(); }

  [[nodiscard]] VmScheduler& vm_scheduler() noexcept { return vm_scheduler_; }
  [[nodiscard]] const VmScheduler& vm_scheduler() const noexcept { return vm_scheduler_; }
  [[nodiscard]] NfsScheduler& nfs_scheduler() noexcept { return nfs_scheduler_; }
  [[nodiscard]] const RequestMonitor& request_monitor() const noexcept {
    return request_monitor_;
  }
  [[nodiscard]] const VmMonitor& vm_monitor() const noexcept { return vm_monitor_; }
  [[nodiscard]] CostMeter& billing() noexcept { return billing_; }
  [[nodiscard]] const CostMeter& billing() const noexcept { return billing_; }
  [[nodiscard]] const SlaNegotiator& sla() const noexcept { return sla_; }

  /// Renegotiate the SLA budget ceilings mid-run (timed scenario ops:
  /// a regional outage cuts them, recovery restores them). Plans already
  /// admitted keep running; the next submit_plan() faces the new terms.
  void set_budgets(double vm_budget_per_hour, double storage_budget_per_hour) {
    sla_.set_budgets(vm_budget_per_hour, storage_budget_per_hour);
  }

 private:
  sim::Simulator* sim_;
  SlaNegotiator sla_;
  VmScheduler vm_scheduler_;
  NfsScheduler nfs_scheduler_;
  RequestMonitor request_monitor_;
  VmMonitor vm_monitor_;
  CostMeter billing_;
};

}  // namespace cloudmedia::cloud
