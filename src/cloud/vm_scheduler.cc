#include "cloud/vm_scheduler.h"

#include <utility>

#include "util/check.h"

namespace cloudmedia::cloud {

VmScheduler::VmScheduler(sim::Simulator& simulator,
                         std::vector<core::VmClusterSpec> clusters,
                         VmSchedulerConfig config)
    : sim_(&simulator), clusters_(std::move(clusters)), config_(config) {
  CM_EXPECTS(!clusters_.empty());
  for (const core::VmClusterSpec& c : clusters_) c.validate();
  CM_EXPECTS(config_.boot_delay >= 0.0);
  CM_EXPECTS(config_.vm_bandwidth > 0.0);
  states_.resize(clusters_.size());
}

const core::VmClusterSpec& VmScheduler::cluster(std::size_t v) const {
  CM_EXPECTS(v < clusters_.size());
  return clusters_[v];
}

void VmScheduler::apply(const core::VmProblem& problem,
                        const core::InstancePlan& plan, int num_channels,
                        int chunks_per_video) {
  CM_EXPECTS(num_channels > 0 && chunks_per_video > 0);
  CM_EXPECTS(plan.per_cluster_count.size() == clusters_.size());

  num_channels_ = num_channels;
  chunks_per_video_ = chunks_per_video;
  chunk_bandwidth_.assign(
      static_cast<std::size_t>(num_channels) *
          static_cast<std::size_t>(chunks_per_video),
      std::vector<double>(clusters_.size(), 0.0));

  for (const core::VmInstance& instance : plan.instances) {
    for (const auto& [flat_chunk, fraction] : instance.slices) {
      CM_EXPECTS(flat_chunk < problem.chunks.size());
      const core::ChunkRef ref = problem.chunks[flat_chunk].ref;
      CM_EXPECTS(ref.channel >= 0 && ref.channel < num_channels);
      CM_EXPECTS(ref.chunk >= 0 && ref.chunk < chunks_per_video);
      const std::size_t key =
          static_cast<std::size_t>(ref.channel) *
              static_cast<std::size_t>(chunks_per_video) +
          static_cast<std::size_t>(ref.chunk);
      chunk_bandwidth_[key][instance.cluster] +=
          fraction * config_.vm_bandwidth;
    }
  }

  for (std::size_t v = 0; v < clusters_.size(); ++v) {
    ClusterState& state = states_[v];
    const int target = plan.per_cluster_count[v];
    CM_EXPECTS(target <= clusters_[v].max_vms);
    if (state.pending_boot != sim::kInvalidEvent) {
      sim_->cancel(state.pending_boot);
      state.pending_boot = sim::kInvalidEvent;
    }
    state.billed = target;
    if (target <= state.ready) {
      state.ready = target;  // shutdown is immediate
    } else if (config_.boot_delay == 0.0) {
      state.ready = target;
    } else {
      // Boots run in parallel: all missing instances ready together.
      state.pending_boot = sim_->schedule_in(config_.boot_delay, [this, v, target] {
        states_[v].ready = target;
        states_[v].pending_boot = sim::kInvalidEvent;
        notify();
      });
    }
  }
  notify();
}

double VmScheduler::chunk_capacity(int channel, int chunk) const {
  if (chunk_bandwidth_.empty()) return 0.0;
  CM_EXPECTS(channel >= 0 && channel < num_channels_);
  CM_EXPECTS(chunk >= 0 && chunk < chunks_per_video_);
  const std::size_t key = static_cast<std::size_t>(channel) *
                              static_cast<std::size_t>(chunks_per_video_) +
                          static_cast<std::size_t>(chunk);
  double capacity = 0.0;
  for (std::size_t v = 0; v < clusters_.size(); ++v) {
    const ClusterState& state = states_[v];
    const double readiness =
        state.billed > 0
            ? static_cast<double>(std::min(state.ready, state.billed)) /
                  static_cast<double>(state.billed)
            : 0.0;
    capacity += chunk_bandwidth_[key][v] * readiness;
  }
  return capacity;
}

double VmScheduler::reserved_bandwidth() const {
  double total = 0.0;
  for (const ClusterState& state : states_) {
    total += static_cast<double>(state.billed) * config_.vm_bandwidth;
  }
  return total;
}

double VmScheduler::cost_rate() const {
  double rate = 0.0;
  for (std::size_t v = 0; v < clusters_.size(); ++v) {
    rate += static_cast<double>(states_[v].billed) * clusters_[v].price_per_hour;
  }
  return rate;
}

int VmScheduler::billed_instances(std::size_t cluster_index) const {
  CM_EXPECTS(cluster_index < states_.size());
  return states_[cluster_index].billed;
}

int VmScheduler::ready_instances(std::size_t cluster_index) const {
  CM_EXPECTS(cluster_index < states_.size());
  return std::min(states_[cluster_index].ready, states_[cluster_index].billed);
}

void VmScheduler::set_capacity_listener(std::function<void()> listener) {
  listener_ = std::move(listener);
}

void VmScheduler::notify() {
  if (listener_) listener_();
}

}  // namespace cloudmedia::cloud
