#include "cloud/nfs_scheduler.h"

#include <utility>

#include "util/check.h"

namespace cloudmedia::cloud {

NfsScheduler::NfsScheduler(std::vector<core::NfsClusterSpec> clusters)
    : clusters_(std::move(clusters)), chunk_counts_(clusters_.size(), 0) {
  CM_EXPECTS(!clusters_.empty());
  for (const core::NfsClusterSpec& c : clusters_) c.validate();
}

void NfsScheduler::apply(const core::StorageProblem& problem,
                         const core::StorageAssignment& assignment) {
  CM_EXPECTS(problem.clusters.size() == clusters_.size());
  CM_EXPECTS(assignment.cluster_of.size() == problem.chunks.size());

  std::vector<int> counts(clusters_.size(), 0);
  for (int f : assignment.cluster_of) {
    if (f < 0) continue;  // unplaced (infeasible plans): nothing stored
    CM_EXPECTS(static_cast<std::size_t>(f) < clusters_.size());
    ++counts[static_cast<std::size_t>(f)];
  }
  for (std::size_t f = 0; f < clusters_.size(); ++f) {
    CM_ENSURES(static_cast<double>(counts[f]) * problem.chunk_bytes <=
               clusters_[f].capacity_bytes + 1e-6);
  }
  chunk_counts_ = std::move(counts);
  chunk_bytes_ = problem.chunk_bytes;
}

double NfsScheduler::used_bytes(std::size_t cluster) const {
  CM_EXPECTS(cluster < clusters_.size());
  return static_cast<double>(chunk_counts_[cluster]) * chunk_bytes_;
}

int NfsScheduler::stored_chunks(std::size_t cluster) const {
  CM_EXPECTS(cluster < clusters_.size());
  return chunk_counts_[cluster];
}

double NfsScheduler::cost_rate() const {
  double rate = 0.0;
  for (std::size_t f = 0; f < clusters_.size(); ++f) {
    rate += used_bytes(f) * clusters_[f].price_per_byte_hour();
  }
  return rate;
}

}  // namespace cloudmedia::cloud
