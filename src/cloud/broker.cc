#include "cloud/broker.h"

#include <numeric>

#include "util/check.h"

namespace cloudmedia::cloud {

SlaNegotiator::SlaNegotiator(SlaTerms terms) : terms_(std::move(terms)) {
  CM_EXPECTS(!terms_.vm_clusters.empty());
  CM_EXPECTS(!terms_.nfs_clusters.empty());
}

void SlaNegotiator::set_budgets(double vm_budget_per_hour,
                                double storage_budget_per_hour) {
  CM_EXPECTS(vm_budget_per_hour >= 0.0);
  CM_EXPECTS(storage_budget_per_hour >= 0.0);
  terms_.vm_budget_per_hour = vm_budget_per_hour;
  terms_.storage_budget_per_hour = storage_budget_per_hour;
}

bool SlaNegotiator::admit(const core::ProvisioningPlan& plan,
                          std::string* reason) const {
  // Fractional VM-hours must respect the negotiated budget; packing whole
  // instances rounds each cluster's share up at most once, which the SLA
  // tolerates up to one instance per cluster.
  double rounding_allowance = 0.0;
  for (const core::VmClusterSpec& c : terms_.vm_clusters) {
    rounding_allowance += c.price_per_hour;
  }
  if (plan.vm.cost_per_hour > terms_.vm_budget_per_hour + 1e-9) {
    if (reason) *reason = "vm budget exceeded";
    return false;
  }
  if (plan.vm_cost_rate >
      terms_.vm_budget_per_hour + rounding_allowance + 1e-9) {
    if (reason) *reason = "vm instance bill exceeds budget allowance";
    return false;
  }
  if (plan.storage_cost_rate > terms_.storage_budget_per_hour + 1e-9) {
    if (reason) *reason = "storage budget exceeded";
    return false;
  }
  for (std::size_t v = 0; v < plan.instances.per_cluster_count.size(); ++v) {
    if (v >= terms_.vm_clusters.size() ||
        plan.instances.per_cluster_count[v] > terms_.vm_clusters[v].max_vms) {
      if (reason) *reason = "virtual cluster capacity exceeded";
      return false;
    }
  }
  if (reason) reason->clear();
  return true;
}

void VmMonitor::on_scale(std::size_t cluster, int delta) {
  CM_EXPECTS(cluster < boots_.size());
  if (delta > 0) {
    boots_[cluster] += delta;
  } else {
    shutdowns_[cluster] += -delta;
  }
}

long VmMonitor::boots(std::size_t cluster) const {
  CM_EXPECTS(cluster < boots_.size());
  return boots_[cluster];
}

long VmMonitor::shutdowns(std::size_t cluster) const {
  CM_EXPECTS(cluster < shutdowns_.size());
  return shutdowns_[cluster];
}

long VmMonitor::total_boots() const {
  return std::accumulate(boots_.begin(), boots_.end(), 0L);
}

long VmMonitor::total_shutdowns() const {
  return std::accumulate(shutdowns_.begin(), shutdowns_.end(), 0L);
}

}  // namespace cloudmedia::cloud
